"""Unit tests for CSR / CSC / COO / DIA / ragged / CSF formats."""

import numpy as np
import pytest

from repro.formats import (
    COOMatrix,
    CSCMatrix,
    CSFTensor,
    CSRMatrix,
    DIAMatrix,
    RaggedTensor,
)


class TestCSR:
    def test_round_trip_dense(self, small_csr):
        dense = small_csr.to_dense()
        again = CSRMatrix.from_dense(dense)
        assert np.allclose(again.to_dense(), dense)

    def test_row_lengths_and_density(self, tiny_csr):
        assert list(tiny_csr.row_lengths()) == [2, 0, 2, 2]
        assert tiny_csr.max_row_length() == 2
        assert tiny_csr.mean_row_length() == pytest.approx(1.5)
        assert tiny_csr.density == pytest.approx(6 / 16)

    def test_validation_rejects_bad_indptr(self):
        with pytest.raises(ValueError):
            CSRMatrix((2, 2), np.array([0, 1]), np.array([0]), np.array([1.0]))
        with pytest.raises(ValueError):
            CSRMatrix((2, 2), np.array([0, 2, 1]), np.array([0, 1]), np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            CSRMatrix((2, 2), np.array([0, 1, 2]), np.array([0, 5]), np.array([1.0, 1.0]))

    def test_random_matches_requested_density(self):
        csr = CSRMatrix.random(50, 40, density=0.1, seed=3)
        assert 0.05 < csr.density < 0.15

    def test_transpose(self, tiny_csr):
        assert np.allclose(tiny_csr.transpose().to_dense(), tiny_csr.to_dense().T)

    def test_column_partition_covers_all_columns(self, small_csr):
        parts = small_csr.column_partition(4)
        total = sum(p.nnz for p in parts if p is not None)
        assert total == small_csr.nnz

    def test_to_axes_carry_structure(self, tiny_csr):
        i_axis, j_axis = tiny_csr.to_axes()
        assert i_axis.length == 4
        assert j_axis.nnz_total() == tiny_csr.nnz
        assert j_axis.parent is i_axis

    def test_nbytes(self, tiny_csr):
        assert tiny_csr.nbytes() == (5 + 6) * 4 + 6 * 4


class TestCSC:
    def test_round_trip(self, small_csr):
        csc = CSCMatrix.from_csr(small_csr)
        assert np.allclose(csc.to_dense(), small_csr.to_dense())
        assert csc.nnz == small_csr.nnz

    def test_col_lengths(self, tiny_csr):
        csc = CSCMatrix.from_csr(tiny_csr)
        assert csc.col_lengths().sum() == tiny_csr.nnz

    def test_back_to_csr(self, small_csr):
        assert np.allclose(CSCMatrix.from_csr(small_csr).to_csr().to_dense(), small_csr.to_dense())

    def test_axes(self, tiny_csr):
        j_axis, i_axis = CSCMatrix.from_csr(tiny_csr).to_axes()
        assert j_axis.length == tiny_csr.cols
        assert i_axis.parent is j_axis


class TestCOO:
    def test_round_trip(self, small_csr):
        coo = COOMatrix.from_csr(small_csr)
        assert np.allclose(coo.to_dense(), small_csr.to_dense())
        assert coo.nnz == small_csr.nnz

    def test_sorted_by_row_then_col(self, small_csr):
        coo = COOMatrix.from_csr(small_csr)
        order = np.lexsort((coo.col, coo.row))
        assert np.array_equal(order, np.arange(coo.nnz))

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix((2, 2), np.array([0]), np.array([0, 1]))

    def test_nbytes(self, tiny_csr):
        assert COOMatrix.from_csr(tiny_csr).nbytes() == 6 * 12


class TestDIA:
    def test_band_matrix_structure(self):
        dia = DIAMatrix.band(size=16, bandwidth=2)
        dense = dia.to_dense()
        assert dense[0, 0] == 1.0
        assert dense[0, 2] == 1.0
        assert dense[0, 3] == 0.0
        assert dia.num_diagonals == 5

    def test_round_trip_with_csr(self, tiny_csr):
        dia = DIAMatrix.from_csr(tiny_csr)
        assert np.allclose(dia.to_dense(), tiny_csr.to_dense())
        assert np.allclose(dia.to_csr().to_dense(), tiny_csr.to_dense())

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            DIAMatrix((4, 4), np.array([0, 1]), np.zeros((3, 4), dtype=np.float32))


class TestRagged:
    def test_from_rows_and_padding(self):
        ragged = RaggedTensor.from_rows([[1.0, 2.0], [3.0], [], [4.0, 5.0, 6.0]])
        assert ragged.num_rows == 4
        assert ragged.nnz == 6
        padded = ragged.to_padded()
        assert padded.shape == (4, 3)
        assert padded[2].sum() == 0.0
        assert 0.0 < ragged.padding_ratio() < 1.0

    def test_row_access(self):
        ragged = RaggedTensor.from_rows([[1.0, 2.0], [3.0]])
        assert list(ragged.row(0)) == [1.0, 2.0]

    def test_value_length_validation(self):
        with pytest.raises(ValueError):
            RaggedTensor([2, 2], np.zeros(3, dtype=np.float32))

    def test_axes(self):
        ragged = RaggedTensor.from_rows([[1.0], [2.0, 3.0]])
        i_axis, j_axis = ragged.to_axes()
        assert i_axis.length == 2
        assert j_axis.nnz_total() == 3


class TestCSF:
    def test_from_dense_round_trip(self, rng):
        dense = (rng.random((3, 5, 6)) < 0.2).astype(np.float32)
        csf = CSFTensor.from_dense(dense)
        assert csf.num_slices == 3
        assert csf.nnz == int(dense.sum())
        assert np.allclose(csf.to_dense(), dense)

    def test_slice_nnz_and_nbytes(self, rng):
        dense = (rng.random((2, 4, 4)) < 0.3).astype(np.float32)
        csf = CSFTensor.from_dense(dense)
        assert csf.slice_nnz().sum() == csf.nnz
        assert csf.nbytes() > 0

    def test_shape_validation(self, tiny_csr):
        with pytest.raises(ValueError):
            CSFTensor((2, 4, 4), [tiny_csr])
