"""Unit tests for the SpMM and SDDMM operator layers (references + workloads)."""

import numpy as np
import pytest

from repro.formats import HybFormat
from repro.ops import sddmm, spmm
from repro.ops.common import ceil_div, dense_reuse_miss_rate, split_row_blocks, value_bytes
from repro.perf.device import V100
from repro.perf.gpu_model import GPUModel


class TestCommonHelpers:
    def test_value_bytes(self):
        assert value_bytes("float32") == 4
        assert value_bytes("float16") == 2

    def test_ceil_div(self):
        assert ceil_div(10, 3) == 4
        with pytest.raises(ValueError):
            ceil_div(10, 0)

    def test_split_row_blocks_grouping(self):
        lengths = np.array([3, 1, 4, 2])
        assert list(split_row_blocks(lengths, 2)) == [4.0, 6.0]

    def test_split_row_blocks_with_cap(self):
        lengths = np.array([10, 1])
        blocks = split_row_blocks(lengths, 1, max_nnz_per_block=4)
        assert list(blocks) == [4.0, 4.0, 2.0, 1.0]

    def test_miss_rate_bounds(self):
        assert 0.0 <= dense_reuse_miss_rate(1e3, 1e6, V100) <= 1.0
        assert dense_reuse_miss_rate(1e9, 2e9, V100) > dense_reuse_miss_rate(1e3, 2e9, V100)


class TestSpMMReference:
    def test_matches_dense(self, small_csr, rng):
        x = rng.standard_normal((small_csr.cols, 5)).astype(np.float32)
        assert np.allclose(spmm.spmm_reference(small_csr, x), small_csr.to_dense() @ x, atol=1e-5)

    def test_shape_validation(self, small_csr, rng):
        with pytest.raises(ValueError):
            spmm.spmm_reference(small_csr, rng.standard_normal((small_csr.cols + 1, 3)))

    def test_hyb_reference_matches(self, small_csr, rng):
        x = rng.standard_normal((small_csr.cols, 3)).astype(np.float32)
        hyb = HybFormat.from_csr(small_csr, num_col_parts=2)
        assert np.allclose(
            spmm.spmm_hyb_reference(hyb, x), spmm.spmm_reference(small_csr, x), atol=1e-4
        )

    def test_flops_counter(self, small_csr):
        assert spmm.spmm_flops(small_csr, 16) == 2 * small_csr.nnz * 16


class TestSpMMWorkloads:
    def test_csr_workload_totals(self, small_csr):
        workload = spmm.spmm_csr_workload(small_csr, 8, V100)
        assert workload.total_flops() == pytest.approx(2 * small_csr.nnz * 8)
        assert workload.total_blocks() == small_csr.rows
        assert workload.total_dram_bytes() > 0

    def test_hyb_workload_groups_per_bucket(self, small_csr):
        hyb = HybFormat.from_csr(small_csr, num_col_parts=2)
        workload = spmm.spmm_hyb_workload(hyb, 8, V100)
        assert len(workload.groups) == len(hyb.buckets)
        assert workload.num_launches == 1  # horizontally fused
        unfused = spmm.spmm_hyb_workload(hyb, 8, V100, horizontal_fusion=False)
        assert unfused.num_launches == len(hyb.buckets)

    def test_hyb_flops_include_padding(self, small_csr):
        hyb = HybFormat.from_csr(small_csr, num_col_parts=1)
        workload = spmm.spmm_hyb_workload(hyb, 8, V100)
        assert workload.total_flops() >= 2 * small_csr.nnz * 8

    def test_larger_feature_size_costs_more(self, small_csr):
        model = GPUModel(V100)
        t32 = model.estimate(spmm.spmm_csr_workload(small_csr, 32, V100)).duration_us
        t256 = model.estimate(spmm.spmm_csr_workload(small_csr, 256, V100)).duration_us
        assert t256 > t32

    def test_choose_hyb_parameters(self, small_csr):
        parts, buckets = spmm.choose_hyb_parameters(small_csr)
        assert parts in (1, 2, 4, 8, 16)
        assert buckets >= 1


class TestSpMMPrograms:
    def test_program_executes(self, tiny_csr, rng):
        x = rng.standard_normal((tiny_csr.cols, 2)).astype(np.float32)
        from repro.core import build

        out = build(spmm.build_spmm_program(tiny_csr, 2, x)).run()
        assert np.allclose(out["C"].reshape(tiny_csr.rows, 2), spmm.spmm_reference(tiny_csr, x), atol=1e-5)


class TestSDDMM:
    def test_reference_matches_manual(self, tiny_csr, rng):
        x = rng.standard_normal((tiny_csr.rows, 3)).astype(np.float32)
        y = rng.standard_normal((3, tiny_csr.cols)).astype(np.float32)
        out = sddmm.sddmm_reference(tiny_csr, x, y)
        dense_scores = x @ y
        expected = []
        for row in range(tiny_csr.rows):
            for pos in range(tiny_csr.indptr[row], tiny_csr.indptr[row + 1]):
                col = tiny_csr.indices[pos]
                expected.append(tiny_csr.data[pos] * dense_scores[row, col])
        assert np.allclose(out, expected, atol=1e-5)

    def test_reference_shape_validation(self, tiny_csr, rng):
        with pytest.raises(ValueError):
            sddmm.sddmm_reference(tiny_csr, rng.standard_normal((2, 3)), rng.standard_normal((3, 4)))
        with pytest.raises(ValueError):
            sddmm.sddmm_reference(
                tiny_csr, rng.standard_normal((4, 3)), rng.standard_normal((2, 4))
            )

    def test_workload_two_stage_reduction_helps(self, small_csr):
        model = GPUModel(V100)
        fast = model.estimate(sddmm.sddmm_workload(small_csr, 512, V100, two_stage_reduction=True))
        slow = model.estimate(sddmm.sddmm_workload(small_csr, 512, V100, two_stage_reduction=False))
        assert fast.duration_us <= slow.duration_us

    def test_workload_totals(self, small_csr):
        workload = sddmm.sddmm_workload(small_csr, 64, V100, nnz_per_block=16)
        assert workload.total_blocks() == ceil_div(small_csr.nnz, 16)
        assert workload.total_flops() >= sddmm.sddmm_flops(small_csr, 64)
