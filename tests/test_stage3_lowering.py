"""Unit tests for sparse buffer lowering (stage II -> stage III)."""

import numpy as np
import pytest

from repro.core import lower_sparse_buffers, lower_sparse_iterations
from repro.core.buffers import FlatBuffer
from repro.core.program import STAGE_LOOP
from repro.core.stmt import collect_buffer_loads, collect_buffer_stores
from repro.ops.spmm import build_spmm_program


@pytest.fixture
def stage3_spmm(small_csr, rng):
    features = rng.standard_normal((small_csr.cols, 4)).astype(np.float32)
    func = build_spmm_program(small_csr, 4, features)
    stage2 = lower_sparse_iterations(func)
    return small_csr, lower_sparse_buffers(stage2)


def test_stage_changes_to_loop_level(stage3_spmm):
    _, lowered = stage3_spmm
    assert lowered.stage == STAGE_LOOP


def test_every_access_is_one_dimensional(stage3_spmm):
    _, lowered = stage3_spmm
    for load in collect_buffer_loads(lowered.body):
        assert isinstance(load.buffer, FlatBuffer)
        assert len(load.indices) == 1
    for store in collect_buffer_stores(lowered.body):
        assert isinstance(store.buffer, FlatBuffer)
        assert len(store.indices) == 1


def test_flat_buffer_sizes_match_sparse_buffers(stage3_spmm):
    csr, lowered = stage3_spmm
    flat = {fb.name: fb for fb in lowered.flat_buffers}
    assert flat["A"].size == csr.nnz
    assert flat["C"].size == csr.rows * 4
    assert flat["B"].size == csr.cols * 4
    assert flat["J_indptr"].size == csr.rows + 1
    assert flat["J_indices"].size == csr.nnz


def test_dense_output_flattening_matches_figure10(stage3_spmm):
    """C[i, k] must flatten to C[i * feat_size + k]."""
    _, lowered = stage3_spmm
    stores = [s for s in collect_buffer_stores(lowered.body) if s.buffer.name == "C"]
    assert stores
    assert "* 4" in repr(stores[0].indices[0]) or "*4" in repr(stores[0].indices[0])


def test_csr_value_flattening_uses_indptr(stage3_spmm):
    """A[i, j] must flatten to A[J_indptr[i] + j]."""
    _, lowered = stage3_spmm
    loads = [l for l in collect_buffer_loads(lowered.body) if l.buffer.name == "A"]
    assert loads
    assert "J_indptr" in repr(loads[0].indices[0])


def test_lowering_requires_stage2(stage3_spmm, small_csr, rng):
    _, lowered = stage3_spmm
    with pytest.raises(ValueError):
        lower_sparse_buffers(lowered)
    func = build_spmm_program(small_csr, 4, rng.standard_normal((small_csr.cols, 4)).astype(np.float32))
    with pytest.raises(ValueError):
        lower_sparse_buffers(func)


def test_bsr_flattening_offsets():
    """Flat offset of a BSR buffer follows ((indptr[io]+jo)*b + ii)*b + ji."""
    from repro.core.axes import dense_fixed, sparse_variable
    from repro.core.buffers import SparseBuffer
    from repro.core.expr import IntImm
    from repro.core.program import PrimFunc, STAGE_POSITION
    from repro.core.stage3.buffer_lowering import _Flattener

    io = dense_fixed("IO", 2)
    jo = sparse_variable("JO", io, 4, 3, indptr=np.array([0, 1, 3]), indices=np.array([2, 0, 3]))
    ii = dense_fixed("II", 2)
    ji = dense_fixed("JI", 2)
    buf = SparseBuffer("Absr", [io, jo, ii, ji])
    func = PrimFunc("f", [io, jo, ii, ji], [buf], body=None, stage=STAGE_POSITION)
    flattener = _Flattener(func)
    offset = flattener.flatten_access(buf, [IntImm(1), IntImm(1), IntImm(1), IntImm(0)])
    # indptr[1] = 1, +1 -> block 2; (2 * 2 + 1) * 2 + 0 = 10
    text = repr(offset)
    assert "JO_indptr" in text


def test_batched_prefix_flattening_offsets():
    """A dense batch axis before a CSR pair scales by the segment size:
    S[h, i, j] -> h * nnz + J_indptr[i] + j (the batched attention layout)."""
    from repro.core.axes import dense_fixed, sparse_variable
    from repro.core.buffers import SparseBuffer
    from repro.core.expr import IntImm
    from repro.core.program import PrimFunc, STAGE_POSITION
    from repro.core.stage3.buffer_lowering import _Flattener

    h = dense_fixed("H", 3)
    i = dense_fixed("I", 2)
    j = sparse_variable("J", i, 4, 3, indptr=np.array([0, 1, 3]), indices=np.array([2, 0, 3]))
    buf = SparseBuffer("S", [h, i, j])
    assert buf.flat_size() == 3 * 3  # heads x nnz
    func = PrimFunc("f", [h, i, j], [buf], body=None, stage=STAGE_POSITION)
    flattener = _Flattener(func)
    offset = flattener.flatten_access(buf, [IntImm(2), IntImm(1), IntImm(1)])
    # h=2 heads of nnz=3 slots fold to the constant prefix 6.
    assert repr(offset) == "(6 + (J_indptr[1] + 1))"


def test_axis_between_parent_and_variable_child_is_rejected():
    """S[I, K, J] with J.parent == I has no flattening rule; the lowering
    must refuse instead of computing colliding offsets."""
    from repro.core.axes import dense_fixed, sparse_variable
    from repro.core.buffers import SparseBuffer
    from repro.core.expr import IntImm
    from repro.core.program import PrimFunc, STAGE_POSITION
    from repro.core.stage3.buffer_lowering import _Flattener

    i = dense_fixed("I", 2)
    k = dense_fixed("K", 2)
    j = sparse_variable("J", i, 4, 3, indptr=np.array([0, 1, 3]), indices=np.array([2, 0, 3]))
    buf = SparseBuffer("S", [i, k, j])
    func = PrimFunc("f", [i, k, j], [buf], body=None, stage=STAGE_POSITION)
    flattener = _Flattener(func)
    with pytest.raises(ValueError, match="between"):
        flattener.flatten_access(buf, [IntImm(1), IntImm(1), IntImm(1)])
