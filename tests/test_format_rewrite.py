"""Unit tests for format decomposition (FormatRewriteRule / decompose_format)."""

import numpy as np
import pytest

from repro.core import build, decompose_format
from repro.core.stage1.format_rewrite import FormatRewriteRule
from repro.formats import BSRMatrix, CSRMatrix, ELLMatrix
from repro.formats.conversion import bsr_rewrite_rule, ell_rewrite_rule, split_csr_for_composition
from repro.ops.spmm import build_spmm_program, spmm_reference


@pytest.fixture
def block_plus_scatter_matrix(rng):
    dense = np.zeros((16, 16), dtype=np.float32)
    dense[:4, :8] = rng.random((4, 8))                 # block-friendly region
    scattered = rng.random((12, 16)) < 0.1
    dense[4:, :] = scattered * rng.random((12, 16))    # light remainder
    return CSRMatrix.from_dense(dense)


def test_ell_conversion_preserves_spmm(block_plus_scatter_matrix, rng):
    csr = block_plus_scatter_matrix
    feat = 4
    features = rng.standard_normal((csr.cols, feat)).astype(np.float32)
    program = build_spmm_program(csr, feat, features)
    ell = ELLMatrix.from_csr(csr)
    converted = decompose_format(program, [ell_rewrite_rule(ell)])
    out = build(converted).run()
    reference = spmm_reference(csr, features)
    assert np.allclose(out["C"].reshape(reference.shape), reference, atol=1e-4)


def test_bsr_conversion_preserves_spmm(block_plus_scatter_matrix, rng):
    csr = block_plus_scatter_matrix
    feat = 4
    features = rng.standard_normal((csr.cols, feat)).astype(np.float32)
    program = build_spmm_program(csr, feat, features)
    bsr = BSRMatrix.from_csr(csr, 4)
    converted = decompose_format(program, [bsr_rewrite_rule(bsr)])
    out = build(converted).run()
    reference = spmm_reference(csr, features)
    assert np.allclose(out["C"].reshape(reference.shape), reference, atol=1e-4)


def test_bsr_plus_ell_decomposition_matches_figure5(block_plus_scatter_matrix, rng):
    csr = block_plus_scatter_matrix
    feat = 3
    features = rng.standard_normal((csr.cols, feat)).astype(np.float32)
    bsr, ell, _, _ = split_csr_for_composition(csr, block_size=4, ell_width=4)
    program = build_spmm_program(csr, feat, features)
    decomposed = decompose_format(program, [bsr_rewrite_rule(bsr), ell_rewrite_rule(ell)])

    # Structure: 2 copy iterations + 2 compute iterations, original removed.
    names = [it.name for it in decomposed.sparse_iterations()]
    assert sum(name.startswith("copy_") for name in names) == 2
    assert sum(name.startswith("spmm_") for name in names) == 2
    assert "spmm" not in names

    out = build(decomposed).run()
    reference = spmm_reference(csr, features)
    assert np.allclose(out["C"].reshape(reference.shape), reference, atol=1e-4)


def test_decompose_format_records_attr(block_plus_scatter_matrix, rng):
    csr = block_plus_scatter_matrix
    program = build_spmm_program(csr, 2, np.zeros((csr.cols, 2), dtype=np.float32))
    ell = ELLMatrix.from_csr(csr)
    converted = decompose_format(program, [ell_rewrite_rule(ell)])
    assert converted.attrs["composable_formats"] == [f"ell_{ell.nnz_cols}"]


def test_decompose_format_requires_matching_buffer(block_plus_scatter_matrix):
    csr = block_plus_scatter_matrix
    program = build_spmm_program(csr, 2, np.zeros((csr.cols, 2), dtype=np.float32))
    ell = ELLMatrix.from_csr(csr)
    rule = ell_rewrite_rule(ell, buffer_name="B")  # B is dense, never rewritten
    with pytest.raises(KeyError):
        decompose_format(program, [ell_rewrite_rule(ell, buffer_name="ZZZ")])
    # B exists but no sparse iteration is removed because the rewrite of B is
    # not what the rule's axis mapping describes; mixing buffers across rules
    # is rejected explicitly:
    with pytest.raises(ValueError):
        decompose_format(program, [ell_rewrite_rule(ell, buffer_name="A"), rule])


def test_decompose_format_rejects_empty_rules(block_plus_scatter_matrix):
    program = build_spmm_program(block_plus_scatter_matrix, 2,
                                 np.zeros((block_plus_scatter_matrix.cols, 2), dtype=np.float32))
    with pytest.raises(ValueError):
        decompose_format(program, [])


def test_decompose_format_requires_stage1(block_plus_scatter_matrix):
    from repro.core import lower_sparse_iterations

    csr = block_plus_scatter_matrix
    program = build_spmm_program(csr, 2, np.zeros((csr.cols, 2), dtype=np.float32))
    ell = ELLMatrix.from_csr(csr)
    with pytest.raises(ValueError):
        decompose_format(lower_sparse_iterations(program), [ell_rewrite_rule(ell)])


def test_include_copy_false_skips_copy_iterations(block_plus_scatter_matrix, rng):
    csr = block_plus_scatter_matrix
    ell = ELLMatrix.from_csr(csr)
    program = build_spmm_program(csr, 2, rng.standard_normal((csr.cols, 2)).astype(np.float32))
    converted = decompose_format(program, [ell_rewrite_rule(ell)], include_copy=False)
    names = [it.name for it in converted.sparse_iterations()]
    assert not any(name.startswith("copy_") for name in names)


def test_format_rewrite_rule_validation(block_plus_scatter_matrix):
    ell = ELLMatrix.from_csr(block_plus_scatter_matrix)
    i_axis, j_axis = ell.to_axes()
    with pytest.raises(ValueError):
        FormatRewriteRule(
            "bad", [i_axis, j_axis], "A", ["I", "J"],
            {"I": [i_axis.name], "Z": [j_axis.name]},
            lambda i, j: (i, j), lambda i, j: (i, j),
        )
    with pytest.raises(ValueError):
        FormatRewriteRule(
            "bad", [i_axis, j_axis], "A", ["I", "J"],
            {"I": ["missing"], "J": [j_axis.name]},
            lambda i, j: (i, j), lambda i, j: (i, j),
        )
    with pytest.raises(ValueError):
        FormatRewriteRule(
            "bad", [i_axis, j_axis], "A", ["I", "J"],
            {"I": [i_axis.name], "J": [i_axis.name]},
            lambda i, j: (i, j), lambda i, j: (i, j),
        )
