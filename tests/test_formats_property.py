"""Property-based tests of format conversions (hypothesis).

Invariant: converting a matrix to any format and back to dense preserves the
values exactly, and the padding/occupancy statistics respect their bounds.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.formats import (
    BSRMatrix,
    COOMatrix,
    CSCMatrix,
    CSRMatrix,
    DBSRMatrix,
    ELLMatrix,
    HybFormat,
    SRBCRSMatrix,
)


# Long-running hypothesis suites: CI's fast lane skips them, the nightly
# lane (and the local default) runs everything.
pytestmark = pytest.mark.slow

_SETTINGS = settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])


@st.composite
def dense_matrices(draw, max_dim=24):
    rows = draw(st.integers(min_value=1, max_value=max_dim))
    cols = draw(st.integers(min_value=1, max_value=max_dim))
    density = draw(st.floats(min_value=0.0, max_value=0.5))
    seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    rng = np.random.default_rng(seed)
    dense = (rng.random((rows, cols)) < density) * (rng.random((rows, cols)) + 0.1)
    return dense.astype(np.float32)


@given(dense=dense_matrices())
@_SETTINGS
def test_csr_csc_coo_round_trip(dense):
    csr = CSRMatrix.from_dense(dense)
    assert np.allclose(csr.to_dense(), dense)
    assert np.allclose(CSCMatrix.from_csr(csr).to_dense(), dense)
    assert np.allclose(COOMatrix.from_csr(csr).to_dense(), dense)
    assert csr.nnz == int(np.count_nonzero(dense))


@given(dense=dense_matrices())
@_SETTINGS
def test_ell_round_trip_and_padding_bounds(dense):
    csr = CSRMatrix.from_dense(dense)
    ell = ELLMatrix.from_csr(csr)
    assert np.allclose(ell.to_dense(), dense)
    assert 0.0 <= ell.padding_ratio <= 1.0
    assert ell.nnz == csr.nnz


@given(dense=dense_matrices(), block=st.sampled_from([2, 4]))
@_SETTINGS
def test_bsr_and_dbsr_round_trip(dense, block):
    csr = CSRMatrix.from_dense(dense)
    bsr = BSRMatrix.from_csr(csr, block)
    assert np.allclose(bsr.to_dense()[: dense.shape[0], : dense.shape[1]], dense)
    dbsr = DBSRMatrix.from_bsr(bsr)
    assert np.allclose(dbsr.to_dense()[: dense.shape[0], : dense.shape[1]], dense)
    assert dbsr.num_blocks == bsr.num_blocks


@given(
    dense=dense_matrices(),
    parts=st.integers(min_value=1, max_value=4),
    buckets=st.integers(min_value=1, max_value=4),
)
@_SETTINGS
def test_hyb_round_trip_and_padding(dense, parts, buckets):
    csr = CSRMatrix.from_dense(dense)
    hyb = HybFormat.from_csr(csr, num_col_parts=parts, num_buckets=buckets)
    assert np.allclose(hyb.to_dense(), dense, atol=1e-6)
    assert hyb.nnz == csr.nnz
    assert 0.0 <= hyb.padding_ratio < 1.0 or hyb.stored == 0


@given(dense=dense_matrices(), tile=st.sampled_from([2, 4, 8]), group=st.sampled_from([2, 4]))
@_SETTINGS
def test_srbcrs_round_trip(dense, tile, group):
    csr = CSRMatrix.from_dense(dense)
    sr = SRBCRSMatrix(csr, tile, group)
    assert np.allclose(sr.to_dense(), dense)
    if sr.nnz_stored:
        assert sr.nnz == csr.nnz
