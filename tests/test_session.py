"""Unit tests for the compile-once/run-many Session API."""

import numpy as np
import pytest

from repro.core.script import ProgramBuilder
from repro.formats import CSRMatrix
from repro.formats.bsr import BSRMatrix
from repro.ops import batched as batched_ops
from repro.ops import pruned_spmm as pruned_ops
from repro.ops import rgms as rgms_ops
from repro.ops import sddmm as sddmm_ops
from repro.ops import sparse_conv as conv_ops
from repro.ops import spmm as spmm_ops
from repro.runtime import Session, get_default_session
from repro.workloads.attention import band_mask
from repro.workloads.hetero_graphs import generate_relational_adjacency
from repro.workloads.pointcloud import PointCloudConfig, sparse_conv_problem


@pytest.fixture
def csr():
    return CSRMatrix.random(rows=18, cols=13, density=0.25, seed=3)


class TestSessionOps:
    def test_spmm_csr(self, csr, rng):
        x = rng.standard_normal((csr.cols, 5)).astype(np.float32)
        session = Session()
        out = session.spmm(csr, x)
        assert out.shape == (csr.rows, 5)
        assert np.allclose(out, spmm_ops.spmm_reference(csr, x), atol=1e-4)
        assert session.stats.fast_runs == 1

    def test_spmm_hyb(self, csr, rng):
        x = rng.standard_normal((csr.cols, 5)).astype(np.float32)
        session = Session()
        out = session.spmm(csr, x, format="hyb", num_col_parts=2)
        assert np.allclose(out, spmm_ops.spmm_reference(csr, x), atol=1e-4)
        assert session.stats.format_cache_misses == 1
        session.spmm(csr, x, format="hyb", num_col_parts=2)
        assert session.stats.format_cache_hits == 1
        assert session.stats.kernel_cache_hits == 1

    def test_spmm_unknown_format(self, csr, rng):
        with pytest.raises(ValueError):
            Session().spmm(csr, rng.standard_normal((csr.cols, 2)), format="coo")

    def test_sddmm(self, csr, rng):
        x = rng.standard_normal((csr.rows, 4)).astype(np.float32)
        y = rng.standard_normal((4, csr.cols)).astype(np.float32)
        out = Session().sddmm(csr, x, y)
        assert out.shape == (csr.nnz,)
        assert np.allclose(out, sddmm_ops.sddmm_reference(csr, x, y), atol=1e-4)

    def test_pruned_spmm(self, rng):
        dense = (rng.random((12, 20)) < 0.3).astype(np.float32) * rng.standard_normal(
            (12, 20)
        ).astype(np.float32)
        bsr = BSRMatrix.from_dense(dense, 4)
        x = rng.standard_normal((bsr.shape[1], 3)).astype(np.float32)
        out = Session().pruned_spmm(bsr, x)
        assert np.allclose(out, pruned_ops.pruned_spmm_reference(bsr, x), atol=1e-4)


class TestBatchedAttentionOps:
    @pytest.fixture(scope="class")
    def mask(self):
        return band_mask(seq_len=32, band_size=8, block_size=4)

    def test_batched_spmm_csr_bit_exact_and_vectorized(self, mask, rng):
        feats = rng.standard_normal((3, mask.cols, 5)).astype(np.float32)
        session = Session()
        out = session.batched_spmm(mask, feats)
        assert out.shape == (3, mask.rows, 5)
        assert np.array_equal(out, batched_ops.batched_spmm_reference(mask, feats))
        assert session.stats.fast_runs == 1
        assert session.stats.interpreted_runs == 0

    def test_batched_spmm_bsr_bit_exact(self, mask, rng):
        feats = rng.standard_normal((2, mask.cols, 4)).astype(np.float32)
        session = Session()
        out = session.batched_spmm(mask, feats, format="bsr", block_size=4)
        assert np.array_equal(out, batched_ops.batched_spmm_reference(mask, feats))
        assert session.stats.fast_runs == 1

    def test_batched_spmm_rejects_bad_inputs(self, mask, rng):
        session = Session()
        with pytest.raises(ValueError):
            session.batched_spmm(mask, rng.standard_normal((mask.cols, 4)))
        with pytest.raises(ValueError):
            session.batched_spmm(mask, rng.standard_normal((2, mask.cols + 1, 4)))
        with pytest.raises(ValueError):
            session.batched_spmm(
                mask, rng.standard_normal((2, mask.cols, 4)), format="ell"
            )

    def test_batched_sddmm_csr(self, mask, rng):
        q = rng.standard_normal((2, mask.rows, 4)).astype(np.float32)
        k = rng.standard_normal((2, 4, mask.cols)).astype(np.float32)
        session = Session()
        out = session.batched_sddmm(mask, q, k)
        ref = batched_ops.batched_sddmm_reference(mask, q, k)
        assert out.shape == (2, mask.nnz)
        assert np.allclose(out, ref, atol=1e-5)
        assert session.stats.fast_runs == 1

    def test_batched_sddmm_bsr_matches_csr_order(self, mask, rng):
        q = rng.standard_normal((2, mask.rows, 4)).astype(np.float32)
        k = rng.standard_normal((2, 4, mask.cols)).astype(np.float32)
        out = Session().batched_sddmm(mask, q, k, format="bsr", block_size=4)
        ref = batched_ops.batched_sddmm_reference(mask, q, k)
        assert np.allclose(out, ref, atol=1e-5)

    def test_batched_sddmm_scale_runs_vectorized(self, mask, rng):
        q = rng.standard_normal((2, mask.rows, 4)).astype(np.float32)
        k = rng.standard_normal((2, 4, mask.cols)).astype(np.float32)
        session = Session()
        scaled = session.batched_sddmm(mask, q, k, scale=0.5)
        plain = session.batched_sddmm(mask, q, k)
        assert np.allclose(scaled, 0.5 * plain, atol=1e-6)
        # The in-kernel rescaling nest must not force an interpreter fallback.
        assert session.stats.interpreted_runs == 0

    def test_batched_sddmm_bsr_requires_block_alignment(self, rng):
        csr = CSRMatrix.random(rows=16, cols=16, density=0.2, seed=7)
        with pytest.raises(ValueError):
            Session().batched_sddmm(
                csr,
                rng.standard_normal((1, 16, 2)).astype(np.float32),
                rng.standard_normal((1, 2, 16)).astype(np.float32),
                format="bsr",
                block_size=4,
            )

    def test_engines_agree_bit_exactly(self, mask, rng):
        q = rng.standard_normal((2, mask.rows, 3)).astype(np.float32)
        k = rng.standard_normal((2, 3, mask.cols)).astype(np.float32)
        fast = Session(engine="vectorized").batched_sddmm(mask, q, k)
        slow = Session(engine="interpret").batched_sddmm(mask, q, k)
        assert np.array_equal(fast, slow)

    def test_repeated_calls_hit_caches(self, mask, rng):
        session = Session()
        for step in range(3):
            feats = rng.standard_normal((2, mask.cols, 4)).astype(np.float32)
            session.batched_spmm(mask, feats, format="bsr", block_size=4)
        assert session.stats.kernel_cache_misses == 1
        assert session.stats.kernel_cache_hits == 2
        assert session.stats.format_cache_misses == 1
        assert session.stats.format_cache_hits == 2

    def test_module_level_entry_points(self, mask, rng):
        feats = rng.standard_normal((2, mask.cols, 3)).astype(np.float32)
        out = batched_ops.batched_spmm(mask, feats)
        assert np.array_equal(out, batched_ops.batched_spmm_reference(mask, feats))
        q = rng.standard_normal((2, mask.rows, 3)).astype(np.float32)
        k = rng.standard_normal((2, 3, mask.cols)).astype(np.float32)
        out = batched_ops.batched_sddmm(mask, q, k)
        assert np.allclose(
            out, batched_ops.batched_sddmm_reference(mask, q, k), atol=1e-5
        )


class TestRGMSAndSparseConvOps:
    @pytest.fixture(scope="class")
    def adjacency(self):
        return generate_relational_adjacency(
            num_nodes=48, num_edges=300, num_relations=5, seed=4
        )

    @pytest.fixture(scope="class")
    def conv_problem(self):
        return sparse_conv_problem(
            6, 7, PointCloudConfig(num_points=300, voxel_size=1.0, seed=5)
        )

    def test_rgms_matches_reference(self, adjacency, rng):
        x = rng.standard_normal((48, 6)).astype(np.float32)
        w = rng.standard_normal((5, 6, 4)).astype(np.float32)
        session = Session()
        out = session.rgms(adjacency, x, w)
        assert out.shape == (48, 4)
        assert np.allclose(out, rgms_ops.rgms_reference(adjacency, x, w), atol=1e-4)
        assert session.stats.fast_runs == 1

    def test_rgms_engines_agree_bit_exactly(self, adjacency, rng):
        x = rng.standard_normal((48, 6)).astype(np.float32)
        w = rng.standard_normal((5, 6, 4)).astype(np.float32)
        fast = Session(engine="vectorized").rgms(adjacency, x, w)
        slow = Session(engine="interpret").rgms(adjacency, x, w)
        assert np.array_equal(fast, slow)

    def test_rgms_repeated_calls_hit_kernel_cache(self, adjacency, rng):
        session = Session()
        w = rng.standard_normal((5, 6, 4)).astype(np.float32)
        for _ in range(2):
            session.rgms(adjacency, rng.standard_normal((48, 6)).astype(np.float32), w)
        assert session.stats.kernel_cache_misses == 1
        assert session.stats.kernel_cache_hits == 1

    def test_rgms_validates_shapes(self, adjacency, rng):
        with pytest.raises(ValueError):
            Session().rgms(adjacency, rng.standard_normal(48), rng.standard_normal((5, 6, 4)))
        with pytest.raises(ValueError):
            Session().rgms(
                adjacency, rng.standard_normal((48, 6)), rng.standard_normal((3, 6, 4))
            )

    def test_sparse_conv_matches_reference(self, conv_problem, rng):
        feats = rng.standard_normal(
            (conv_problem.num_in_points, conv_problem.in_channels)
        ).astype(np.float32)
        weights = rng.standard_normal(
            (conv_problem.kernel_volume, conv_problem.in_channels, conv_problem.out_channels)
        ).astype(np.float32)
        session = Session()
        out = session.sparse_conv(conv_problem, feats, weights)
        ref = conv_ops.sparse_conv_reference(conv_problem, feats, weights)
        assert out.shape == ref.shape
        assert np.allclose(out, ref, atol=1e-4)
        assert session.stats.fast_runs == 1

    def test_sparse_conv_engines_agree_bit_exactly(self, conv_problem, rng):
        feats = rng.standard_normal(
            (conv_problem.num_in_points, conv_problem.in_channels)
        ).astype(np.float32)
        weights = rng.standard_normal(
            (conv_problem.kernel_volume, conv_problem.in_channels, conv_problem.out_channels)
        ).astype(np.float32)
        fast = Session(engine="vectorized").sparse_conv(conv_problem, feats, weights)
        slow = Session(engine="interpret").sparse_conv(conv_problem, feats, weights)
        assert np.array_equal(fast, slow)

    def test_sparse_conv_repeated_calls_hit_kernel_cache(self, conv_problem, rng):
        session = Session()
        weights = rng.standard_normal(
            (conv_problem.kernel_volume, conv_problem.in_channels, conv_problem.out_channels)
        ).astype(np.float32)
        for _ in range(2):
            feats = rng.standard_normal(
                (conv_problem.num_in_points, conv_problem.in_channels)
            ).astype(np.float32)
            session.sparse_conv(conv_problem, feats, weights)
        assert session.stats.kernel_cache_misses == 1
        assert session.stats.kernel_cache_hits == 1

    def test_module_level_entry_points(self, adjacency, conv_problem, rng):
        x = rng.standard_normal((48, 6)).astype(np.float32)
        w = rng.standard_normal((5, 6, 4)).astype(np.float32)
        assert np.allclose(
            rgms_ops.rgms(adjacency, x, w),
            rgms_ops.rgms_reference(adjacency, x, w),
            atol=1e-4,
        )
        feats = rng.standard_normal(
            (conv_problem.num_in_points, conv_problem.in_channels)
        ).astype(np.float32)
        weights = rng.standard_normal(
            (conv_problem.kernel_volume, conv_problem.in_channels, conv_problem.out_channels)
        ).astype(np.float32)
        assert np.allclose(
            conv_ops.sparse_conv(conv_problem, feats, weights),
            conv_ops.sparse_conv_reference(conv_problem, feats, weights),
            atol=1e-4,
        )


class TestVectorizedFallback:
    def _unsafe_batched_program(self, csr, heads, feat, features):
        """A batched program the safety analysis must reject: the second
        store reads the first store's buffer at a shifted index, so batching
        could observe a different interleaving than serial execution."""
        builder = ProgramBuilder("unsafe_batched")
        h_axis = builder.dense_fixed("H", heads)
        i_axis = builder.dense_fixed("I", csr.rows)
        j_axis = builder.sparse_variable(
            "J", parent=i_axis, length=csr.cols, nnz=csr.nnz,
            indptr=csr.indptr, indices=csr.indices,
        )
        j_dense = builder.dense_fixed("J_", csr.cols)
        k_axis = builder.dense_fixed("K", feat)
        a_buf = builder.match_sparse_buffer("A", [i_axis, j_axis], data=csr.data)
        b_buf = builder.match_sparse_buffer(
            "B", [h_axis, j_dense, k_axis], data=features.reshape(-1)
        )
        c_buf = builder.match_sparse_buffer("C", [h_axis, i_axis, k_axis])
        d_buf = builder.match_sparse_buffer("D", [h_axis, i_axis, k_axis])
        with builder.sp_iter(
            [h_axis, i_axis, j_axis, k_axis], "SSRS", "unsafe"
        ) as (h, i, j, k):
            builder.init(c_buf[h, i, k], 0.0)
            builder.compute(c_buf[h, i, k], c_buf[h, i, k] + a_buf[i, j] * b_buf[h, j, k])
            builder.compute(d_buf[h, i, k], c_buf[h, i, k + 1])
        return builder.finish()

    def test_rejected_batched_program_falls_back(self, rng):
        from repro.runtime.vectorized import UnsupportedProgram, VectorizedExecutor

        csr = CSRMatrix.random(rows=8, cols=8, density=0.3, seed=9)
        features = rng.standard_normal((2, 8, 3)).astype(np.float32)
        func = self._unsafe_batched_program(csr, 2, 3, features)

        session = Session()
        kernel = session.build(func)
        with pytest.raises(UnsupportedProgram):
            VectorizedExecutor(kernel.func)
        out = session.run_kernel(kernel)
        assert session.stats.interpreted_runs == 1
        assert session.stats.vectorized_runs == 0
        assert kernel.last_engine == "interpret"
        # The safe part of the program still computed the batched SpMM.
        expected = np.stack(
            [spmm_ops.spmm_reference(csr, features[h]) for h in range(2)]
        )
        assert np.allclose(out["C"].reshape(2, 8, 3), expected, atol=1e-5)


class TestCompileOnceRunMany:
    def test_repeated_op_calls_lower_once(self, csr, rng):
        session = Session()
        for _ in range(3):
            x = rng.standard_normal((csr.cols, 4)).astype(np.float32)
            session.spmm(csr, x)
        assert session.stats.builds == 3
        assert session.stats.kernel_cache_misses == 1
        assert session.stats.kernel_cache_hits == 2

    def test_engine_interpret(self, csr, rng):
        session = Session(engine="interpret")
        session.spmm(csr, rng.standard_normal((csr.cols, 2)).astype(np.float32))
        assert session.stats.interpreted_runs == 1
        assert session.stats.vectorized_runs == 0

    def test_engines_agree_through_session(self, csr, rng):
        x = rng.standard_normal((csr.cols, 4)).astype(np.float32)
        fast = Session(engine="vectorized").spmm(csr, x)
        slow = Session(engine="interpret").spmm(csr, x)
        assert np.array_equal(fast, slow)


class TestModuleLevelOps:
    def test_op_entry_points_share_default_session(self, csr, rng):
        x = rng.standard_normal((csr.cols, 3)).astype(np.float32)
        default = get_default_session()
        runs = default.stats.runs
        out = spmm_ops.spmm(csr, x)
        assert np.allclose(out, spmm_ops.spmm_reference(csr, x), atol=1e-4)
        assert get_default_session().stats.runs == runs + 1

    def test_sddmm_entry_point(self, csr, rng):
        x = rng.standard_normal((csr.rows, 3)).astype(np.float32)
        y = rng.standard_normal((3, csr.cols)).astype(np.float32)
        out = sddmm_ops.sddmm(csr, x, y)
        assert np.allclose(out, sddmm_ops.sddmm_reference(csr, x, y), atol=1e-4)

    def test_pruned_entry_point(self, rng):
        dense = (rng.random((8, 8)) < 0.4).astype(np.float32)
        bsr = BSRMatrix.from_dense(dense, 2)
        x = rng.standard_normal((8, 2)).astype(np.float32)
        out = pruned_ops.pruned_spmm(bsr, x)
        assert np.allclose(out, pruned_ops.pruned_spmm_reference(bsr, x), atol=1e-4)
