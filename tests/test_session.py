"""Unit tests for the compile-once/run-many Session API."""

import numpy as np
import pytest

from repro.formats import CSRMatrix
from repro.formats.bsr import BSRMatrix
from repro.ops import pruned_spmm as pruned_ops
from repro.ops import sddmm as sddmm_ops
from repro.ops import spmm as spmm_ops
from repro.runtime import Session, get_default_session


@pytest.fixture
def csr():
    return CSRMatrix.random(rows=18, cols=13, density=0.25, seed=3)


class TestSessionOps:
    def test_spmm_csr(self, csr, rng):
        x = rng.standard_normal((csr.cols, 5)).astype(np.float32)
        session = Session()
        out = session.spmm(csr, x)
        assert out.shape == (csr.rows, 5)
        assert np.allclose(out, spmm_ops.spmm_reference(csr, x), atol=1e-4)
        assert session.stats.vectorized_runs == 1

    def test_spmm_hyb(self, csr, rng):
        x = rng.standard_normal((csr.cols, 5)).astype(np.float32)
        session = Session()
        out = session.spmm(csr, x, format="hyb", num_col_parts=2)
        assert np.allclose(out, spmm_ops.spmm_reference(csr, x), atol=1e-4)
        assert session.stats.format_cache_misses == 1
        session.spmm(csr, x, format="hyb", num_col_parts=2)
        assert session.stats.format_cache_hits == 1
        assert session.stats.kernel_cache_hits == 1

    def test_spmm_unknown_format(self, csr, rng):
        with pytest.raises(ValueError):
            Session().spmm(csr, rng.standard_normal((csr.cols, 2)), format="coo")

    def test_sddmm(self, csr, rng):
        x = rng.standard_normal((csr.rows, 4)).astype(np.float32)
        y = rng.standard_normal((4, csr.cols)).astype(np.float32)
        out = Session().sddmm(csr, x, y)
        assert out.shape == (csr.nnz,)
        assert np.allclose(out, sddmm_ops.sddmm_reference(csr, x, y), atol=1e-4)

    def test_pruned_spmm(self, rng):
        dense = (rng.random((12, 20)) < 0.3).astype(np.float32) * rng.standard_normal(
            (12, 20)
        ).astype(np.float32)
        bsr = BSRMatrix.from_dense(dense, 4)
        x = rng.standard_normal((bsr.shape[1], 3)).astype(np.float32)
        out = Session().pruned_spmm(bsr, x)
        assert np.allclose(out, pruned_ops.pruned_spmm_reference(bsr, x), atol=1e-4)


class TestCompileOnceRunMany:
    def test_repeated_op_calls_lower_once(self, csr, rng):
        session = Session()
        for _ in range(3):
            x = rng.standard_normal((csr.cols, 4)).astype(np.float32)
            session.spmm(csr, x)
        assert session.stats.builds == 3
        assert session.stats.kernel_cache_misses == 1
        assert session.stats.kernel_cache_hits == 2

    def test_engine_interpret(self, csr, rng):
        session = Session(engine="interpret")
        session.spmm(csr, rng.standard_normal((csr.cols, 2)).astype(np.float32))
        assert session.stats.interpreted_runs == 1
        assert session.stats.vectorized_runs == 0

    def test_engines_agree_through_session(self, csr, rng):
        x = rng.standard_normal((csr.cols, 4)).astype(np.float32)
        fast = Session(engine="vectorized").spmm(csr, x)
        slow = Session(engine="interpret").spmm(csr, x)
        assert np.array_equal(fast, slow)


class TestModuleLevelOps:
    def test_op_entry_points_share_default_session(self, csr, rng):
        x = rng.standard_normal((csr.cols, 3)).astype(np.float32)
        default = get_default_session()
        runs = default.stats.runs
        out = spmm_ops.spmm(csr, x)
        assert np.allclose(out, spmm_ops.spmm_reference(csr, x), atol=1e-4)
        assert get_default_session().stats.runs == runs + 1

    def test_sddmm_entry_point(self, csr, rng):
        x = rng.standard_normal((csr.rows, 3)).astype(np.float32)
        y = rng.standard_normal((3, csr.cols)).astype(np.float32)
        out = sddmm_ops.sddmm(csr, x, y)
        assert np.allclose(out, sddmm_ops.sddmm_reference(csr, x, y), atol=1e-4)

    def test_pruned_entry_point(self, rng):
        dense = (rng.random((8, 8)) < 0.4).astype(np.float32)
        bsr = BSRMatrix.from_dense(dense, 2)
        x = rng.standard_normal((8, 2)).astype(np.float32)
        out = pruned_ops.pruned_spmm(bsr, x)
        assert np.allclose(out, pruned_ops.pruned_spmm_reference(bsr, x), atol=1e-4)
