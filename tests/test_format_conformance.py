"""Property-based conformance suite for the format zoo.

Every conversion path registered in :mod:`repro.formats.conversion` must be a
semantic no-op: ``roundtrip_dense(csr, target, **params)`` equals
``csr.to_dense()`` exactly (same values, same shape) for *any* input —
random sparsity, empty matrices, empty rows/columns, single elements and
duplicate-coordinate COO sources.  This is the invariant that makes the
paper's decomposed computations equal the original, so it is enforced with
hypothesis across the whole zoo rather than with per-format examples.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import (
    COOMatrix,
    CSRMatrix,
    conversion_targets,
    convert,
    roundtrip_dense,
)

ALL_TARGETS = conversion_targets()

#: Format parameters worth sweeping per target (beyond the defaults).
PARAM_VARIANTS = {
    "bsr": [{"block_size": 1}, {"block_size": 2}, {"block_size": 3}],
    "dbsr": [{"block_size": 1}, {"block_size": 2}, {"block_size": 3}],
    "ell": [{}, {"nnz_cols": None}],
    "hyb": [
        {},
        {"num_col_parts": 2, "num_buckets": 2},
        {"num_col_parts": 3, "num_buckets": 1},
    ],
    "srbcrs": [{"tile_rows": 1, "group_size": 1}, {"tile_rows": 2, "group_size": 3}],
}


@st.composite
def csr_matrices(draw):
    """Random small CSR matrices, biased toward structural edge cases."""
    rows = draw(st.integers(min_value=1, max_value=12))
    cols = draw(st.integers(min_value=1, max_value=12))
    density = draw(st.sampled_from([0.0, 0.05, 0.2, 0.5, 0.9]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    dense = (rng.random((rows, cols)) < density) * rng.standard_normal((rows, cols))
    dense = dense.astype(np.float32)
    # Force at least one empty row/column whenever the shape allows it.
    if rows > 1 and draw(st.booleans()):
        dense[draw(st.integers(0, rows - 1))] = 0.0
    if cols > 1 and draw(st.booleans()):
        dense[:, draw(st.integers(0, cols - 1))] = 0.0
    return CSRMatrix.from_dense(dense)


class TestRoundTripEquivalence:
    @pytest.mark.parametrize("target", ALL_TARGETS)
    @given(csr=csr_matrices())
    @settings(max_examples=25, deadline=None)
    def test_to_dense_roundtrip(self, target, csr):
        expected = csr.to_dense()
        for params in PARAM_VARIANTS.get(target, [{}]):
            produced = roundtrip_dense(csr, target, **params)
            assert produced.shape == expected.shape
            assert produced.dtype == expected.dtype
            np.testing.assert_array_equal(produced, expected, err_msg=f"{target} {params}")

    @pytest.mark.parametrize("target", ALL_TARGETS)
    def test_empty_matrix(self, target):
        csr = CSRMatrix.from_dense(np.zeros((6, 4), dtype=np.float32))
        assert csr.nnz == 0
        np.testing.assert_array_equal(
            roundtrip_dense(csr, target), np.zeros((6, 4), dtype=np.float32)
        )

    @pytest.mark.parametrize("target", ALL_TARGETS)
    def test_single_element(self, target):
        dense = np.zeros((5, 7), dtype=np.float32)
        dense[3, 2] = -2.5
        np.testing.assert_array_equal(
            roundtrip_dense(CSRMatrix.from_dense(dense), target), dense
        )

    @pytest.mark.parametrize("target", ALL_TARGETS)
    def test_empty_rows_preserved(self, target):
        """Rows/columns with no non-zeros survive every conversion path."""
        dense = np.zeros((8, 6), dtype=np.float32)
        dense[0, 0] = 1.0
        dense[7, 5] = 2.0  # everything between is empty
        np.testing.assert_array_equal(
            roundtrip_dense(CSRMatrix.from_dense(dense), target), dense
        )


@st.composite
def duplicate_coo(draw):
    """COO inputs with deliberately repeated coordinates."""
    rows = draw(st.integers(min_value=1, max_value=8))
    cols = draw(st.integers(min_value=1, max_value=8))
    count = draw(st.integers(min_value=0, max_value=24))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    r = rng.integers(0, rows, size=count)
    c = rng.integers(0, cols, size=count)
    if count >= 2:  # guarantee at least one duplicate pair
        r[1], c[1] = r[0], c[0]
    data = rng.standard_normal(count).astype(np.float32)
    return (rows, cols), r, c, data


class TestDuplicateCoordinateCOO:
    @given(sample=duplicate_coo())
    @settings(max_examples=40, deadline=None)
    def test_duplicates_accumulate(self, sample):
        """Duplicate coordinates sum — in COO's own to_dense and through CSR."""
        shape, r, c, data = sample
        coo = COOMatrix(shape, r, c, data)
        expected = np.zeros(shape, dtype=np.float64)
        np.add.at(expected, (r, c), data.astype(np.float64))
        expected = expected.astype(np.float32)
        np.testing.assert_allclose(coo.to_dense(), expected, atol=1e-5)
        csr = coo.to_csr()
        np.testing.assert_allclose(csr.to_dense(), expected, atol=1e-5)

    @given(sample=duplicate_coo())
    @settings(max_examples=15, deadline=None)
    def test_deduplicated_csr_roundtrips_everywhere(self, sample):
        """After CSR canonicalisation the whole zoo agrees on the values."""
        shape, r, c, data = sample
        csr = COOMatrix(shape, r, c, data).to_csr()
        expected = csr.to_dense()
        for target in ALL_TARGETS:
            np.testing.assert_allclose(
                roundtrip_dense(csr, target), expected, atol=1e-5, err_msg=target
            )


class TestRegistry:
    def test_targets_cover_the_zoo(self):
        assert set(ALL_TARGETS) == {
            "coo", "csr", "csc", "ell", "dia", "bsr", "csf", "hyb", "dbsr", "srbcrs",
        }

    def test_unknown_target_rejected(self, tiny_csr):
        with pytest.raises(ValueError, match="unknown conversion target"):
            convert(tiny_csr, "blocked-coo")

    def test_convert_returns_format_objects(self, tiny_csr):
        bsr = convert(tiny_csr, "bsr", block_size=2)
        assert bsr.block_size == 2
        csf = convert(tiny_csr, "csf")
        assert csf.shape == (1, tiny_csr.rows, tiny_csr.cols)
