"""Unit tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.workloads import attention, graphs, hetero_graphs, pointcloud, pruning


class TestGraphs:
    def test_table1_catalogue(self):
        names = graphs.available_graphs()
        assert set(names) == {
            "cora", "citeseer", "pubmed", "ppi", "ogbn-arxiv", "ogbn-proteins", "reddit",
        }
        for name in names:
            spec = graphs.GRAPH_SPECS[name]
            assert spec.nodes <= spec.paper_nodes
            assert 0 < spec.scale <= 1.0

    def test_generated_graph_matches_spec_sizes(self):
        graph = graphs.synthetic_graph("cora", seed=0)
        spec = graphs.GRAPH_SPECS["cora"]
        assert graph.num_nodes == spec.nodes
        assert abs(graph.num_edges - spec.edges) / spec.edges < 0.15

    def test_powerlaw_graph_has_hubs(self):
        csr = graphs.generate_adjacency(2000, 16000, "powerlaw", seed=1)
        lengths = csr.row_lengths()
        assert lengths.max() > 10 * lengths.mean()

    def test_centralized_graph_has_low_skew(self):
        csr = graphs.generate_adjacency(1000, 50000, "centralized", seed=1)
        lengths = csr.row_lengths()
        assert lengths.max() < 4 * lengths.mean()

    def test_generation_is_deterministic_per_seed(self):
        a = graphs.generate_adjacency(500, 3000, seed=7)
        b = graphs.generate_adjacency(500, 3000, seed=7)
        c = graphs.generate_adjacency(500, 3000, seed=8)
        assert np.array_equal(a.indices, b.indices)
        assert not np.array_equal(a.indices, c.indices)

    def test_unknown_name_and_bad_distribution(self):
        with pytest.raises(KeyError):
            graphs.synthetic_graph("imaginary-graph")
        with pytest.raises(ValueError):
            graphs.generate_adjacency(10, 20, "weird")

    def test_feature_matrix_shape(self):
        feats = graphs.feature_matrix(10, 4, seed=0)
        assert feats.shape == (10, 4) and feats.dtype == np.float32


class TestHeteroGraphs:
    def test_table2_catalogue(self):
        assert set(hetero_graphs.available_hetero_graphs()) == {
            "aifb", "mutag", "bgs", "ogbl-biokg", "am",
        }

    def test_generated_hetero_graph_statistics(self):
        graph = hetero_graphs.synthetic_hetero_graph("mutag", seed=0)
        spec = hetero_graphs.HETERO_SPECS["mutag"]
        assert graph.num_etypes == spec.num_etypes
        assert graph.num_nodes == spec.nodes
        assert abs(graph.num_edges - spec.edges) / spec.edges < 0.35

    def test_relation_sizes_are_skewed(self):
        graph = hetero_graphs.synthetic_hetero_graph("aifb", seed=0)
        sizes = graph.relation_sizes()
        assert sizes.max() > 5 * max(sizes.min(), 1)

    def test_unknown_hetero_graph(self):
        with pytest.raises(KeyError):
            hetero_graphs.synthetic_hetero_graph("nope")


class TestAttention:
    def test_band_mask_band_structure(self):
        mask = attention.band_mask(128, 32, 16)
        dense = mask.to_dense()
        assert dense[0, 0] == 1.0
        assert dense[0, 127] == 0.0
        # every query attends to itself and its block-aligned band
        assert (dense.sum(axis=1) > 0).all()

    def test_band_mask_block_aligned(self):
        mask = attention.band_mask(128, 32, 16)
        bsr = attention.mask_to_bsr(mask, 16)
        assert bsr.nnz_stored == mask.nnz  # blocks are fully dense

    def test_butterfly_mask_structure(self):
        mask = attention.butterfly_mask(128, 16)
        dense = mask.to_dense()
        assert np.all(np.diag(dense) == 1.0)
        assert dense[0, 16] == 1.0  # stride-1 block partner
        assert mask.nnz < 128 * 128  # actually sparse

    def test_masks_require_divisible_sequence(self):
        with pytest.raises(ValueError):
            attention.band_mask(100, 32, 16)
        with pytest.raises(ValueError):
            attention.butterfly_mask(100, 16)

    def test_attention_inputs_shapes(self):
        config = attention.AttentionConfig(seq_len=64, num_heads=2, head_dim=8)
        q, k, v = attention.attention_inputs(config, seed=1)
        assert q.shape == k.shape == v.shape == (2, 64, 8)


class TestPruning:
    def test_block_pruned_weight_structure(self):
        weight = pruning.block_pruned_weight(256, 256, 32, density=0.1, seed=0)
        assert abs(weight.density - 0.1) < 0.05
        from repro.formats import BSRMatrix

        bsr = BSRMatrix.from_csr(weight, 32)
        assert bsr.block_density > 0.9  # surviving blocks are dense

    def test_block_pruned_weight_has_empty_block_rows(self):
        weight = pruning.block_pruned_weight(256, 256, 32, density=0.05, seed=0)
        from repro.formats import DBSRMatrix

        dbsr = DBSRMatrix.from_csr(weight, 32)
        assert dbsr.empty_block_row_fraction > 0.2

    def test_unstructured_pruned_weight_density(self):
        weight = pruning.unstructured_pruned_weight(768, 768, density=0.06, seed=0)
        assert abs(weight.density - 0.06) < 0.02

    def test_pruned_bert_layers_cover_all_shapes(self):
        layers = pruning.pruned_bert_layers("block", density=0.125, block_size=32, seed=0)
        assert len(layers) == len(pruning.BERT_LAYER_SHAPES)
        shapes = {layer.weight.shape for layer in layers}
        assert (3072, 768) in shapes and (768, 3072) in shapes
        with pytest.raises(ValueError):
            pruning.pruned_bert_layers("other", 0.1)

    def test_density_sweep_grids(self):
        block = pruning.density_sweep("block")
        unstructured = pruning.density_sweep("unstructured")
        assert block[0] == pytest.approx(2 ** -7)
        assert len(block) == 7 and len(unstructured) == 5


class TestPointCloud:
    def test_voxelisation_unique(self):
        config = pointcloud.PointCloudConfig(num_points=500, voxel_size=0.5, seed=0)
        points = pointcloud.lidar_like_points(config)
        voxels = pointcloud.voxelize(points, config.voxel_size)
        assert len(np.unique(voxels, axis=0)) == len(voxels)
        assert len(voxels) <= 500

    def test_kernel_offsets_count(self):
        assert len(pointcloud.kernel_offsets(3, 3)) == 27
        assert (0, 0, 0) in pointcloud.kernel_offsets(3, 3)

    def test_kernel_maps_identity_offset(self):
        problem = pointcloud.sparse_conv_problem(
            4, 8, pointcloud.PointCloudConfig(num_points=300, voxel_size=1.0, seed=1)
        )
        sizes = problem.pairs_per_offset()
        assert sizes[len(sizes) // 2] == problem.num_in_points
        assert problem.kernel_volume == 27
        # neighbouring offsets connect fewer pairs than the identity
        assert sizes.max() == sizes[len(sizes) // 2]

    def test_channel_sweep_catalogue(self):
        assert (32, 32) in pointcloud.MINKOWSKINET_CHANNEL_SWEEP
