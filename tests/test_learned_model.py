"""The learned cost model: feature vectors and the ridge residual regression."""

import json

import numpy as np
import pytest

from repro.perf.device import RTX3070, V100
from repro.perf.learned import (
    FEATURE_NAMES,
    FEATURE_VERSION,
    RidgeCostModel,
    feature_list,
    workload_features,
)
from repro.perf.workload import BlockGroup, KernelWorkload


def make_workload(num_blocks=256, flops=1e5, read_bytes=1e4, **group_kwargs):
    group = BlockGroup(
        "g", num_blocks, 128, flops, read_bytes, 1e3, **group_kwargs
    )
    return KernelWorkload("w", [group], memory_footprint_bytes=1e6)


class TestFeatures:
    def test_shape_and_finiteness(self):
        vector = workload_features(make_workload(), V100)
        assert vector.shape == (len(FEATURE_NAMES),)
        assert vector.dtype == np.float64
        assert np.isfinite(vector).all()

    def test_deterministic(self):
        a = workload_features(make_workload(), V100)
        b = workload_features(make_workload(), V100)
        assert np.array_equal(a, b)

    def test_empty_workload_is_zero_vector(self):
        vector = workload_features(KernelWorkload("empty"), V100)
        assert np.array_equal(vector, np.zeros(len(FEATURE_NAMES)))

    def test_sensitive_to_work_and_flags(self):
        base = workload_features(make_workload(), V100)
        more_flops = workload_features(make_workload(flops=1e8), V100)
        tensor_core = workload_features(make_workload(uses_tensor_core=True), V100)
        assert not np.array_equal(base, more_flops)
        assert not np.array_equal(base, tensor_core)

    def test_device_changes_occupancy_feature(self):
        # Occupancy is the only device-dependent feature; the heavy-thread
        # group occupies V100 (2048 threads/SM) and RTX3070 (1536) differently.
        workload = KernelWorkload(
            "w", [BlockGroup("g", 64, 1024, 1e5, 1e4)], memory_footprint_bytes=1e6
        )
        v100 = workload_features(workload, V100)
        rtx = workload_features(workload, RTX3070)
        index = FEATURE_NAMES.index("mean_occupancy")
        assert v100[index] != rtx[index]

    def test_feature_list_json_round_trip(self):
        vector = workload_features(make_workload(), V100)
        as_list = feature_list(vector)
        assert all(isinstance(v, float) for v in as_list)
        assert np.array_equal(np.array(json.loads(json.dumps(as_list))), vector)


def synthetic_corpus(n=64, d=len(FEATURE_NAMES), seed=0, noise=0.0):
    """predicted/measured pairs whose residual is a known linear function."""
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, d))
    true_w = np.zeros(d)
    true_w[:4] = [0.5, -0.3, 0.2, 0.1]
    predicted = np.exp(rng.standard_normal(n))  # positive analytic prices
    residual = X @ true_w + 1.0 + noise * rng.standard_normal(n)
    measured = predicted * np.exp(residual)
    return X, predicted, measured


class TestRidgeCostModel:
    def test_recovers_systematic_residual(self):
        X, predicted, measured = synthetic_corpus()
        model = RidgeCostModel(l2=1e-6).fit(X, predicted, measured)
        assert model.fitted and model.confident
        assert model.residual_std < 0.05
        # Corrected scores track the measured cost far better than the
        # analytic price alone (up to the global unit offset).
        corrected = np.array(
            [model.predict_us(x, p) for x, p in zip(X, predicted)]
        )
        assert np.allclose(
            np.log(corrected) - np.log(measured),
            (np.log(corrected) - np.log(measured)).mean(),
            atol=0.1,
        )

    def test_training_is_deterministic_and_byte_identical(self):
        X, predicted, measured = synthetic_corpus()
        a = RidgeCostModel().fit(X, predicted, measured)
        b = RidgeCostModel().fit(list(map(list, X)), list(predicted), list(measured))
        assert np.array_equal(a.weights, b.weights)
        assert json.dumps(a.to_json(), sort_keys=True) == json.dumps(
            b.to_json(), sort_keys=True
        )

    def test_unfitted_model_is_identity(self):
        model = RidgeCostModel()
        assert not model.fitted and not model.confident
        assert model.correction([1.0, 2.0]) == 1.0
        assert model.predict_us([1.0, 2.0], 42.0) == 42.0

    def test_confidence_needs_samples_and_tight_residual(self):
        X, predicted, measured = synthetic_corpus(n=64)
        few = RidgeCostModel(min_samples=128).fit(X, predicted, measured)
        assert few.fitted and not few.confident
        Xn, pn, mn = synthetic_corpus(n=64, noise=3.0)
        noisy = RidgeCostModel(max_residual_std=0.5).fit(Xn, pn, mn)
        assert noisy.fitted and not noisy.confident

    def test_correction_is_clipped(self):
        X, predicted, measured = synthetic_corpus()
        model = RidgeCostModel(l2=1e-6).fit(X, predicted, measured)
        extreme = np.full(X.shape[1], 1e6)
        assert model.correction(extreme) <= np.exp(8.0) + 1e-9
        assert model.correction(-extreme) >= np.exp(-8.0) - 1e-12

    def test_invalid_samples_filtered_and_empty_rejected(self):
        X, predicted, measured = synthetic_corpus(n=8)
        predicted = predicted.copy()
        predicted[0] = 0.0  # non-positive price: dropped, not log(0)
        model = RidgeCostModel().fit(X, predicted, measured)
        assert model.n_samples == 7
        with pytest.raises(ValueError):
            RidgeCostModel().fit(X[:1], [0.0], [1.0])
        with pytest.raises(ValueError):
            RidgeCostModel().fit([[1.0], [2.0]], [1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            RidgeCostModel(l2=-1.0)

    def test_fit_count_tracks_trainings(self):
        X, predicted, measured = synthetic_corpus(n=16)
        before = RidgeCostModel.fit_count
        RidgeCostModel().fit(X, predicted, measured)
        RidgeCostModel().fit(X, predicted, measured)
        assert RidgeCostModel.fit_count == before + 2

    def test_constant_feature_columns_are_safe(self):
        X, predicted, measured = synthetic_corpus(n=32)
        X = X.copy()
        X[:, 5] = 3.14  # zero variance must not divide by zero
        model = RidgeCostModel().fit(X, predicted, measured)
        assert np.isfinite(model.weights).all()
        assert np.isfinite(model.correction(X[0]))

    def test_feature_version_is_stable_int(self):
        assert isinstance(FEATURE_VERSION, int) and FEATURE_VERSION >= 1
