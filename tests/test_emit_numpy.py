"""Unit and golden-source tests of the stage-IV NumPy emitter.

The golden tests pin the emitted source of three canonical kernels against
files committed under ``tests/goldens/``.  When an intentional emitter change
shifts the output, regenerate them with ``pytest --regen-golden`` and review
the diff like any other code change (the goldens are the reviewable face of
the backend).
"""

import difflib
from pathlib import Path

import numpy as np
import pytest

from repro.core.codegen.build import build
from repro.core.codegen.emit_numpy import (
    EMITTER_VERSION,
    UnsupportedForEmission,
    compile_emitted,
    emit_numpy_source,
)
from repro.formats.bsr import BSRMatrix
from repro.formats.csr import CSRMatrix
from repro.ops.pruned_spmm import build_pruned_spmm_bsr_program
from repro.ops.sddmm import build_sddmm_program
from repro.ops.spmm import build_spmm_program

GOLDEN_DIR = Path(__file__).parent / "goldens"


def canonical_csr() -> CSRMatrix:
    """A fixed 4x4 matrix: one empty row, one heavy row, deterministic."""
    dense = np.array(
        [
            [1.0, 0.0, 2.0, 0.0],
            [0.0, 0.0, 0.0, 0.0],
            [0.5, 3.0, 0.0, 4.0],
            [5.0, 0.0, 0.0, 6.0],
        ],
        dtype=np.float32,
    )
    return CSRMatrix.from_dense(dense)


def canonical_lowered(name: str):
    csr = canonical_csr()
    if name == "spmm_csr":
        func = build_spmm_program(csr, 3)
    elif name == "sddmm_csr_fused":
        func = build_sddmm_program(csr, 2, fuse_ij=True)
    elif name == "pruned_spmm_bsr":
        dense = np.kron(
            np.array([[1, 0], [1, 1]], dtype=np.float32), np.ones((2, 2), dtype=np.float32)
        )
        bsr = BSRMatrix.from_dense(dense, 2)
        func = build_pruned_spmm_bsr_program(bsr, 3)
    else:  # pragma: no cover
        raise KeyError(name)
    return build(func, cache=False).func


class TestGoldenSources:
    @pytest.mark.parametrize("name", ["spmm_csr", "sddmm_csr_fused", "pruned_spmm_bsr"])
    def test_emitted_source_matches_golden(self, name, request):
        source = emit_numpy_source(canonical_lowered(name))
        path = GOLDEN_DIR / f"{name}.py"
        if request.config.getoption("--regen-golden"):
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(source)
            pytest.skip(f"regenerated {path.name}")
        assert path.exists(), (
            f"golden file {path} is missing; run `pytest --regen-golden` to create it"
        )
        golden = path.read_text()
        if source != golden:
            diff = "\n".join(
                difflib.unified_diff(
                    golden.splitlines(),
                    source.splitlines(),
                    fromfile=f"goldens/{name}.py (committed)",
                    tofile=f"{name} (emitted now)",
                    lineterm="",
                )
            )
            pytest.fail(
                "emitted source drifted from the golden file.  If the change is\n"
                "intentional, regenerate with `pytest --regen-golden` and commit\n"
                f"the diff.\n\n{diff}"
            )

    @pytest.mark.parametrize("name", ["spmm_csr", "sddmm_csr_fused", "pruned_spmm_bsr"])
    def test_golden_source_compiles_and_runs(self, name):
        """The committed goldens are live code: compile and execute them."""
        func = canonical_lowered(name)
        path = GOLDEN_DIR / f"{name}.py"
        assert path.exists()
        runner = compile_emitted(path.read_text(), func)
        from repro.runtime.executor import prepare_arrays

        expected = build(func, cache=False).run(engine="interpret")
        got = runner(prepare_arrays(func, {}))
        for key in expected:
            assert np.array_equal(expected[key], got[key]), key

    def test_emission_is_deterministic(self):
        func = canonical_lowered("spmm_csr")
        assert emit_numpy_source(func) == emit_numpy_source(func)


class TestEmitterBehaviour:
    def test_source_header_names_version(self):
        source = emit_numpy_source(canonical_lowered("spmm_csr"))
        assert f"emit_numpy v{EMITTER_VERSION}" in source

    def test_plan_runs_once_and_runner_is_reused(self):
        csr = canonical_csr()
        feats = np.ones((4, 3), dtype=np.float32)
        kernel = build(build_spmm_program(csr, 3, feats), cache=False)
        first = kernel._emitted_runner()
        second = kernel._emitted_runner()
        assert first is not None and first is second

    def test_emitted_tier_skipped_when_aux_buffers_rebound(self):
        """A binding that overrides structural data must bypass the baked plan."""
        csr = canonical_csr()
        feats = np.ones((4, 3), dtype=np.float32)
        kernel = build(build_spmm_program(csr, 3, feats), cache=False)
        kernel.run()
        assert kernel.last_engine in ("native", "emitted")
        rebound = kernel.run({"J_indptr": csr.indptr.copy()})
        assert kernel.last_engine not in ("native", "emitted")
        assert np.array_equal(rebound["C"], kernel.run()["C"])

    def test_strict_engine_raises_for_unemittable_program(self):
        from repro.core.buffers import FlatBuffer
        from repro.core.expr import Var
        from repro.core.program import STAGE_LOOP, PrimFunc
        from repro.core.stmt import BufferStore, ForLoop
        from repro.runtime.vectorized import UnsupportedProgram

        b = FlatBuffer("b", 4)
        n = FlatBuffer("n", 1)
        i = Var("i")
        # Loop bound reads a value buffer: plan cannot be fixed at compile time.
        body = ForLoop(i, 0, n[0], BufferStore(b, [i], 1.0))
        func = PrimFunc(
            "dyn", axes=[], buffers=[], body=body, stage=STAGE_LOOP, flat_buffers=[b, n]
        )
        with pytest.raises(UnsupportedForEmission):
            emit_numpy_source(func)
        kernel = build(func, cache=False)
        with pytest.raises(UnsupportedProgram):
            kernel.run(engine="emitted")

    def test_emitted_source_cached_alongside_program(self):
        from repro.core.codegen.cache import KernelCache

        cache = KernelCache(disk=None)
        csr = canonical_csr()
        feats = np.ones((4, 3), dtype=np.float32)
        build(build_spmm_program(csr, 3, feats), cache=cache)
        entry = next(iter(cache._entries.values()))
        assert entry.source is not None and "def make_kernel" in entry.source
        assert cache.stats.emissions == 1
        # A cache hit reuses the emitted source without re-emitting.
        k2 = build(build_spmm_program(csr, 3, feats), cache=cache)
        assert cache.stats.emissions == 1
        assert k2.emitted_source() is entry.source
