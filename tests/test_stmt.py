"""Unit tests for the statement IR and its tree helpers."""

import pytest

from repro.core.axes import dense_fixed
from repro.core.buffers import SparseBuffer
from repro.core.expr import IntImm, Var
from repro.core.stmt import (
    AssertStmt,
    Block,
    BufferRegion,
    BufferStore,
    Evaluate,
    ForLoop,
    IfThenElse,
    LetStmt,
    SeqStmt,
    collect_buffer_loads,
    collect_buffer_stores,
    find_blocks,
    find_loops,
    post_order_stmts,
    substitute_stmt,
)


@pytest.fixture
def simple_nest():
    axis = dense_fixed("I", 4)
    buf = SparseBuffer("A", [axis])
    out = SparseBuffer("B", [axis])
    i = Var("i")
    store = BufferStore(out, [i], buf[i] + 1.0)
    block = Block("compute", store, reads=[BufferRegion(buf, [i])], writes=[BufferRegion(out, [i])])
    loop = ForLoop(i, IntImm(0), IntImm(4), block)
    return loop, buf, out, i, store, block


def test_seqstmt_flattens_nested_sequences():
    a, b, c = Evaluate(IntImm(1)), Evaluate(IntImm(2)), Evaluate(IntImm(3))
    seq = SeqStmt([a, SeqStmt([b, c])])
    assert len(seq.stmts) == 3


def test_post_order_visits_children_first(simple_nest):
    loop, _, _, _, store, block = simple_nest
    order = list(post_order_stmts(loop))
    assert order.index(store) < order.index(block) < order.index(loop)


def test_find_blocks_and_loops(simple_nest):
    loop, *_rest, block = simple_nest
    assert find_blocks(loop) == [block]
    assert find_loops(loop) == [loop]


def test_collect_buffer_loads_and_stores(simple_nest):
    loop, buf, out, *_ = simple_nest
    loads = collect_buffer_loads(loop)
    stores = collect_buffer_stores(loop)
    assert len(loads) == 1 and loads[0].buffer is buf
    assert len(stores) == 1 and stores[0].buffer is out


def test_substitute_stmt_rewrites_indices(simple_nest):
    loop, buf, out, i, *_ = simple_nest
    j = Var("j")
    new = substitute_stmt(loop.body, {i: j})
    stores = collect_buffer_stores(new)
    assert stores[0].indices[0] is j


def test_substitute_stmt_preserves_block_metadata(simple_nest):
    loop, buf, out, i, _store, block = simple_nest
    j = Var("j")
    new_block = substitute_stmt(block, {i: j})
    assert isinstance(new_block, Block)
    assert new_block.name == "compute"
    assert new_block.reads[0].indices[0] is j
    assert new_block.writes[0].indices[0] is j


def test_forloop_with_body_copies_annotations():
    i = Var("i")
    loop = ForLoop(i, IntImm(0), IntImm(4), Evaluate(IntImm(0)), annotations={"k": 1})
    new = loop.with_body(Evaluate(IntImm(1)))
    assert new.annotations == {"k": 1}
    assert new.loop_var is i


def test_block_with_body_copies_everything(simple_nest):
    *_head, block = simple_nest
    block.annotations["tensorize"] = "mma_m16n16k16"
    copy = block.with_body(Evaluate(IntImm(0)))
    assert copy.annotations["tensorize"] == "mma_m16n16k16"
    assert copy.name == block.name
    assert len(copy.reads) == 1


def test_if_then_else_children():
    cond = Var("x") < 3
    stmt = IfThenElse(cond, Evaluate(IntImm(1)), Evaluate(IntImm(2)))
    assert len(list(post_order_stmts(stmt))) == 3


def test_let_and_assert_traversal():
    x = Var("x")
    body = Evaluate(x)
    let = LetStmt(x, IntImm(3), body)
    asrt = AssertStmt(x < 10, "domain", let)
    nodes = list(post_order_stmts(asrt))
    assert body in nodes and let in nodes


def test_substitute_stmt_handles_if_and_let():
    x, y = Var("x"), Var("y")
    stmt = IfThenElse(x < 3, LetStmt(y, x + 1, Evaluate(y)), None)
    out = substitute_stmt(stmt, {x: IntImm(7)})
    assert "7" in repr(out)


def test_buffer_store_wraps_value():
    axis = dense_fixed("I", 4)
    buf = SparseBuffer("A", [axis])
    store = BufferStore(buf, [Var("i")], 0.0)
    assert store.value.value == 0.0


def test_thread_tags_and_loop_kinds():
    from repro.core.stmt import LOOP_THREAD_BINDING, THREAD_TAGS

    assert "blockIdx.x" in THREAD_TAGS
    i = Var("i")
    loop = ForLoop(i, IntImm(0), IntImm(8), Evaluate(IntImm(0)),
                   kind=LOOP_THREAD_BINDING, thread_tag="threadIdx.x")
    assert loop.thread_tag == "threadIdx.x"
    assert "thread_binding" in repr(loop)
