"""Unit tests for the structural kernel cache."""

import numpy as np
import pytest

from repro.core import build
from repro.core.codegen.cache import (
    KernelCache,
    global_kernel_cache,
    resolve_cache,
    structural_fingerprint,
)
from repro.formats import CSRMatrix
from repro.ops.spmm import build_spmm_program, spmm_reference
from repro.tune import tune_spmm
from repro.perf.device import V100
from repro.runtime import Session


@pytest.fixture
def csr():
    return CSRMatrix.random(rows=14, cols=11, density=0.3, seed=7)


class TestFingerprint:
    def test_identical_structure_same_fingerprint(self, csr, rng):
        x1 = rng.standard_normal((csr.cols, 4)).astype(np.float32)
        x2 = rng.standard_normal((csr.cols, 4)).astype(np.float32)
        f1 = structural_fingerprint(build_spmm_program(csr, 4, x1))
        f2 = structural_fingerprint(build_spmm_program(csr, 4, x2))
        assert f1 == f2  # value data does not participate

    def test_different_structure_different_fingerprint(self, csr, rng):
        x = rng.standard_normal((csr.cols, 4)).astype(np.float32)
        base = structural_fingerprint(build_spmm_program(csr, 4, x))
        assert base != structural_fingerprint(build_spmm_program(csr, 8, x[:, :4].repeat(2, 1)))
        other = CSRMatrix.random(rows=14, cols=11, density=0.3, seed=8)
        assert base != structural_fingerprint(
            build_spmm_program(other, 4, x)
        )  # same shapes, different sparsity pattern

    def test_config_participates(self, csr, rng):
        func = build_spmm_program(csr, 4, rng.standard_normal((csr.cols, 4)).astype(np.float32))
        assert structural_fingerprint(func, {"horizontal_fusion": True}) != structural_fingerprint(
            func, {"horizontal_fusion": False}
        )


class TestKernelCache:
    def test_repeated_build_hits(self, csr, rng):
        cache = KernelCache()
        x = rng.standard_normal((csr.cols, 4)).astype(np.float32)
        build(build_spmm_program(csr, 4, x), cache=cache)
        assert (cache.stats.hits, cache.stats.misses) == (0, 1)
        build(build_spmm_program(csr, 4, x), cache=cache)
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)
        assert len(cache) == 1

    def test_cached_kernel_rebinds_new_data(self, csr, rng):
        """A cache hit must execute with the *new* program's value arrays."""
        cache = KernelCache()
        x1 = rng.standard_normal((csr.cols, 4)).astype(np.float32)
        x2 = rng.standard_normal((csr.cols, 4)).astype(np.float32)
        k1 = build(build_spmm_program(csr, 4, x1), cache=cache)
        k2 = build(build_spmm_program(csr, 4, x2), cache=cache)
        assert cache.stats.hits == 1
        assert k2.func is k1.func  # the lowered loop nest is shared
        out1 = k1.run()["C"].reshape(csr.rows, 4)
        out2 = k2.run()["C"].reshape(csr.rows, 4)
        assert np.allclose(out1, spmm_reference(csr, x1), atol=1e-4)
        assert np.allclose(out2, spmm_reference(csr, x2), atol=1e-4)

    def test_cache_hit_does_not_leak_first_builds_data(self, csr, rng):
        """A later build that leaves a buffer unbound must see zeros, not the
        value arrays of whichever build populated the cache entry."""
        cache = KernelCache()
        x = rng.standard_normal((csr.cols, 4)).astype(np.float32)
        build(build_spmm_program(csr, 4, x), cache=cache)
        k2 = build(build_spmm_program(csr, 4), cache=cache)  # features unbound
        assert cache.stats.hits == 1
        assert np.all(k2.run()["C"] == 0.0)

    def test_cache_entries_do_not_pin_value_arrays(self, csr, rng):
        cache = KernelCache()
        x = rng.standard_normal((csr.cols, 4)).astype(np.float32)
        build(build_spmm_program(csr, 4, x), cache=cache)
        (lowered, stage2) = next(iter(cache._entries.values()))
        assert all(buf.data is None for buf in lowered.buffers)
        assert stage2 is not None
        assert all(buf.data is None for buf in stage2.buffers)

    def test_different_sparsity_misses(self, csr, rng):
        cache = KernelCache()
        x = rng.standard_normal((csr.cols, 4)).astype(np.float32)
        build(build_spmm_program(csr, 4, x), cache=cache)
        other = CSRMatrix.random(rows=14, cols=11, density=0.3, seed=9)
        build(build_spmm_program(other, 4, x), cache=cache)
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2

    def test_lru_eviction(self, csr, rng):
        cache = KernelCache(capacity=1)
        x = rng.standard_normal((csr.cols, 4)).astype(np.float32)
        build(build_spmm_program(csr, 4, x), cache=cache)
        build(build_spmm_program(csr, 8, np.hstack([x, x])), cache=cache)
        assert cache.stats.evictions == 1
        build(build_spmm_program(csr, 4, x), cache=cache)  # evicted -> miss
        assert cache.stats.hits == 0
        assert cache.stats.misses == 3

    def test_disable_with_false(self, csr, rng):
        x = rng.standard_normal((csr.cols, 4)).astype(np.float32)
        before = global_kernel_cache().stats.lookups
        build(build_spmm_program(csr, 4, x), cache=False)
        assert global_kernel_cache().stats.lookups == before

    def test_resolve_cache_validates(self):
        assert resolve_cache(None) is global_kernel_cache()
        assert resolve_cache(False) is None
        with pytest.raises(TypeError):
            resolve_cache("yes")

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            KernelCache(capacity=0)


class TestTunerReuse:
    def test_tuner_decomposes_each_config_at_most_once(self):
        from repro.workloads.graphs import generate_adjacency

        graph = generate_adjacency(300, 2400, "powerlaw", seed=4)
        session = Session()
        tune_spmm(graph, 32, V100, max_trials=12, seed=0, session=session)
        first_misses = session.stats.format_cache_misses
        assert first_misses <= 12
        # A second tuning run over the same matrix re-uses every decomposition.
        tune_spmm(graph, 64, V100, max_trials=12, seed=0, session=session)
        assert session.stats.format_cache_misses == first_misses
        assert session.stats.format_cache_hits > 0
