"""Unit tests for the structural kernel cache."""

import numpy as np
import pytest

from repro.core import build
from repro.core.codegen.cache import (
    KernelCache,
    global_kernel_cache,
    resolve_cache,
    structural_fingerprint,
)
from repro.formats import CSRMatrix
from repro.ops.spmm import build_spmm_program, spmm_reference
from repro.tune import tune_spmm
from repro.perf.device import V100
from repro.runtime import Session


@pytest.fixture
def csr():
    return CSRMatrix.random(rows=14, cols=11, density=0.3, seed=7)


class TestFingerprint:
    def test_identical_structure_same_fingerprint(self, csr, rng):
        x1 = rng.standard_normal((csr.cols, 4)).astype(np.float32)
        x2 = rng.standard_normal((csr.cols, 4)).astype(np.float32)
        f1 = structural_fingerprint(build_spmm_program(csr, 4, x1))
        f2 = structural_fingerprint(build_spmm_program(csr, 4, x2))
        assert f1 == f2  # value data does not participate

    def test_different_structure_different_fingerprint(self, csr, rng):
        x = rng.standard_normal((csr.cols, 4)).astype(np.float32)
        base = structural_fingerprint(build_spmm_program(csr, 4, x))
        assert base != structural_fingerprint(build_spmm_program(csr, 8, x[:, :4].repeat(2, 1)))
        other = CSRMatrix.random(rows=14, cols=11, density=0.3, seed=8)
        assert base != structural_fingerprint(
            build_spmm_program(other, 4, x)
        )  # same shapes, different sparsity pattern

    def test_config_participates(self, csr, rng):
        func = build_spmm_program(csr, 4, rng.standard_normal((csr.cols, 4)).astype(np.float32))
        assert structural_fingerprint(func, {"horizontal_fusion": True}) != structural_fingerprint(
            func, {"horizontal_fusion": False}
        )


class TestKernelCache:
    def test_repeated_build_hits(self, csr, rng):
        cache = KernelCache()
        x = rng.standard_normal((csr.cols, 4)).astype(np.float32)
        build(build_spmm_program(csr, 4, x), cache=cache)
        assert (cache.stats.hits, cache.stats.misses) == (0, 1)
        build(build_spmm_program(csr, 4, x), cache=cache)
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)
        assert len(cache) == 1

    def test_cached_kernel_rebinds_new_data(self, csr, rng):
        """A cache hit must execute with the *new* program's value arrays."""
        cache = KernelCache()
        x1 = rng.standard_normal((csr.cols, 4)).astype(np.float32)
        x2 = rng.standard_normal((csr.cols, 4)).astype(np.float32)
        k1 = build(build_spmm_program(csr, 4, x1), cache=cache)
        k2 = build(build_spmm_program(csr, 4, x2), cache=cache)
        assert cache.stats.hits == 1
        assert k2.func is k1.func  # the lowered loop nest is shared
        out1 = k1.run()["C"].reshape(csr.rows, 4)
        out2 = k2.run()["C"].reshape(csr.rows, 4)
        assert np.allclose(out1, spmm_reference(csr, x1), atol=1e-4)
        assert np.allclose(out2, spmm_reference(csr, x2), atol=1e-4)

    def test_cache_hit_does_not_leak_first_builds_data(self, csr, rng):
        """A later build that leaves a buffer unbound must see zeros, not the
        value arrays of whichever build populated the cache entry."""
        cache = KernelCache()
        x = rng.standard_normal((csr.cols, 4)).astype(np.float32)
        build(build_spmm_program(csr, 4, x), cache=cache)
        k2 = build(build_spmm_program(csr, 4), cache=cache)  # features unbound
        assert cache.stats.hits == 1
        assert np.all(k2.run()["C"] == 0.0)

    def test_cache_entries_do_not_pin_value_arrays(self, csr, rng):
        cache = KernelCache()
        x = rng.standard_normal((csr.cols, 4)).astype(np.float32)
        build(build_spmm_program(csr, 4, x), cache=cache)
        entry = next(iter(cache._entries.values()))
        assert all(buf.data is None for buf in entry.lowered.buffers)
        assert entry.stage2 is not None
        assert all(buf.data is None for buf in entry.stage2.buffers)

    def test_different_sparsity_misses(self, csr, rng):
        cache = KernelCache()
        x = rng.standard_normal((csr.cols, 4)).astype(np.float32)
        build(build_spmm_program(csr, 4, x), cache=cache)
        other = CSRMatrix.random(rows=14, cols=11, density=0.3, seed=9)
        build(build_spmm_program(other, 4, x), cache=cache)
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2

    def test_lru_eviction(self, csr, rng):
        cache = KernelCache(capacity=1)
        x = rng.standard_normal((csr.cols, 4)).astype(np.float32)
        build(build_spmm_program(csr, 4, x), cache=cache)
        build(build_spmm_program(csr, 8, np.hstack([x, x])), cache=cache)
        assert cache.stats.evictions == 1
        build(build_spmm_program(csr, 4, x), cache=cache)  # evicted -> miss
        assert cache.stats.hits == 0
        assert cache.stats.misses == 3

    def test_disable_with_false(self, csr, rng):
        x = rng.standard_normal((csr.cols, 4)).astype(np.float32)
        before = global_kernel_cache().stats.lookups
        build(build_spmm_program(csr, 4, x), cache=False)
        assert global_kernel_cache().stats.lookups == before

    def test_resolve_cache_validates(self):
        assert resolve_cache(None) is global_kernel_cache()
        assert resolve_cache(False) is None
        with pytest.raises(TypeError):
            resolve_cache("yes")

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            KernelCache(capacity=0)


class TestValueDtypeFingerprint:
    """Regression: a float32 cache entry must never serve a float64 caller.

    The structural fingerprint includes every buffer's value dtype, and the
    session resolves the compute dtype from its operands, so the two
    precisions build (and cache) distinct kernels.
    """

    def test_fingerprints_differ_by_value_dtype(self, csr, rng):
        x32 = rng.standard_normal((csr.cols, 4)).astype(np.float32)
        f32 = structural_fingerprint(build_spmm_program(csr, 4, x32, dtype="float32"))
        f64 = structural_fingerprint(
            build_spmm_program(csr, 4, x32.astype(np.float64), dtype="float64")
        )
        assert f32 != f64

    def test_float64_caller_gets_float64_kernel(self, csr, rng):
        session = Session()
        x64 = rng.standard_normal((csr.cols, 4)).astype(np.float64)
        # Warm the cache with the float32 variant of the same structure.
        out32 = session.spmm(csr, x64.astype(np.float32))
        assert out32.dtype == np.float32
        assert session.stats.kernel_cache_misses == 1

        out64 = session.spmm(csr, x64)
        assert out64.dtype == np.float64
        # Distinct structure -> a second miss, never a hit on the f32 entry.
        assert session.stats.kernel_cache_misses == 2
        assert session.stats.kernel_cache_hits == 0
        assert len(session.cache) == 2
        # And the result carries float64 precision: compare against a float64
        # reference at a tolerance float32 arithmetic cannot meet.
        reference = csr.to_scipy().astype(np.float64) @ x64
        np.testing.assert_allclose(out64, reference, rtol=1e-12, atol=1e-12)

    def test_explicit_dtype_overrides_inference(self, csr, rng):
        session = Session()
        x32 = rng.standard_normal((csr.cols, 2)).astype(np.float32)
        out = session.spmm(csr, x32, dtype="float64")
        assert out.dtype == np.float64
        with pytest.raises(ValueError):
            session.spmm(csr, x32, dtype="int32")

    def test_mixed_operands_promote_to_float64(self, csr, rng):
        """A float64 anywhere among the operands must not be silently
        downcast by inferring the dtype from the first operand only."""
        session = Session()
        x32 = rng.standard_normal((csr.rows, 3)).astype(np.float32)
        y64 = rng.standard_normal((3, csr.cols)).astype(np.float64)
        out = session.sddmm(csr, x32, y64)
        assert out.dtype == np.float64

    def test_sddmm_dtype_threads_through(self, csr, rng):
        session = Session()
        x = rng.standard_normal((csr.rows, 3)).astype(np.float64)
        y = rng.standard_normal((3, csr.cols)).astype(np.float64)
        out = session.sddmm(csr, x, y)
        assert out.dtype == np.float64
        reference = (x @ y)[csr.to_scipy().nonzero()] * csr.data
        np.testing.assert_allclose(out, reference, rtol=1e-10)


class TestTunerReuse:
    def test_tuner_decomposes_each_config_at_most_once(self):
        from repro.workloads.graphs import generate_adjacency

        graph = generate_adjacency(300, 2400, "powerlaw", seed=4)
        session = Session()
        tune_spmm(graph, 32, V100, max_trials=12, seed=0, session=session)
        first_misses = session.stats.format_cache_misses
        assert first_misses <= 12
        # A second tuning run over the same matrix re-uses every decomposition.
        tune_spmm(graph, 64, V100, max_trials=12, seed=0, session=session)
        assert session.stats.format_cache_misses == first_misses
        assert session.stats.format_cache_hits > 0
