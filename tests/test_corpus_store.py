"""The measurement-corpus layer of the tuning-record store.

Mirrors the record-store fault battery (``test_tuning_records.py``):
truncated or corrupt corpus files are misses not crashes, schema and
feature-version skew discard the file, writes are atomic even against a
concurrent reader in another process, and training over a fixed corpus is
deterministic down to byte-identical weights.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.perf.learned import FEATURE_VERSION, RidgeCostModel
from repro.tune import SpMMProblem, autotune
from repro.tune.records import (
    CORPUS_MAX_ENTRIES,
    CORPUS_SCHEMA_VERSION,
    TuningRecordStore,
)
from repro.tune.transfer import train_from_corpus
from repro.workloads.graphs import generate_adjacency

FP = "c" * 16


def entry(i, features=None):
    return {
        "features": features if features is not None else [float(i), float(i) + 0.5, 1.0],
        "predicted_us": 10.0 + i,
        "measured_s": 0.001 * (i + 1),
        "config": {"format": "csr", "threads_per_block": 64 + i},
    }


def fill(store, count, fingerprint=FP, workload="spmm"):
    store.add_corpus(
        fingerprint,
        workload,
        [entry(i) for i in range(count)],
        task_features=[1.0, 2.0, 3.0],
        feature_version=FEATURE_VERSION,
    )


class TestRoundTrip:
    def test_add_get(self, tmp_path):
        store = TuningRecordStore(tmp_path)
        fill(store, 3)
        payload = store.get_corpus(FP, FEATURE_VERSION)
        assert payload is not None
        assert payload["workload"] == "spmm"
        assert payload["task_features"] == [1.0, 2.0, 3.0]
        assert len(payload["entries"]) == 3
        assert payload["entries"][0]["predicted_us"] == 10.0
        assert store.stats.corpus_writes == 1 and store.stats.corpus_hits == 1
        assert store.corpus_fingerprints() == [FP]
        assert store.corpus_size() == 1

    def test_append_accumulates_and_caps(self, tmp_path):
        store = TuningRecordStore(tmp_path)
        fill(store, 2)
        fill(store, 2)
        payload = store.get_corpus(FP)
        assert len(payload["entries"]) == 4
        store.add_corpus(
            FP, "spmm", [entry(i) for i in range(5)],
            feature_version=FEATURE_VERSION, cap=3,
        )
        payload = store.get_corpus(FP)
        assert len(payload["entries"]) == 3  # most recent kept
        assert payload["entries"][-1]["predicted_us"] == 14.0

    def test_miss_returns_none(self, tmp_path):
        store = TuningRecordStore(tmp_path)
        assert store.get_corpus("missing") is None
        assert store.stats.corpus_misses == 1
        assert store.corpus_fingerprints() == []

    def test_workload_mismatch_resets(self, tmp_path):
        store = TuningRecordStore(tmp_path)
        fill(store, 4, workload="spmm")
        fill(store, 1, workload="sddmm")
        payload = store.get_corpus(FP)
        assert payload["workload"] == "sddmm"
        assert len(payload["entries"]) == 1

    def test_records_and_corpus_are_separate_namespaces(self, tmp_path):
        store = TuningRecordStore(tmp_path)
        fill(store, 1)
        assert store.get(FP) is None  # no tuning record, only corpus
        assert len(store) == 0
        store.clear()
        assert store.get_corpus(FP) is None

    def test_default_cap_is_bounded(self):
        assert 0 < CORPUS_MAX_ENTRIES <= 4096


class TestCorruptionTolerance:
    def test_truncated_json_is_a_miss_and_removed(self, tmp_path):
        store = TuningRecordStore(tmp_path)
        fill(store, 2)
        path = store.corpus_dir / f"{FP}.json"
        path.write_text(path.read_text()[:40])
        cold = TuningRecordStore(tmp_path)
        assert cold.get_corpus(FP) is None
        assert cold.stats.corpus_errors == 1
        assert not path.exists()

    def test_schema_skew_is_a_miss(self, tmp_path):
        store = TuningRecordStore(tmp_path)
        fill(store, 2)
        path = store.corpus_dir / f"{FP}.json"
        payload = json.loads(path.read_text())
        payload["schema"] = CORPUS_SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        assert TuningRecordStore(tmp_path).get_corpus(FP) is None
        assert not path.exists()

    def test_feature_version_skew_is_a_miss(self, tmp_path):
        store = TuningRecordStore(tmp_path)
        store.add_corpus(FP, "spmm", [entry(0)], feature_version=FEATURE_VERSION + 7)
        assert store.get_corpus(FP, FEATURE_VERSION) is None
        assert store.stats.corpus_errors == 1
        # without a version pin the payload is still readable
        store.add_corpus(FP, "spmm", [entry(0)], feature_version=99)
        assert store.get_corpus(FP)["feature_version"] == 99

    def test_renamed_corpus_rejected(self, tmp_path):
        store = TuningRecordStore(tmp_path)
        fill(store, 1)
        src = store.corpus_dir / f"{FP}.json"
        dst = store.corpus_dir / ("0" * 16 + ".json")
        dst.write_text(src.read_text())
        cold = TuningRecordStore(tmp_path)
        assert cold.get_corpus("0" * 16) is None
        assert cold.stats.corpus_errors == 1

    def test_malformed_entries_rejected(self, tmp_path):
        store = TuningRecordStore(tmp_path)
        fill(store, 1)
        path = store.corpus_dir / f"{FP}.json"
        payload = json.loads(path.read_text())
        payload["entries"][0]["measured_s"] = "fast"
        path.write_text(json.dumps(payload))
        assert TuningRecordStore(tmp_path).get_corpus(FP) is None

    def test_unserialisable_entry_swallowed(self, tmp_path):
        store = TuningRecordStore(tmp_path)
        bad = entry(0)
        bad["config"] = {"callback": object()}
        store.add_corpus(FP, "spmm", [bad], feature_version=FEATURE_VERSION)
        assert store.stats.corpus_errors >= 1
        assert store.get_corpus(FP) is None


_WRITER_SCRIPT = """
import sys
from repro.perf.learned import FEATURE_VERSION
from repro.tune.records import TuningRecordStore

root, rounds = sys.argv[1], int(sys.argv[2])
store = TuningRecordStore(root)
for i in range(rounds):
    store.add_corpus(
        "c" * 16,
        "spmm",
        [{
            "features": [float(i)] * 8,
            "predicted_us": 1.0 + i,
            "measured_s": 0.001 * (i + 1),
            "config": {"threads_per_block": 64},
        }],
        task_features=[1.0] * 8,
        feature_version=FEATURE_VERSION,
    )
print("DONE", store.stats.corpus_writes)
"""


class TestAtomicWrites:
    def test_concurrent_reader_never_sees_partial_state(self, tmp_path):
        """A reader polling while another process rewrites the corpus sees
        either a miss or a fully valid payload — never a torn file."""
        rounds = 40
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c", _WRITER_SCRIPT, str(tmp_path), str(rounds)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        reader = TuningRecordStore(tmp_path)
        observed = []
        try:
            while proc.poll() is None:
                payload = reader.get_corpus(FP, FEATURE_VERSION)
                if payload is not None:
                    # get_corpus validated the whole payload; record growth.
                    observed.append(len(payload["entries"]))
        finally:
            stdout, stderr = proc.communicate(timeout=120)
        assert proc.returncode == 0, stderr
        assert f"DONE {rounds}" in stdout
        # A validation failure would have *deleted* the file mid-run and the
        # writer's next read-extend-rewrite would restart from scratch; a
        # monotone entry count proves every observed snapshot was complete.
        assert observed == sorted(observed)
        final = TuningRecordStore(tmp_path).get_corpus(FP, FEATURE_VERSION)
        assert final is not None and len(final["entries"]) == rounds
        assert not list(TuningRecordStore(tmp_path).corpus_dir.glob("*.tmp"))


class TestDeterministicTraining:
    def test_same_corpus_yields_byte_identical_weights(self, tmp_path):
        rng = np.random.default_rng(3)
        store = TuningRecordStore(tmp_path)
        for fp_index in range(3):
            entries = [
                entry(i, features=[float(v) for v in rng.standard_normal(6)])
                for i in range(8)
            ]
            store.add_corpus(
                f"{fp_index}" * 16, "spmm", entries,
                task_features=[float(fp_index)] * 6,
                feature_version=FEATURE_VERSION,
            )
        a = train_from_corpus(TuningRecordStore(tmp_path), "spmm", min_samples=4)
        b = train_from_corpus(TuningRecordStore(tmp_path), "spmm", min_samples=4)
        assert a is not None and b is not None
        assert np.array_equal(a.weights, b.weights)
        assert json.dumps(a.to_json(), sort_keys=True) == json.dumps(
            b.to_json(), sort_keys=True
        )

    def test_training_skips_other_workloads_and_small_corpora(self, tmp_path):
        store = TuningRecordStore(tmp_path)
        fill(store, 6, workload="sddmm")
        assert train_from_corpus(store, "spmm", min_samples=4) is None
        assert train_from_corpus(None) is None
        assert train_from_corpus(store, "sddmm", min_samples=4) is not None


class TestAutotuneIntegration:
    def test_phase2_runs_populate_the_corpus(self, tmp_path):
        graph = generate_adjacency(120, 700, "powerlaw", seed=5)
        store = TuningRecordStore(tmp_path)
        result = autotune(
            "spmm", SpMMProblem(graph, 8), records=store,
            strategy="random", max_trials=8, survivors=3, repeats=1, seed=0,
        )
        assert result.measured_configs > 0
        assert result.timed_runs >= result.measured_configs
        payload = store.get_corpus(result.fingerprint, FEATURE_VERSION)
        assert payload is not None
        assert payload["workload"] == "spmm"
        assert len(payload["entries"]) == result.measured_configs
        assert payload["task_features"] is not None
        for item in payload["entries"]:
            assert item["predicted_us"] > 0 and item["measured_s"] > 0

    def test_predict_only_runs_write_no_corpus(self, tmp_path):
        graph = generate_adjacency(120, 700, "powerlaw", seed=5)
        store = TuningRecordStore(tmp_path)
        result = autotune(
            "spmm", SpMMProblem(graph, 8), records=store,
            strategy="random", max_trials=8, survivors=0, seed=0,
        )
        assert result.measured_configs == 0 and result.timed_runs == 0
        assert store.get_corpus(result.fingerprint) is None

    def test_replay_with_corpus_trains_nothing(self, tmp_path):
        graph = generate_adjacency(120, 700, "powerlaw", seed=5)
        store = TuningRecordStore(tmp_path)
        problem = SpMMProblem(graph, 8)
        autotune("spmm", problem, records=store, strategy="random",
                 max_trials=8, survivors=3, repeats=1, seed=0)
        before = RidgeCostModel.fit_count
        replay = autotune("spmm", problem, records=store, cost_model="hybrid")
        assert replay.replayed
        assert RidgeCostModel.fit_count == before, "replay must not retrain"
