"""Unit tests for the NumPy executor."""

import numpy as np
import pytest

from repro.core import build
from repro.runtime.executor import Executor, run_primfunc
from repro.formats import CSRMatrix, ELLMatrix
from repro.ops.sddmm import build_sddmm_program, sddmm_reference
from repro.ops.spmm import build_spmm_hyb_program, build_spmm_program, spmm_reference
from repro.formats.hyb import HybFormat


def test_executor_requires_stage3(small_csr, rng):
    func = build_spmm_program(small_csr, 2, rng.standard_normal((small_csr.cols, 2)).astype(np.float32))
    with pytest.raises(ValueError):
        Executor(func)


def test_run_primfunc_lowers_automatically(small_csr, rng):
    features = rng.standard_normal((small_csr.cols, 4)).astype(np.float32)
    func = build_spmm_program(small_csr, 4, features)
    out = run_primfunc(func)
    reference = spmm_reference(small_csr, features)
    assert np.allclose(out["C"].reshape(reference.shape), reference, atol=1e-4)


def test_bindings_override_buffer_data(small_csr, rng):
    features = rng.standard_normal((small_csr.cols, 4)).astype(np.float32)
    func = build_spmm_program(small_csr, 4, features)
    kernel = build(func)
    other = rng.standard_normal((small_csr.cols, 4)).astype(np.float32)
    out = kernel.run({"B": other.reshape(-1)})
    reference = spmm_reference(small_csr, other)
    assert np.allclose(out["C"].reshape(reference.shape), reference, atol=1e-4)


def test_binding_size_mismatch_raises(small_csr, rng):
    features = rng.standard_normal((small_csr.cols, 4)).astype(np.float32)
    kernel = build(build_spmm_program(small_csr, 4, features))
    with pytest.raises(ValueError):
        kernel.run({"B": np.zeros(3, dtype=np.float32)})


def test_unbound_output_defaults_to_zeros(small_csr, rng):
    features = rng.standard_normal((small_csr.cols, 4)).astype(np.float32)
    kernel = build(build_spmm_program(small_csr, 4, features))
    out = kernel.run()
    assert out["C"].shape == (small_csr.rows * 4,)


def test_structural_zero_loads_read_as_zero(tiny_csr):
    """Padded ELL slots (column -1) contribute nothing to the computation."""
    ell = ELLMatrix.from_csr(tiny_csr)
    assert (ell.indices == -1).any()  # padding exists
    rng = np.random.default_rng(0)
    features = rng.standard_normal((tiny_csr.cols, 3)).astype(np.float32)
    hyb = HybFormat.from_csr(tiny_csr, num_col_parts=1)
    func = build_spmm_hyb_program(hyb, 3, features)
    out = build(func).run()
    reference = spmm_reference(tiny_csr, features)
    assert np.allclose(out["C"].reshape(reference.shape), reference, atol=1e-4)


def test_hyb_program_with_column_partitions(tiny_csr, rng):
    features = rng.standard_normal((tiny_csr.cols, 3)).astype(np.float32)
    hyb = HybFormat.from_csr(tiny_csr, num_col_parts=2)
    func = build_spmm_hyb_program(hyb, 3, features)
    out = build(func).run()
    reference = spmm_reference(tiny_csr, features)
    assert np.allclose(out["C"].reshape(reference.shape), reference, atol=1e-4)


def test_reduction_init_runs_before_accumulation(small_csr, rng):
    """Rows with non-zeros are re-initialised even when stale data is bound.

    Like TensorIR, the init of a reduction block only runs for output
    elements whose reduction domain is non-empty, so completely empty rows
    keep whatever the output buffer already contained.
    """
    features = rng.standard_normal((small_csr.cols, 4)).astype(np.float32)
    kernel = build(build_spmm_program(small_csr, 4, features))
    stale = np.full(small_csr.rows * 4, 123.0, dtype=np.float32)
    out = kernel.run({"C": stale})
    reference = spmm_reference(small_csr, features)
    result = out["C"].reshape(reference.shape)
    lengths = small_csr.row_lengths()
    nonempty = lengths > 0
    assert np.allclose(result[nonempty], reference[nonempty], atol=1e-4)
    assert np.all(result[~nonempty] == 123.0)


def test_sddmm_executor_matches_reference(small_csr, rng):
    x = rng.standard_normal((small_csr.rows, 5)).astype(np.float32)
    y = rng.standard_normal((5, small_csr.cols)).astype(np.float32)
    func = build_sddmm_program(small_csr, 5, x, y)
    out = build(func).run()
    assert np.allclose(out["OUT"], sddmm_reference(small_csr, x, y), atol=1e-4)


def test_empty_rows_produce_zero_output(rng):
    dense = np.zeros((4, 4), dtype=np.float32)
    dense[1, 2] = 3.0
    csr = CSRMatrix.from_dense(dense)
    features = rng.standard_normal((4, 2)).astype(np.float32)
    out = run_primfunc(build_spmm_program(csr, 2, features))
    result = out["C"].reshape(4, 2)
    assert np.allclose(result[0], 0.0)
    assert np.allclose(result[1], 3.0 * features[2], atol=1e-5)
