"""Golden predicted-cost regression tests for the GPU cost model.

The autoscheduler's phase-1 pruning stands on ``perf.gpu_model`` producing
stable candidate *rankings*: a silent model change that reorders candidates
would redirect every tuned workload without failing a single functional
test.  These tests pin the predicted costs of the fig-13 (SpMM), fig-14
(SDDMM) and fig-16 (batched attention) candidate sets on the V100 model to
golden JSON files under ``tests/goldens/``.

* Rankings must match the goldens **exactly** — a reorder is always a
  failure.
* Durations must match to a tight relative tolerance (allowing only for
  floating-point noise across platforms).

Intentional model changes are committed by regenerating with
``pytest --regen-golden`` and reviewing the diff, exactly like the emitted
kernel source goldens.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.formats.csr import CSRMatrix
from repro.perf import V100, estimate_us
from repro.tune import get_workload
from repro.tune.search_space import config_key
from repro.tune.spaces import (
    AttentionProblem,
    InfeasibleConfig,
    SDDMMProblem,
    SpMMProblem,
)
from repro.workloads.graphs import generate_adjacency

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: Relative tolerance on golden durations: generous enough for cross-platform
#: float noise, far below any real model change.
DURATION_RTOL = 1e-9


def _attention_mask(size=64, block=16, seed=0):
    dense = np.zeros((size, size), dtype=np.float32)
    for b in range(0, size, block):
        dense[b : b + block, b : b + block] = 1.0
    dense[0:block, size - block :] = 1.0
    return CSRMatrix.from_dense(dense)


def _problem(figure):
    graph = generate_adjacency(400, 3600, "powerlaw", seed=23)
    if figure == "fig13_spmm":
        return "spmm", SpMMProblem(graph, 32)
    if figure == "fig14_sddmm":
        return "sddmm", SDDMMProblem(graph, 32)
    if figure == "fig16_attention":
        return "attention", AttentionProblem(_attention_mask(), 4, 16)
    raise KeyError(figure)  # pragma: no cover


def _predicted_costs(figure):
    """Cost-model durations for every canonical candidate of one figure."""
    workload, problem = _problem(figure)
    spec = get_workload(workload)
    memo = {}
    rows = []
    seen = set()
    for config in spec.space(problem).configurations():
        canonical = spec.canonical(config)
        key = config_key(canonical)
        if key in seen:
            continue
        seen.add(key)
        label = json.dumps(canonical, sort_keys=True)
        try:
            duration = estimate_us(spec.predict(problem, canonical, V100, memo), V100)
        except InfeasibleConfig:
            continue
        rows.append({"config": label, "duration_us": duration})
    rows.sort(key=lambda row: row["config"])
    ranking = [
        row["config"]
        for row in sorted(rows, key=lambda row: (row["duration_us"], row["config"]))
    ]
    return {"workload": workload, "device": V100.name, "costs": rows, "ranking": ranking}


FIGURES = ["fig13_spmm", "fig14_sddmm", "fig16_attention"]


class TestCostModelGoldens:
    @pytest.mark.parametrize("figure", FIGURES)
    def test_predicted_costs_match_golden(self, figure, request):
        produced = _predicted_costs(figure)
        path = GOLDEN_DIR / f"cost_model_{figure}.json"
        if request.config.getoption("--regen-golden"):
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(json.dumps(produced, indent=2) + "\n")
            pytest.skip(f"regenerated {path.name}")
        assert path.exists(), (
            f"golden file {path} is missing; run `pytest --regen-golden` to create it"
        )
        golden = json.loads(path.read_text())

        assert produced["ranking"] == golden["ranking"], (
            "cost-model candidate ranking reordered — this redirects autotuning.\n"
            "If intentional, regenerate with `pytest --regen-golden` and commit."
        )
        produced_by_config = {row["config"]: row["duration_us"] for row in produced["costs"]}
        golden_by_config = {row["config"]: row["duration_us"] for row in golden["costs"]}
        assert set(produced_by_config) == set(golden_by_config)
        for config, duration in golden_by_config.items():
            assert produced_by_config[config] == pytest.approx(
                duration, rel=DURATION_RTOL
            ), config

    @pytest.mark.parametrize("figure", FIGURES)
    def test_golden_generation_is_deterministic(self, figure):
        assert _predicted_costs(figure) == _predicted_costs(figure)

    def test_goldens_have_nontrivial_candidate_sets(self):
        for figure in FIGURES:
            path = GOLDEN_DIR / f"cost_model_{figure}.json"
            if not path.exists():
                pytest.skip("goldens not generated yet")
            golden = json.loads(path.read_text())
            assert len(golden["costs"]) >= 3
            durations = [row["duration_us"] for row in golden["costs"]]
            assert len(set(durations)) > 1, "all candidates priced identically"
