"""Unit tests for the end-to-end models (GraphSAGE, RGCN, MinkowskiNet)."""

import numpy as np
import pytest

from repro.models import graphsage, minkowski, rgcn
from repro.models.shared import relu, relu_grad, softmax, softmax_cross_entropy
from repro.perf.device import V100
from repro.workloads.graphs import generate_adjacency
from repro.workloads.hetero_graphs import generate_relational_adjacency
from repro.workloads.pointcloud import PointCloudConfig, sparse_conv_problem


@pytest.fixture(scope="module")
def training_graph():
    return generate_adjacency(200, 1600, "powerlaw", seed=3)


class TestSharedPrimitives:
    def test_relu_and_grad(self):
        x = np.array([-1.0, 0.0, 2.0], dtype=np.float32)
        assert np.allclose(relu(x), [0.0, 0.0, 2.0])
        assert np.allclose(relu_grad(x), [0.0, 0.0, 1.0])

    def test_softmax_rows_sum_to_one(self, rng):
        logits = rng.standard_normal((5, 3)).astype(np.float32)
        probs = softmax(logits)
        assert np.allclose(probs.sum(axis=1), 1.0, atol=1e-5)

    def test_cross_entropy_gradient_is_correct(self, rng):
        logits = rng.standard_normal((4, 3)).astype(np.float32)
        labels = np.array([0, 2, 1, 1])
        loss, grad = softmax_cross_entropy(logits, labels)
        # finite-difference check of one entry
        eps = 1e-3
        bumped = logits.copy()
        bumped[1, 2] += eps
        loss2, _ = softmax_cross_entropy(bumped, labels)
        assert (loss2 - loss) / eps == pytest.approx(grad[1, 2], abs=1e-2)


class TestGraphSAGE:
    def test_normalized_adjacency_rows_sum_to_one(self, training_graph):
        norm = graphsage.normalized_adjacency(training_graph)
        sums = np.asarray(norm.to_scipy().sum(axis=1)).reshape(-1)
        lengths = training_graph.row_lengths()
        assert np.allclose(sums[lengths > 0], 1.0, atol=1e-4)

    def test_forward_shapes(self, training_graph, rng):
        params = graphsage.GraphSAGEParams.init(8, 16, 4, seed=0)
        model = graphsage.GraphSAGE(training_graph, params)
        features = rng.standard_normal((training_graph.rows, 8)).astype(np.float32)
        logits = model.forward(features)
        assert logits.shape == (training_graph.rows, 4)

    def test_training_reduces_loss(self, training_graph, rng):
        params = graphsage.GraphSAGEParams.init(8, 16, 4, seed=0)
        model = graphsage.GraphSAGE(training_graph, params)
        features = rng.standard_normal((training_graph.rows, 8)).astype(np.float32)
        labels = rng.integers(0, 4, size=training_graph.rows)
        losses = [model.training_step(features, labels, learning_rate=0.05) for _ in range(8)]
        assert losses[-1] < losses[0]

    def test_training_time_estimate_structure(self, training_graph):
        estimate = graphsage.estimate_training_time(training_graph, (32, 32, 8), V100, backend="dgl")
        assert estimate.total_us == pytest.approx(
            estimate.spmm_us + estimate.gemm_us + estimate.overhead_us
        )
        with pytest.raises(ValueError):
            graphsage.estimate_training_time(training_graph, (32, 32, 8), V100, backend="jax")

    def test_sparsetir_backend_speeds_up_training(self):
        graph = generate_adjacency(3000, 36000, "powerlaw", seed=9)
        speedup = graphsage.end_to_end_speedup(graph, (64, 64, 16), V100)
        assert speedup > 1.0
        # End-to-end gains are bounded by Amdahl's law (dense GEMMs dominate
        # part of the iteration), as in Figure 15.
        assert speedup < 3.0


class TestRGCN:
    @pytest.fixture(scope="class")
    def hetero(self):
        return generate_relational_adjacency(300, 3000, 8, seed=4)

    def test_layer_forward_matches_manual(self, hetero, rng):
        params = rgcn.RGCNParams.init(8, 6, 5, seed=0)
        layer = rgcn.RGCNLayer(hetero, params)
        x = rng.standard_normal((300, 6)).astype(np.float32)
        out = layer.forward(x, activation=False)
        from repro.ops.rgms import rgms_reference

        expected = rgms_reference(hetero, x, params.relation_weights) + x @ params.self_weight
        assert np.allclose(out, expected, atol=1e-4)

    def test_two_layer_model_shapes(self, hetero, rng):
        model = rgcn.RGCN(hetero, in_feats=6, hidden=12, num_classes=3)
        logits = model.forward(rng.standard_normal((300, 6)).astype(np.float32))
        assert logits.shape == (300, 3)

    def test_forward_through_session_matches_reference(self, hetero, rng):
        from repro.runtime import Session

        model = rgcn.RGCN(hetero, in_feats=6, hidden=8, num_classes=3)
        x = rng.standard_normal((300, 6)).astype(np.float32)
        session = Session()
        compiled = model.forward(x, session=session)
        reference = model.forward(x)
        assert np.allclose(compiled, reference, atol=1e-3)
        # Two layers -> two kernel builds, executed on the fast path.
        assert session.stats.builds == 2
        assert session.stats.fast_runs == 2
        # A second forward pass reuses both lowered kernels.
        model.forward(x, session=session)
        assert session.stats.kernel_cache_hits == 2

    def test_speedup_table_covers_all_systems(self, hetero):
        table = rgcn.rgcn_speedup_table(hetero, 16, V100)
        assert set(table) == set(rgcn.RGCN_SYSTEMS)
        for estimate in table.values():
            assert estimate.duration_us > 0
            assert estimate.memory_footprint_gib >= 0

    def test_sparsetir_beats_frameworks_and_uses_less_memory(self, hetero):
        table = rgcn.rgcn_speedup_table(hetero, 32, V100)
        assert table["sparsetir_hyb_tc"].duration_us < table["graphiler"].duration_us
        assert table["sparsetir_hyb_tc"].duration_us < table["dgl"].duration_us
        assert (
            table["sparsetir_hyb_tc"].memory_footprint_bytes
            < table["graphiler"].memory_footprint_bytes
        )

    def test_unknown_system_rejected(self, hetero):
        with pytest.raises(ValueError):
            rgcn.estimate_rgcn_inference(hetero, 16, V100, "tensorflow")


class TestMinkowski:
    @pytest.fixture(scope="class")
    def conv_problem(self):
        return sparse_conv_problem(4, 8, PointCloudConfig(num_points=300, voxel_size=1.0, seed=5))

    def test_layer_forward_shape(self, conv_problem, rng):
        layer = minkowski.SparseConvLayer.create(conv_problem, seed=0)
        features = rng.standard_normal((conv_problem.num_in_points, 4)).astype(np.float32)
        out = layer.forward(features)
        assert out.shape == (conv_problem.num_out_points, 8)
        assert (out >= 0).all()  # ReLU applied

    def test_backbone_stacks_layers(self):
        config = PointCloudConfig(num_points=200, voxel_size=1.0, seed=6)
        backbone = minkowski.MinkowskiBackbone([(4, 8), (8, 8)], config=config)
        rng = np.random.default_rng(0)
        features = rng.standard_normal(
            (backbone.layers[0].problem.num_in_points, 4)
        ).astype(np.float32)
        out = backbone.forward(features)
        assert out.shape[1] == 8

    def test_forward_through_session_matches_reference(self, conv_problem, rng):
        from repro.runtime import Session

        layer = minkowski.SparseConvLayer.create(conv_problem, seed=0)
        features = rng.standard_normal((conv_problem.num_in_points, 4)).astype(np.float32)
        session = Session()
        compiled = layer.forward(features, session=session)
        reference = layer.forward(features)
        assert np.allclose(compiled, reference, atol=1e-4)
        assert session.stats.fast_runs == 1

    def test_layer_time_estimates(self, conv_problem):
        times = minkowski.estimate_layer_times(conv_problem, V100)
        assert times["sparsetir_tc_us"] > 0
        assert times["torchsparse_us"] > 0
        assert times["speedup"] == pytest.approx(
            times["torchsparse_us"] / times["sparsetir_tc_us"]
        )
