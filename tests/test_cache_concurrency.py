"""Concurrency: threads sharing a Session / KernelCache must never corrupt it.

The kernel cache is hit from model code (one session shared across layers),
the tuner, and benchmark sweeps; any of those may run under a thread pool.
These tests hammer the same cache from multiple threads — same structure
(racing on one entry, including the lazy emitted-runner compile) and mixed
structures (racing on LRU bookkeeping and disk write-through) — and assert
that every thread saw bit-correct results and the cache ended consistent.
"""

import threading

import numpy as np

from repro.core.codegen.cache import DiskKernelCache, KernelCache
from repro.formats.csr import CSRMatrix
from repro.ops.spmm import build_spmm_program, spmm_reference
from repro.runtime.session import Session

THREADS = 8
ROUNDS = 10


def _run_threads(worker):
    errors = []
    barrier = threading.Barrier(THREADS)

    def wrapped(tid):
        try:
            barrier.wait()
            worker(tid)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append((tid, repr(exc)))

    threads = [threading.Thread(target=wrapped, args=(tid,)) for tid in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors


class TestSharedSession:
    def test_same_structure_from_many_threads(self):
        csr = CSRMatrix.random(rows=20, cols=16, density=0.25, seed=0)
        session = Session(persistent=False)
        rng = np.random.default_rng(1)
        features = [rng.standard_normal((16, 4)).astype(np.float32) for _ in range(THREADS)]
        expected = [spmm_reference(csr, x) for x in features]

        def worker(tid):
            for _ in range(ROUNDS):
                out = session.spmm(csr, features[tid])
                assert np.allclose(out, expected[tid], atol=1e-4)

        _run_threads(worker)
        # Every thread raced on ONE structural entry; the cache must hold it
        # exactly once and account for every build.
        assert len(session.cache) == 1
        stats = session.cache.stats
        assert stats.hits + stats.misses == THREADS * ROUNDS
        assert stats.misses >= 1
        assert session.stats.runs == THREADS * ROUNDS

    def test_mixed_structures_with_eviction(self):
        session = Session(persistent=False)
        session.cache.capacity = 4  # force LRU churn under contention
        matrices = [
            CSRMatrix.random(rows=10 + i, cols=12, density=0.3, seed=i) for i in range(6)
        ]
        rng = np.random.default_rng(2)
        feats = rng.standard_normal((12, 3)).astype(np.float32)
        expected = [spmm_reference(m, feats) for m in matrices]

        def worker(tid):
            for round_ in range(ROUNDS):
                index = (tid + round_) % len(matrices)
                out = session.spmm(matrices[index], feats)
                assert np.allclose(out, expected[index], atol=1e-4)

        _run_threads(worker)
        assert len(session.cache) <= 4


class TestDiskWriteThrough:
    def test_concurrent_writers_leave_no_partial_entries(self, tmp_path):
        """Atomic write-rename: concurrent put/get of the same keys must only
        ever observe complete payloads."""
        csr = CSRMatrix.random(rows=18, cols=14, density=0.3, seed=3)
        feats = np.ones((14, 2), dtype=np.float32)
        func = build_spmm_program(csr, 2, feats)

        def worker(tid):
            # Each thread gets its own in-memory cache but shares the disk
            # directory, so every round exercises the disk read/write paths.
            cache = KernelCache(disk=DiskKernelCache(tmp_path))
            session = Session(cache=cache)
            for _ in range(ROUNDS):
                out = session.run(func)["C"].reshape(csr.rows, 2)
                assert np.allclose(out, spmm_reference(csr, feats), atol=1e-4)

        _run_threads(worker)
        disk = DiskKernelCache(tmp_path)
        assert len(disk) == 1
        # No temp files left behind, and the surviving entry loads cleanly.
        leftovers = [p for p in disk.dir.iterdir() if p.suffix == ".tmp"]
        assert not leftovers
        key = next(iter(disk.dir.glob("*.pkl"))).stem
        entry = disk.get(key)
        assert entry is not None and entry.source is not None
        assert disk.stats.errors == 0
