"""Unit tests for the device specs, workload descriptions and GPU cost model."""

import dataclasses

import numpy as np
import pytest

from repro.core import Schedule, build, lower_sparse_iterations
from repro.ops.spmm import build_spmm_program
from repro.perf.cache import CacheHierarchy, LRUCache, reuse_distance_hit_rate
from repro.perf.device import RTX3070, V100, device_by_name
from repro.perf.gpu_model import GPUModel, PerfReport, profile_kernel
from repro.perf.kernel_features import extract_workload
from repro.perf.tensor_core import MMA_SHAPES, cuda_core_time_us, mma_tiles, padding_waste, tensor_core_time_us
from repro.perf.workload import BlockGroup, KernelWorkload


class TestDevice:
    def test_lookup_by_name(self):
        assert device_by_name("v100") is V100
        assert device_by_name("RTX3070") is RTX3070
        with pytest.raises(KeyError):
            device_by_name("h100")

    def test_derived_rates(self):
        assert V100.fp32_flops_per_us == pytest.approx(15.7e6)
        assert V100.hbm_bandwidth_bytes_per_us == pytest.approx(900e3)
        assert V100.flops_per_us("float16", tensor_core=True) == pytest.approx(125e6)
        assert V100.flops_per_us("float16") > V100.flops_per_us("float32")

    def test_v100_has_more_bandwidth_than_rtx3070(self):
        assert V100.hbm_bandwidth_gbs > RTX3070.hbm_bandwidth_gbs
        assert V100.tensor_core_tflops > RTX3070.tensor_core_tflops

    def test_float64_rate_below_float32(self):
        for device in (V100, RTX3070):
            assert device.flops_per_us("float64") < device.flops_per_us("float32")
        assert V100.flops_per_us("float64") == pytest.approx(7.8e6)


class TestWorkload:
    def test_block_group_arrays(self):
        group = BlockGroup("g", 4, 128, flops_per_block=[1, 2, 3, 4],
                           dram_read_bytes_per_block=10.0)
        assert group.total_flops() == 10
        assert group.read_bytes_array().shape == (4,)
        assert group.total_dram_bytes() == 40

    def test_block_group_validation(self):
        with pytest.raises(ValueError):
            BlockGroup("g", -1, 128, 1.0, 1.0)
        with pytest.raises(ValueError):
            BlockGroup("g", 1, 0, 1.0, 1.0)
        with pytest.raises(ValueError):
            BlockGroup("g", 1, 128, 1.0, 1.0, compute_efficiency=0.0)
        with pytest.raises(ValueError):
            BlockGroup("g", 2, 128, [1.0, 2.0, 3.0], 1.0).flops_array()

    def test_workload_aggregation_and_merge(self):
        a = KernelWorkload("a", [BlockGroup("g1", 2, 64, 100.0, 10.0)])
        b = KernelWorkload("b", [BlockGroup("g2", 3, 64, 50.0, 5.0)])
        merged = a.merged(b)
        assert merged.total_blocks() == 5
        assert merged.total_flops() == 2 * 100 + 3 * 50
        assert merged.num_launches == 2


class TestGPUModel:
    def make_group(self, **kwargs):
        defaults = dict(
            name="g", num_blocks=256, threads_per_block=128,
            flops_per_block=1e5, dram_read_bytes_per_block=1e4,
            dram_write_bytes_per_block=1e3,
        )
        defaults.update(kwargs)
        return BlockGroup(**defaults)

    def test_occupancy_limited_by_threads_and_shared_memory(self):
        model = GPUModel(V100)
        light = self.make_group()
        heavy_shared = self.make_group(shared_mem_bytes=48 * 1024)
        assert model.blocks_per_sm(light) > model.blocks_per_sm(heavy_shared)
        assert 0.0 < model.occupancy(light) <= 1.0

    def test_more_work_takes_longer(self):
        model = GPUModel(V100)
        small = KernelWorkload("s", [self.make_group()])
        big = KernelWorkload("b", [self.make_group(num_blocks=4096)])
        assert model.estimate(big).duration_us > model.estimate(small).duration_us

    def test_memory_bound_kernel_scales_with_bandwidth(self):
        group = self.make_group(flops_per_block=10.0, dram_read_bytes_per_block=1e6,
                                num_blocks=2048)
        workload = KernelWorkload("mem", [group])
        t_v100 = GPUModel(V100).estimate(workload).duration_us
        t_3070 = GPUModel(RTX3070).estimate(workload).duration_us
        assert t_3070 > t_v100
        ratio = t_3070 / t_v100
        assert 1.2 < ratio < 3.5  # roughly the bandwidth ratio

    def test_tensor_core_speeds_up_compute_bound_kernel(self):
        base = self.make_group(flops_per_block=5e6, dram_read_bytes_per_block=1e3,
                               dtype="float16")
        tc = self.make_group(flops_per_block=5e6, dram_read_bytes_per_block=1e3,
                             dtype="float16", uses_tensor_core=True)
        model = GPUModel(V100)
        assert (
            model.estimate(KernelWorkload("tc", [tc])).duration_us
            < model.estimate(KernelWorkload("no_tc", [base])).duration_us
        )

    def test_load_imbalance_increases_duration(self):
        balanced = self.make_group(flops_per_block=1e4,
                                   dram_read_bytes_per_block=np.full(256, 1e4))
        skewed_bytes = np.full(256, 1e4)
        skewed_bytes[0] = 256 * 1e4  # one block does everything extra
        skewed = self.make_group(flops_per_block=1e4, dram_read_bytes_per_block=skewed_bytes)
        model = GPUModel(V100)
        assert (
            model.estimate(KernelWorkload("skew", [skewed])).duration_us
            > model.estimate(KernelWorkload("flat", [balanced])).duration_us
        )

    def test_launch_overhead_charged_per_launch(self):
        group = self.make_group(num_blocks=16)
        one = KernelWorkload("one", [group], num_launches=1)
        many = KernelWorkload("many", [group], num_launches=10)
        model = GPUModel(V100)
        delta = model.estimate(many).duration_us - model.estimate(one).duration_us
        assert delta >= 9 * V100.kernel_launch_us * 0.99

    def test_report_properties(self):
        model = GPUModel(V100)
        report = model.estimate(KernelWorkload("w", [self.make_group()], memory_footprint_bytes=1e6))
        assert isinstance(report, PerfReport)
        assert report.duration_ms == pytest.approx(report.duration_us / 1e3)
        assert report.achieved_bandwidth_gbs > 0
        assert report.achieved_tflops > 0
        assert report.memory_footprint_bytes == 1e6
        assert report.speedup_over(report) == pytest.approx(1.0)

    def test_empty_group_costs_nothing(self):
        model = GPUModel(V100)
        empty = KernelWorkload("e", [BlockGroup("g", 0, 32, 0.0, 0.0)])
        assert model.estimate(empty).duration_us <= V100.kernel_launch_us + V100.dram_latency_us + 1e-6

    def test_vector_efficiency_monotonic_over_widths(self):
        # Widths 3/5/6/7 used to fall through to efficiency 1.0, pricing a
        # width-3 load *better* than width-4; the floored lookup makes wider
        # accesses never slower on a memory-bound group.
        model = GPUModel(V100)
        durations = []
        for width in range(1, 9):
            group = self.make_group(flops_per_block=10.0, dram_read_bytes_per_block=1e6,
                                    num_blocks=2048, vector_width=width)
            durations.append(model.estimate(KernelWorkload("v", [group])).duration_us)
        for narrow, wide in zip(durations, durations[1:]):
            assert wide <= narrow + 1e-9
        # And the known widths still differ (the factor is not flat).
        assert durations[0] > durations[3]


class TestKernelFeatureExtraction:
    """Regressions for the IR-based feature extraction bugfixes."""

    def _kernel(self, csr, rng, feat=8, dtype="float32", cache_write=False):
        features = rng.standard_normal((csr.cols, feat)).astype(dtype)
        func = build_spmm_program(csr, feat, features, dtype=dtype)
        if not cache_write:
            return build(func)
        schedule = Schedule(lower_sparse_iterations(func))
        schedule.cache_write("spmm_compute", "C", "local")
        return build(schedule.func)

    def test_register_caching_not_forced(self, small_csr, rng):
        # A kernel without cache_write must not report register caching
        # (``register_caching or True`` used to pin it on for every group).
        workload = extract_workload(self._kernel(small_csr, rng))
        assert workload.groups
        assert not any(group.register_caching for group in workload.groups)

    def test_cache_write_annotation_sets_register_caching(self, small_csr, rng):
        workload = extract_workload(self._kernel(small_csr, rng, cache_write=True))
        assert any(group.register_caching for group in workload.groups)

    def test_spill_traffic_raises_uncached_estimate(self, small_csr, rng):
        # With the flag honestly False the spill penalties in the GPU model
        # are live again: the same workload priced with register caching
        # switched on must be strictly cheaper.
        workload = extract_workload(self._kernel(small_csr, rng))
        model = GPUModel(V100)
        spilled = model.estimate(workload).duration_us
        cached = model.estimate(
            KernelWorkload(
                name=workload.name,
                groups=[dataclasses.replace(g, register_caching=True) for g in workload.groups],
                num_launches=workload.num_launches,
                memory_footprint_bytes=workload.memory_footprint_bytes,
            )
        ).duration_us
        assert spilled > cached

    def test_float64_spmm_estimate_exceeds_float32_twin(self, small_csr, rng):
        f32 = profile_kernel(self._kernel(small_csr, rng, dtype="float32"), V100)
        f64 = profile_kernel(self._kernel(small_csr, rng, dtype="float64"), V100)
        assert f64.duration_us > f32.duration_us
        workload = extract_workload(self._kernel(small_csr, rng, dtype="float64"))
        assert any(group.dtype == "float64" for group in workload.groups)


class TestCache:
    def test_lru_hits_on_repeated_access(self):
        cache = LRUCache(capacity_bytes=1024, line_bytes=64)
        cache.access(0)
        assert cache.access(8)          # same line
        assert not cache.access(4096)   # new line
        stats = cache.stats()
        assert stats.accesses == 3 and stats.hits == 1

    def test_lru_eviction(self):
        cache = LRUCache(capacity_bytes=128, line_bytes=64, associativity=1)
        cache.access(0)
        cache.access(64)     # maps to the other set
        cache.access(128)    # evicts line 0 (same set, associativity 1)
        assert not cache.access(0)

    def test_hierarchy_l1_miss_goes_to_l2(self):
        hierarchy = CacheHierarchy(l1_bytes=128, l2_bytes=4096, line_bytes=64)
        l1_hit, l2_hit = hierarchy.access(0)
        assert not l1_hit and l2_hit is False
        l1_hit, l2_hit = hierarchy.access(0)
        assert l1_hit and l2_hit is None

    def test_run_trace_statistics(self):
        hierarchy = CacheHierarchy(l1_bytes=256, l2_bytes=4096, line_bytes=64)
        stats = hierarchy.run_trace([0, 64, 0, 64, 128, 0])
        assert stats["l1"].accesses == 6
        assert 0.0 <= stats["l1"].hit_rate <= 1.0
        assert stats["l2"].accesses <= 6

    def test_invalid_cache_parameters(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_reuse_distance_model_bounds(self):
        assert reuse_distance_hit_rate(100, 1000, 1e6) == pytest.approx(0.9)
        assert reuse_distance_hit_rate(1e6, 2e6, 1e3) < 0.5
        assert reuse_distance_hit_rate(10, 0, 100) == 0.0


class TestTensorCore:
    def test_mma_tile_counting(self):
        shape = MMA_SHAPES["mma_m16n16k16"]
        assert mma_tiles(16, 16, 16, shape) == 1
        assert mma_tiles(17, 16, 16, shape) == 2
        assert mma_tiles(32, 32, 32, shape) == 8

    def test_tensor_core_faster_than_cuda_core(self):
        flops = 2 * 1024 * 1024 * 64
        assert tensor_core_time_us(1024, 1024, 64, V100) < cuda_core_time_us(flops, V100)

    def test_padding_waste(self):
        assert padding_waste(16, 16, 16, 16) == 0.0
        assert padding_waste(17, 16, 16, 16) == pytest.approx(1 - 17 * 16 / (32 * 16))
        assert padding_waste(0, 0, 16, 16) == 0.0
