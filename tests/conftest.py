"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.formats.csr import CSRMatrix


@pytest.fixture(autouse=True)
def _hermetic_cache_env(monkeypatch):
    """Strip ambient persistent-state environment from every test.

    A developer's ``$REPRO_KERNEL_CACHE`` / ``$REPRO_TUNING_RECORDS`` must
    never leak into tests (warm-started kernels would mask real lowering
    bugs, and concurrent test runs would race on one shared directory), and
    tests must never pollute the developer's caches.  Tests that exercise
    the environment handling set the variables explicitly via
    ``monkeypatch.setenv`` on top of this clean slate.
    """
    monkeypatch.delenv("REPRO_KERNEL_CACHE", raising=False)
    monkeypatch.delenv("REPRO_TUNING_RECORDS", raising=False)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def small_csr():
    """A small random CSR matrix with at least one empty and one dense-ish row."""
    rng = np.random.default_rng(42)
    dense = (rng.random((12, 16)) < 0.25).astype(np.float32) * rng.random((12, 16)).astype(
        np.float32
    )
    dense[3] = 0.0                      # an empty row
    dense[7, :10] = rng.random(10)      # a heavy row
    return CSRMatrix.from_dense(dense)


@pytest.fixture
def tiny_csr():
    dense = np.array(
        [
            [1.0, 0.0, 2.0, 0.0],
            [0.0, 0.0, 0.0, 0.0],
            [0.0, 3.0, 0.0, 4.0],
            [5.0, 0.0, 0.0, 6.0],
        ],
        dtype=np.float32,
    )
    return CSRMatrix.from_dense(dense)
