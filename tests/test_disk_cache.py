"""The persistent on-disk kernel cache: warm starts, corruption, versioning."""

import json
import os
import pickle
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.codegen.build import build
from repro.core.codegen.cache import (
    CACHE_ENV_VAR,
    DISK_SCHEMA_VERSION,
    DiskKernelCache,
    KernelCache,
    structural_fingerprint,
)
from repro.formats.csr import CSRMatrix
from repro.ops.spmm import build_spmm_program, spmm_reference
from repro.runtime.session import Session


@pytest.fixture
def csr():
    return CSRMatrix.random(rows=16, cols=12, density=0.3, seed=5)


def _build_once(csr, cache, feat=4, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((csr.cols, feat)).astype(np.float32)
    return build(build_spmm_program(csr, feat, x), cache=cache), x


class TestRoundTrip:
    def test_fresh_cache_loads_from_disk(self, csr, tmp_path):
        warm = KernelCache(disk=DiskKernelCache(tmp_path))
        kernel, x = _build_once(csr, warm)
        assert warm.stats.lowerings == 1 and warm.stats.emissions == 1

        cold = KernelCache(disk=DiskKernelCache(tmp_path))
        kernel2, x2 = _build_once(csr, cold, seed=1)
        assert cold.stats.disk_hits == 1 and cold.stats.hits == 1
        assert cold.stats.lowerings == 0 and cold.stats.emissions == 0
        # stage-II introspection survives the disk round trip.
        assert kernel2.stage2 is not None and kernel2.stage2.stage == "stage-II"
        out = kernel2.run()["C"].reshape(csr.rows, 4)
        assert kernel2.last_engine in ("native", "emitted")
        assert np.allclose(out, spmm_reference(csr, x2), atol=1e-4)

    def test_entry_files_and_metadata(self, csr, tmp_path):
        cache = KernelCache(disk=DiskKernelCache(tmp_path))
        _build_once(csr, cache)
        disk = cache.disk
        pkls = list(disk.dir.glob("*.pkl"))
        assert len(pkls) == 1
        key = pkls[0].stem
        assert (disk.dir / f"{key}.py").exists()  # readable emitted source
        meta = json.loads((disk.dir / f"{key}.json").read_text())
        assert meta["schema"] == DISK_SCHEMA_VERSION
        assert meta["fingerprint"] == key
        assert meta["emitted"] is True
        listing = (disk.dir / f"{key}.py").read_text()
        assert listing.startswith(f"# fingerprint: {key}")
        assert "def make_kernel" in listing

    def test_value_arrays_never_persisted(self, csr, tmp_path):
        """Disk entries are structural: no feature/weight data on disk."""
        cache = KernelCache(disk=DiskKernelCache(tmp_path))
        _build_once(csr, cache)
        payload = pickle.loads(next(cache.disk.dir.glob("*.pkl")).read_bytes())
        assert all(buf.data is None for buf in payload["program"].buffers)


class TestCorruptionTolerance:
    def test_truncated_payload_is_a_miss_and_removed(self, csr, tmp_path):
        cache = KernelCache(disk=DiskKernelCache(tmp_path))
        _build_once(csr, cache)
        pkl = next(cache.disk.dir.glob("*.pkl"))
        key = pkl.stem
        pkl.write_bytes(pkl.read_bytes()[: 40])

        cold = DiskKernelCache(tmp_path)
        assert cold.get(key) is None
        assert cold.stats.errors == 1
        assert not pkl.exists()
        # The builder recovers by re-lowering and re-writing the entry.
        fresh = KernelCache(disk=DiskKernelCache(tmp_path))
        kernel, x = _build_once(csr, fresh, seed=2)
        assert fresh.stats.lowerings == 1
        assert np.allclose(
            kernel.run()["C"].reshape(csr.rows, 4), spmm_reference(csr, x), atol=1e-4
        )

    def test_garbage_and_mismatched_payloads(self, csr, tmp_path):
        disk = DiskKernelCache(tmp_path)
        disk.dir.mkdir(parents=True)
        (disk.dir / ("a" * 8 + ".pkl")).write_bytes(b"not a pickle at all")
        assert disk.get("a" * 8) is None
        # A valid pickle of the wrong shape is rejected too.
        (disk.dir / ("b" * 8 + ".pkl")).write_bytes(pickle.dumps(["nonsense"]))
        assert disk.get("b" * 8) is None
        # A renamed (fingerprint-mismatched) entry is rejected.
        cache = KernelCache(disk=DiskKernelCache(tmp_path))
        _build_once(csr, cache)
        real = next(p for p in cache.disk.dir.glob("*.pkl") if p.stem not in ("a" * 8, "b" * 8))
        moved = real.with_name("c" * 8 + ".pkl")
        moved.write_bytes(real.read_bytes())
        assert disk.get("c" * 8) is None
        assert disk.stats.errors == 3

    def test_schema_version_skew_is_a_miss(self, csr, tmp_path):
        cache = KernelCache(disk=DiskKernelCache(tmp_path))
        _build_once(csr, cache)
        pkl = next(cache.disk.dir.glob("*.pkl"))
        payload = pickle.loads(pkl.read_bytes())
        payload["schema"] = DISK_SCHEMA_VERSION + 1
        pkl.write_bytes(pickle.dumps(payload))
        assert DiskKernelCache(tmp_path).get(pkl.stem) is None


class TestEnvironmentControl:
    def test_env_var_disables_and_enables(self, monkeypatch, tmp_path):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        assert DiskKernelCache.from_env() is None
        monkeypatch.setenv(CACHE_ENV_VAR, "off")
        assert DiskKernelCache.from_env() is None
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        disk = DiskKernelCache.from_env()
        assert disk is not None and disk.root == tmp_path

    def test_session_persistent_flag(self, csr, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        session = Session(persistent=tmp_path)
        x = np.ones((csr.cols, 2), dtype=np.float32)
        session.spmm(csr, x)
        assert len(session.cache.disk) == 1
        # persistent=False never touches disk even with the env var set.
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "other"))
        hermetic = Session(persistent=False)
        hermetic.spmm(csr, x)
        assert hermetic.cache.disk is None
        assert not (tmp_path / "other").exists()


_COLD_START_SCRIPT = """
import numpy as np
from repro.formats.csr import CSRMatrix
from repro.runtime.session import Session

rng = np.random.default_rng(0)
dense = (rng.random((40, 30)) < 0.2).astype(np.float32) * rng.standard_normal((40, 30)).astype(np.float32)
csr = CSRMatrix.from_dense(dense)
session = Session()

x = rng.standard_normal((30, 8)).astype(np.float32)
out = session.spmm(csr, x)
assert np.allclose(out, csr.to_scipy() @ x, atol=1e-4)
scores = session.sddmm(csr, rng.standard_normal((40, 4)).astype(np.float32),
                       rng.standard_normal((4, 30)).astype(np.float32))
assert scores.shape == (csr.nnz,)

cache = session.cache.stats
print("STATS", cache.lowerings, cache.emissions, cache.disk_hits,
      session.stats.fast_runs, session.stats.interpreted_runs)
"""


class TestColdProcessWarmStart:
    def test_second_process_recompiles_nothing(self, tmp_path):
        """Acceptance: a cold-process re-run of a paper workload hits the
        on-disk cache with zero lowering and zero emission, and still serves
        every run from a fast tier (native or emitted)."""
        env = dict(os.environ, **{CACHE_ENV_VAR: str(tmp_path)})
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

        def run_once():
            proc = subprocess.run(
                [sys.executable, "-c", _COLD_START_SCRIPT],
                env=env,
                capture_output=True,
                text=True,
                timeout=120,
            )
            assert proc.returncode == 0, proc.stderr
            stats = [
                line for line in proc.stdout.splitlines() if line.startswith("STATS")
            ][0].split()[1:]
            return [int(v) for v in stats]

        lowerings, emissions, disk_hits, fast_runs, interpreted = run_once()
        assert lowerings == 2 and emissions == 2 and disk_hits == 0
        assert fast_runs == 2 and interpreted == 0

        lowerings, emissions, disk_hits, fast_runs, interpreted = run_once()
        assert lowerings == 0 and emissions == 0, "warm start recompiled something"
        assert disk_hits == 2
        assert fast_runs == 2 and interpreted == 0


class TestFingerprintStability:
    def test_fingerprint_survives_disk_round_trip(self, csr, tmp_path):
        """The persisted program re-fingerprints to its own key (sanity for
        corruption detection based on the fingerprint field)."""
        cache = KernelCache(disk=DiskKernelCache(tmp_path))
        rng = np.random.default_rng(0)
        x = rng.standard_normal((csr.cols, 4)).astype(np.float32)
        func = build_spmm_program(csr, 4, x)
        key = structural_fingerprint(func, {"horizontal_fusion": True})
        build(func, cache=cache)
        assert key in cache.disk
