"""Unit tests for the four axis kinds."""

import numpy as np
import pytest

from repro.core.axes import (
    DenseFixedAxis,
    DenseVariableAxis,
    SparseFixedAxis,
    SparseVariableAxis,
    dense_fixed,
    dense_variable,
    sparse_fixed,
    sparse_variable,
)


@pytest.fixture
def csr_axes():
    # 3 rows, 5 columns, nnz=5: rows have columns [1,3], [], [0,2,4]
    i = dense_fixed("I", 3)
    indptr = np.array([0, 2, 2, 5])
    indices = np.array([1, 3, 0, 2, 4])
    j = sparse_variable("J", i, 5, 5, indptr=indptr, indices=indices)
    return i, j


def test_dense_fixed_basics():
    axis = dense_fixed("I", 8)
    assert axis.is_dense and axis.is_fixed and axis.is_root
    assert axis.nnz_total() == 8
    assert axis.row_extent(0) == 8
    assert axis.position_to_coordinate(0, 5) == 5
    assert axis.coordinate_to_position(0, 5) == 5
    assert axis.coordinate_to_position(0, 9) == -1


def test_dense_fixed_rejects_negative_length():
    with pytest.raises(ValueError):
        dense_fixed("I", -1)


def test_sparse_variable_positions_and_coordinates(csr_axes):
    _, j = csr_axes
    assert j.is_sparse and j.is_variable
    assert j.nnz_total() == 5
    assert j.row_extent(0) == 2
    assert j.row_extent(1) == 0
    assert j.row_extent(2) == 3
    assert j.row_start(2) == 2
    assert j.position_to_coordinate(0, 1) == 3
    assert j.position_to_coordinate(2, 0) == 0
    assert j.coordinate_to_position(0, 3) == 1
    assert j.coordinate_to_position(0, 2) == -1  # structural zero


def test_sparse_variable_requires_consistent_indptr():
    i = dense_fixed("I", 2)
    with pytest.raises(ValueError):
        sparse_variable("J", i, 4, 3, indptr=np.array([0, 2, 3]), indices=np.array([0, 1]))
    with pytest.raises(ValueError):
        sparse_variable("J", i, 4, 2, indptr=np.array([1, 2, 2]), indices=np.array([0, 1]))
    with pytest.raises(ValueError):
        sparse_variable("J", i, 4, 2, indptr=np.array([0, 2, 1]), indices=np.array([0, 1]))


def test_sparse_variable_without_data_raises_on_queries():
    i = dense_fixed("I", 2)
    j = sparse_variable("J", i, 4, 6)
    with pytest.raises(ValueError):
        j.row_extent(0)
    with pytest.raises(ValueError):
        j.position_to_coordinate(0, 0)


def test_dense_variable_ragged_rows():
    i = dense_fixed("I", 3)
    indptr = np.array([0, 1, 4, 6])
    j = dense_variable("J", i, 3, 6, indptr=indptr)
    assert j.is_dense and j.is_variable
    assert j.row_extent(1) == 3
    assert j.position_to_coordinate(1, 2) == 2
    assert j.coordinate_to_position(1, 2) == 2
    assert j.coordinate_to_position(1, 3) == -1


def test_sparse_fixed_ell_axis():
    i = dense_fixed("I", 2)
    indices = np.array([1, 3, 0, 2])  # two rows, two slots each
    j = sparse_fixed("J", i, 4, 2, indices=indices)
    assert j.is_sparse and j.is_fixed
    assert j.nnz_total() == 4
    assert j.row_extent(0) == 2
    assert j.position_to_coordinate(1, 0) == 0
    assert j.coordinate_to_position(0, 3) == 1
    assert j.coordinate_to_position(0, 2) == -1


def test_ancestors_chain_and_depth(csr_axes):
    i, j = csr_axes
    k = dense_fixed("K", 7)
    assert i.ancestors() == [i]
    assert j.ancestors() == [i, j]
    assert j.depth() == 1
    assert k.depth() == 0


def test_axis_repr_mentions_kind(csr_axes):
    i, j = csr_axes
    assert "dense_fixed" in repr(i)
    assert "sparse_variable" in repr(j)


def test_constructors_return_expected_types():
    i = dense_fixed("I", 4)
    assert isinstance(i, DenseFixedAxis)
    assert isinstance(dense_variable("D", i, 4, 8), DenseVariableAxis)
    assert isinstance(sparse_fixed("S", i, 4, 2), SparseFixedAxis)
    assert isinstance(sparse_variable("V", i, 4, 8), SparseVariableAxis)
