"""Tests for the graph-level dataflow IR, fusion pass and compile Session API.

Correctness contract under test: a fused :class:`CompiledGraph` is **bit
exact** with its node-by-node unfused lowering (fusion never changes any
nest's computation or execution order), singleton graph nodes share kernel
cache entries with the eager ``Session`` methods, and every chain the
planner actually merges launches strictly fewer kernels than its unfused
counterpart (a merge is declined when it would demote native-capable
members to the emitted tier).
"""

import warnings

import numpy as np
import pytest

from repro.formats.csf import CSFTensor
from repro.formats.csr import CSRMatrix
from repro.graph import CompiledGraph, DataflowGraph, TensorRef, plan_groups
from repro.models.graphsage import GraphSAGE, GraphSAGEParams
from repro.models.minkowski import MinkowskiBackbone
from repro.models.rgcn import RGCN
from repro.runtime.session import Session
from repro.workloads.attention import (
    AttentionConfig,
    attention_inputs,
    band_mask,
    capture_sparse_attention,
    sparse_attention_reference,
)
from repro.workloads.pointcloud import PointCloudConfig


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def session():
    return Session(persistent=False)


@pytest.fixture
def csr(rng):
    return CSRMatrix.from_dense((rng.random((30, 30)) < 0.2).astype(np.float32))


def _spmm_chain(session, csr, x, depth=3):
    """Capture spmm -> relu -> ... alternating on one structure."""
    g = session.graph()
    ref = g.input("x", x)
    out = g.spmm(csr, ref)
    for _ in range(depth - 1):
        out = g.relu(out)
        out = g.spmm(csr, out)
    g.output(out)
    return g, out


class TestCapture:
    def test_nodes_and_refs(self, session, csr, rng):
        x = rng.standard_normal((30, 4)).astype(np.float32)
        g, out = _spmm_chain(session, csr, x)
        graph = g.graph()
        assert isinstance(out, TensorRef)
        assert len(graph.nodes) == 5
        assert list(graph.inputs) == ["x"]
        assert [ref.name for ref in graph.outputs] == [out.name]
        assert out.shape == (30, 4) and out.dtype == "float32"

    def test_default_outputs_are_unconsumed(self, session, csr, rng):
        x = rng.standard_normal((30, 4)).astype(np.float32)
        g = session.graph()
        ref = g.input("x", x)
        a = g.spmm(csr, ref)
        b = g.relu(a)  # consumes a
        graph = g.graph()
        assert [ref.name for ref in graph.outputs] == [b.name]

    def test_capture_closed_after_graph(self, session, csr, rng):
        x = rng.standard_normal((30, 4)).astype(np.float32)
        g, _ = _spmm_chain(session, csr, x)
        g.graph()
        with pytest.raises(RuntimeError):
            g.spmm(csr, np.ones((30, 2), dtype=np.float32))

    def test_duplicate_input_rejected(self, session):
        g = session.graph()
        g.input("x", np.ones((2, 2), dtype=np.float32))
        with pytest.raises(ValueError):
            g.input("x", np.ones((2, 2), dtype=np.float32))

    def test_placeholder_input_needs_shape(self, session):
        g = session.graph()
        with pytest.raises(ValueError):
            g.input("x")

    def test_non_topological_graph_rejected(self, session, csr):
        dangling = TensorRef("ghost", (30, 4), "float32")
        g = session.graph()
        node = g.spmm(csr, dangling)
        with pytest.raises(ValueError, match="topological"):
            DataflowGraph(g._nodes, {}, [node])

    def test_bsr_kinds_reject_graph_edges(self, session, csr, rng):
        """Eagerly-padding decompositions cannot consume symbolic edges."""
        g = session.graph()
        ref = g.input("q", rng.standard_normal((2, 30, 4)).astype(np.float32))
        k = rng.standard_normal((2, 4, 30)).astype(np.float32)
        with pytest.raises(ValueError, match="graph edges"):
            g.batched_sddmm(csr, ref, k, format="bsr", block_size=2)


class TestLivenessAndFingerprint:
    def test_liveness_last_consumer(self, session, csr, rng):
        x = rng.standard_normal((30, 4)).astype(np.float32)
        g, out = _spmm_chain(session, csr, x, depth=2)
        graph = g.graph()
        live = graph.liveness()
        # v0 (first spmm) is consumed by node 1 (relu).
        assert live["v0"] == 1
        # The output is pinned past the last node.
        assert live[out.name] == len(graph.nodes)

    def test_fingerprint_stable_across_captures(self, session, csr, rng):
        x = rng.standard_normal((30, 4)).astype(np.float32)
        g1, _ = _spmm_chain(session, csr, x)
        g2, _ = _spmm_chain(session, csr, x)
        assert g1.graph().fingerprint() == g2.graph().fingerprint()

    def test_fingerprint_sees_structure_and_shape(self, session, csr, rng):
        x = rng.standard_normal((30, 4)).astype(np.float32)
        base = _spmm_chain(session, csr, x)[0].graph().fingerprint()
        # Different feature width -> different per-node programs.
        wider = _spmm_chain(
            session, csr, rng.standard_normal((30, 8)).astype(np.float32)
        )[0].graph().fingerprint()
        assert wider != base
        # Different mask -> different structural arrays.
        other = CSRMatrix.from_dense(
            (np.random.default_rng(7).random((30, 30)) < 0.2).astype(np.float32)
        )
        assert _spmm_chain(session, other, x)[0].graph().fingerprint() != base

    def test_fingerprint_ignores_fusion_choice(self, session, csr, rng):
        x = rng.standard_normal((30, 4)).astype(np.float32)
        g1, _ = _spmm_chain(session, csr, x)
        graph = g1.graph()
        fused = CompiledGraph(session, graph, fuse=True)
        unfused = CompiledGraph(session, graph, fuse=False)
        assert fused.fingerprint() == unfused.fingerprint()


class TestFusionPlanning:
    def test_single_structure_chain_is_one_group(self, session, csr, rng):
        x = rng.standard_normal((30, 4)).astype(np.float32)
        g, _ = _spmm_chain(session, csr, x)
        groups = plan_groups(g.graph())
        assert len(groups) == 1 and len(groups[0]) == 5

    def test_fuse_false_yields_singletons(self, session, csr, rng):
        x = rng.standard_normal((30, 4)).astype(np.float32)
        g, _ = _spmm_chain(session, csr, x)
        groups = plan_groups(g.graph(), fuse=False)
        assert [len(group) for group in groups] == [1] * 5

    def test_structure_change_merges_groups(self, session, csr, rng):
        """Nodes over different sparsity structures fuse into one launch:
        each structure brings its own namespaced axes into the shared
        program (per-relation / per-offset chains rely on this)."""
        other = CSRMatrix.from_dense(
            (np.random.default_rng(3).random((30, 30)) < 0.2).astype(np.float32)
        )
        x = rng.standard_normal((30, 4)).astype(np.float32)
        g = session.graph()
        ref = g.input("x", x)
        a = g.spmm(csr, ref)
        b = g.spmm(other, a)  # different sparsity structure, same group
        g.output(b)
        graph = g.graph()
        groups = plan_groups(graph)
        assert [len(group) for group in groups] == [2]
        fused = CompiledGraph(session, graph, fuse=True)
        unfused = CompiledGraph(session, graph, fuse=False)
        assert fused.num_kernel_launches == 1
        assert unfused.num_kernel_launches == 2
        assert np.array_equal(fused.run()[b.name], unfused.run()[b.name])

    def test_dtype_change_splits_groups(self, session, csr, rng):
        x64 = rng.standard_normal((30, 4)).astype(np.float64)
        w32 = rng.standard_normal((4, 4)).astype(np.float32)
        g = session.graph()
        ref = g.input("x", x64)
        a = g.spmm(csr, ref)            # float64 chain
        b = g.gemm(w32, w32)            # float32 node
        g.output(a, b)
        groups = plan_groups(g.graph())
        assert [group.dtype for group in groups] == ["float64", "float32"]

    def test_unfusable_kind_stays_alone(self, session, csr, rng):
        x = rng.standard_normal((30, 4)).astype(np.float32)
        g = session.graph()
        ref = g.input("x", x)
        a = g.spmm(csr, ref, format="hyb", num_col_parts=1)  # not fusable
        b = g.relu(a)
        g.output(b)
        groups = plan_groups(g.graph())
        assert [len(group) for group in groups] == [1, 1]
        assert not groups[0].nodes[0].spec.fusable


class TestCompiledGraphExecution:
    def test_fused_bit_exact_and_fewer_launches(self, session, csr, rng):
        x = rng.standard_normal((30, 4)).astype(np.float32)
        g1, out1 = _spmm_chain(session, csr, x)
        g2, out2 = _spmm_chain(session, csr, x)
        fused = g1.compile(fuse=True)
        unfused = g2.compile(fuse=False)
        assert fused.num_kernel_launches < unfused.num_kernel_launches
        assert fused.num_kernel_launches == 1
        rf, ru = fused.run()[out1.name], unfused.run()[out2.name]
        assert rf.dtype == ru.dtype
        assert np.array_equal(rf, ru)

    def test_matches_eager_session_exactly(self, session, csr, rng):
        """Unfused singleton kernels are the very programs the eager path
        builds, so even the float results match bitwise."""
        x = rng.standard_normal((30, 4)).astype(np.float32)
        g, out = _spmm_chain(session, csr, x, depth=2)
        compiled = g.compile(fuse=False)
        eager = session.relu(session.spmm(csr, x))
        eager = session.spmm(csr, eager)
        assert np.array_equal(compiled.run()[out.name], eager)

    def test_singletons_share_kernel_cache_with_eager(self, csr, rng):
        session = Session(persistent=False)
        x = rng.standard_normal((30, 4)).astype(np.float32)
        session.spmm(csr, x)  # populate the cache
        misses = session.stats.kernel_cache_misses
        g = session.graph()
        ref = g.input("x", x)
        g.output(g.spmm(csr, ref))
        compiled = g.compile(fuse=False)
        assert session.stats.kernel_cache_misses == misses  # pure hit
        assert compiled.num_kernel_launches == 1

    def test_refeed_new_inputs(self, session, csr, rng):
        x = rng.standard_normal((30, 4)).astype(np.float32)
        g, out = _spmm_chain(session, csr, x, depth=2)
        compiled = g.compile()
        x2 = rng.standard_normal((30, 4)).astype(np.float32)
        expected = session.spmm(csr, session.relu(session.spmm(csr, x2)))
        assert np.allclose(compiled.run({"x": x2})[out.name], expected,
                           rtol=1e-5, atol=1e-6)

    def test_repeated_runs_with_changing_feeds_stay_exact(self, session, csr, rng):
        """The fused unit reuses its flat buffers across calls; every call
        must still see freshly copied inputs and re-zeroed scratch."""
        x = rng.standard_normal((30, 4)).astype(np.float32)
        g1, out1 = _spmm_chain(session, csr, x, depth=3)
        g2, out2 = _spmm_chain(session, csr, x, depth=3)
        fused = g1.compile(fuse=True)
        unfused = g2.compile(fuse=False)
        for seed in (0, 1, 2):
            feed = np.random.default_rng(seed).standard_normal((30, 4)).astype(np.float32)
            rf = fused.run({"x": feed})[out1.name]
            ru = unfused.run({"x": feed})[out2.name]
            assert np.array_equal(rf, ru)

    def test_returned_outputs_do_not_alias_reused_buffers(self, session, csr, rng):
        x = rng.standard_normal((30, 4)).astype(np.float32)
        g, out = _spmm_chain(session, csr, x, depth=2)
        compiled = g.compile(fuse=True)
        first = compiled.run()[out.name]
        snapshot = first.copy()
        compiled.run({"x": x + 1.0})  # must not mutate the earlier result
        assert np.array_equal(first, snapshot)
        first[:] = -1.0  # nor may the caller corrupt the next run
        again = compiled.run()[out.name]
        assert np.array_equal(again, snapshot)

    def test_unknown_feed_rejected(self, session, csr, rng):
        x = rng.standard_normal((30, 4)).astype(np.float32)
        g, _ = _spmm_chain(session, csr, x)
        compiled = g.compile()
        with pytest.raises(ValueError, match="unknown graph input"):
            compiled.run({"nope": x})

    def test_placeholder_requires_feed(self, session, csr):
        g = session.graph()
        ref = g.input("x", shape=(30, 4))
        g.output(g.spmm(csr, ref))
        compiled = g.compile()
        with pytest.raises(ValueError, match="missing feed"):
            compiled.run()
        out = compiled.run({"x": np.ones((30, 4), dtype=np.float32)})
        assert next(iter(out.values())).shape == (30, 4)

    def test_multiple_outputs(self, session, csr, rng):
        x = rng.standard_normal((30, 4)).astype(np.float32)
        g = session.graph()
        ref = g.input("x", x)
        a = g.spmm(csr, ref)
        b = g.relu(a)
        g.output(a, b)
        compiled = g.compile()
        result = compiled.run()
        assert np.array_equal(result[b.name], np.maximum(result[a.name], 0.0))

    def test_stats_counters(self, csr, rng):
        session = Session(persistent=False)
        x = rng.standard_normal((30, 4)).astype(np.float32)
        g1, _ = _spmm_chain(session, csr, x)
        g1.compile(fuse=True)
        assert session.stats.graph_nodes_fused == 5
        g2, _ = _spmm_chain(session, csr, x)
        g2.compile(fuse=False)
        assert session.stats.graph_nodes_unfused == 5
        stats = session.stats.as_dict()
        assert stats["graph_nodes_fused"] == 5
        assert stats["graph_nodes_unfused"] == 5

    def test_float64_chain(self, session, csr, rng):
        x = rng.standard_normal((30, 4)).astype(np.float64)
        g1, out1 = _spmm_chain(session, csr, x, depth=2)
        g2, out2 = _spmm_chain(session, csr, x, depth=2)
        rf = g1.compile(fuse=True).run()[out1.name]
        ru = g2.compile(fuse=False).run()[out2.name]
        assert rf.dtype == np.float64
        assert np.array_equal(rf, ru)

    def test_empty_rows_and_empty_matrix(self, session, rng):
        empty = CSRMatrix.from_dense(np.zeros((6, 6), dtype=np.float32))
        x = rng.standard_normal((6, 3)).astype(np.float32)
        g = session.graph()
        ref = g.input("x", x)
        g.output(g.relu(g.spmm(empty, ref)))
        out = g.compile(fuse=True).run()
        assert np.all(next(iter(out.values())) == 0.0)


class TestAttentionChain:
    def _graphs(self, session):
        config = AttentionConfig(seq_len=96, num_heads=2, head_dim=8, band_size=32)
        mask = band_mask(config.seq_len, config.band_size, config.block_size)
        q, k, v = attention_inputs(config, seed=5)
        g1 = session.graph()
        out1 = capture_sparse_attention(g1, mask, q, k, v)
        g2 = session.graph()
        out2 = capture_sparse_attention(g2, mask, q, k, v)
        ref = sparse_attention_reference(mask, q, k, v)
        return g1, out1, g2, out2, ref

    def test_fused_attention_single_kernel(self, session, rng, monkeypatch):
        # Without the native tier all members run emitted, so the planner
        # merges the whole chain into one launch (the PR-5 contract).
        monkeypatch.setenv("REPRO_NATIVE", "0")
        g1, out1, g2, out2, ref = self._graphs(session)
        fused, unfused = g1.compile(fuse=True), g2.compile(fuse=False)
        assert fused.num_kernel_launches == 1
        assert unfused.num_kernel_launches == 3
        rf = fused.run()[out1.name]
        assert np.array_equal(rf, unfused.run()[out2.name])
        np.testing.assert_allclose(rf, ref, rtol=1e-4, atol=1e-5)
        # Attention weights are a softmax: each row with stored edges sums to 1
        # implicitly; the output lives in the convex hull of V rows.
        assert np.isfinite(rf).all()

    def test_fusion_declined_when_it_would_demote_native_members(self, session, rng):
        """With a C toolchain, merging the chain would pin the SDDMM/SpMM
        members to the emitted tier (softmax's ``exp`` is outside the C
        fragment), so the planner keeps them as native singletons."""
        from repro.core.codegen.emit_c import toolchain_available

        if not toolchain_available():
            pytest.skip("requires a C toolchain")
        g1, out1, g2, out2, ref = self._graphs(session)
        fused, unfused = g1.compile(fuse=True), g2.compile(fuse=False)
        assert fused.num_kernel_launches == 3
        assert fused.num_nodes_fused == 0
        rf = fused.run()[out1.name]
        assert np.array_equal(rf, unfused.run()[out2.name])
        np.testing.assert_allclose(rf, ref, rtol=1e-4, atol=1e-5)


class TestModelCompile:
    def test_graphsage(self, session, rng):
        graph = CSRMatrix.from_dense((rng.random((40, 40)) < 0.15).astype(np.float32))
        model = GraphSAGE(graph, GraphSAGEParams.init(6, 5, 3))
        feats = rng.standard_normal((40, 6)).astype(np.float32)
        fused = model.compile(session, feats, fuse=True)
        unfused = model.compile(session, feats, fuse=False)
        assert fused.num_kernel_launches < unfused.num_kernel_launches
        assert np.array_equal(fused(), unfused())
        np.testing.assert_allclose(fused(), model.forward(feats), rtol=1e-4, atol=1e-5)
        feats2 = rng.standard_normal((40, 6)).astype(np.float32)
        np.testing.assert_allclose(fused(feats2), model.forward(feats2),
                                   rtol=1e-4, atol=1e-5)

    def test_rgcn(self, session, rng):
        adjacency = CSFTensor.from_dense(
            (rng.random((3, 25, 25)) < 0.15).astype(np.float32)
        )
        model = RGCN(adjacency, in_feats=4, hidden=5, num_classes=3)
        feats = rng.standard_normal((25, 4)).astype(np.float32)
        fused = model.compile(session, feats, fuse=True)
        unfused = model.compile(session, feats, fuse=False)
        assert fused.num_kernel_launches < unfused.num_kernel_launches
        assert np.array_equal(fused(), unfused())
        np.testing.assert_allclose(
            fused(), model.forward(feats, session=session), rtol=1e-4, atol=1e-5
        )

    def test_rgcn_with_empty_relation(self, session, rng):
        dense = np.zeros((3, 10, 10), dtype=np.float32)
        dense[0, 1, 2] = 1.0
        dense[2, 4, 0] = 1.0  # relation 1 has no edges
        adjacency = CSFTensor.from_dense(dense)
        model = RGCN(adjacency, in_feats=3, hidden=4, num_classes=2)
        feats = rng.standard_normal((10, 3)).astype(np.float32)
        fused = model.compile(session, feats, fuse=True)
        unfused = model.compile(session, feats, fuse=False)
        assert np.array_equal(fused(), unfused())

    def test_minkowski(self, session, rng):
        config = PointCloudConfig(num_points=200, seed=3)
        model = MinkowskiBackbone([(4, 6), (6, 3)], config=config)
        feats = rng.standard_normal(
            (model.layers[0].problem.num_in_points, 4)
        ).astype(np.float32)
        fused = model.compile(session, feats, fuse=True)
        unfused = model.compile(session, feats, fuse=False)
        assert fused.num_kernel_launches < unfused.num_kernel_launches
        assert np.array_equal(fused(), unfused())
        np.testing.assert_allclose(
            fused(), model.forward(feats, session=session), rtol=1e-4, atol=1e-5
        )


class TestOpsDeprecationShim:
    def test_keyword_session_is_silent(self, csr, rng):
        from repro.ops.spmm import spmm

        x = rng.standard_normal((30, 4)).astype(np.float32)
        session = Session(persistent=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            spmm(csr, x, session=session)
            spmm(csr, x)  # implicit default session: supported, silent

    def test_positional_session_warns(self, csr, rng):
        from repro.ops.spmm import spmm

        x = rng.standard_normal((30, 4)).astype(np.float32)
        session = Session(persistent=False)
        with pytest.warns(DeprecationWarning, match="positionally"):
            out = spmm(csr, x, "csr", 1, None, session)
        assert np.array_equal(out, session.spmm(csr, x))

    def test_positional_session_everywhere(self, csr, rng):
        from repro.ops.batched import batched_spmm
        from repro.ops.sddmm import sddmm

        session = Session(persistent=False)
        x = rng.standard_normal((30, 3)).astype(np.float32)
        y = rng.standard_normal((3, 30)).astype(np.float32)
        with pytest.warns(DeprecationWarning):
            sddmm(csr, x, y, True, session)
        feats = rng.standard_normal((2, 30, 3)).astype(np.float32)
        with pytest.warns(DeprecationWarning):
            batched_spmm(csr, feats, "csr", 16, session)

    def test_conflicting_duplicate_rejected(self, csr, rng):
        from repro.ops.spmm import spmm

        session = Session(persistent=False)
        x = rng.standard_normal((30, 4)).astype(np.float32)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="multiple values"):
                spmm(csr, x, "csr", 1, None, session, session=session)

    def test_too_many_positionals_rejected(self, csr, rng):
        from repro.ops.pruned_spmm import pruned_spmm
        from repro.formats.bsr import BSRMatrix

        bsr = BSRMatrix.from_csr(csr, 5)
        x = rng.standard_normal((30, 2)).astype(np.float32)
        session = Session(persistent=False)
        with pytest.raises(TypeError, match="too many positional"):
            pruned_spmm(bsr, x, session, "extra")
