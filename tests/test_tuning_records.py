"""The persistent tuning-record store: round trips, corruption, environment."""

import json

import pytest

from repro.tune.records import (
    RECORD_SCHEMA_VERSION,
    RECORDS_ENV_VAR,
    TuningRecord,
    TuningRecordStore,
    resolve_record_store,
)


@pytest.fixture
def record():
    return TuningRecord(
        fingerprint="f" * 16,
        workload="spmm",
        config={"format": "hyb", "num_col_parts": 4, "num_buckets": None},
        predicted_us=12.5,
        measured_s=0.0003,
        evaluated=40,
        strategy="evolutionary",
        seed=7,
        metadata={"device": "V100"},
    )


class TestRoundTrip:
    def test_put_get(self, record, tmp_path):
        store = TuningRecordStore(tmp_path)
        store.put(record)
        assert record.fingerprint in store
        assert len(store) == 1
        loaded = store.get(record.fingerprint)
        assert loaded is not None
        assert loaded.config == record.config
        assert loaded.predicted_us == record.predicted_us
        assert loaded.measured_s == record.measured_s
        assert loaded.strategy == "evolutionary"
        assert store.stats.writes == 1 and store.stats.hits == 1

    def test_json_is_human_readable(self, record, tmp_path):
        store = TuningRecordStore(tmp_path)
        store.put(record)
        path = store.dir / f"{record.fingerprint}.json"
        payload = json.loads(path.read_text())
        assert payload["schema"] == RECORD_SCHEMA_VERSION
        assert payload["workload"] == "spmm"
        assert payload["config"]["num_buckets"] is None

    def test_tuple_configs_normalise_to_lists(self, tmp_path):
        store = TuningRecordStore(tmp_path)
        record = TuningRecord("a" * 8, "rgms", {"widths": (1, 2, 4)})
        store.put(record)
        assert store.get("a" * 8).config["widths"] == [1, 2, 4]

    def test_miss_returns_none(self, tmp_path):
        store = TuningRecordStore(tmp_path)
        assert store.get("missing") is None
        assert store.stats.misses == 1

    def test_numpy_scalar_configs_persist(self, tmp_path):
        """Configs assembled from numpy candidates serialise like plain ints."""
        import numpy as np

        store = TuningRecordStore(tmp_path)
        record = TuningRecord(
            "d" * 8,
            "spmm",
            {
                "num_col_parts": np.int64(4),
                "scale": np.float32(0.5),
                "widths": np.array([1, 2, 4]),
            },
        )
        store.put(record)
        assert store.stats.errors == 0 and store.stats.writes == 1
        loaded = store.get("d" * 8)
        assert loaded.config == {"num_col_parts": 4, "scale": 0.5, "widths": [1, 2, 4]}

    def test_unserialisable_config_is_swallowed(self, tmp_path):
        """put() is best-effort: a bad config costs the record, not the run."""
        store = TuningRecordStore(tmp_path)
        store.put(TuningRecord("e" * 8, "spmm", {"callback": object()}))
        assert store.stats.errors == 1 and store.stats.writes == 0
        assert store.get("e" * 8) is None


class TestCorruptionTolerance:
    def test_truncated_json_is_a_miss_and_removed(self, record, tmp_path):
        store = TuningRecordStore(tmp_path)
        store.put(record)
        path = store.dir / f"{record.fingerprint}.json"
        path.write_text(path.read_text()[:25])
        cold = TuningRecordStore(tmp_path)
        assert cold.get(record.fingerprint) is None
        assert cold.stats.errors == 1
        assert not path.exists()

    def test_schema_skew_is_a_miss(self, record, tmp_path):
        store = TuningRecordStore(tmp_path)
        store.put(record)
        path = store.dir / f"{record.fingerprint}.json"
        payload = json.loads(path.read_text())
        payload["schema"] = RECORD_SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        assert TuningRecordStore(tmp_path).get(record.fingerprint) is None

    def test_renamed_record_rejected(self, record, tmp_path):
        store = TuningRecordStore(tmp_path)
        store.put(record)
        src = store.dir / f"{record.fingerprint}.json"
        dst = store.dir / ("0" * 16 + ".json")
        dst.write_text(src.read_text())
        cold = TuningRecordStore(tmp_path)
        assert cold.get("0" * 16) is None
        assert cold.stats.errors == 1


class TestEnvironmentControl:
    def test_env_var_disables_and_enables(self, monkeypatch, tmp_path):
        monkeypatch.delenv(RECORDS_ENV_VAR, raising=False)
        assert TuningRecordStore.from_env() is None
        monkeypatch.setenv(RECORDS_ENV_VAR, "off")
        assert TuningRecordStore.from_env() is None
        monkeypatch.setenv(RECORDS_ENV_VAR, str(tmp_path))
        store = TuningRecordStore.from_env()
        assert store is not None and store.root == tmp_path

    def test_resolve_record_store(self, monkeypatch, tmp_path):
        monkeypatch.delenv(RECORDS_ENV_VAR, raising=False)
        assert resolve_record_store(None) is None
        assert resolve_record_store(False) is None
        assert resolve_record_store(tmp_path).root == tmp_path
        explicit = TuningRecordStore(tmp_path)
        assert resolve_record_store(explicit) is explicit
        monkeypatch.setenv(RECORDS_ENV_VAR, str(tmp_path / "env"))
        assert resolve_record_store(None).root == tmp_path / "env"
        # False wins over the environment.
        assert resolve_record_store(False) is None
