"""The native (C) stage-IV backend: goldens, artifact cache, fallback ladder.

Golden tests pin the emitted C source of the three canonical kernels against
files committed under ``tests/goldens/`` (same ``--regen-golden`` workflow as
the NumPy goldens — regenerate, review the diff, commit).  The artifact-cache
tests plant skewed or corrupted ``.so`` records and assert they load as
*misses that rebuild*, never as imports; the subprocess test proves a cold
process reuses a warm native artifact with zero compilation.
"""

import difflib
import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.codegen.build import build
from repro.core.codegen.cache import (
    CACHE_ENV_VAR,
    DiskKernelCache,
    KernelCache,
)
from repro.core.codegen import emit_c
from repro.core.codegen.emit_c import (
    NATIVE_ENV_VAR,
    NATIVE_VERSION,
    UnsupportedForC,
    emit_c_source,
    find_compiler,
    native_tag,
    source_sha,
    toolchain_available,
)
from repro.formats.csr import CSRMatrix
from repro.ops.spmm import build_spmm_program, spmm_reference
from repro.runtime.vectorized import UnsupportedProgram

from test_emit_numpy import GOLDEN_DIR, canonical_lowered

needs_cc = pytest.mark.skipif(
    not toolchain_available(), reason="no C compiler available"
)


@pytest.fixture(autouse=True)
def _fresh_lib_memo():
    """Isolate the process-wide sha -> dlopened-library memo per test.

    Without this, the first test to compile a source pins its library for
    the whole session and later tests could never observe a disk hit or a
    rebuild for the same source.
    """
    with emit_c._MEMO_LOCK:
        saved = dict(emit_c._LIB_MEMO)
        emit_c._LIB_MEMO.clear()
    yield
    with emit_c._MEMO_LOCK:
        emit_c._LIB_MEMO.clear()
        emit_c._LIB_MEMO.update(saved)


@pytest.fixture
def csr():
    return CSRMatrix.random(rows=16, cols=12, density=0.3, seed=5)


def _build_once(csr, cache, feat=4, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((csr.cols, feat)).astype(np.float32)
    return build(build_spmm_program(csr, feat, x), cache=cache), x


class TestGoldenCSources:
    @pytest.mark.parametrize("name", ["spmm_csr", "sddmm_csr_fused", "pruned_spmm_bsr"])
    def test_emitted_c_matches_golden(self, name, request):
        c_source, _glue = emit_c_source(canonical_lowered(name))
        path = GOLDEN_DIR / f"{name}.c"
        if request.config.getoption("--regen-golden"):
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(c_source)
            pytest.skip(f"regenerated {path.name}")
        assert path.exists(), (
            f"golden file {path} is missing; run `pytest --regen-golden` to create it"
        )
        golden = path.read_text()
        if c_source != golden:
            diff = "\n".join(
                difflib.unified_diff(
                    golden.splitlines(),
                    c_source.splitlines(),
                    fromfile=f"goldens/{name}.c (committed)",
                    tofile=f"{name} (emitted now)",
                    lineterm="",
                )
            )
            pytest.fail(
                "emitted C source drifted from the golden file.  If the change\n"
                "is intentional, regenerate with `pytest --regen-golden` and\n"
                f"commit the diff.\n\n{diff}"
            )

    def test_emission_is_deterministic(self):
        func = canonical_lowered("spmm_csr")
        assert emit_c_source(func) == emit_c_source(func)

    def test_source_header_names_version(self):
        c_source, glue_source = emit_c_source(canonical_lowered("spmm_csr"))
        assert f"emit_c v{NATIVE_VERSION}" in c_source
        assert f"emit_c v{NATIVE_VERSION}" in glue_source

    def test_c_source_is_size_free(self):
        """Two structures of one program family share one C source (and so
        one compilation): sizes travel through tables and ``ipar``."""
        a = CSRMatrix.random(rows=16, cols=12, density=0.3, seed=1)
        b = CSRMatrix.random(rows=64, cols=48, density=0.1, seed=2)
        src_a, _ = emit_c_source(build(build_spmm_program(a, 4), cache=False).func)
        src_b, _ = emit_c_source(build(build_spmm_program(b, 4), cache=False).func)
        assert src_a == src_b

    @needs_cc
    @pytest.mark.parametrize("name", ["spmm_csr", "sddmm_csr_fused", "pruned_spmm_bsr"])
    def test_golden_c_compiles_and_runs_bit_exact(self, name, tmp_path):
        """The committed goldens are live code: compile the .c file that is
        actually in the repository and compare against the interpreter."""
        func = canonical_lowered(name)
        c_source, glue_source = emit_c_source(func)
        path = GOLDEN_DIR / f"{name}.c"
        assert path.exists()
        runner = emit_c.load_native(func, path.read_text(), glue_source)
        from repro.runtime.executor import prepare_arrays

        expected = build(func, cache=False).run(engine="interpret")
        got = runner(prepare_arrays(func, {}))
        for key in expected:
            assert expected[key].dtype == got[key].dtype, key
            assert np.array_equal(expected[key], got[key]), key


class TestUnsupportedConstructs:
    def test_exp_is_rejected(self):
        """softmax-style programs (exp) stay off the native tier: NumPy's
        SIMD exp is not bit-identical to libm's."""
        from repro.ops.batched import build_edge_softmax_program

        csr = CSRMatrix.random(rows=8, cols=8, density=0.4, seed=3)
        scores = np.random.default_rng(0).standard_normal((2, csr.nnz)).astype(np.float32)
        func = build(build_edge_softmax_program(csr, 2, scores), cache=False).func
        with pytest.raises(UnsupportedForC):
            emit_c_source(func)

    def test_unsupported_program_falls_back_not_errors(self, csr):
        from repro.ops.batched import build_edge_softmax_program

        scores = np.random.default_rng(0).standard_normal((2, csr.nnz)).astype(np.float32)
        kernel = build(build_edge_softmax_program(csr, 2, scores), cache=False)
        assert kernel.native_source() is None
        kernel.run()
        assert kernel.last_engine != "native"
        with pytest.raises(UnsupportedProgram):
            kernel.run(engine="native")


class TestToolchainGating:
    def test_env_var_disables_tier(self, monkeypatch, csr):
        monkeypatch.setenv(NATIVE_ENV_VAR, "0")
        assert find_compiler() is None and not toolchain_available()
        kernel, x = _build_once(csr, cache=False)
        out = kernel.run()
        assert kernel.last_engine == "emitted"
        assert np.allclose(out["C"].reshape(csr.rows, 4), spmm_reference(csr, x), atol=1e-4)

    def test_missing_compiler_is_graceful(self, monkeypatch, csr):
        """CC pointing at a non-existent path simulates a machine with no
        compiler: the native tier reports unavailable, never errors."""
        monkeypatch.delenv(NATIVE_ENV_VAR, raising=False)
        monkeypatch.setenv("CC", "/nonexistent/cc")
        assert not toolchain_available()
        kernel, x = _build_once(csr, cache=False)
        out = kernel.run()
        assert kernel.last_engine == "emitted"
        assert np.allclose(out["C"].reshape(csr.rows, 4), spmm_reference(csr, x), atol=1e-4)
        with pytest.raises(UnsupportedProgram):
            kernel.run(engine="native")

    @needs_cc
    def test_gating_is_not_memoised(self, monkeypatch):
        assert toolchain_available()
        monkeypatch.setenv(NATIVE_ENV_VAR, "off")
        assert not toolchain_available()
        monkeypatch.delenv(NATIVE_ENV_VAR)
        assert toolchain_available()


def _forget_compiled_libs():
    """Drop the process-wide sha -> library memo (simulates a cold process).

    Without this every second build in a test would reuse the already
    dlopened library and never consult the disk layer at all.
    """
    with emit_c._MEMO_LOCK:
        emit_c._LIB_MEMO.clear()


@needs_cc
class TestArtifactCache:
    def _warm(self, csr, tmp_path, seed=0):
        _forget_compiled_libs()
        cache = KernelCache(disk=DiskKernelCache(tmp_path))
        kernel, x = _build_once(csr, cache, seed=seed)
        out = kernel.run()
        assert kernel.last_engine == "native"
        assert np.allclose(out["C"].reshape(csr.rows, 4), spmm_reference(csr, x), atol=1e-4)
        return cache

    def _key_and_paths(self, cache):
        disk = cache.disk
        pkl = next(disk.dir.glob("*.pkl"))
        key = pkl.stem
        base = disk.dir / key
        return key, base.with_suffix(".c"), base.with_suffix(".so"), base.with_suffix(".json")

    def test_artifact_files_and_validity_record(self, csr, tmp_path):
        cache = self._warm(csr, tmp_path)
        assert cache.stats.native_rebuilds == 1 and cache.stats.native_hits == 0
        key, c_path, so_path, json_path = self._key_and_paths(cache)
        assert c_path.exists() and so_path.exists()
        assert c_path.read_text().startswith(f"/* fingerprint: {key} */")
        record = json.loads(json_path.read_text())["native"]
        assert record["native_version"] == NATIVE_VERSION
        assert record["tag"] == native_tag()
        sha = source_sha(c_path.read_text().split("*/\n", 1)[1])
        assert record["source_sha256"] == sha

    def test_warm_cache_loads_without_compiling(self, csr, tmp_path):
        self._warm(csr, tmp_path)
        cold = self._warm(csr, tmp_path, seed=1)
        assert cold.stats.native_hits == 1 and cold.stats.native_rebuilds == 0

    def test_version_skew_is_a_miss_that_rebuilds(self, csr, tmp_path):
        """Acceptance regression: plant an artifact whose recorded emitter
        version is stale — it must rebuild, never import."""
        self._warm(csr, tmp_path)
        cache = KernelCache(disk=DiskKernelCache(tmp_path))
        _key, _c, so_path, json_path = self._key_and_paths(cache)
        mtime = so_path.stat().st_mtime_ns
        meta = json.loads(json_path.read_text())
        meta["native"]["native_version"] = NATIVE_VERSION - 1
        json_path.write_text(json.dumps(meta))

        cold = self._warm(csr, tmp_path, seed=2)
        assert cold.stats.native_hits == 0 and cold.stats.native_rebuilds == 1
        # The artifact was recompiled and republished with the current record.
        assert so_path.stat().st_mtime_ns != mtime
        record = json.loads(json_path.read_text())["native"]
        assert record["native_version"] == NATIVE_VERSION

    def test_platform_tag_skew_is_a_miss(self, csr, tmp_path):
        self._warm(csr, tmp_path)
        cache = KernelCache(disk=DiskKernelCache(tmp_path))
        _key, _c, _so, json_path = self._key_and_paths(cache)
        meta = json.loads(json_path.read_text())
        meta["native"]["tag"] = "win32-sparc-cpython-27"
        json_path.write_text(json.dumps(meta))
        cold = self._warm(csr, tmp_path, seed=3)
        assert cold.stats.native_hits == 0 and cold.stats.native_rebuilds == 1

    def test_source_hash_skew_is_a_miss(self, csr, tmp_path):
        self._warm(csr, tmp_path)
        cache = KernelCache(disk=DiskKernelCache(tmp_path))
        _key, _c, _so, json_path = self._key_and_paths(cache)
        meta = json.loads(json_path.read_text())
        meta["native"]["source_sha256"] = "0" * 64
        json_path.write_text(json.dumps(meta))
        cold = self._warm(csr, tmp_path, seed=4)
        assert cold.stats.native_hits == 0 and cold.stats.native_rebuilds == 1

    def test_corrupt_so_with_valid_record_rebuilds(self, csr, tmp_path):
        """A truncated shared object behind a valid json record fails to
        dlopen; the loader discards it and rebuilds rather than erroring.

        The corrupt artifact is planted *without* ever loading its path in
        this process: ``dlopen`` dedupes loaded libraries by path name, so a
        previously loaded good artifact at the same path would mask the
        corruption (a real cold process has no such handle).
        """
        cache = KernelCache(disk=DiskKernelCache(tmp_path))
        kernel, _ = _build_once(csr, cache)
        c_source = kernel.native_source()
        assert c_source is not None
        key = next(cache.disk.dir.glob("*.pkl")).stem
        so_path = cache.disk.reserve_native(key)
        so_path.write_bytes(b"\x7fELF this is not a shared object")
        cache.disk.publish_native(key, c_source, source_sha(c_source))
        assert json.loads((cache.disk.dir / f"{key}.json").read_text())["native"]

        cold = self._warm(csr, tmp_path, seed=5)
        assert cold.stats.native_hits == 0 and cold.stats.native_rebuilds == 1
        # ... and the republished artifact is valid again.
        warm = self._warm(csr, tmp_path, seed=6)
        assert warm.stats.native_hits == 1 and warm.stats.native_rebuilds == 0

    def test_missing_so_with_record_is_a_miss(self, csr, tmp_path):
        self._warm(csr, tmp_path)
        cache = KernelCache(disk=DiskKernelCache(tmp_path))
        key, _c, so_path, _json = self._key_and_paths(cache)
        so_path.unlink()
        assert cache.disk.get_native(key, "anything") is None
        cold = self._warm(csr, tmp_path, seed=7)
        assert cold.stats.native_rebuilds == 1

    def test_discard_native_keeps_numpy_payload(self, csr, tmp_path):
        """Dropping the native artifact must not invalidate the (independent)
        lowered-program + emitted-NumPy payload."""
        cache = self._warm(csr, tmp_path)
        key, c_path, so_path, json_path = self._key_and_paths(cache)
        cache.disk.discard_native(key)
        assert not c_path.exists() and not so_path.exists()
        assert "native" not in json.loads(json_path.read_text())
        _forget_compiled_libs()
        cold = KernelCache(disk=DiskKernelCache(tmp_path))
        kernel, _ = _build_once(csr, cold, seed=8)
        assert cold.stats.disk_hits == 1 and cold.stats.lowerings == 0
        kernel.run()
        assert kernel.last_engine == "native"
        assert cold.stats.native_rebuilds == 1


_NATIVE_WARM_SCRIPT = """
import numpy as np
from repro.formats.csr import CSRMatrix
from repro.runtime.session import Session

rng = np.random.default_rng(0)
dense = (rng.random((40, 30)) < 0.2).astype(np.float32)
dense *= rng.standard_normal((40, 30)).astype(np.float32)
csr = CSRMatrix.from_dense(dense)
session = Session()

x = rng.standard_normal((30, 8)).astype(np.float32)
out = session.spmm(csr, x)
assert np.allclose(out, csr.to_scipy() @ x, atol=1e-4)

cache = session.cache.stats
print("STATS", cache.native_hits, cache.native_rebuilds, session.stats.native_runs)
"""


@needs_cc
class TestColdProcessNativeWarmStart:
    def test_second_process_compiles_nothing(self, tmp_path):
        """Acceptance: a cold process finds the warm ``.so`` through the disk
        cache and serves the run natively with zero compilation."""
        env = dict(os.environ, **{CACHE_ENV_VAR: str(tmp_path)})
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

        def run_once():
            proc = subprocess.run(
                [sys.executable, "-c", _NATIVE_WARM_SCRIPT],
                env=env,
                capture_output=True,
                text=True,
                timeout=180,
            )
            assert proc.returncode == 0, proc.stderr
            stats = [
                line for line in proc.stdout.splitlines() if line.startswith("STATS")
            ][0].split()[1:]
            return [int(v) for v in stats]

        native_hits, native_rebuilds, native_runs = run_once()
        assert native_hits == 0 and native_rebuilds == 1
        assert native_runs == 1

        native_hits, native_rebuilds, native_runs = run_once()
        assert native_rebuilds == 0, "warm start re-ran the C compiler"
        assert native_hits == 1
        assert native_runs == 1


@needs_cc
class TestNativeRunnerProtocol:
    def test_runner_built_once_and_reused(self, csr):
        kernel, _ = _build_once(csr, cache=False)
        first = kernel._native_runner()
        second = kernel._native_runner()
        assert first is not None and first is second

    def test_failed_build_decided_once(self, csr, monkeypatch):
        """A compile failure marks the entry so the fallback is decided once
        (no repeated compiler invocations on the hot path)."""
        kernel, x = _build_once(csr, cache=False)
        calls = []

        def failing_compile(c_source, out_path):
            calls.append(out_path)
            raise emit_c.NativeBuildError("injected failure")

        monkeypatch.setattr(emit_c, "compile_so", failing_compile)
        out = kernel.run()
        assert kernel.last_engine == "emitted"
        kernel.run()
        assert len(calls) == 1
        assert np.allclose(out["C"].reshape(csr.rows, 4), spmm_reference(csr, x), atol=1e-4)

    def test_session_counts_native_runs(self, csr):
        from repro.runtime.session import Session

        session = Session(persistent=False)
        x = np.random.default_rng(1).standard_normal((csr.cols, 4)).astype(np.float32)
        out = session.spmm(csr, x)
        assert session.stats.native_runs == 1
        assert session.stats.fast_runs == 1
        assert np.allclose(out, spmm_reference(csr, x), atol=1e-4)
