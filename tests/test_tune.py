"""Unit tests for the format/schedule tuner."""

import numpy as np
import pytest

from repro.tune import Choice, ParameterSpace, grid_search, random_search, tune_spmm
from repro.tune.search_space import config_key, sddmm_search_space, spmm_search_space
from repro.perf.device import V100
from repro.workloads.graphs import generate_adjacency


class TestParameterSpace:
    def test_size_and_enumeration(self):
        space = ParameterSpace([Choice("a", (1, 2)), Choice("b", ("x", "y", "z"))])
        assert len(space) == 6
        configs = list(space.configurations())
        assert len(configs) == 6
        assert {"a", "b"} == set(configs[0])

    def test_sampling_without_replacement(self):
        space = ParameterSpace([Choice("a", (1, 2, 3)), Choice("b", (1, 2))])
        sample = space.sample(4, seed=1)
        assert len(sample) == 4
        assert len({tuple(sorted(c.items())) for c in sample}) == 4
        assert len(space.sample(100, seed=1)) == len(space)

    def test_validation(self):
        with pytest.raises(ValueError):
            ParameterSpace([Choice("a", (1,)), Choice("a", (2,))])
        with pytest.raises(ValueError):
            Choice("empty", ())

    def test_predefined_spaces(self):
        assert len(spmm_search_space()) == 5 * 5 * 3
        assert len(sddmm_search_space()) == 4 * 3 * 3

    def test_subspace_preserves_order_and_rejects_unknown(self):
        space = spmm_search_space()
        sub = space.subspace(["num_col_parts", "num_buckets"])
        assert [c.name for c in sub.choices] == ["num_col_parts", "num_buckets"]
        assert len(sub) == 5 * 5
        with pytest.raises(KeyError, match="unknown parameters"):
            space.subspace(["num_col_parts", "warp_size"])

    def test_sample_with_generator_draws_single_config(self):
        space = spmm_search_space()
        rng = np.random.default_rng(0)
        config = space.sample(rng)
        assert isinstance(config, dict)
        assert space.contains(config)
        # Distinct draws from one generator differ eventually.
        draws = {config_key(space.sample(rng)) for _ in range(20)}
        assert len(draws) > 1

    def test_contains(self):
        space = ParameterSpace([Choice("a", (1, 2)), Choice("b", ("x",))])
        assert space.contains({"a": 1, "b": "x"})
        assert not space.contains({"a": 3, "b": "x"})     # value not a candidate
        assert not space.contains({"a": 1})               # missing parameter
        assert not space.contains({"a": 1, "b": "x", "c": 0})  # extra parameter

    def test_mutate_changes_exactly_one_parameter(self):
        space = ParameterSpace([Choice("a", (1, 2, 3)), Choice("b", ("x",))])
        rng = np.random.default_rng(1)
        config = {"a": 1, "b": "x"}
        mutated = space.mutate(config, rng)
        assert mutated != config
        assert sum(mutated[k] != config[k] for k in config) == 1
        assert space.contains(mutated)
        # A space with no mutable parameter returns the config unchanged.
        frozen = ParameterSpace([Choice("only", (7,))])
        assert frozen.mutate({"only": 7}, rng) == {"only": 7}

    def test_crossover_inherits_from_parents(self):
        space = ParameterSpace([Choice("a", (1, 2)), Choice("b", (10, 20))])
        rng = np.random.default_rng(2)
        child = space.crossover({"a": 1, "b": 10}, {"a": 2, "b": 20}, rng)
        assert child["a"] in (1, 2) and child["b"] in (10, 20)
        assert space.contains(child)


class TestSearchDrivers:
    def test_grid_search_finds_minimum(self):
        space = ParameterSpace([Choice("x", (1, 2, 3, 4))])
        result = grid_search(space, lambda config: (config["x"] - 3) ** 2)
        assert result.best_config == {"x": 3}
        assert result.best_cost == 0
        assert result.evaluated == 4
        assert len(result.history) == 4

    def test_random_search_respects_trial_budget(self):
        space = ParameterSpace([Choice("x", tuple(range(20)))])
        result = random_search(space, lambda c: c["x"], trials=5, seed=0)
        assert result.evaluated == 5
        assert result.best_cost == min(h["cost"] for h in result.history)

    def test_random_search_trials_beyond_space_size_dedupe(self):
        """A budget beyond the space never re-evaluates a configuration."""
        space = ParameterSpace([Choice("x", (1, 2, 3)), Choice("y", ("a", "b"))])
        calls = []
        result = random_search(space, lambda c: calls.append(dict(c)) or 0.0,
                               trials=1000, seed=0)
        assert result.evaluated == len(space) == 6
        assert len(calls) == 6
        assert len({config_key(c) for c in calls}) == 6

    def test_random_search_never_repeats_within_budget(self):
        space = ParameterSpace([Choice("x", tuple(range(10)))])
        result = random_search(space, lambda c: float(c["x"]), trials=8, seed=3)
        seen = [config_key(h["config"]) for h in result.history]
        assert len(seen) == len(set(seen)) == 8

    def test_random_search_rejects_nonpositive_trials(self):
        space = ParameterSpace([Choice("x", (1,))])
        with pytest.raises(ValueError, match="trials must be positive"):
            random_search(space, lambda c: 0.0, trials=0)


class TestSpMMTuner:
    @pytest.fixture(scope="class")
    def graph(self):
        return generate_adjacency(1500, 18000, "powerlaw", seed=2)

    def test_tuner_returns_valid_configuration(self, graph):
        result = tune_spmm(graph, 64, V100, max_trials=10)
        assert result.best_config["num_col_parts"] in (1, 2, 4, 8, 16)
        assert result.best_config["threads_per_block"] in (64, 128, 256)
        assert result.best_cost > 0

    def test_tuned_configuration_not_worse_than_default(self, graph):
        from repro.formats import HybFormat
        from repro.ops.spmm import spmm_hyb_workload
        from repro.perf.gpu_model import GPUModel

        result = tune_spmm(graph, 64, V100, max_trials=20, seed=3)
        model = GPUModel(V100)
        default = model.estimate(
            spmm_hyb_workload(HybFormat.from_csr(graph, num_col_parts=1), 64, V100)
        ).duration_us
        assert result.best_cost <= default * 1.001


class TestWallclockObjective:
    def test_wallclock_tuning_executes_through_three_tier_runtime(self):
        from repro.runtime import Session
        from repro.tune.search_space import Choice, ParameterSpace

        graph = generate_adjacency(300, 2400, "powerlaw", seed=7)
        session = Session()
        space = ParameterSpace(
            [
                Choice("num_col_parts", (1, 2)),
                Choice("num_buckets", (2,)),
                Choice("threads_per_block", (128,)),
            ]
        )
        result = tune_spmm(
            graph, 16, V100, space=space, session=session, objective="wallclock"
        )
        assert result.evaluated == 2
        assert result.best_cost > 0  # measured seconds, not model microseconds
        # Every candidate executed on the runtime's fast tiers, compile-once:
        # one build per structure, warm-up + timed call per candidate.
        assert session.stats.fast_runs == session.stats.runs >= 4
        assert session.stats.kernel_cache_hits >= 2

    def test_default_wallclock_space_drops_schedule_only_parameters(self):
        """threads_per_block does not change the NumPy execution, so the
        default wallclock space must not time duplicate configurations."""
        graph = generate_adjacency(200, 1200, "powerlaw", seed=9)
        result = tune_spmm(graph, 8, V100, max_trials=2, objective="wallclock")
        assert "threads_per_block" not in result.best_config
        assert {"num_col_parts", "num_buckets"} <= set(result.best_config)

    def test_unknown_objective_rejected(self):
        graph = generate_adjacency(100, 500, "powerlaw", seed=1)
        with pytest.raises(ValueError):
            tune_spmm(graph, 8, V100, objective="guess")
