"""Unit tests for the composable / specialised formats: BSR, ELL, hyb, DBSR, SR-BCRS."""

import numpy as np
import pytest

from repro.formats import BSRMatrix, CSRMatrix, DBSRMatrix, ELLMatrix, HybFormat, SRBCRSMatrix
from repro.formats.padding import padded_flops_inflation, padding_ratio_hyb, padding_ratio_percent


class TestBSR:
    def test_round_trip(self, small_csr):
        bsr = BSRMatrix.from_csr(small_csr, 4)
        assert np.allclose(bsr.to_dense()[: small_csr.rows, : small_csr.cols], small_csr.to_dense())

    def test_block_counts_and_density(self, small_csr):
        bsr = BSRMatrix.from_csr(small_csr, 4)
        assert bsr.nnz == small_csr.nnz
        assert bsr.nnz_stored == bsr.num_blocks * 16
        assert 0.0 < bsr.block_density <= 1.0

    def test_shape_padding_for_non_divisible(self):
        csr = CSRMatrix.random(10, 10, 0.3, seed=1)
        bsr = BSRMatrix.from_csr(csr, 4)
        assert bsr.shape == (12, 12)

    def test_axes_shapes(self, small_csr):
        bsr = BSRMatrix.from_csr(small_csr, 4)
        io, jo, ii, ji = bsr.to_axes()
        assert io.length == bsr.block_rows
        assert jo.nnz_total() == bsr.num_blocks
        assert ii.length == ji.length == 4

    def test_invalid_block_shape(self):
        with pytest.raises(ValueError):
            BSRMatrix((10, 10), 3, np.array([0]), np.array([]), None)


class TestELL:
    def test_from_csr_and_round_trip(self, tiny_csr):
        ell = ELLMatrix.from_csr(tiny_csr)
        assert ell.nnz_cols == tiny_csr.max_row_length()
        assert np.allclose(ell.to_dense(), tiny_csr.to_dense())

    def test_padding_ratio(self, tiny_csr):
        ell = ELLMatrix.from_csr(tiny_csr)
        assert ell.nnz == tiny_csr.nnz
        assert ell.padding_ratio == pytest.approx(1 - tiny_csr.nnz / ell.stored)

    def test_width_too_small_rejected(self, tiny_csr):
        with pytest.raises(ValueError):
            ELLMatrix.from_csr(tiny_csr, nnz_cols=1)

    def test_row_map_validation(self):
        with pytest.raises(ValueError):
            ELLMatrix((4, 4), np.full((2, 2), -1), row_map=np.array([0, 1, 2]))


class TestHyb:
    def test_preserves_values(self, small_csr):
        hyb = HybFormat.from_csr(small_csr, num_col_parts=2)
        assert np.allclose(hyb.to_dense(), small_csr.to_dense())
        assert hyb.nnz == small_csr.nnz

    def test_bucket_widths_are_powers_of_two(self, small_csr):
        hyb = HybFormat.from_csr(small_csr, num_col_parts=1, num_buckets=3)
        assert hyb.bucket_widths == [1, 2, 4]
        assert all(b.width in (1, 2, 4) for b in hyb.buckets)

    def test_long_rows_are_split(self):
        dense = np.zeros((4, 32), dtype=np.float32)
        dense[0, :] = 1.0  # one very long row
        hyb = HybFormat.from_csr(CSRMatrix.from_dense(dense), num_buckets=2)
        widest = [b for b in hyb.buckets if b.width == 2]
        assert widest and widest[0].num_rows == 16  # 32 nnz split into 16 rows of width 2
        assert np.allclose(hyb.to_dense(), dense)

    def test_rows_assigned_to_matching_bucket(self, small_csr):
        hyb = HybFormat.from_csr(small_csr, num_col_parts=1)
        for bucket in hyb.buckets:
            lengths = (bucket.ell.indices >= 0).sum(axis=1)
            assert lengths.max() <= bucket.width
            if bucket.width > 1:
                assert lengths.min() > bucket.width // 2 or bucket.width == hyb.bucket_widths[-1]

    def test_padding_ratio_and_summary(self, small_csr):
        hyb = HybFormat.from_csr(small_csr, num_col_parts=2)
        assert 0.0 <= hyb.padding_ratio < 1.0
        summary = hyb.bucket_summary()
        assert sum(entry["nnz"] for entry in summary) == small_csr.nnz

    def test_invalid_parameters(self, small_csr):
        with pytest.raises(ValueError):
            HybFormat(small_csr, 0, [1, 2])
        with pytest.raises(ValueError):
            HybFormat(small_csr, 1, [])


class TestDBSR:
    def test_round_trip(self, rng):
        dense = np.zeros((16, 16), dtype=np.float32)
        dense[0:4, 4:8] = rng.random((4, 4))
        dense[8:12, 0:4] = rng.random((4, 4))
        csr = CSRMatrix.from_dense(dense)
        dbsr = DBSRMatrix.from_csr(csr, 4)
        assert np.allclose(dbsr.to_dense(), dense)

    def test_empty_block_rows_skipped(self, rng):
        dense = np.zeros((16, 16), dtype=np.float32)
        dense[0:4, 4:8] = rng.random((4, 4))
        dbsr = DBSRMatrix.from_csr(CSRMatrix.from_dense(dense), 4)
        assert dbsr.num_stored_block_rows == 1
        assert dbsr.num_block_rows == 4
        assert dbsr.empty_block_row_fraction == pytest.approx(0.75)

    def test_nbytes_smaller_than_bsr_for_empty_rows(self, rng):
        dense = np.zeros((32, 32), dtype=np.float32)
        dense[0:4, 0:4] = rng.random((4, 4))
        csr = CSRMatrix.from_dense(dense)
        bsr = BSRMatrix.from_csr(csr, 4)
        dbsr = DBSRMatrix.from_bsr(bsr)
        assert dbsr.nbytes() < bsr.nbytes()


class TestSRBCRS:
    def test_round_trip(self, rng):
        dense = (rng.random((16, 24)) < 0.15).astype(np.float32) * rng.random((16, 24)).astype(np.float32)
        csr = CSRMatrix.from_dense(dense)
        sr = SRBCRSMatrix(csr, tile_rows=4, group_size=2)
        assert np.allclose(sr.to_dense(), dense)

    def test_occupancy_bounds(self, rng):
        dense = (rng.random((16, 32)) < 0.1).astype(np.float32)
        sr = SRBCRSMatrix(CSRMatrix.from_dense(dense), tile_rows=8, group_size=4)
        assert 1.0 / sr.tile_rows <= sr.occupancy + 1e-9 <= 1.0

    def test_new_format_density_at_least_original(self, rng):
        dense = (rng.random((32, 64)) < 0.05).astype(np.float32)
        csr = CSRMatrix.from_dense(dense)
        sr = SRBCRSMatrix(csr, 8, 4)
        assert sr.new_format_density >= csr.density - 1e-9

    def test_less_fragmentation_than_bsr(self, rng):
        """SR-BCRS stores fewer padded slots than BSR on unstructured sparsity."""
        dense = (rng.random((64, 64)) < 0.03).astype(np.float32) * rng.random((64, 64)).astype(np.float32)
        csr = CSRMatrix.from_dense(dense)
        sr = SRBCRSMatrix(csr, 8, 4)
        bsr = BSRMatrix.from_csr(csr, 8)
        assert sr.nnz_stored <= bsr.nnz_stored

    def test_invalid_parameters(self, tiny_csr):
        with pytest.raises(ValueError):
            SRBCRSMatrix(tiny_csr, 0, 4)


class TestPaddingHelpers:
    def test_padding_ratio_matches_hyb(self, small_csr):
        ratio = padding_ratio_hyb(small_csr, num_col_parts=2)
        assert ratio == pytest.approx(HybFormat.from_csr(small_csr, num_col_parts=2).padding_ratio)
        assert padding_ratio_percent(small_csr, 2) == pytest.approx(100 * ratio)

    def test_flops_inflation(self):
        assert padded_flops_inflation(0.0) == 1.0
        assert padded_flops_inflation(0.5) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            padded_flops_inflation(1.0)
