"""Fault injection for the serving runtime: stampedes, death, corruption.

The claims under test:

* **Single flight** — N cold builders of one structure (threads of one
  process, or spawned worker processes sharing a disk cache directory)
  perform exactly *one* lowering between them; everyone else adopts the
  built entry.
* **Worker death** — a worker killed mid-request is detected, its in-flight
  tasks are resubmitted to survivors, and when nobody survives the pool
  degrades to inline execution on the calling process.  The queue never
  wedges: ``run_tasks`` always returns (or raises :class:`WorkerDied`).
* **Corruption** — a garbage payload in the shared disk cache is detected,
  counted, and rebuilt around; a held flight lock can only ever delay a
  builder (duplicate lowering after the timeout), never deadlock it.
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.core.codegen.cache import DiskKernelCache, KernelCache
from repro.formats.csr import CSRMatrix
from repro.ops.spmm import spmm_reference
from repro.runtime.session import Session
from repro.serve import WorkerDied, WorkerPool, spmm_sharded
from repro.serve.workers import _csr_payload


def _csr(seed=0, rows=40, cols=32, density=0.2):
    rng = np.random.default_rng(seed)
    dense = (rng.random((rows, cols)) < density).astype(np.float32)
    dense *= rng.random((rows, cols)).astype(np.float32)
    return CSRMatrix.from_dense(dense)


def _sync_pool(pool, workers, deadline_s=30.0):
    """Wait until every worker process has booted and served a ping.

    Spawned workers import the package cold, so the first seconds of a
    pool's life are racy: one fast worker could otherwise swallow several
    tasks meant to land one-per-worker.  Rounds of held pings (``delay_s``)
    are re-issued until one round comes back from *workers* distinct pids.
    """
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        results = pool.run_tasks(
            [{"kind": "ping", "delay_s": 0.3} for _ in range(workers)], timeout=30
        )
        pids = {res["pid"] for res in results if res["ok"]}
        if len(pids) == workers:
            return pids
    raise AssertionError(f"pool never reached {workers} live workers")


class TestThreadStampede:
    def test_cold_threads_share_one_lowering(self):
        """8 threads racing a cold session: exactly one lowering happens."""
        csr = _csr(seed=1)
        session = Session(persistent=False)
        rng = np.random.default_rng(2)
        x = rng.standard_normal((csr.cols, 4)).astype(np.float32)
        expected = spmm_reference(csr, x)
        threads_n = 8
        barrier = threading.Barrier(threads_n)
        errors = []

        def worker():
            try:
                barrier.wait()
                out = session.spmm(csr, x)
                assert np.allclose(out, expected, atol=1e-4)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(repr(exc))

        threads = [threading.Thread(target=worker) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        stats = session.cache.stats
        assert stats.lowerings == 1
        assert stats.hits + stats.misses == threads_n
        assert stats.flight_builds == 1


class TestProcessStampede:
    def test_cold_workers_share_one_lowering(self, tmp_path):
        """4 cold worker processes, one shared cache dir, simultaneous
        release: exactly one lowering total; everyone's answer is identical."""
        workers = 4
        csr = _csr(seed=3)
        rng = np.random.default_rng(4)
        x = rng.standard_normal((csr.cols, 4)).astype(np.float32)
        with WorkerPool(workers, cache_dir=tmp_path) as pool:
            pids = _sync_pool(pool, workers)
            barrier = time.time() + 0.5
            tasks = [
                {
                    "kind": "spmm",
                    "csr": _csr_payload(csr),
                    "features": x,
                    "not_before": barrier,
                }
                for _ in range(workers)
            ]
            results = pool.run_tasks(tasks, timeout=120)
        assert all(res["ok"] for res in results), results
        assert {res["pid"] for res in results} == pids
        assert len(pids) == workers
        # The heart of the claim: one lowering across all four processes.
        assert sum(res["lowerings"] for res in results) == 1
        baseline = results[0]["out"]
        for res in results[1:]:
            assert np.array_equal(res["out"], baseline)
        assert np.allclose(baseline, spmm_reference(csr, x), atol=1e-4)
        # The shared directory holds the single built entry (plus its
        # never-unlinked .flight lock file).
        disk = DiskKernelCache(tmp_path)
        assert len(disk) == 1


class TestWorkerDeath:
    def test_killed_worker_requests_are_retried(self, tmp_path):
        """Kill one of two workers mid-request: both requests still complete
        (the survivor picks up the resubmitted task) and nothing wedges."""
        csr = _csr(seed=5)
        rng = np.random.default_rng(6)
        x = rng.standard_normal((csr.cols, 3)).astype(np.float32)
        expected = spmm_reference(csr, x)
        with WorkerPool(2, cache_dir=tmp_path) as pool:
            _sync_pool(pool, 2)
            victim = pool.processes[0]
            killer = threading.Timer(0.5, victim.kill)
            killer.start()
            try:
                tasks = [
                    {
                        "kind": "spmm",
                        "csr": _csr_payload(csr),
                        "features": x,
                        "delay_s": 1.5,
                    }
                    for _ in range(2)
                ]
                results = pool.run_tasks(tasks, timeout=60)
            finally:
                killer.cancel()
            assert not victim.is_alive()
            assert pool.retries >= 1
        assert all(res["ok"] for res in results), results
        for res in results:
            assert np.allclose(res["out"], expected, atol=1e-4)
            assert res["pid"] != victim.pid  # the survivor answered both

    def test_all_workers_dead_degrades_inline(self, tmp_path):
        """Kill the whole pool mid-request: the fallback executes every task
        inline on the calling process instead of wedging the queue."""
        csr = _csr(seed=7)
        rng = np.random.default_rng(8)
        x = rng.standard_normal((csr.cols, 3)).astype(np.float32)
        expected = spmm_reference(csr, x)
        with WorkerPool(2, cache_dir=tmp_path) as pool:
            _sync_pool(pool, 2)
            for proc in pool.processes:
                proc.kill()
            for proc in pool.processes:
                proc.join(timeout=10)
            assert pool.alive() == 0
            out = spmm_sharded(csr, x, num_col_parts=2, pool=pool, timeout=60)
        assert np.allclose(out, expected, rtol=1e-5, atol=1e-6)

    def test_all_workers_dead_without_fallback_raises(self, tmp_path):
        with WorkerPool(1, cache_dir=tmp_path) as pool:
            _sync_pool(pool, 1)
            pool.processes[0].kill()
            with pytest.raises(WorkerDied):
                pool.run_tasks([{"kind": "ping"}], timeout=30)

    def test_crash_task_kills_worker_but_not_pool(self, tmp_path):
        """A task that hard-exits its worker is itself retried-then-degraded;
        later tasks still run (on survivors or inline)."""
        csr = _csr(seed=9)
        rng = np.random.default_rng(10)
        x = rng.standard_normal((csr.cols, 2)).astype(np.float32)
        with WorkerPool(1, cache_dir=tmp_path) as pool:
            _sync_pool(pool, 1)
            fell_back = []

            def fallback(task):
                fell_back.append(task["kind"])
                if task["kind"] == "crash":
                    return None
                raise AssertionError("only the crash task should degrade")

            results = pool.run_tasks([{"kind": "crash"}], timeout=30, fallback=fallback)
            assert results[0]["ok"] and results[0].get("degraded")
            assert fell_back == ["crash"]
            # The pool is dead but spmm_sharded still answers (inline path).
            out = spmm_sharded(csr, x, num_col_parts=2, pool=pool, timeout=30)
        assert np.allclose(out, spmm_reference(csr, x), rtol=1e-5, atol=1e-6)


class TestDiskCorruption:
    def test_corrupt_entry_is_rebuilt(self, tmp_path):
        """Garbage bytes in a shared cache entry: detected, counted, rebuilt."""
        csr = _csr(seed=11)
        rng = np.random.default_rng(12)
        x = rng.standard_normal((csr.cols, 4)).astype(np.float32)
        warm = Session(persistent=tmp_path)
        expected = warm.spmm(csr, x)
        payloads = list(warm.cache.disk.dir.glob("*.pkl"))
        assert payloads
        for payload in payloads:
            payload.write_bytes(b"not a pickle")
        cold = Session(persistent=tmp_path)
        out = cold.spmm(csr, x)
        assert np.array_equal(out, expected)
        assert cold.cache.disk.stats.errors >= 1
        assert cold.cache.stats.lowerings == 1  # rebuilt around the corruption
        # The rebuilt entry replaced the garbage: a third session warm-starts.
        rebuilt = Session(persistent=tmp_path)
        assert np.array_equal(rebuilt.spmm(csr, x), expected)
        assert rebuilt.cache.stats.lowerings == 0

    def test_corrupt_entry_in_worker_pool(self, tmp_path):
        """Workers sharing a poisoned cache dir still answer correctly."""
        csr = _csr(seed=13)
        rng = np.random.default_rng(14)
        x = rng.standard_normal((csr.cols, 3)).astype(np.float32)
        warm = Session(persistent=tmp_path)
        expected = warm.spmm(csr, x)
        poisoned = list(warm.cache.disk.dir.glob("*.pkl"))
        assert poisoned
        for payload in poisoned:
            payload.write_bytes(b"\x00garbage\x00")
        with WorkerPool(2, cache_dir=tmp_path) as pool:
            _sync_pool(pool, 2)
            results = pool.run_tasks(
                [
                    {"kind": "spmm", "csr": _csr_payload(csr), "features": x}
                    for _ in range(2)
                ],
                timeout=60,
            )
        assert all(res["ok"] for res in results)
        for res in results:
            assert np.array_equal(res["out"], expected)


class TestFlightTimeout:
    def test_held_flight_lock_times_out_to_duplicate_build(self, tmp_path):
        """A flight lock held elsewhere (e.g. a hung process) delays a waiter
        at most `timeout` seconds, after which it proceeds as owner —
        degradation is a duplicate lowering, never a deadlock."""
        cache = KernelCache(disk=DiskKernelCache(tmp_path))
        holder = DiskKernelCache(tmp_path)
        handle = holder.try_lock_flight("deadbeef")
        assert isinstance(handle, int)
        try:
            start = time.monotonic()
            flight = cache.begin_flight("deadbeef", timeout=0.2)
            waited = time.monotonic() - start
            assert flight.owner and flight.entry is None
            flight.done()
            assert waited < 5.0
            assert cache.stats.flight_timeouts == 1
        finally:
            holder.unlock_flight(handle)

    def test_flight_lock_released_on_done(self, tmp_path):
        cache = KernelCache(disk=DiskKernelCache(tmp_path))
        flight = cache.begin_flight("cafef00d")
        assert flight.owner
        flight.done()
        # The lock is free again: a second claimant succeeds immediately.
        second = DiskKernelCache(tmp_path)
        handle = second.try_lock_flight("cafef00d")
        assert isinstance(handle, int)
        second.unlock_flight(handle)
        # Lock files survive (never unlinked) but are not cache entries.
        assert len(DiskKernelCache(tmp_path)) == 0
        assert (cache.disk.dir / "cafef00d.flight").exists()
