"""Unit tests for stage-II schedule primitives."""

import numpy as np
import pytest

from repro.core import Schedule, build, lower_sparse_iterations
from repro.core.stage2.schedule import ScheduleError
from repro.core.stmt import LOOP_THREAD_BINDING, LOOP_UNROLLED, LOOP_VECTORIZED
from repro.ops.spmm import build_spmm_program, spmm_reference


@pytest.fixture
def scheduled_env(small_csr, rng):
    feat = 8
    features = rng.standard_normal((small_csr.cols, feat)).astype(np.float32)
    func = build_spmm_program(small_csr, feat, features)
    stage2 = lower_sparse_iterations(func)
    return small_csr, features, feat, Schedule(stage2)


def run_and_check(schedule, csr, features, feat):
    out = build(schedule.func).run()
    reference = spmm_reference(csr, features)
    assert np.allclose(out["C"].reshape(csr.rows, feat), reference, atol=1e-4)


def test_get_loops_returns_outermost_first(scheduled_env):
    _, _, _, schedule = scheduled_env
    loops = schedule.get_loops("spmm_compute")
    assert [l.loop_var.name for l in loops] == ["i_it_p", "j_it_p", "k_it_p"]


def test_split_preserves_semantics_divisible(scheduled_env):
    csr, features, feat, schedule = scheduled_env
    loops = schedule.get_loops("spmm_compute")
    outer, inner = schedule.split(loops[-1], factor=4)
    assert inner.extent.value == 4
    run_and_check(schedule, csr, features, feat)


def test_split_preserves_semantics_non_divisible(scheduled_env):
    csr, features, feat, schedule = scheduled_env
    loops = schedule.get_loops("spmm_compute")
    schedule.split(loops[-1], factor=3)  # 8 not divisible by 3 -> guard emitted
    run_and_check(schedule, csr, features, feat)


def test_split_rejects_bad_factor(scheduled_env):
    _, _, _, schedule = scheduled_env
    loops = schedule.get_loops("spmm_compute")
    with pytest.raises(ScheduleError):
        schedule.split(loops[-1], factor=0)


def test_fuse_loops_preserves_semantics(scheduled_env):
    csr, features, feat, schedule = scheduled_env
    loops = schedule.get_loops("spmm_compute")
    fused = schedule.fuse(loops[1], loops[2])
    assert "f" in fused.loop_var.name
    run_and_check(schedule, csr, features, feat)


def test_reorder_inner_loops_preserves_semantics(scheduled_env):
    csr, features, feat, schedule = scheduled_env
    loops = schedule.get_loops("spmm_compute")
    schedule.reorder(loops[2], loops[1])
    new_loops = schedule.get_loops("spmm_compute")
    assert [l.loop_var.name for l in new_loops] == ["i_it_p", "k_it_p", "j_it_p"]
    run_and_check(schedule, csr, features, feat)


def test_reorder_across_block_boundary_is_rejected(scheduled_env):
    """Blocks forbid cross-block reordering (Section 3.3.1 step 2)."""
    _, _, _, schedule = scheduled_env
    loops = schedule.get_loops("spmm_compute")
    with pytest.raises(ScheduleError):
        schedule.reorder(loops[1], loops[0])


def test_bind_thread_tags_and_execution(scheduled_env):
    csr, features, feat, schedule = scheduled_env
    loops = schedule.get_loops("spmm_compute")
    bound = schedule.bind(loops[0], "blockIdx.x")
    assert bound.kind == LOOP_THREAD_BINDING
    assert bound.thread_tag == "blockIdx.x"
    schedule.bind(schedule.get_loops("spmm_compute")[-1], "threadIdx.x")
    run_and_check(schedule, csr, features, feat)


def test_bind_rejects_unknown_tag(scheduled_env):
    _, _, _, schedule = scheduled_env
    loops = schedule.get_loops("spmm_compute")
    with pytest.raises(ScheduleError):
        schedule.bind(loops[0], "warpIdx.q")


def test_vectorize_unroll_parallel_kinds(scheduled_env):
    csr, features, feat, schedule = scheduled_env
    loops = schedule.get_loops("spmm_compute")
    assert schedule.vectorize(loops[2]).kind == LOOP_VECTORIZED
    assert schedule.unroll(schedule.get_loops("spmm_compute")[1]).kind == LOOP_UNROLLED
    run_and_check(schedule, csr, features, feat)


def test_cache_read_write_annotations(scheduled_env):
    csr, features, feat, schedule = scheduled_env
    schedule.cache_read("spmm_compute", "B", "shared")
    schedule.cache_write("spmm_compute", "C", "local")
    block = schedule.get_block("spmm_compute")
    assert block.annotations["cache_read"][0]["buffer"] == "B"
    assert block.annotations["cache_write"][0]["scope"] == "local"
    run_and_check(schedule, csr, features, feat)


def test_cache_read_rejects_unknown_buffer_or_scope(scheduled_env):
    _, _, _, schedule = scheduled_env
    with pytest.raises(ScheduleError):
        schedule.cache_read("spmm_compute", "NOPE", "shared")
    with pytest.raises(ScheduleError):
        schedule.cache_read("spmm_compute", "B", "l3")


def test_rfactor_and_tensorize_annotations(scheduled_env):
    csr, features, feat, schedule = scheduled_env
    schedule.rfactor("spmm_compute", factor=4)
    schedule.tensorize("spmm_compute", "mma_m16n16k16")
    block = schedule.get_block("spmm_compute")
    assert block.annotations["rfactor"] == {"factor": 4}
    assert block.annotations["tensorize"] == "mma_m16n16k16"
    run_and_check(schedule, csr, features, feat)


def test_tensorize_rejects_unknown_intrinsic(scheduled_env):
    _, _, _, schedule = scheduled_env
    with pytest.raises(ScheduleError):
        schedule.tensorize("spmm_compute", "mma_m3n3k3")


def test_rfactor_rejects_bad_factor(scheduled_env):
    _, _, _, schedule = scheduled_env
    with pytest.raises(ScheduleError):
        schedule.rfactor("spmm_compute", factor=0)


def test_schedule_trace_records_operations(scheduled_env):
    _, _, _, schedule = scheduled_env
    loops = schedule.get_loops("spmm_compute")
    schedule.split(loops[-1], 4)
    schedule.cache_read("spmm_compute", "B", "shared")
    kinds = [entry[0] for entry in schedule.trace]
    assert "split" in kinds and "cache_read" in kinds


def test_schedule_requires_lowered_program(small_csr, rng):
    func = build_spmm_program(small_csr, 4, rng.standard_normal((small_csr.cols, 4)).astype(np.float32))
    with pytest.raises(ScheduleError):
        Schedule(func)


def test_composed_schedule_pipeline(scheduled_env):
    """split + bind + vectorize composed together, then executed."""
    csr, features, feat, schedule = scheduled_env
    loops = schedule.get_loops("spmm_compute")
    schedule.bind(loops[0], "blockIdx.x")
    loops = schedule.get_loops("spmm_compute")
    outer, inner = schedule.split(loops[-1], 4)
    schedule.bind(outer, "threadIdx.x")
    schedule.vectorize(inner)
    run_and_check(schedule, csr, features, feat)
    source = build(schedule.func).cuda_source()
    assert "blockIdx.x" in source and "threadIdx.x" in source
