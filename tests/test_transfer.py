"""Transfer tuning: task features, neighbour planning, and the autotune modes.

Covers the :mod:`repro.tune.transfer` layer end to end: the reference
feature vector of a task is deterministic, neighbour search excludes the
task's own fingerprint and respects the distance bound, seed configurations
are filtered to the target space, ``cost_model="learned"/"hybrid"`` change
the phase-1 ranking (and the hybrid mode spends fewer measurements), and a
confident transfer replaces phase 2 outright.
"""

import numpy as np
import pytest

from repro.perf.device import V100
from repro.perf.learned import FEATURE_NAMES, feature_list
from repro.tune import SpMMProblem, TuningRecord, TuningRecordStore, autotune, get_workload
from repro.tune.transfer import (
    DEFAULT_MAX_SEEDS,
    feature_distance,
    plan_transfer,
    task_features,
)
from repro.workloads.graphs import generate_adjacency


@pytest.fixture(scope="module")
def graph():
    return generate_adjacency(120, 700, "powerlaw", seed=5)


@pytest.fixture(scope="module")
def spec():
    return get_workload("spmm")


@pytest.fixture(scope="module")
def seeded(graph, tmp_path_factory):
    """A store whose corpus holds one measured feat-8 SpMM task."""
    store = TuningRecordStore(tmp_path_factory.mktemp("corpus"))
    result = autotune(
        "spmm", SpMMProblem(graph, 8), records=store,
        strategy="random", max_trials=10, survivors=4, repeats=1, seed=0,
    )
    assert result.measured_configs > 0
    return store, result


def space_configs(spec, problem, count):
    configs = []
    for config in spec.space(problem).configurations():
        configs.append(dict(config))
        if len(configs) >= count:
            break
    return configs


class TestTaskFeatures:
    def test_deterministic_and_finite(self, spec, graph):
        problem = SpMMProblem(graph, 8)
        a = task_features(spec, problem, V100)
        b = task_features(spec, problem, V100, memo={})
        assert a is not None and a.shape == (len(FEATURE_NAMES),)
        assert np.isfinite(a).all()
        assert np.array_equal(a, b)

    def test_nearby_problem_is_near_unrelated_is_far(self, spec, graph):
        base = task_features(spec, SpMMProblem(graph, 8), V100)
        near = task_features(spec, SpMMProblem(graph, 16), V100)
        other = generate_adjacency(500, 9000, "centralized", seed=9)
        far = task_features(spec, SpMMProblem(other, 256), V100)
        assert feature_distance(base, near) < feature_distance(base, far)


class TestFeatureDistance:
    def test_zero_for_identical(self):
        v = np.arange(5.0)
        assert feature_distance(v, v) == 0.0
        assert feature_distance(v, list(v)) == 0.0

    def test_shape_mismatch_is_infinite(self):
        assert feature_distance([1.0, 2.0], [1.0, 2.0, 3.0]) == float("inf")

    def test_relative_scaling(self):
        a = np.ones(4)
        assert feature_distance(a, 2 * a) == pytest.approx(
            feature_distance(10 * a, 20 * a)
        )

    def test_small_vectors_use_unit_floor(self):
        assert feature_distance([0.0, 0.0], [0.3, 0.4]) == pytest.approx(0.5)


class TestPlanTransfer:
    def _neighbour_corpus(self, store, spec, problem, fingerprint, configs):
        """Persist a corpus file whose task_features equal *problem*'s own."""
        reference = feature_list(task_features(spec, problem, V100))
        entries = [
            {
                "features": [float(i)] * len(FEATURE_NAMES),
                "predicted_us": 10.0 + i,
                "measured_s": 0.01 * (len(configs) - i),  # later = faster
                "config": config,
            }
            for i, config in enumerate(configs)
        ]
        store.add_corpus(
            fingerprint, spec.name, entries,
            task_features=reference, feature_version=1,
        )
        return reference

    def test_no_store_or_empty_corpus(self, spec, graph, tmp_path):
        problem = SpMMProblem(graph, 8)
        assert plan_transfer(None, spec, problem, V100, "f" * 16) is None
        store = TuningRecordStore(tmp_path)
        assert plan_transfer(store, spec, problem, V100, "f" * 16) is None

    def test_own_fingerprint_is_excluded(self, spec, graph, tmp_path):
        problem = SpMMProblem(graph, 8)
        store = TuningRecordStore(tmp_path)
        own = "a" * 16
        self._neighbour_corpus(
            store, spec, problem, own, space_configs(spec, problem, 2)
        )
        assert plan_transfer(store, spec, problem, V100, own) is None

    def test_nearest_neighbour_seeds_sorted_and_filtered(self, spec, graph, tmp_path):
        problem = SpMMProblem(graph, 8)
        store = TuningRecordStore(tmp_path)
        configs = space_configs(spec, problem, 3)
        alien = {"definitely": "not-in-space"}
        self._neighbour_corpus(
            store, spec, problem, "b" * 16, configs + [alien]
        )
        record_config = configs[-1]
        store.put(
            TuningRecord(
                fingerprint="b" * 16, workload=spec.name,
                config=record_config, measured_s=1e-6,
            )
        )
        plan = plan_transfer(store, spec, problem, V100, "a" * 16)
        assert plan is not None
        assert plan.source_fingerprint == "b" * 16
        assert plan.distance == pytest.approx(0.0)
        assert len(plan.seed_configs) <= DEFAULT_MAX_SEEDS
        # The record's winning config leads; the out-of-space one is dropped
        # and the duplicate (record == last corpus config) appears once.
        assert plan.seed_configs[0] == record_config
        assert alien not in plan.seed_configs
        assert len([s for s in plan.seed_configs if s == record_config]) == 1
        # Corpus seeds follow in best-measured-first order.
        assert plan.seed_configs[1] == configs[-1] or plan.seed_configs[1] in configs

    def test_distance_bound_rejects_far_neighbours(self, spec, graph, tmp_path):
        problem = SpMMProblem(graph, 8)
        store = TuningRecordStore(tmp_path)
        configs = space_configs(spec, problem, 1)
        reference = feature_list(task_features(spec, problem, V100))
        store.add_corpus(
            "b" * 16, spec.name,
            [{
                "features": [0.0] * len(FEATURE_NAMES),
                "predicted_us": 1.0,
                "measured_s": 0.001,
                "config": configs[0],
            }],
            task_features=[v * 10.0 for v in reference],
            feature_version=1,
        )
        assert plan_transfer(store, spec, problem, V100, "a" * 16) is None
        assert (
            plan_transfer(
                store, spec, problem, V100, "a" * 16, max_distance=2.0
            )
            is not None
        )


class TestCostModelModes:
    def test_unknown_cost_model_raises(self, graph):
        with pytest.raises(ValueError, match="cost_model"):
            autotune("spmm", SpMMProblem(graph, 8), cost_model="oracle", records=False)

    def test_learned_without_store_degrades_to_analytic(self, graph):
        result = autotune(
            "spmm", SpMMProblem(graph, 8), records=False,
            strategy="random", max_trials=6, survivors=0, seed=0,
            cost_model="learned",
        )
        assert result.cost_model == "learned"
        # No corpus, no model: history entries carry no learned score.
        assert all("score" not in entry for entry in result.history)

    def test_hybrid_confident_model_halves_measurements(self, seeded, graph):
        store, analytic = seeded
        hybrid = autotune(
            "spmm", SpMMProblem(graph, 8), records=store, force=True,
            strategy="random", max_trials=10, survivors=4, repeats=1, seed=0,
            cost_model="hybrid", corpus_min_samples=3,
        )
        assert hybrid.cost_model == "hybrid"
        assert hybrid.record.metadata["corpus_samples"] >= 3
        assert 0 < hybrid.measured_configs < analytic.measured_configs
        assert hybrid.timed_runs < analytic.timed_runs
        # The learned correction is live: predict entries carry a score.
        predicts = [e for e in hybrid.history if e["phase"] == "predict"]
        assert predicts and all("score" in e for e in predicts)
        # ``predicted_us`` stays the raw analytic price everywhere.
        for entry in predicts:
            if entry["predicted_us"] is not None and entry["score"] is not None:
                assert entry["predicted_us"] > 0

    def test_analytic_history_format_unchanged(self, seeded, graph):
        store, _ = seeded
        result = autotune(
            "spmm", SpMMProblem(graph, 8), records=store, force=True,
            strategy="random", max_trials=6, survivors=0, seed=0,
        )
        assert all("score" not in entry for entry in result.history)


class TestTransferEndToEnd:
    def test_confident_transfer_skips_phase2(self, seeded, graph):
        store, source = seeded
        result = autotune(
            "spmm", SpMMProblem(graph, 32), records=store, force=True,
            strategy="random", max_trials=10, survivors=4, repeats=1, seed=0,
            cost_model="hybrid", transfer=True,
            transfer_max_distance=0.5, corpus_min_samples=3,
        )
        assert result.transferred_from == source.fingerprint
        assert result.transfer_distance is not None
        assert 0.0 <= result.transfer_distance <= 0.5
        assert result.measured_configs == 0 and result.timed_runs == 0
        assert result.best_measured_s is None
        assert result.record.metadata["transferred"] is True
        assert result.record.metadata["transfer_from"] == source.fingerprint
        # The neighbour's winning config was priced into phase 1.
        priced = [e["config"] for e in result.history if e["phase"] == "predict"]
        assert source.best_config in priced
        # Phase-2-free runs leave the corpus untouched for this fingerprint.
        assert store.get_corpus(result.fingerprint) is None

    def test_include_baseline_forces_measurement(self, seeded, graph, spec):
        store, _ = seeded
        problem = SpMMProblem(graph, 32)
        baseline = space_configs(spec, problem, 1)[0]
        result = autotune(
            "spmm", problem, records=store, force=True,
            strategy="random", max_trials=10, survivors=2, repeats=1, seed=0,
            cost_model="hybrid", transfer=True,
            transfer_max_distance=0.5, corpus_min_samples=3,
            include=[baseline],
        )
        assert result.transferred_from is None
        assert result.measured_configs > 0
        measured = [e["config"] for e in result.history if e["phase"] == "measure"]
        assert baseline in measured

    def test_transfer_off_without_flag(self, seeded, graph):
        store, _ = seeded
        result = autotune(
            "spmm", SpMMProblem(graph, 32), records=store, force=True,
            strategy="random", max_trials=8, survivors=2, repeats=1, seed=0,
            cost_model="hybrid", corpus_min_samples=3,
        )
        assert result.transferred_from is None
        assert result.measured_configs > 0
