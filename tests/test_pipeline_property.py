"""Property-based tests of the full compilation pipeline (hypothesis).

The invariant under test is the compiler's core contract: whatever the sparse
structure and whatever semantics-preserving schedule is applied, the compiled
kernel computes the same values as the dense NumPy reference.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Schedule, build, lower_sparse_iterations, sparse_fuse
from repro.formats import CSRMatrix, ELLMatrix, HybFormat
from repro.formats.conversion import ell_rewrite_rule
from repro.core import decompose_format
from repro.ops.sddmm import build_sddmm_program, sddmm_reference
from repro.ops.spmm import build_spmm_hyb_program, build_spmm_program, spmm_reference


# Long-running hypothesis suites: CI's fast lane skips them, the nightly
# lane (and the local default) runs everything.
pytestmark = pytest.mark.slow

_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def sparse_matrices(draw, max_rows=10, max_cols=12):
    rows = draw(st.integers(min_value=1, max_value=max_rows))
    cols = draw(st.integers(min_value=1, max_value=max_cols))
    density = draw(st.floats(min_value=0.05, max_value=0.6))
    seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    rng = np.random.default_rng(seed)
    dense = (rng.random((rows, cols)) < density) * rng.random((rows, cols))
    return CSRMatrix.from_dense(dense.astype(np.float32))


@given(matrix=sparse_matrices(), feat=st.integers(min_value=1, max_value=6))
@_SETTINGS
def test_compiled_spmm_matches_dense_reference(matrix, feat):
    rng = np.random.default_rng(matrix.nnz + feat)
    features = rng.standard_normal((matrix.cols, feat)).astype(np.float32)
    out = build(build_spmm_program(matrix, feat, features)).run()
    reference = spmm_reference(matrix, features)
    assert np.allclose(out["C"].reshape(matrix.rows, feat), reference, atol=1e-3)


@given(matrix=sparse_matrices(max_rows=8, max_cols=8), feat=st.integers(min_value=1, max_value=5))
@_SETTINGS
def test_compiled_sddmm_matches_reference(matrix, feat):
    rng = np.random.default_rng(matrix.nnz * 7 + feat)
    x = rng.standard_normal((matrix.rows, feat)).astype(np.float32)
    y = rng.standard_normal((feat, matrix.cols)).astype(np.float32)
    out = build(build_sddmm_program(matrix, feat, x, y)).run()
    assert np.allclose(out["OUT"], sddmm_reference(matrix, x, y), atol=1e-3)


@given(
    matrix=sparse_matrices(max_rows=8, max_cols=10),
    feat=st.integers(min_value=1, max_value=4),
    split_factor=st.integers(min_value=2, max_value=5),
    bind_rows=st.booleans(),
)
@_SETTINGS
def test_schedules_preserve_semantics(matrix, feat, split_factor, bind_rows):
    rng = np.random.default_rng(matrix.nnz + 13 * feat + split_factor)
    features = rng.standard_normal((matrix.cols, feat)).astype(np.float32)
    stage2 = lower_sparse_iterations(build_spmm_program(matrix, feat, features))
    schedule = Schedule(stage2)
    loops = schedule.get_loops("spmm_compute")
    if bind_rows:
        schedule.bind(loops[0], "blockIdx.x")
    loops = schedule.get_loops("spmm_compute")
    if feat > 1:
        schedule.split(loops[-1], split_factor)
    out = build(schedule.func).run()
    reference = spmm_reference(matrix, features)
    assert np.allclose(out["C"].reshape(matrix.rows, feat), reference, atol=1e-3)


@given(matrix=sparse_matrices(max_rows=8, max_cols=8), feat=st.integers(min_value=1, max_value=4))
@_SETTINGS
def test_ell_conversion_preserves_semantics(matrix, feat):
    if matrix.nnz == 0:
        return
    rng = np.random.default_rng(matrix.nnz + feat * 31)
    features = rng.standard_normal((matrix.cols, feat)).astype(np.float32)
    program = build_spmm_program(matrix, feat, features)
    converted = decompose_format(program, [ell_rewrite_rule(ELLMatrix.from_csr(matrix))])
    out = build(converted).run()
    reference = spmm_reference(matrix, features)
    assert np.allclose(out["C"].reshape(matrix.rows, feat), reference, atol=1e-3)


@given(
    matrix=sparse_matrices(max_rows=8, max_cols=10),
    feat=st.integers(min_value=1, max_value=4),
    parts=st.integers(min_value=1, max_value=3),
)
@_SETTINGS
def test_hyb_decomposition_preserves_semantics(matrix, feat, parts):
    if matrix.nnz == 0:
        return
    rng = np.random.default_rng(matrix.nnz + feat + parts)
    features = rng.standard_normal((matrix.cols, feat)).astype(np.float32)
    hyb = HybFormat.from_csr(matrix, num_col_parts=parts)
    out = build(build_spmm_hyb_program(hyb, feat, features)).run()
    reference = spmm_reference(matrix, features)
    assert np.allclose(out["C"].reshape(matrix.rows, feat), reference, atol=1e-3)


@given(matrix=sparse_matrices(max_rows=8, max_cols=8), feat=st.integers(min_value=1, max_value=4))
@_SETTINGS
def test_sparse_fuse_preserves_semantics_property(matrix, feat):
    if matrix.nnz == 0:
        return
    rng = np.random.default_rng(matrix.nnz * 3 + feat)
    features = rng.standard_normal((matrix.cols, feat)).astype(np.float32)
    program = build_spmm_program(matrix, feat, features)
    i_axis = program.axis("I")
    j_axis = program.axis("J")
    fused = sparse_fuse(program, "spmm", [i_axis, j_axis])
    out = build(fused).run()
    reference = spmm_reference(matrix, features)
    assert np.allclose(out["C"].reshape(matrix.rows, feat), reference, atol=1e-3)
