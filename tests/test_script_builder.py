"""Unit tests for the ProgramBuilder front end."""

import numpy as np
import pytest

from repro.core.program import STAGE_COORDINATE
from repro.core.script import ProgramBuilder
from repro.core.sparse_iteration import SparseIteration, fuse


def build_spmm(m=4, n=6, nnz=None):
    rng = np.random.default_rng(0)
    dense = (rng.random((m, n)) < 0.4).astype(np.float32)
    import scipy.sparse as sp

    csr = sp.csr_matrix(dense)
    b = ProgramBuilder("spmm")
    I = b.dense_fixed("I", m)
    J = b.sparse_variable("J", parent=I, length=n, nnz=csr.nnz, indptr=csr.indptr, indices=csr.indices)
    J_ = b.dense_fixed("J_", n)
    K = b.dense_fixed("K", 3)
    A = b.match_sparse_buffer("A", [I, J], data=csr.data)
    B = b.match_sparse_buffer("B", [J_, K])
    C = b.match_sparse_buffer("C", [I, K])
    with b.sp_iter([I, J, K], "SRS", "spmm") as (i, j, k):
        b.init(C[i, k], 0.0)
        b.compute(C[i, k], C[i, k] + A[i, j] * B[j, k])
    return b.finish()


def test_builder_produces_stage1_program():
    func = build_spmm()
    assert func.stage == STAGE_COORDINATE
    assert len(func.axes) == 4
    assert len(func.buffers) == 3
    iterations = func.sparse_iterations()
    assert len(iterations) == 1
    assert iterations[0].name == "spmm"
    assert iterations[0].kinds == "SRS"
    assert iterations[0].init is not None


def test_builder_script_rendering_mentions_constructs():
    text = build_spmm().script()
    assert "sp_iter" in text
    assert "match_sparse_buffer" in text
    assert "with init():" in text


def test_duplicate_axis_and_buffer_names_rejected():
    b = ProgramBuilder("p")
    b.dense_fixed("I", 4)
    with pytest.raises(ValueError):
        b.dense_fixed("I", 5)
    i = b.dense_fixed("I2", 4)
    b.match_sparse_buffer("A", [i])
    with pytest.raises(ValueError):
        b.match_sparse_buffer("A", [i])


def test_compute_outside_iteration_raises():
    b = ProgramBuilder("p")
    i = b.dense_fixed("I", 4)
    a = b.match_sparse_buffer("A", [i])
    from repro.core.expr import Var

    with pytest.raises(RuntimeError):
        b.compute(a[Var("i")], 1.0)


def test_empty_iteration_body_rejected():
    b = ProgramBuilder("p")
    i = b.dense_fixed("I", 4)
    b.match_sparse_buffer("A", [i])
    with pytest.raises(ValueError):
        with b.sp_iter([i], "S", "noop") as (v,):
            pass


def test_finish_twice_and_empty_program_rejected():
    b = ProgramBuilder("empty")
    b.dense_fixed("I", 4)
    with pytest.raises(ValueError):
        b.finish()

    func_builder = ProgramBuilder("p")
    i = func_builder.dense_fixed("I", 2)
    a = func_builder.match_sparse_buffer("A", [i])
    with func_builder.sp_iter([i], "S", "set") as (v,):
        func_builder.compute(a[v], 1.0)
    func_builder.finish()
    with pytest.raises(RuntimeError):
        func_builder.finish()


def test_nested_sp_iter_rejected():
    b = ProgramBuilder("p")
    i = b.dense_fixed("I", 2)
    a = b.match_sparse_buffer("A", [i])
    with pytest.raises(RuntimeError):
        with b.sp_iter([i], "S", "outer") as (v,):
            b.compute(a[v], 1.0)
            with b.sp_iter([i], "S", "inner") as (w,):
                b.compute(a[w], 2.0)


def test_fused_axes_in_builder():
    b = ProgramBuilder("sddmm")
    i = b.dense_fixed("I", 4)
    j = b.sparse_variable("J", parent=i, length=4, nnz=6)
    k = b.dense_fixed("K", 2)
    out = b.match_sparse_buffer("OUT", [i, j])
    with b.sp_iter([fuse(i, j), k], "SSR", "sddmm") as (vi, vj, vk):
        b.compute(out[vi, vj], 1.0)
    func = b.finish()
    iteration = func.sparse_iteration("sddmm")
    assert len(iteration.flat_axes) == 3
    assert len(iteration.axes) == 2  # one fused group + K


def test_sparse_iteration_validation():
    b = ProgramBuilder("p")
    i = b.dense_fixed("I", 2)
    b.match_sparse_buffer("A", [i])
    from repro.core.expr import Var

    with pytest.raises(ValueError):
        SparseIteration("bad", (i,), "SS", (Var("x"),), None)
    with pytest.raises(ValueError):
        SparseIteration("bad", (i,), "X", (Var("x"),), None)
