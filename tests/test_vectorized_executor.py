"""Equivalence tests: vectorized executor output == interpreter output.

Every operator/format combination the fast path claims to support is
compiled through the full pipeline and executed by both engines; results
must match *bit for bit* (lanes are materialised in serial loop order and
reductions accumulate unbuffered, so even float32 rounding agrees).
"""

import numpy as np
import pytest

from repro.core import Schedule, build, lower_sparse_iterations
from repro.formats import CSRMatrix, HybFormat
from repro.formats.bsr import BSRMatrix
from repro.ops.pruned_spmm import build_pruned_spmm_bsr_program, pruned_spmm_reference
from repro.ops.sddmm import build_sddmm_program, sddmm_reference
from repro.ops.spmm import build_spmm_hyb_program, build_spmm_program, spmm_reference
from repro.runtime import Executor, UnsupportedProgram, VectorizedExecutor


def _both_engines(func):
    kernel = build(func, cache=False)
    interpreted = kernel.run(engine="interpret")
    vectorized = kernel.run(engine="vectorized")
    assert kernel.last_engine == "vectorized"
    return interpreted, vectorized


def _assert_identical(interpreted, vectorized):
    assert interpreted.keys() == vectorized.keys()
    for name in interpreted:
        assert np.array_equal(interpreted[name], vectorized[name]), name


@pytest.fixture
def matrices(rng):
    dense = (rng.random((23, 17)) < 0.3).astype(np.float32) * rng.standard_normal(
        (23, 17)
    ).astype(np.float32)
    dense[4] = 0.0  # empty row
    dense[9, :15] = rng.standard_normal(15)  # heavy row
    return CSRMatrix.from_dense(dense)


class TestSpMMEquivalence:
    @pytest.mark.parametrize("feat_size", [1, 3, 8])
    def test_csr(self, matrices, rng, feat_size):
        x = rng.standard_normal((matrices.cols, feat_size)).astype(np.float32)
        interp, vec = _both_engines(build_spmm_program(matrices, feat_size, x))
        _assert_identical(interp, vec)
        assert np.allclose(
            vec["C"].reshape(matrices.rows, feat_size),
            spmm_reference(matrices, x),
            atol=1e-4,
        )

    @pytest.mark.parametrize("num_col_parts,num_buckets", [(1, None), (2, 3), (4, 1)])
    def test_hyb(self, matrices, rng, num_col_parts, num_buckets):
        """ELL buckets exercise padded (-1) slots, row_map gather-scatter."""
        x = rng.standard_normal((matrices.cols, 4)).astype(np.float32)
        hyb = HybFormat.from_csr(
            matrices, num_col_parts=num_col_parts, num_buckets=num_buckets
        )
        interp, vec = _both_engines(build_spmm_hyb_program(hyb, 4, x))
        _assert_identical(interp, vec)
        assert np.allclose(
            vec["C"].reshape(matrices.rows, 4), spmm_reference(matrices, x), atol=1e-4
        )

    def test_scheduled_program(self, matrices, rng):
        """Stage-II loop transformations stay inside the supported fragment."""
        x = rng.standard_normal((matrices.cols, 8)).astype(np.float32)
        stage2 = lower_sparse_iterations(build_spmm_program(matrices, 8, x))
        schedule = Schedule(stage2)
        loops = schedule.get_loops("spmm_compute")
        schedule.bind(loops[0], "blockIdx.x")
        schedule.bind(loops[-1], "threadIdx.x")
        interp, vec = _both_engines(schedule.func)
        _assert_identical(interp, vec)


class TestSDDMMEquivalence:
    @pytest.mark.parametrize("fuse_ij", [True, False])
    def test_sddmm(self, matrices, rng, fuse_ij):
        x = rng.standard_normal((matrices.rows, 5)).astype(np.float32)
        y = rng.standard_normal((5, matrices.cols)).astype(np.float32)
        interp, vec = _both_engines(
            build_sddmm_program(matrices, 5, x, y, fuse_ij=fuse_ij)
        )
        _assert_identical(interp, vec)
        assert np.allclose(vec["OUT"], sddmm_reference(matrices, x, y), atol=1e-4)


class TestPrunedSpMMEquivalence:
    @pytest.mark.parametrize("block_size", [2, 4])
    def test_bsr(self, rng, block_size):
        dense = (rng.random((16, 24)) < 0.25).astype(np.float32) * rng.standard_normal(
            (16, 24)
        ).astype(np.float32)
        dense[4:8] = 0.0  # an empty block row
        bsr = BSRMatrix.from_dense(dense, block_size)
        x = rng.standard_normal((bsr.shape[1], 6)).astype(np.float32)
        interp, vec = _both_engines(
            build_pruned_spmm_bsr_program(bsr, 6, x)
        )
        _assert_identical(interp, vec)
        assert np.allclose(
            vec["Y"].reshape(bsr.shape[0], 6), pruned_spmm_reference(bsr, x), atol=1e-4
        )


class TestBatchedEquivalence:
    """Batched (multi-head) programs: the head axis is one more lane dim."""

    @pytest.fixture
    def mask(self):
        from repro.workloads.attention import band_mask

        return band_mask(seq_len=40, band_size=10, block_size=5)

    @pytest.mark.parametrize("heads", [1, 4])
    def test_batched_spmm(self, mask, rng, heads):
        from repro.ops.batched import build_batched_spmm_program

        feats = rng.standard_normal((heads, mask.cols, 3)).astype(np.float32)
        interp, vec = _both_engines(build_batched_spmm_program(mask, heads, 3, feats))
        _assert_identical(interp, vec)

    def test_batched_sddmm_with_scaling(self, mask, rng):
        """The post-scaling nest is a ``B[e] = B[e] * r`` self-update, batched
        through ``np.multiply.at`` — still bit-exact with the interpreter."""
        from repro.ops.batched import build_batched_sddmm_program

        q = rng.standard_normal((2, mask.rows, 4)).astype(np.float32)
        k = rng.standard_normal((2, 4, mask.cols)).astype(np.float32)
        func = build_batched_sddmm_program(mask, 2, 4, q, k, scale=0.125)
        interp, vec = _both_engines(func)
        _assert_identical(interp, vec)
        unscaled = build(
            build_batched_sddmm_program(mask, 2, 4, q, k), cache=False
        ).run(engine="vectorized")
        assert np.array_equal(vec["OUT"], unscaled["OUT"] * np.float32(0.125))

    def test_multiply_self_update_is_batched(self):
        """A pointwise in-place rescale alone must run on the fast path."""
        from repro.core.buffers import FlatBuffer
        from repro.core.expr import Var
        from repro.core.program import STAGE_LOOP, PrimFunc
        from repro.core.stmt import BufferStore, ForLoop

        b = FlatBuffer("b", 6)
        i = Var("i")
        body = ForLoop(i, 0, 6, BufferStore(b, [i], b[i] * 0.5))
        func = PrimFunc("rescale", axes=[], buffers=[], body=body,
                        stage=STAGE_LOOP, flat_buffers=[b])
        kernel = build(func, cache=False)
        out = kernel.run({"b": np.arange(6, dtype=np.float32)})
        assert kernel.last_engine in ("native", "emitted", "vectorized")
        assert np.array_equal(out["b"], np.arange(6, dtype=np.float32) * 0.5)
        out = kernel.run({"b": np.arange(6, dtype=np.float32)}, engine="vectorized")
        assert kernel.last_engine == "vectorized"
        assert np.array_equal(out["b"], np.arange(6, dtype=np.float32) * 0.5)

    def test_multiply_at_other_index_still_rejected(self):
        """``B[i+1] = B[i+1] * B[i]`` is a scan, not a pointwise rescale."""
        from repro.core.buffers import FlatBuffer
        from repro.core.expr import Var
        from repro.core.program import STAGE_LOOP, PrimFunc
        from repro.core.stmt import BufferStore, ForLoop

        b = FlatBuffer("b", 5)
        i = Var("i")
        body = ForLoop(i, 0, 4, BufferStore(b, [i + 1], b[i + 1] * b[i]))
        func = PrimFunc("prod_scan", axes=[], buffers=[], body=body,
                        stage=STAGE_LOOP, flat_buffers=[b])
        with pytest.raises(UnsupportedProgram):
            VectorizedExecutor(func)
        kernel = build(func, cache=False)
        out = kernel.run({"b": np.full(5, 2.0, dtype=np.float32)})
        assert kernel.last_engine == "interpret"
        assert np.array_equal(out["b"], [2.0, 4.0, 8.0, 16.0, 32.0])


class TestEngineSemantics:
    def test_stale_output_and_empty_rows(self, matrices, rng):
        """Reduction init only touches rows with a non-empty domain — both engines."""
        x = rng.standard_normal((matrices.cols, 3)).astype(np.float32)
        kernel = build(build_spmm_program(matrices, 3, x), cache=False)
        stale = np.full(matrices.rows * 3, 123.0, dtype=np.float32)
        interp = kernel.run({"C": stale.copy()}, engine="interpret")
        vec = kernel.run({"C": stale.copy()}, engine="vectorized")
        assert np.array_equal(interp["C"], vec["C"])
        lengths = matrices.row_lengths()
        empty = np.repeat(lengths == 0, 3)
        assert np.all(vec["C"][empty] == 123.0)

    def test_bindings_override(self, matrices, rng):
        x = rng.standard_normal((matrices.cols, 3)).astype(np.float32)
        other = rng.standard_normal((matrices.cols, 3)).astype(np.float32)
        kernel = build(build_spmm_program(matrices, 3, x), cache=False)
        out = kernel.run({"B": other.reshape(-1)})
        assert np.allclose(
            out["C"].reshape(matrices.rows, 3), spmm_reference(matrices, other), atol=1e-4
        )

    def test_unsupported_statement_falls_back(self, matrices, rng):
        """A store whose value reads another buffer written in the same nest
        is outside the fragment: engine="vectorized" raises, "auto" falls
        back to the interpreter and still produces the right answer."""
        from repro.core.buffers import FlatBuffer
        from repro.core.expr import Var
        from repro.core.program import STAGE_LOOP, PrimFunc
        from repro.core.stmt import BufferStore, ForLoop, SeqStmt

        a = FlatBuffer("a", 4)
        b = FlatBuffer("b", 4)
        i = Var("i")
        body = ForLoop(
            i, 0, 4, SeqStmt([BufferStore(a, [i], 1.0), BufferStore(b, [i], a[i] + 1.0)])
        )
        func = PrimFunc("chained", axes=[], buffers=[], body=body,
                        stage=STAGE_LOOP, flat_buffers=[a, b])
        with pytest.raises(UnsupportedProgram):
            VectorizedExecutor(func)
        kernel = build(func, cache=False)
        out = kernel.run(engine="auto")
        assert kernel.last_engine == "interpret"
        assert np.allclose(out["b"], 2.0)
        assert np.array_equal(out["b"], Executor(func).run()["b"])

    def test_vectorized_stays_strict_after_auto_fallback(self, matrices, rng):
        """Once "auto" has fallen back, demanding "vectorized" must still
        raise instead of silently running the interpreter."""
        from repro.core.buffers import FlatBuffer
        from repro.core.expr import Var
        from repro.core.program import STAGE_LOOP, PrimFunc
        from repro.core.stmt import BufferStore, ForLoop, SeqStmt

        a = FlatBuffer("a", 4)
        b = FlatBuffer("b", 4)
        i = Var("i")
        body = ForLoop(
            i, 0, 4, SeqStmt([BufferStore(a, [i], 1.0), BufferStore(b, [i], a[i] + 1.0)])
        )
        func = PrimFunc("chained", axes=[], buffers=[], body=body,
                        stage=STAGE_LOOP, flat_buffers=[a, b])
        kernel = build(func, cache=False)
        kernel.run(engine="auto")
        assert kernel.last_engine == "interpret"
        with pytest.raises(UnsupportedProgram):
            kernel.run(engine="vectorized")

    def test_residual_reading_own_target_at_other_index_rejected(self):
        """``B[i+1] = B[i+1] + B[i]`` is a loop-carried dependency, not a
        reduction: the fast path must refuse it (and "auto" must produce the
        interpreter's serial result)."""
        from repro.core.buffers import FlatBuffer
        from repro.core.expr import Var
        from repro.core.program import STAGE_LOOP, PrimFunc
        from repro.core.stmt import BufferStore, ForLoop

        b = FlatBuffer("b", 5)
        i = Var("i")
        body = ForLoop(i, 0, 4, BufferStore(b, [i + 1], b[i + 1] + b[i]))
        func = PrimFunc("scan", axes=[], buffers=[], body=body,
                        stage=STAGE_LOOP, flat_buffers=[b])
        with pytest.raises(UnsupportedProgram):
            VectorizedExecutor(func)
        kernel = build(func, cache=False)
        out = kernel.run({"b": np.ones(5, dtype=np.float32)})
        assert kernel.last_engine == "interpret"
        assert np.array_equal(out["b"], [1.0, 2.0, 3.0, 4.0, 5.0])

    def test_loop_bound_reading_written_buffer_rejected(self):
        from repro.core.buffers import FlatBuffer
        from repro.core.expr import Var
        from repro.core.program import STAGE_LOOP, PrimFunc
        from repro.core.stmt import BufferStore, ForLoop

        n = FlatBuffer("n", 1, dtype="int32")
        i = Var("i")
        body = ForLoop(i, 0, n[0], BufferStore(n, [0], 0))
        func = PrimFunc("self_bound", axes=[], buffers=[], body=body,
                        stage=STAGE_LOOP, flat_buffers=[n])
        with pytest.raises(UnsupportedProgram):
            VectorizedExecutor(func)

    def test_fast_path_is_used_by_default(self, matrices, rng):
        x = rng.standard_normal((matrices.cols, 2)).astype(np.float32)
        kernel = build(build_spmm_program(matrices, 2, x), cache=False)
        kernel.run()
        # Auto dispatch prefers a compiled tier, never the interpreter.
        assert kernel.last_engine in ("native", "emitted", "vectorized")
