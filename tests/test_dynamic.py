"""Dynamic sparsity: incremental structure updates, epochs and overlays.

Covers the epoch-versioned delta machinery end to end:

* delta-log mechanics — O(delta) inserts/deletes/upserts, atomic batches,
  automatic re-compaction, epoch/mutation accounting;
* the dtype bugfix sweep — ``CSRMatrix``/``ELLMatrix``/``HybFormat`` honor
  their value dtype instead of silently materialising float32;
* the stale-memo bugfix — serve fingerprints, session task fingerprints and
  cached decompositions all refresh when a matrix mutates, and stay O(1)
  warm while its ``structure_epoch`` is unchanged;
* the hyb bucket-count heuristic, pinned per Figure-13 graph;
* drift-triggered re-tuning of stale autotuned plans;
* a hypothesis edit-script conformance suite: any interleaving of
  insert/delete/compact is bit-exact with a cold rebuild from the final
  edge set, through ``Session.spmm`` (csr + hyb), ``Session.sddmm`` and the
  BSR decomposition.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats.bsr import BSRMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.delta import DeltaLog, base_edge_keys
from repro.formats.ell import ELLMatrix
from repro.formats.hyb import HybFormat
from repro.ops.spmm import choose_hyb_parameters
from repro.runtime.session import Session
from repro.serve.batching import make_spmm_request
from repro.tune.spaces import SpMMProblem
from repro.workloads.graphs import synthetic_graph

RNG = np.random.default_rng


def small_matrix(dtype="float32", compact_threshold=10.0, seed=0, rows=6, cols=7):
    """A small random matrix whose auto-compaction is effectively disabled."""
    m = CSRMatrix.random(rows, cols, density=0.3, seed=seed, dtype=dtype)
    m.compact_threshold = compact_threshold
    return m


def csr_from_edges(shape, edges, dtype, compact_threshold=10.0):
    """Cold-build a canonical CSRMatrix from an explicit ``{(r, c): v}`` map.

    Built directly (not via ``to_dense``/scipy canonicalisation) so edges
    whose value happens to be exactly zero survive — the delta log stores
    them, and the cold comparator must too.
    """
    items = sorted(edges.items())
    rows = np.array([r for (r, _), _ in items], dtype=np.int64)
    cols = np.array([c for (_, c), _ in items], dtype=np.int64)
    vals = np.array([v for _, v in items], dtype=np.dtype(dtype))
    indptr = np.zeros(shape[0] + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=shape[0]), out=indptr[1:])
    return CSRMatrix(shape, indptr, cols, vals, dtype=dtype,
                     compact_threshold=compact_threshold)


def edge_map(csr):
    """The effective ``{(row, col): value}`` content of a matrix."""
    out = {}
    indptr, indices, data = csr.indptr, csr.indices, csr.data
    for row in range(csr.rows):
        for pos in range(indptr[row], indptr[row + 1]):
            out[(row, int(indices[pos]))] = data[pos]
    return out


# ---------------------------------------------------------------------------
# Delta-log mechanics
# ---------------------------------------------------------------------------


class TestDeltaMechanics:
    def test_insert_bumps_epoch_and_nnz(self):
        m = small_matrix()
        base_nnz = m.nnz
        missing = sorted(set(np.ndindex(m.shape)) - set(edge_map(m)))[:2]
        rows = [r for r, _ in missing]
        cols = [c for _, c in missing]
        m.insert_edges(rows, cols, [1.5, -2.5])
        assert m.structure_epoch == 1
        assert m.mutation_count == 2
        assert m.has_pending_delta
        assert m.pending_delta == 2
        assert m.nnz == base_nnz + 2
        dense = m.to_dense()
        assert dense[missing[0]] == np.float32(1.5)
        assert dense[missing[1]] == np.float32(-2.5)

    def test_upsert_replaces_value_without_growing(self):
        m = small_matrix()
        row = int(np.flatnonzero(np.diff(m.indptr))[0])
        col = int(m.indices[m.indptr[row]])
        nnz = m.nnz
        m.insert_edges([row], [col], [9.0])
        assert m.nnz == nnz  # tombstone + insert cancel out in the count
        assert m.to_dense()[row, col] == np.float32(9.0)
        assert m.structure_epoch == 1

    def test_delete_existing_base_edge(self):
        m = small_matrix()
        row = int(np.flatnonzero(np.diff(m.indptr))[0])
        col = int(m.indices[m.indptr[row]])
        nnz = m.nnz
        m.delete_edges([row], [col])
        assert m.nnz == nnz - 1
        assert m.to_dense()[row, col] == 0.0
        assert m.structure_epoch == 1

    def test_delete_missing_edge_is_atomic(self):
        m = small_matrix()
        row = int(np.flatnonzero(np.diff(m.indptr))[0])
        col = int(m.indices[m.indptr[row]])
        missing = sorted(set(np.ndindex(m.shape)) - set(edge_map(m)))[0]
        before = edge_map(m)
        with pytest.raises(KeyError):
            m.delete_edges([row, missing[0]], [col, missing[1]])
        # Nothing applied: the first (valid) delete rolled back with the batch.
        assert edge_map(m) == before
        assert m.structure_epoch == 0
        assert not m.has_pending_delta

    def test_double_delete_in_one_batch_rejected(self):
        m = small_matrix()
        row = int(np.flatnonzero(np.diff(m.indptr))[0])
        col = int(m.indices[m.indptr[row]])
        with pytest.raises(KeyError):
            m.delete_edges([row, row], [col, col])
        assert m.structure_epoch == 0

    def test_insert_then_delete_collapses_delta(self):
        m = small_matrix()
        missing = sorted(set(np.ndindex(m.shape)) - set(edge_map(m)))[0]
        m.insert_edges([missing[0]], [missing[1]], [3.0])
        assert m.has_pending_delta
        m.delete_edges([missing[0]], [missing[1]])
        assert not m.has_pending_delta  # edits cancelled -> back to plain base
        assert m.structure_epoch == 2  # but the epoch still advanced twice

    def test_auto_compaction_at_threshold(self):
        m = small_matrix(compact_threshold=0.25)
        base_nnz = len(m._indices)
        missing = sorted(set(np.ndindex(m.shape)) - set(edge_map(m)))
        budget = int(np.ceil(0.25 * base_nnz))
        rows = [r for r, _ in missing[:budget]]
        cols = [c for _, c in missing[:budget]]
        m.insert_edges(rows, cols)
        assert not m.has_pending_delta  # drift hit the threshold -> compacted
        assert m.nnz == base_nnz + budget
        assert m.drift_ratio == 0.0

    def test_compact_preserves_epoch_and_content(self):
        m = small_matrix()
        missing = sorted(set(np.ndindex(m.shape)) - set(edge_map(m)))[0]
        m.insert_edges([missing[0]], [missing[1]], [4.0])
        before = edge_map(m)
        epoch = m.structure_epoch
        signature = m.content_signature()
        m.compact()
        assert not m.has_pending_delta
        assert m.structure_epoch == epoch  # storage rewrite, not a mutation
        assert edge_map(m) == before
        assert m.content_signature() == signature

    def test_base_view_identity_stable_across_window(self):
        m = small_matrix()
        missing = sorted(set(np.ndindex(m.shape)) - set(edge_map(m)))[:3]
        m.insert_edges([missing[0][0]], [missing[0][1]])
        view = m.base_view()
        assert view is not m
        assert view.indptr is m._indptr  # shares the frozen base arrays
        m.insert_edges([missing[1][0]], [missing[1][1]])
        assert m.base_view() is view  # same object while the base stands
        m.compact()
        assert m.base_view() is m  # no pending delta: the matrix is its base

    def test_base_edge_keys_requires_canonical(self):
        indptr = np.array([0, 2], dtype=np.int64)
        indices = np.array([2, 1], dtype=np.int64)  # out of order
        with pytest.raises(ValueError):
            base_edge_keys((1, 3), indptr, indices)

    def test_delta_log_counters(self):
        log = DeltaLog(4)
        assert log.empty and log.pending == 0
        log.record_insert(0, 1, 2.0)
        log.kill(3)
        assert log.pending == 2 and log.dead == 1
        log.discard_insert(0, 1)
        assert log.pending == 1 and not log.empty


# ---------------------------------------------------------------------------
# Satellite: dtype honored end to end (was: float32 hardcoded)
# ---------------------------------------------------------------------------


class TestDtypeHonored:
    def test_csr_float64_round_trip_precision(self):
        # 1 + 2^-40 is representable in float64 but rounds to 1.0 in float32;
        # before the fix CSRMatrix silently materialised float32 storage.
        delicate = 1.0 + 2.0 ** -40
        dense = np.array([[delicate, 0.0], [0.0, 2.0]], dtype=np.float64)
        m = CSRMatrix.from_dense(dense, dtype="float64")
        assert m.data.dtype == np.float64
        out = m.to_dense()
        assert out.dtype == np.float64
        assert out[0, 0] == delicate
        assert out[0, 0] != np.float64(np.float32(delicate))

    def test_csr_transpose_and_partition_keep_dtype(self):
        m = CSRMatrix.random(5, 8, density=0.4, seed=3, dtype="float64")
        assert m.transpose().data.dtype == np.float64
        for part in m.column_partition(3):
            assert part is None or part.data.dtype == np.float64

    def test_csr_random_and_default_data_dtype(self):
        m = CSRMatrix.random(4, 4, density=0.5, seed=1, dtype="float64")
        assert m.data.dtype == np.float64
        ones = CSRMatrix(
            (1, 2), np.array([0, 2]), np.array([0, 1]), dtype="float64"
        )
        assert ones.data.dtype == np.float64

    def test_mutations_store_values_in_matrix_dtype(self):
        m = CSRMatrix.from_dense(np.eye(3), dtype="float64")
        m.compact_threshold = 10.0
        delicate = 1.0 + 2.0 ** -40
        m.insert_edges([0], [1], [delicate])
        assert m.data.dtype == np.float64
        assert m.to_dense()[0, 1] == delicate

    def test_ell_and_hyb_keep_float64(self):
        m = CSRMatrix.random(6, 6, density=0.4, seed=5, dtype="float64")
        ell = ELLMatrix.from_csr(m)
        assert ell.data.dtype == np.float64
        assert ell.to_dense().dtype == np.float64
        hyb = HybFormat.from_csr(m, num_col_parts=2)
        assert all(b.ell.data.dtype == np.float64 for b in hyb.buckets)
        assert hyb.to_dense().dtype == np.float64
        np.testing.assert_array_equal(hyb.to_dense(), m.to_dense())


# ---------------------------------------------------------------------------
# Satellite: stale-memo regressions (epoch-keyed fingerprints)
# ---------------------------------------------------------------------------


class TestStaleMemoRegression:
    def test_serve_fingerprint_tracks_mutation(self):
        m = small_matrix()
        x = np.ones((m.cols, 4), dtype=np.float32)
        before = make_spmm_request(m, x).fingerprint
        assert make_spmm_request(m, x).fingerprint == before  # O(1) memo hit
        missing = sorted(set(np.ndindex(m.shape)) - set(edge_map(m)))[0]
        m.insert_edges([missing[0]], [missing[1]])
        after = make_spmm_request(m, x).fingerprint
        assert after != before  # pre-fix: stale cached hash -> wrong coalescing

    def test_serve_fingerprint_tracks_value_only_upsert(self):
        m = small_matrix()
        x = np.ones((m.cols, 4), dtype=np.float32)
        before = make_spmm_request(m, x).fingerprint
        row = int(np.flatnonzero(np.diff(m.indptr))[0])
        col = int(m.indices[m.indptr[row]])
        m.insert_edges([row], [col], [123.0])  # same structure, new value
        assert make_spmm_request(m, x).fingerprint != before

    def test_task_fingerprint_tracks_mutation(self):
        session = Session(persistent=False, tuning_records=False)
        m = small_matrix()
        problem = SpMMProblem(m, 4)
        before = session._task_fingerprint("spmm", problem)
        assert session._task_fingerprint("spmm", problem) == before
        missing = sorted(set(np.ndindex(m.shape)) - set(edge_map(m)))[0]
        m.insert_edges([missing[0]], [missing[1]])
        after = session._task_fingerprint("spmm", SpMMProblem(m, 4))
        assert after != before  # pre-fix: id()-keyed memo served the stale hash

    def test_decompose_hyb_refreshes_after_mutation(self):
        session = Session(persistent=False)
        m = small_matrix()
        first = session.decompose_hyb(m, num_col_parts=2, num_buckets=2)
        assert session.decompose_hyb(m, num_col_parts=2, num_buckets=2) is first
        assert session.stats.format_cache_hits == 1
        missing = sorted(set(np.ndindex(m.shape)) - set(edge_map(m)))[0]
        m.insert_edges([missing[0]], [missing[1]], [7.0])
        fresh = session.decompose_hyb(m, num_col_parts=2, num_buckets=2)
        assert fresh is not first  # pre-fix: stale decomposition reused
        np.testing.assert_array_equal(fresh.to_dense(), m.to_dense())

    def test_decompose_bsr_refreshes_after_mutation(self):
        session = Session(persistent=False)
        m = small_matrix(rows=8, cols=8)
        first = session.decompose_bsr(m, block_size=2)
        assert session.decompose_bsr(m, block_size=2) is first
        missing = sorted(set(np.ndindex(m.shape)) - set(edge_map(m)))[0]
        m.delete_edges(*[[v] for v in sorted(edge_map(m))[0]])
        fresh = session.decompose_bsr(m, block_size=2)
        assert fresh is not first
        np.testing.assert_array_equal(fresh.to_dense(), m.to_dense())


# ---------------------------------------------------------------------------
# Satellite: hyb bucket-count heuristic pinned per Figure-13 graph
# ---------------------------------------------------------------------------


class TestHybHeuristic:
    # k = ceil(log2(max(nnz/n, 1))) + 1: one bucket more than the paper's
    # stated ceil(log2(avg_degree)), so the widest width covers the average.
    EXPECTED = {"cora": 3, "citeseer": 3, "pubmed": 4}

    @pytest.mark.parametrize("name,buckets", sorted(EXPECTED.items()))
    def test_fig13_default_bucket_counts(self, name, buckets):
        csr = synthetic_graph(name).csr
        hyb = HybFormat.from_csr(csr)
        assert hyb.bucket_widths == [2 ** i for i in range(buckets)]
        assert choose_hyb_parameters(csr) == (16, buckets)
        # The widest bucket is at least the average degree (the point of +1).
        assert hyb.bucket_widths[-1] >= csr.nnz / csr.rows

    def test_dead_bucket_for_helper_removed(self):
        import repro.formats.hyb as hyb_module

        assert not hasattr(hyb_module, "_bucket_for")

    def test_degenerate_average_floors_at_one_bucket(self):
        empty = CSRMatrix((3, 3), np.zeros(4, dtype=np.int64), np.array([], dtype=np.int64))
        assert HybFormat.from_csr(empty).bucket_widths == [1]
        assert choose_hyb_parameters(empty)[1] == 1


# ---------------------------------------------------------------------------
# Tentpole: overlay execution keeps warm kernels; drift triggers re-tune
# ---------------------------------------------------------------------------


class TestOverlayExecution:
    def test_unchanged_epoch_requests_stay_warm(self):
        session = Session(persistent=False)
        m = small_matrix()
        x = RNG(0).standard_normal((m.cols, 4)).astype(np.float32)
        session.spmm(m, x)  # cold: compiles the base kernel
        misses = session.stats.kernel_cache_misses
        session.spmm(m, x)
        assert session.stats.kernel_cache_hits >= 1
        missing = sorted(set(np.ndindex(m.shape)) - set(edge_map(m)))[0]
        m.insert_edges([missing[0]], [missing[1]], [2.0])
        out = session.spmm(m, x)
        # The mutated matrix executed as base plan + overlay: the warm base
        # kernel was reused, nothing recompiled.
        assert session.stats.kernel_cache_misses == misses
        assert session.stats.overlay_runs == 1
        cold = Session(persistent=False)
        expected = cold.spmm(csr_from_edges(m.shape, edge_map(m), m.dtype), x)
        np.testing.assert_array_equal(out, expected)

    def test_overlay_sddmm_matches_cold(self):
        session = Session(persistent=False)
        m = small_matrix()
        x = RNG(1).standard_normal((m.rows, 3)).astype(np.float32)
        y = RNG(2).standard_normal((3, m.cols)).astype(np.float32)
        session.sddmm(m, x, y)
        misses = session.stats.kernel_cache_misses
        missing = sorted(set(np.ndindex(m.shape)) - set(edge_map(m)))[:2]
        m.insert_edges([r for r, _ in missing], [c for _, c in missing], [1.0, -1.0])
        row = int(np.flatnonzero(np.diff(m._indptr))[0])
        m.delete_edges([row], [int(m._indices[m._indptr[row]])])
        out = session.sddmm(m, x, y)
        assert session.stats.kernel_cache_misses == misses
        assert session.stats.overlay_runs == 1
        cold = Session(persistent=False)
        expected = cold.sddmm(csr_from_edges(m.shape, edge_map(m), m.dtype), x, y)
        np.testing.assert_array_equal(out, expected)


class TestDriftRetune:
    def _tuned_session_and_matrix(self, **session_kwargs):
        session = Session(persistent=False, tuning_records=False, **session_kwargs)
        m = small_matrix(rows=8, cols=8, seed=7)
        result = session.autotune(
            "spmm", SpMMProblem(m, 4), strategy="grid", survivors=0, repeats=1
        )
        assert result.record is not None
        return session, m

    def _mutate(self, m, count):
        missing = sorted(set(np.ndindex(m.shape)) - set(edge_map(m)))[:count]
        m.insert_edges([r for r, _ in missing], [c for _, c in missing])

    def test_small_drift_reuses_stale_plan(self):
        session, m = self._tuned_session_and_matrix(drift_threshold=0.5)
        x = np.ones((m.cols, 4), dtype=np.float32)
        self._mutate(m, 1)  # drift 1/nnz, far below 0.5
        session.spmm(m, x, tuned=True)
        assert session.stats.stale_plan_reuses == 1
        assert session.stats.retunes_triggered == 0
        assert session.retune_pending == []

    def test_crossing_threshold_queues_retune(self):
        session, m = self._tuned_session_and_matrix(drift_threshold=0.25)
        x = np.ones((m.cols, 4), dtype=np.float32)
        nnz_at_tune = m.nnz
        self._mutate(m, int(np.ceil(0.25 * nnz_at_tune)))
        session.spmm(m, x, tuned=True)
        assert session.stats.retunes_triggered == 1
        assert len(session.retune_pending) == 1
        assert session.retune_pending[0]["workload"] == "spmm"
        # The trigger fires once per crossing: the lineage entry is retired.
        session.spmm(m, x, tuned=True)
        assert session.stats.retunes_triggered == 1
        assert len(session.retune_pending) == 1

    def test_retune_drains_pending_queue(self):
        session, m = self._tuned_session_and_matrix(drift_threshold=0.25)
        x = np.ones((m.cols, 4), dtype=np.float32)
        self._mutate(m, m.nnz)
        session.spmm(m, x, tuned=True)
        assert len(session.retune_pending) == 1
        results = session.retune()
        assert session.retune_pending == []
        assert len(results) == 1 and results[0].record is not None
        # Re-tuned: the fresh lineage serves tuned calls again.
        session.spmm(m, x, tuned=True)
        assert session.stats.retunes_triggered == 1

    def test_auto_retune_runs_inline(self):
        session, m = self._tuned_session_and_matrix(
            drift_threshold=0.25, auto_retune=True
        )
        x = np.ones((m.cols, 4), dtype=np.float32)
        self._mutate(m, m.nnz)
        session.spmm(m, x, tuned=True)
        assert session.stats.retunes_triggered == 1
        assert session.retune_pending == []  # ran inline, nothing queued


# ---------------------------------------------------------------------------
# Hypothesis: edit-script conformance against cold rebuilds
# ---------------------------------------------------------------------------


@st.composite
def edit_scripts(draw):
    """A random base matrix plus a random insert/delete/compact interleaving."""
    rows = draw(st.integers(min_value=2, max_value=7))
    cols = draw(st.integers(min_value=2, max_value=7))
    dtype = draw(st.sampled_from(["float32", "float64"]))
    seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    density = draw(st.sampled_from([0.0, 0.2, 0.5]))
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        kind = draw(st.sampled_from(["insert", "upsert", "delete", "compact"]))
        if kind == "compact":
            ops.append(("compact",))
        else:
            count = draw(st.integers(min_value=1, max_value=3))
            coords = draw(
                st.lists(
                    st.tuples(
                        st.integers(0, rows - 1), st.integers(0, cols - 1)
                    ),
                    min_size=count,
                    max_size=count,
                    unique=True,
                )
            )
            values = draw(
                st.lists(
                    st.sampled_from([0.0, 1.0, -1.5, 0.25, 3.75]),
                    min_size=count,
                    max_size=count,
                )
            )
            ops.append((kind, coords, values))
    return rows, cols, dtype, seed, density, ops


def apply_script(matrix, model, ops):
    """Apply *ops* to the matrix and the ``{(r, c): v}`` reference model."""
    value_dtype = np.dtype(matrix.dtype)
    for op in ops:
        if op[0] == "compact":
            matrix.compact()
            continue
        kind, coords, values = op
        if kind == "delete":
            coords = [rc for rc in coords if rc in model]
            if not coords:
                continue
            matrix.delete_edges([r for r, _ in coords], [c for _, c in coords])
            for rc in coords:
                del model[rc]
            continue
        if kind == "insert":  # plain inserts target absent coordinates only
            pairs = [(rc, v) for rc, v in zip(coords, values) if rc not in model]
        else:  # upserts target any coordinate (absent ones degrade to inserts)
            pairs = list(zip(coords, values))
        if not pairs:
            continue
        matrix.insert_edges(
            [r for (r, _), _ in pairs],
            [c for (_, c), _ in pairs],
            [v for _, v in pairs],
        )
        for rc, v in pairs:
            model[rc] = value_dtype.type(v)


class TestEditScriptConformance:
    @given(edit_scripts())
    @settings(max_examples=25, deadline=None)
    def test_spmm_csr_matches_cold_rebuild(self, script):
        rows, cols, dtype, seed, density, ops = script
        m = CSRMatrix.random(rows, cols, density, seed=seed, dtype=dtype)
        m.compact_threshold = 10.0
        model = edge_map(m)
        apply_script(m, model, ops)
        cold_csr = csr_from_edges(m.shape, model, dtype)
        x = RNG(seed).standard_normal((cols, 3)).astype(dtype)
        warm, cold = Session(persistent=False), Session(persistent=False)
        np.testing.assert_array_equal(
            warm.spmm(m, x), cold.spmm(cold_csr, x)
        )

    @given(edit_scripts())
    @settings(max_examples=15, deadline=None)
    def test_spmm_hyb_matches_cold_rebuild(self, script):
        rows, cols, dtype, seed, density, ops = script
        m = CSRMatrix.random(rows, cols, density, seed=seed, dtype=dtype)
        m.compact_threshold = 10.0
        model = edge_map(m)
        apply_script(m, model, ops)
        cold_csr = csr_from_edges(m.shape, model, dtype)
        x = RNG(seed + 1).standard_normal((cols, 3)).astype(dtype)
        warm, cold = Session(persistent=False), Session(persistent=False)
        np.testing.assert_array_equal(
            warm.spmm(m, x, format="hyb", num_col_parts=2),
            cold.spmm(cold_csr, x, format="hyb", num_col_parts=2),
        )

    @given(edit_scripts())
    @settings(max_examples=15, deadline=None)
    def test_sddmm_matches_cold_rebuild(self, script):
        rows, cols, dtype, seed, density, ops = script
        m = CSRMatrix.random(rows, cols, density, seed=seed, dtype=dtype)
        m.compact_threshold = 10.0
        model = edge_map(m)
        apply_script(m, model, ops)
        cold_csr = csr_from_edges(m.shape, model, dtype)
        rng = RNG(seed + 2)
        x = rng.standard_normal((rows, 3)).astype(dtype)
        y = rng.standard_normal((3, cols)).astype(dtype)
        warm, cold = Session(persistent=False), Session(persistent=False)
        np.testing.assert_array_equal(
            warm.sddmm(m, x, y), cold.sddmm(cold_csr, x, y)
        )

    @given(edit_scripts())
    @settings(max_examples=15, deadline=None)
    def test_compacted_storage_is_canonical(self, script):
        rows, cols, dtype, seed, density, ops = script
        m = CSRMatrix.random(rows, cols, density, seed=seed, dtype=dtype)
        m.compact_threshold = 10.0
        model = edge_map(m)
        apply_script(m, model, ops)
        m.compact()
        cold_csr = csr_from_edges(m.shape, model, dtype)
        np.testing.assert_array_equal(m.indptr, cold_csr.indptr)
        np.testing.assert_array_equal(m.indices, cold_csr.indices)
        np.testing.assert_array_equal(m.data, cold_csr.data)
        # BSR conformance (float32-only format): same blocks either way.
        if dtype == "float32":
            np.testing.assert_array_equal(
                BSRMatrix.from_csr(m, 2).to_dense(),
                BSRMatrix.from_csr(cold_csr, 2).to_dense(),
            )
