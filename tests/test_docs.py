"""Documentation health checks: files exist, relative links resolve.

Run by the CI docs job (and the normal fast lane).  The checks are
intentionally dependency-free: a regex pass over the repository's markdown
files verifying that every relative link target exists on disk, plus
structural assertions that the docs cover the subsystems they promise.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown files covered by the link check.
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", REPO_ROOT / "ROADMAP.md"]
    + list((REPO_ROOT / "docs").glob("*.md"))
)

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _relative_links(path: Path):
    for target in _LINK_RE.findall(path.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


def test_doc_files_exist():
    for path in (REPO_ROOT / "docs" / "README.md",
                 REPO_ROOT / "docs" / "architecture.md",
                 REPO_ROOT / "docs" / "runtime.md",
                 REPO_ROOT / "docs" / "tuning.md"):
        assert path.is_file(), f"missing documentation file {path}"


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_relative_links_resolve(doc):
    for target in _relative_links(doc):
        resolved = (doc.parent / target).resolve()
        assert resolved.exists(), f"{doc.name}: broken relative link {target!r}"


def test_architecture_guide_covers_all_stages():
    text = (REPO_ROOT / "docs" / "architecture.md").read_text(encoding="utf-8")
    for needle in (
        "stage I", "stage II", "stage III",
        "repro.core.stage2.lowering", "repro.core.stage3.buffer_lowering",
        "sparse_coord_to_pos", "horizontal fusion",
    ):
        assert needle in text, f"architecture.md does not mention {needle!r}"


def test_runtime_guide_covers_runtime_subsystems():
    text = (REPO_ROOT / "docs" / "runtime.md").read_text(encoding="utf-8")
    for needle in (
        "Session", "KernelCache", "VectorizedExecutor", "UnsupportedProgram",
        "np.add.at", "structural fingerprint",
        "batched_spmm", "batched_sddmm", "rgms", "sparse_conv",
    ):
        assert needle in text, f"runtime.md does not mention {needle!r}"


def test_tuning_guide_covers_autoscheduler_subsystems():
    text = (REPO_ROOT / "docs" / "tuning.md").read_text(encoding="utf-8")
    for needle in (
        "Session.autotune", "tuned=True", "TuningRecord", "WorkloadSpec",
        "ParameterSpace", "REPRO_TUNING_RECORDS", "successive_halving",
        "evolutionary", "spmm", "sddmm", "attention", "rgms", "sparse_conv",
        "pruned_spmm", "BENCH_tuning.json", "--regen-golden",
    ):
        assert needle in text, f"tuning.md does not mention {needle!r}"


def test_tuning_guide_spaces_match_the_registry():
    """The search-space reference table stays in sync with the code."""
    from repro.tune import available_workloads

    text = (REPO_ROOT / "docs" / "tuning.md").read_text(encoding="utf-8")
    for workload in available_workloads():
        assert f"`{workload}`" in text, (
            f"tuning.md search-space reference is missing workload {workload!r}"
        )


def test_readme_coverage_matrix_lists_every_session_operator():
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    from repro.runtime import Session

    for method in (
        "spmm", "sddmm", "pruned_spmm", "batched_spmm", "batched_sddmm",
        "rgms", "sparse_conv",
    ):
        assert hasattr(Session, method)
        assert f"Session.{method}" in text, (
            f"README coverage matrix is missing Session.{method}"
        )
