"""Unit tests for the expression IR."""

import pytest

from repro.core.expr import (
    Add,
    BufferLoad,
    Call,
    Cast,
    EQ,
    FloatImm,
    FloorDiv,
    FloorMod,
    GE,
    GT,
    IntImm,
    LE,
    LT,
    Max,
    Min,
    Mul,
    NE,
    Not,
    Select,
    StringImm,
    Sub,
    Var,
    collect_vars,
    post_order,
    simplify,
    structural_equal,
    substitute,
    wrap,
)
from repro.core.buffers import SparseBuffer
from repro.core.axes import dense_fixed


def test_wrap_int_and_float():
    assert isinstance(wrap(3), IntImm)
    assert wrap(3).value == 3
    assert isinstance(wrap(2.5), FloatImm)
    assert wrap(2.5).value == 2.5


def test_wrap_bool_and_passthrough():
    b = wrap(True)
    assert isinstance(b, IntImm) and b.dtype == "bool"
    v = Var("x")
    assert wrap(v) is v


def test_wrap_rejects_unknown_types():
    with pytest.raises(TypeError):
        wrap("not an expr")
    with pytest.raises(TypeError):
        wrap([1, 2, 3])


def test_operator_sugar_builds_nodes():
    x, y = Var("x"), Var("y")
    assert isinstance(x + y, Add)
    assert isinstance(x - y, Sub)
    assert isinstance(x * y, Mul)
    assert isinstance(x // y, FloorDiv)
    assert isinstance(x % y, FloorMod)
    assert isinstance(x < y, LT)
    assert isinstance(x <= y, LE)
    assert isinstance(x > y, GT)
    assert isinstance(x >= y, GE)
    assert isinstance(x.equal(y), EQ)
    assert isinstance(x.not_equal(y), NE)


def test_reflected_operators_wrap_scalars():
    x = Var("x")
    expr = 3 + x
    assert isinstance(expr, Add)
    assert isinstance(expr.a, IntImm) and expr.a.value == 3
    expr2 = 2 * x
    assert isinstance(expr2, Mul)


def test_var_identity_semantics():
    a = Var("i")
    b = Var("i")
    assert a == a
    assert a != b
    assert len({a, b}) == 2


def test_binary_dtype_promotion():
    i = Var("i", "int32")
    f = FloatImm(1.0)
    assert (i + f).dtype == "float32"
    assert (i + IntImm(1)).dtype == "int32"
    assert (i < IntImm(3)).dtype == "bool"


def test_post_order_and_collect_vars():
    x, y = Var("x"), Var("y")
    expr = (x + y) * x
    nodes = list(post_order(expr))
    assert nodes[-1] is expr
    assert collect_vars(expr) == (x, y)


def test_collect_vars_through_buffer_load():
    axis = dense_fixed("I", 4)
    buf = SparseBuffer("A", [axis])
    i = Var("i")
    expr = buf[i] + 1.0
    assert collect_vars(expr) == (i,)


def test_substitute_replaces_vars():
    x, y, z = Var("x"), Var("y"), Var("z")
    expr = x + y * 2
    out = substitute(expr, {x: z, y: IntImm(5)})
    assert structural_equal(out, z + IntImm(5) * 2)


def test_substitute_inside_call_and_select():
    x, y = Var("x"), Var("y")
    expr = Select(x < 3, Call("f", [x]), Cast(x, "float32"))
    out = substitute(expr, {x: y})
    assert collect_vars(out) == (y,)


def test_structural_equal_basics():
    x, y = Var("x"), Var("y")
    assert structural_equal(x + 1, x + 1)
    assert not structural_equal(x + 1, y + 1)
    assert not structural_equal(x + 1, x + 2)
    assert not structural_equal(x + 1, x * 1)


def test_structural_equal_buffer_loads():
    axis = dense_fixed("I", 4)
    a = SparseBuffer("A", [axis])
    b = SparseBuffer("B", [axis])
    i = Var("i")
    assert structural_equal(a[i], a[i])
    assert not structural_equal(a[i], b[i])


def test_simplify_constant_folding():
    assert simplify(wrap(2) + wrap(3)).value == 5
    assert simplify(wrap(2) * wrap(3)).value == 6
    assert simplify(wrap(7) // wrap(2)).value == 3
    assert simplify(wrap(7) % wrap(2)).value == 1


def test_simplify_identities():
    x = Var("x")
    assert simplify(x + 0) is x
    assert simplify(x * 1) is x
    assert simplify(x * 0).value == 0
    assert simplify(x // 1) is x
    assert simplify(x % 1).value == 0
    assert simplify(x - 0) is x


def test_simplify_select_with_constant_condition():
    x, y = Var("x"), Var("y")
    assert simplify(Select(wrap(1), x, y)) is x
    assert simplify(Select(wrap(0), x, y)) is y


def test_simplify_recurses_into_buffer_load_indices():
    axis = dense_fixed("I", 4)
    buf = SparseBuffer("A", [axis])
    load = BufferLoad(buf, [Var("i") + 0])
    out = simplify(load)
    assert isinstance(out.indices[0], Var)


def test_min_max_nodes_fold():
    assert simplify(Min(wrap(2), wrap(5))).value == 2
    assert simplify(Max(wrap(2), wrap(5))).value == 5


def test_not_folding():
    assert simplify(Not(wrap(0))).value == 1
    assert simplify(Not(wrap(5))).value == 0


def test_call_repr_and_args_wrapping():
    call = Call("binary_search", [StringImm("J"), 1, Var("c")])
    assert call.func == "binary_search"
    assert isinstance(call.args[1], IntImm)
    assert "binary_search" in repr(call)


def test_buffer_load_checks_arity():
    axis = dense_fixed("I", 4)
    buf = SparseBuffer("A", [axis, dense_fixed("K", 3)])
    with pytest.raises(ValueError):
        _ = buf[Var("i")]


def test_cast_dtype():
    x = Var("x")
    cast = Cast(x, "float32")
    assert cast.dtype == "float32"
    assert "cast" in repr(cast)


def test_negation_builds_subtraction():
    x = Var("x", "int32")
    neg = -x
    assert isinstance(neg, Sub)
    assert isinstance(neg.a, IntImm) and neg.a.value == 0
