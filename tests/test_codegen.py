"""Unit tests for kernel building, pseudo-CUDA emission and horizontal fusion."""

import numpy as np
import pytest

from repro.core import Schedule, build, lower_sparse_iterations
from repro.core.codegen.fusion import horizontal_fuse, is_horizontally_fused, launch_count, launch_groups
from repro.formats import ELLMatrix
from repro.formats.conversion import ell_rewrite_rule
from repro.core import decompose_format
from repro.ops.spmm import build_spmm_program


@pytest.fixture
def spmm_program(small_csr, rng):
    features = rng.standard_normal((small_csr.cols, 4)).astype(np.float32)
    return small_csr, build_spmm_program(small_csr, 4, features)


def test_build_from_stage1(spmm_program):
    _, func = spmm_program
    kernel = build(func)
    assert kernel.func.stage == "stage-III"
    assert kernel.num_launches == 1


def test_build_rejects_wrong_direction(spmm_program):
    _, func = spmm_program
    kernel = build(func)
    # Re-building an already stage-III program is fine; a bogus stage is not.
    rebuilt = build(kernel.func)
    assert rebuilt.num_launches == 1


def test_cuda_source_contains_kernel_and_params(spmm_program):
    _, func = spmm_program
    source = build(func).cuda_source()
    assert "__global__ void spmm_kernel_0" in source
    assert "float* __restrict__ A" in source
    assert "int* __restrict__ J_indptr" in source
    assert "J_indices" in source


def test_cuda_source_reflects_schedule_annotations(spmm_program):
    _, func = spmm_program
    stage2 = lower_sparse_iterations(func)
    schedule = Schedule(stage2)
    loops = schedule.get_loops("spmm_compute")
    schedule.bind(loops[0], "blockIdx.x")
    schedule.vectorize(schedule.get_loops("spmm_compute")[-1])
    schedule.tensorize("spmm_compute", "mma_m16n16k16")
    source = build(schedule.func).cuda_source()
    assert "blockIdx.x" in source
    assert "vectorized" in source
    assert "tensorize" in source


def test_horizontal_fusion_reduces_launches(small_csr, rng):
    features = rng.standard_normal((small_csr.cols, 2)).astype(np.float32)
    program = build_spmm_program(small_csr, 2, features)
    decomposed = decompose_format(program, [ell_rewrite_rule(ELLMatrix.from_csr(small_csr))])
    unfused = build(decomposed, horizontal_fusion=False)
    fused = build(decomposed, horizontal_fusion=True)
    assert unfused.num_launches >= 2
    assert fused.num_launches == 1
    # Both produce one __global__ function per launch group in the listing.
    assert unfused.cuda_source().count("__global__") == len(launch_groups(unfused.func))


def test_fusion_helpers(spmm_program):
    _, func = spmm_program
    kernel = build(func, horizontal_fusion=False)
    assert not is_horizontally_fused(kernel.func)
    fused = horizontal_fuse(kernel.func)
    assert is_horizontally_fused(fused)
    assert launch_count(fused) == 1


def test_kernel_profile_returns_report(spmm_program):
    from repro.perf.device import V100

    _, func = spmm_program
    report = build(func).profile(V100)
    assert report.duration_us > 0
    assert report.total_flops > 0
    assert report.device == "V100"


def test_kernel_repr(spmm_program):
    _, func = spmm_program
    assert "Kernel(" in repr(build(func))
