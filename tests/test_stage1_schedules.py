"""Unit tests for stage-I schedules: sparse_reorder and sparse_fuse."""

import numpy as np
import pytest

from repro.core import build, sparse_fuse, sparse_reorder
from repro.ops.sddmm import build_sddmm_program, sddmm_reference
from repro.ops.spmm import build_spmm_program, spmm_reference


@pytest.fixture
def spmm_setup(small_csr, rng):
    feat = 4
    features = rng.standard_normal((small_csr.cols, feat)).astype(np.float32)
    func = build_spmm_program(small_csr, feat, features)
    return small_csr, features, func


def axes_of(func, name):
    return {axis.name: axis for axis in func.axes}[name]


def test_sparse_reorder_changes_axis_order(spmm_setup):
    csr, features, func = spmm_setup
    i, j, k = axes_of(func, "I"), axes_of(func, "J"), axes_of(func, "K")
    reordered = sparse_reorder(func, "spmm", [k, i, j])
    iteration = reordered.sparse_iteration("spmm")
    assert [a.name for a in iteration.flat_axes] == ["K", "I", "J"]
    assert iteration.kinds == "SSR"


def test_sparse_reorder_preserves_semantics(spmm_setup):
    csr, features, func = spmm_setup
    i, j, k = axes_of(func, "I"), axes_of(func, "J"), axes_of(func, "K")
    reordered = sparse_reorder(func, "spmm", [k, i, j])
    out = build(reordered).run()
    reference = spmm_reference(csr, features)
    assert np.allclose(out["C"].reshape(reference.shape), reference, atol=1e-4)


def test_sparse_reorder_rejects_dependency_violation(spmm_setup):
    _, _, func = spmm_setup
    i, j, k = axes_of(func, "I"), axes_of(func, "J"), axes_of(func, "K")
    with pytest.raises(ValueError):
        sparse_reorder(func, "spmm", [j, i, k])


def test_sparse_reorder_rejects_non_permutation(spmm_setup):
    _, _, func = spmm_setup
    i, k = axes_of(func, "I"), axes_of(func, "K")
    with pytest.raises(ValueError):
        sparse_reorder(func, "spmm", [i, k])


def test_sparse_reorder_requires_stage1(spmm_setup):
    from repro.core import lower_sparse_iterations

    _, _, func = spmm_setup
    i, j, k = axes_of(func, "I"), axes_of(func, "J"), axes_of(func, "K")
    lowered = lower_sparse_iterations(func)
    with pytest.raises(ValueError):
        sparse_reorder(lowered, "spmm", [k, i, j])


def test_sparse_fuse_creates_fused_group(spmm_setup):
    _, _, func = spmm_setup
    i, j = axes_of(func, "I"), axes_of(func, "J")
    fused = sparse_fuse(func, "spmm", [i, j])
    iteration = fused.sparse_iteration("spmm")
    assert len(iteration.axes) == 2          # fused(I, J), K
    assert len(iteration.flat_axes) == 3


def test_sparse_fuse_preserves_semantics(spmm_setup):
    csr, features, func = spmm_setup
    i, j = axes_of(func, "I"), axes_of(func, "J")
    fused = sparse_fuse(func, "spmm", [i, j])
    out = build(fused).run()
    reference = spmm_reference(csr, features)
    assert np.allclose(out["C"].reshape(reference.shape), reference, atol=1e-4)


def test_sparse_fuse_requires_consecutive_axes(spmm_setup):
    _, _, func = spmm_setup
    i, k = axes_of(func, "I"), axes_of(func, "K")
    with pytest.raises(ValueError):
        sparse_fuse(func, "spmm", [i, k])


def test_sparse_fuse_requires_at_least_two_axes(spmm_setup):
    _, _, func = spmm_setup
    i = axes_of(func, "I")
    with pytest.raises(ValueError):
        sparse_fuse(func, "spmm", [i])


def test_fused_sddmm_matches_reference(small_csr, rng):
    feat = 4
    x = rng.standard_normal((small_csr.rows, feat)).astype(np.float32)
    y = rng.standard_normal((feat, small_csr.cols)).astype(np.float32)
    func = build_sddmm_program(small_csr, feat, x, y, fuse_ij=True)
    out = build(func).run()
    reference = sddmm_reference(small_csr, x, y)
    assert np.allclose(out["OUT"], reference, atol=1e-4)


def test_unfused_sddmm_matches_reference(small_csr, rng):
    feat = 4
    x = rng.standard_normal((small_csr.rows, feat)).astype(np.float32)
    y = rng.standard_normal((feat, small_csr.cols)).astype(np.float32)
    func = build_sddmm_program(small_csr, feat, x, y, fuse_ij=False)
    out = build(func).run()
    reference = sddmm_reference(small_csr, x, y)
    assert np.allclose(out["OUT"], reference, atol=1e-4)
