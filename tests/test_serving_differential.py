"""Differential correctness of the serving batcher (coalesced vs eager).

The serving runtime's central claim is that coalescing is *invisible*: N
concurrent requests answered through one ``batched_spmm`` launch return
bit-for-bit the same arrays as N sequential eager calls.  These tests check
that claim three ways:

* deterministically, driving :func:`~repro.serve.batching.coalesce` +
  ``run_group`` directly (no threads, no timing) over both dtypes, empty
  batches and mixed-fingerprint interleavings;
* property-based (hypothesis, marked ``slow``), over randomly drawn
  structures, dtypes, widths and interleavings;
* end-to-end through a live :class:`~repro.serve.Server` — threaded
  submission, the asyncio front-end, and the saturation policies.
"""

import asyncio
import queue
import threading
import time
from concurrent.futures import wait

import numpy as np
import pytest

from repro.formats.csr import CSRMatrix
from repro.runtime.session import Session
from repro.serve import (
    Server,
    ServerConfig,
    ServerSaturated,
    coalesce,
    make_call_request,
    make_sddmm_request,
    make_spmm_request,
    run_group,
)
from repro.serve.stats import ServingStats


def _random_csr(rows, cols, density, seed, rng_values=True):
    rng = np.random.default_rng(seed)
    dense = (rng.random((rows, cols)) < density).astype(np.float32)
    if rng_values:
        dense *= rng.random((rows, cols)).astype(np.float32)
    return CSRMatrix.from_dense(dense)


def _assert_bit_exact(actual, expected):
    assert actual.dtype == expected.dtype
    assert actual.shape == expected.shape
    assert np.array_equal(actual, expected)


class TestCoalesce:
    def test_empty_batch(self):
        assert coalesce([]) == []

    def test_same_fingerprint_groups_fifo(self, rng):
        csr = _random_csr(10, 8, 0.3, seed=0)
        reqs = [make_spmm_request(csr, rng.random((8, 4), dtype=np.float32)) for _ in range(5)]
        groups = coalesce(reqs)
        assert [len(g) for g in groups] == [5]
        assert groups[0] == reqs  # FIFO order preserved

    def test_max_batch_chunks(self, rng):
        csr = _random_csr(10, 8, 0.3, seed=0)
        reqs = [make_spmm_request(csr, rng.random((8, 4), dtype=np.float32)) for _ in range(7)]
        groups = coalesce(reqs, max_batch=3)
        assert [len(g) for g in groups] == [3, 3, 1]

    def test_lane_budget_chunks(self, rng):
        csr = _random_csr(10, 8, 0.3, seed=0)
        reqs = [make_spmm_request(csr, rng.random((8, 4), dtype=np.float32)) for _ in range(4)]
        lanes = reqs[0].lanes
        groups = coalesce(reqs, max_lanes=2 * lanes)
        assert [len(g) for g in groups] == [2, 2]
        # A single over-budget request still runs (singleton group).
        groups = coalesce(reqs[:1], max_lanes=lanes - 1)
        assert [len(g) for g in groups] == [1]

    def test_mixed_fingerprints_never_share_a_group(self, rng):
        a = _random_csr(10, 8, 0.3, seed=0)
        b = _random_csr(10, 8, 0.3, seed=1)
        x32 = rng.random((8, 4), dtype=np.float32)
        reqs = [
            make_spmm_request(a, x32),
            make_spmm_request(b, x32),
            make_spmm_request(a, x32.astype(np.float64)),  # dtype splits the group
            make_spmm_request(a, rng.random((8, 6), dtype=np.float32)),  # width splits
            make_spmm_request(a, x32),
        ]
        groups = coalesce(reqs)
        for group in groups:
            assert len({req.fingerprint for req in group}) == 1
        # Same matrix+width+dtype coalesce; everything else is separate.
        assert sorted(len(g) for g in groups) == [1, 1, 1, 2]

    def test_same_structure_different_values_split(self, rng):
        """csr.data is part of the fingerprint: the batched kernel shares one
        value array, so equal sparsity patterns with different edge weights
        must not coalesce."""
        a = _random_csr(10, 8, 0.3, seed=0)
        b = CSRMatrix(a.shape, a.indptr, a.indices, a.data * 2.0)
        x = rng.random((8, 4), dtype=np.float32)
        groups = coalesce([make_spmm_request(a, x), make_spmm_request(b, x)])
        assert [len(g) for g in groups] == [1, 1]

    def test_non_batchable_requests_are_singletons(self):
        reqs = [make_call_request(lambda: 1) for _ in range(3)]
        groups = coalesce(reqs)
        assert [len(g) for g in groups] == [1, 1, 1]


class TestRunGroupDifferential:
    @pytest.mark.parametrize("np_dtype", [np.float32, np.float64])
    def test_spmm_batch_bit_exact_with_eager(self, np_dtype, rng):
        csr = _random_csr(24, 20, 0.2, seed=3)
        feats = [rng.random((20, 5)).astype(np_dtype) for _ in range(6)]
        serve_session, eager_session = Session(), Session()
        reqs = [make_spmm_request(csr, x) for x in feats]
        groups = coalesce(reqs)
        assert [len(g) for g in groups] == [6]
        run_group(serve_session, groups[0])
        for req, x in zip(reqs, feats):
            expected = eager_session.spmm(csr, x, dtype=str(np.dtype(np_dtype)))
            _assert_bit_exact(req.future.result(timeout=10), expected)

    @pytest.mark.parametrize("np_dtype", [np.float32, np.float64])
    def test_sddmm_batch_bit_exact_with_eager(self, np_dtype, rng):
        csr = _random_csr(16, 12, 0.25, seed=4)
        pairs = [
            (rng.random((16, 4)).astype(np_dtype), rng.random((4, 12)).astype(np_dtype))
            for _ in range(4)
        ]
        serve_session, eager_session = Session(), Session()
        reqs = [make_sddmm_request(csr, x, y) for x, y in pairs]
        groups = coalesce(reqs)
        assert [len(g) for g in groups] == [4]
        run_group(serve_session, groups[0])
        for req, (x, y) in zip(reqs, pairs):
            expected = eager_session.sddmm(csr, x, y, dtype=str(np.dtype(np_dtype)))
            _assert_bit_exact(req.future.result(timeout=10), expected)

    def test_mixed_interleaving_bit_exact(self, rng):
        """A drained queue mixing matrices, widths and dtypes: every request
        resolves to exactly its own eager answer."""
        mats = [_random_csr(14, 10, 0.3, seed=s) for s in (0, 1)]
        serve_session, eager_session = Session(), Session()
        reqs, expected = [], []
        for i in range(12):
            csr = mats[i % 2]
            np_dtype = np.float64 if i % 3 == 0 else np.float32
            x = rng.random((10, 3 if i % 4 else 5)).astype(np_dtype)
            reqs.append(make_spmm_request(csr, x))
            expected.append(eager_session.spmm(csr, x, dtype=str(np.dtype(np_dtype))))
        for group in coalesce(reqs):
            run_group(serve_session, group)
        for req, exp in zip(reqs, expected):
            _assert_bit_exact(req.future.result(timeout=10), exp)

    def test_poisoned_request_degrades_batchmates_to_eager(self, rng):
        """A batch that fails mid-launch re-runs each member eagerly: good
        requests still succeed (degraded="eager"), the bad one raises."""
        csr = _random_csr(10, 8, 0.3, seed=5)
        good = [make_spmm_request(csr, rng.random((8, 4), dtype=np.float32)) for _ in range(3)]
        bad = make_spmm_request(csr, rng.random((8, 4), dtype=np.float32))
        bad.payload["features"] = rng.random((7, 4)).astype(np.float32)  # corrupt post-fingerprint
        group = [good[0], bad, good[1], good[2]]
        session, eager_session, stats = Session(), Session(), ServingStats()
        run_group(session, group, stats)
        with pytest.raises(Exception):
            bad.future.result(timeout=10)
        for req in good:
            expected = eager_session.spmm(csr, req.payload["features"], dtype="float32")
            _assert_bit_exact(req.future.result(timeout=10), expected)
            assert req.degraded == "eager"
        snap = stats.snapshot()["default"]
        assert snap["degraded_eager"] == 4
        assert snap["errors"] == 1


@pytest.mark.slow
class TestPropertyDifferential:
    """Hypothesis: coalesced serving is bit-exact under arbitrary mixes."""

    def test_random_interleavings(self):
        from hypothesis import HealthCheck, given, settings
        from hypothesis import strategies as st

        @settings(
            max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
        )
        @given(
            seed=st.integers(0, 2**16),
            n_requests=st.integers(0, 10),
            n_matrices=st.integers(1, 3),
            widths=st.lists(st.sampled_from([1, 2, 4, 7]), min_size=1, max_size=3),
            max_batch=st.integers(1, 8),
        )
        def run(seed, n_requests, n_matrices, widths, max_batch):
            rng = np.random.default_rng(seed)
            mats = [
                _random_csr(rng.integers(4, 16), rng.integers(4, 14), 0.35, seed=seed + i)
                for i in range(n_matrices)
            ]
            serve_session, eager_session = Session(), Session()
            reqs, expected = [], []
            for _ in range(n_requests):
                csr = mats[rng.integers(len(mats))]
                np_dtype = np.float64 if rng.integers(2) else np.float32
                x = rng.random((csr.shape[1], int(rng.choice(widths)))).astype(np_dtype)
                reqs.append(make_spmm_request(csr, x))
                expected.append(eager_session.spmm(csr, x, dtype=str(np.dtype(np_dtype))))
            groups = coalesce(reqs, max_batch=max_batch)
            assert sum(len(g) for g in groups) == len(reqs)
            for group in groups:
                assert len(group) <= max_batch
                assert len({req.fingerprint for req in group}) <= 1
                run_group(serve_session, group)
            for req, exp in zip(reqs, expected):
                _assert_bit_exact(req.future.result(timeout=10), exp)

        run()


class TestServerEndToEnd:
    def test_threaded_submission_bit_exact(self, rng):
        csr = _random_csr(20, 16, 0.25, seed=6)
        feats = [rng.random((16, 4), dtype=np.float32) for _ in range(16)]
        eager_session = Session()
        expected = [eager_session.spmm(csr, x, dtype="float32") for x in feats]
        with Server(session=Session(), config=ServerConfig(linger_s=0.01)) as server:
            futures = [None] * len(feats)
            barrier = threading.Barrier(4)

            def submit(worker):
                barrier.wait()
                for i in range(worker, len(feats), 4):
                    futures[i] = server.spmm(csr, feats[i], tenant=f"t{worker}")

            threads = [threading.Thread(target=submit, args=(w,)) for w in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            done, not_done = wait(futures, timeout=30)
            assert not not_done
            for fut, exp in zip(futures, expected):
                _assert_bit_exact(fut.result(), exp)
            assert server.flush(timeout=10)
        snap = server.snapshot()
        assert sum(s["requests"] for s in snap.values()) == len(feats)
        # The burst coalesced: at least one multi-request batch launched.
        assert any(s["batches"] >= 1 for s in snap.values())

    def test_asyncio_front_end(self, rng):
        csr = _random_csr(12, 10, 0.3, seed=7)
        feats = [rng.random((10, 3), dtype=np.float32) for _ in range(6)]
        eager_session = Session()
        expected = [eager_session.spmm(csr, x, dtype="float32") for x in feats]

        async def drive(server):
            return await asyncio.gather(
                *(server.spmm_async(csr, x) for x in feats)
            )

        with Server(session=Session(), config=ServerConfig(linger_s=0.01)) as server:
            results = asyncio.run(drive(server))
        for out, exp in zip(results, expected):
            _assert_bit_exact(out, exp)

    def _blocked_server(self, capacity):
        """A server whose batcher thread is parked on an event, so the queue
        can be saturated deterministically."""
        server = Server(
            session=Session(),
            config=ServerConfig(
                queue_capacity=capacity, linger_s=0.0, poll_s=0.01, saturation="inline"
            ),
        )
        release = threading.Event()
        started = threading.Event()

        def block():
            started.set()
            release.wait(timeout=30)

        server.call(block)
        assert started.wait(timeout=10)  # the batcher is now busy
        return server, release

    def test_saturation_inline_executes_on_caller(self, rng):
        csr = _random_csr(10, 8, 0.3, seed=8)
        x = rng.random((8, 2), dtype=np.float32)
        expected = Session().spmm(csr, x, dtype="float32")
        server, release = self._blocked_server(capacity=1)
        try:
            filler = server.spmm(csr, x)  # fills the queue
            inline = server.spmm(csr, x)  # queue full -> runs on this thread
            assert inline.done()  # resolved synchronously, batcher still blocked
            _assert_bit_exact(inline.result(), expected)
            release.set()
            _assert_bit_exact(filler.result(timeout=30), expected)
        finally:
            release.set()
            server.close()
        assert server.snapshot()["default"]["degraded_inline"] == 1

    def test_saturation_reject_fails_future(self, rng):
        csr = _random_csr(10, 8, 0.3, seed=9)
        x = rng.random((8, 2), dtype=np.float32)
        server, release = self._blocked_server(capacity=1)
        server.config.saturation = "reject"
        try:
            filler = server.spmm(csr, x)
            rejected = server.spmm(csr, x)
            with pytest.raises(ServerSaturated):
                rejected.result(timeout=10)
            release.set()
            filler.result(timeout=30)
        finally:
            release.set()
            server.close()

    def test_close_is_idempotent_and_rejects_new_work(self, rng):
        server = Server(session=Session())
        server.close()
        server.close()
        with pytest.raises(RuntimeError):
            server.spmm(_random_csr(4, 4, 0.5, seed=0), np.ones((4, 2), np.float32))

    def test_call_requests_flow_through(self):
        with Server(session=Session()) as server:
            fut = server.call(lambda a, b: a + b, 2, b=3)
            assert fut.result(timeout=10) == 5

    def test_queue_capacity_validation(self):
        with pytest.raises(ValueError):
            ServerConfig(queue_capacity=0)
        with pytest.raises(ValueError):
            ServerConfig(saturation="drop")
