"""Unit tests for sparse iteration lowering (stage I -> stage II)."""

import numpy as np
import pytest

from repro.core import lower_sparse_iterations
from repro.core.program import STAGE_POSITION
from repro.core.stage2.lowering import BINARY_SEARCH, materialize_aux_buffers
from repro.core.stmt import find_blocks, find_loops
from repro.core.expr import Call, post_order
from repro.core.stmt import collect_buffer_loads
from repro.ops.sddmm import build_sddmm_program
from repro.ops.spmm import build_spmm_program


@pytest.fixture
def lowered_spmm(small_csr, rng):
    features = rng.standard_normal((small_csr.cols, 4)).astype(np.float32)
    func = build_spmm_program(small_csr, 4, features)
    return func, lower_sparse_iterations(func)


def test_lowering_changes_stage(lowered_spmm):
    func, lowered = lowered_spmm
    assert lowered.stage == STAGE_POSITION
    assert func.stage != STAGE_POSITION  # original is untouched


def test_aux_buffers_materialized(lowered_spmm):
    _, lowered = lowered_spmm
    names = {buf.name for buf in lowered.aux_buffers}
    assert "J_indptr" in names
    assert "J_indices" in names
    indptr = next(b for b in lowered.aux_buffers if b.name == "J_indptr")
    assert indptr.data is not None


def test_buffer_domain_hints_recorded(lowered_spmm):
    _, lowered = lowered_spmm
    domains = lowered.attrs["buffer_domains"]
    assert domains["J_indptr"][1] == lowered.buffer("A").flat_size()
    assert domains["J_indices"][1] == lowered.buffer("B").axes[0].length


def test_one_loop_per_axis(lowered_spmm):
    _, lowered = lowered_spmm
    loops = find_loops(lowered.body)
    assert len(loops) == 3  # i, j, k


def test_block_separates_variable_loop(lowered_spmm):
    """A block boundary must sit between the row loop and the nnz loop
    (Figure 9), so they cannot be reordered across it."""
    _, lowered = lowered_spmm
    blocks = find_blocks(lowered.body)
    names = [b.name for b in blocks]
    assert "spmm_compute" in names
    assert any("outer" in name for name in names)


def test_compute_block_has_regions_and_init(lowered_spmm):
    _, lowered = lowered_spmm
    block = lowered.block("spmm_compute")
    assert block.init is not None
    read_buffers = {region.buffer.name for region in block.reads}
    write_buffers = {region.buffer.name for region in block.writes}
    assert {"A", "B"} <= read_buffers
    assert write_buffers == {"C"}


def test_coordinate_translation_uses_indices_for_dense_operand(lowered_spmm):
    """B[j, k] must become B[J_indices[i, j], k] after translation."""
    _, lowered = lowered_spmm
    block = lowered.block("spmm_compute")
    loads = collect_buffer_loads(block.body)
    b_loads = [l for l in loads if l.buffer.name == "B"]
    assert b_loads, "B must be read in the compute block"
    index_repr = repr(b_loads[0].indices[0])
    assert "J_indices" in index_repr


def test_same_structure_access_avoids_binary_search(lowered_spmm):
    """A[i, j] shares the iteration's structure, so no search is emitted."""
    _, lowered = lowered_spmm
    block = lowered.block("spmm_compute")
    calls = [
        node
        for load in collect_buffer_loads(block.body)
        for index in load.indices
        for node in post_order(index)
        if isinstance(node, Call) and node.func == BINARY_SEARCH
    ]
    assert calls == []


def test_fused_sddmm_emits_single_spatial_loop(small_csr, rng):
    x = rng.standard_normal((small_csr.rows, 4)).astype(np.float32)
    y = rng.standard_normal((4, small_csr.cols)).astype(np.float32)
    func = build_sddmm_program(small_csr, 4, x, y, fuse_ij=True)
    lowered = lower_sparse_iterations(func)
    loops = find_loops(lowered.body)
    # fused (i, j) loop + k loop
    assert len(loops) == 2
    fused_loops = [l for l in loops if "fused" in l.loop_var.name]
    assert len(fused_loops) == 1
    assert fused_loops[0].extent.value == small_csr.nnz


def test_unfused_sddmm_emits_three_loops(small_csr, rng):
    x = rng.standard_normal((small_csr.rows, 4)).astype(np.float32)
    y = rng.standard_normal((4, small_csr.cols)).astype(np.float32)
    func = build_sddmm_program(small_csr, 4, x, y, fuse_ij=False)
    lowered = lower_sparse_iterations(func)
    assert len(find_loops(lowered.body)) == 3


def test_materialize_aux_buffers_only_for_variable_or_sparse_axes(small_csr):
    i_axis, j_axis = small_csr.to_axes()
    from repro.core.axes import dense_fixed

    aux = materialize_aux_buffers([i_axis, j_axis, dense_fixed("K", 8)])
    assert id(j_axis) in aux.indptr
    assert id(j_axis) in aux.indices
    assert id(i_axis) not in aux.indptr


def test_lowering_requires_stage1(lowered_spmm):
    _, lowered = lowered_spmm
    with pytest.raises(ValueError):
        lower_sparse_iterations(lowered)
