"""The workload-generic format autoscheduler: search, replay, bit-exactness.

Covers the two-phase driver (cost-model pruning then wallclock measurement),
the four search strategies, deterministic histories, persistent TuningRecord
replay (in-process and across processes) and — the acceptance bar — an
end-to-end check for every paper workload that its tuned configuration
computes exactly what the reference implementation computes.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.formats.csr import CSRMatrix
from repro.formats.csf import CSFTensor
from repro.ops.rgms import RGMSProblem, rgms_reference
from repro.ops.sparse_conv import SparseConvProblem, sparse_conv_reference
from repro.runtime.session import Session
from repro.tune import (
    AttentionProblem,
    PrunedSpMMProblem,
    SDDMMProblem,
    SpMMProblem,
    TuningRecordStore,
    autotune,
    available_workloads,
    get_workload,
    task_fingerprint,
)
from repro.workloads.graphs import generate_adjacency


@pytest.fixture(scope="module")
def graph():
    return generate_adjacency(250, 1800, "powerlaw", seed=11)


@pytest.fixture
def session():
    return Session(persistent=False, tuning_records=False)


def block_mask(size=48, block=8, seed=0):
    """A block-aligned attention mask (bsr-feasible at ``block``)."""
    rng = np.random.default_rng(seed)
    dense = np.zeros((size, size), dtype=np.float32)
    for b in range(0, size, block):
        dense[b : b + block, b : b + block] = 1.0
    extra = rng.integers(0, size // block, size=2) * block
    dense[extra[0] : extra[0] + block, extra[1] : extra[1] + block] = 1.0
    return CSRMatrix.from_dense(dense)


class TestRegistry:
    def test_all_paper_workloads_registered(self):
        assert {"spmm", "sddmm", "attention", "rgms", "sparse_conv"} <= set(
            available_workloads()
        )
        assert "pruned_spmm" in available_workloads()

    def test_every_spec_enumerates_a_space(self, graph):
        problems = {
            "spmm": SpMMProblem(graph, 16),
            "sddmm": SDDMMProblem(graph, 16),
            "attention": AttentionProblem(block_mask(), 2, 8),
            "pruned_spmm": PrunedSpMMProblem(graph, 8),
        }
        for name, problem in problems.items():
            space = get_workload(name).space(problem)
            assert len(space) > 1
            first = next(space.configurations())
            assert space.contains(first)

    def test_unknown_workload_rejected(self, graph):
        with pytest.raises(KeyError, match="unknown workload"):
            autotune("conv3d", SpMMProblem(graph, 8), records=False)

    def test_fingerprint_is_structural(self, graph):
        spec = get_workload("spmm")
        fp1 = task_fingerprint(spec, SpMMProblem(graph, 16))
        fp2 = task_fingerprint(spec, SpMMProblem(graph, 16))
        fp3 = task_fingerprint(spec, SpMMProblem(graph, 32))
        other = generate_adjacency(250, 1800, "powerlaw", seed=12)
        fp4 = task_fingerprint(spec, SpMMProblem(other, 16))
        assert fp1 == fp2
        assert len({fp1, fp3, fp4}) == 3

    def test_fingerprint_ignores_values(self, graph):
        """Same sparsity pattern, new edge weights: the record still replays
        (every registered decomposition depends only on the structure)."""
        spec = get_workload("spmm")
        reweighted = CSRMatrix(
            graph.shape,
            graph.indptr,
            graph.indices,
            graph.data * 2.0 + 1.0,
        )
        assert task_fingerprint(spec, SpMMProblem(graph, 16)) == task_fingerprint(
            spec, SpMMProblem(reweighted, 16)
        )


class TestStrategies:
    def test_grid_covers_every_canonical_config(self, graph):
        result = autotune(
            "spmm", SpMMProblem(graph, 8), strategy="grid", survivors=0, records=False
        )
        spec = get_workload("spmm")
        space = spec.space(SpMMProblem(graph, 8))
        canonical = {
            tuple(sorted(spec.canonical(c).items())) for c in space.configurations()
        }
        assert result.evaluated == len(canonical)
        assert space.contains(result.best_config)

    def test_random_respects_budget(self, graph):
        result = autotune(
            "spmm",
            SpMMProblem(graph, 8),
            strategy="random",
            max_trials=9,
            survivors=0,
            records=False,
        )
        assert 0 < result.evaluated <= 9

    def test_evolutionary_beats_or_matches_first_random_draw(self, graph):
        problem = SpMMProblem(graph, 8)
        evo = autotune(
            "spmm", problem, strategy="evolutionary", max_trials=30,
            survivors=0, records=False, seed=5,
        )
        rand1 = autotune(
            "spmm", problem, strategy="random", max_trials=1,
            survivors=0, records=False, seed=5,
        )
        assert evo.best_predicted_us <= rand1.best_predicted_us
        assert evo.evaluated <= 30

    def test_unknown_strategy_rejected(self, graph):
        with pytest.raises(ValueError, match="unknown strategy"):
            autotune("spmm", SpMMProblem(graph, 8), strategy="annealing", records=False)

    def test_successive_halving_measures_with_doubling_repeats(self, graph, session):
        result = autotune(
            "spmm",
            SpMMProblem(graph, 8),
            strategy="successive_halving",
            max_trials=12,
            survivors=4,
            session=session,
            records=False,
        )
        measured = [h for h in result.history if h["phase"] == "measure"]
        assert measured, "halving must measure"
        repeats = [h["repeats"] for h in measured]
        assert max(repeats) > min(repeats)  # later rounds re-measure longer
        assert result.best_measured_s is not None


class TestDeterminism:
    @pytest.mark.parametrize("strategy", ["grid", "random", "evolutionary"])
    def test_same_seed_byte_identical_history(self, graph, strategy):
        """Predict-only runs are pure functions of (task, strategy, seed)."""
        problem = SpMMProblem(graph, 8)

        def run():
            result = autotune(
                "spmm", problem, strategy=strategy, max_trials=20,
                survivors=0, seed=13, records=False,
            )
            return json.dumps(
                {"best": result.best_config, "history": result.history},
                sort_keys=True,
            ).encode()

        assert run() == run()

    def test_different_seed_changes_sampling(self, graph):
        problem = SpMMProblem(graph, 8)
        histories = []
        for seed in (0, 1):
            result = autotune(
                "spmm", problem, strategy="random", max_trials=6,
                survivors=0, seed=seed, records=False,
            )
            histories.append(json.dumps(result.history, sort_keys=True))
        assert histories[0] != histories[1]


class TestTwoPhaseDriver:
    def test_phase2_dedupes_execution_identical_candidates(self, graph, session):
        """Model-only parameters never cause duplicate wallclock measurements."""
        result = autotune(
            "spmm", SpMMProblem(graph, 8), strategy="grid",
            survivors=100, repeats=1, session=session, records=False,
        )
        measured = [h for h in result.history if h["phase"] == "measure"]
        exec_configs = {
            tuple(sorted(get_workload("spmm").exec_config(h["config"]).items()))
            for h in measured
        }
        assert len(measured) == len(exec_configs)

    def test_predict_only_run_never_touches_the_session(self, graph, session):
        autotune(
            "spmm", SpMMProblem(graph, 8), survivors=0, session=session, records=False
        )
        assert session.stats.runs == 0

    def test_infeasible_configs_are_dropped(self):
        # A 5x5 mask can never be block-aligned at block sizes 8/16/32, so
        # every bsr candidate is infeasible and csr must win.
        dense = np.zeros((5, 5), dtype=np.float32)
        dense[0, 1] = dense[2, 2] = dense[4, 0] = 1.0
        mask = CSRMatrix.from_dense(dense)
        result = autotune(
            "attention", AttentionProblem(mask, 2, 4), strategy="grid",
            survivors=0, records=False,
        )
        assert result.best_config["format"] == "csr"
        assert all(
            h["config"]["format"] == "csr"
            for h in result.history
            if h["predicted_us"] is not None
        )

    def test_unmeasurable_formats_rank_by_model_only(self, graph, session):
        result = autotune(
            "pruned_spmm", PrunedSpMMProblem(graph, 8), strategy="grid",
            survivors=4, repeats=1, session=session, records=False,
        )
        measured = [h for h in result.history if h["phase"] == "measure"]
        assert all(h["config"]["format"] == "bsr" for h in measured)


class TestRecordsAndReplay:
    def test_record_written_and_replayed(self, graph, tmp_path):
        store = TuningRecordStore(tmp_path)
        problem = SpMMProblem(graph, 8)
        first = autotune(
            "spmm", problem, max_trials=10, survivors=2, repeats=1, records=store
        )
        assert not first.replayed and len(store) == 1

        second = autotune("spmm", problem, records=store)
        assert second.replayed
        assert second.evaluated == 0 and second.history == []
        assert second.best_config == first.best_config

        forced = autotune(
            "spmm", problem, max_trials=10, survivors=0, records=store, force=True
        )
        assert not forced.replayed and forced.evaluated > 0

    def test_session_remembers_and_applies_records(self, graph, tmp_path):
        session = Session(persistent=False, tuning_records=tmp_path)
        problem = SpMMProblem(graph, 8)
        result = session.autotune(
            "spmm", problem, max_trials=10, survivors=2, repeats=1
        )
        assert session.tuning_record("spmm", problem).config == result.best_config

        # A second session sharing only the record directory sees the record
        # and applies it through the tuned=True flag with zero re-tuning.
        other = Session(persistent=False, tuning_records=tmp_path)
        overrides = other._tuned_overrides("spmm", problem)
        assert overrides == get_workload("spmm").exec_config(result.best_config)

    def test_replayed_autotune_remembers_record_in_session(self, graph, tmp_path):
        """Direct autotune(session=...) on a warm store: the session must see
        the replayed record, so tuned=True applies it immediately."""
        store = TuningRecordStore(tmp_path)
        problem = SpMMProblem(graph, 8)
        first = autotune(
            "spmm", problem, max_trials=8, survivors=2, repeats=1, records=store
        )
        fresh = Session(persistent=False, tuning_records=False)
        replay = autotune("spmm", problem, session=fresh, records=store)
        assert replay.replayed
        assert fresh.tuning_record("spmm", problem).config == first.best_config

    def test_include_requires_survivors(self, graph):
        with pytest.raises(ValueError, match="requires survivors > 0"):
            autotune(
                "spmm", SpMMProblem(graph, 8), survivors=0,
                include=[{"format": "csr", "num_col_parts": 1,
                          "num_buckets": None, "threads_per_block": 128}],
                records=False,
            )

    def test_infeasible_include_is_skipped_not_measured(self, session):
        """A forced baseline that is infeasible never reaches the runtime."""
        dense = np.zeros((5, 5), dtype=np.float32)
        dense[0, 1] = dense[2, 2] = 1.0
        mask = CSRMatrix.from_dense(dense)
        result = autotune(
            "attention", AttentionProblem(mask, 2, 4), strategy="grid",
            survivors=2, repeats=1, session=session, records=False,
            include=[{"format": "bsr", "block_size": 8}],
        )
        assert result.best_config["format"] == "csr"

    def test_tuned_flag_without_record_keeps_defaults(self, graph, session):
        x = np.random.default_rng(0).standard_normal((graph.cols, 8)).astype(np.float32)
        out = session.spmm(graph, x, tuned=True)  # no record: plain csr path
        np.testing.assert_allclose(out, graph.to_scipy() @ x, atol=1e-4)

    def test_run_many_tuned_lookups_are_memoised(self, graph, tmp_path):
        """A tuned=True run-many loop hits the record store exactly once —
        both the fingerprint and the (possibly negative) lookup are cached."""
        store = TuningRecordStore(tmp_path)
        session = Session(persistent=False, tuning_records=store)
        x = np.ones((graph.cols, 8), dtype=np.float32)
        for _ in range(5):
            session.spmm(graph, x, tuned=True)
        assert store.stats.misses == 1  # negative lookup cached after call 1
        assert len(session._fingerprints) == 1  # one hash per structure

        session.autotune("spmm", SpMMProblem(graph, 8), max_trials=6,
                         survivors=1, repeats=1)
        misses_after_tune = store.stats.misses
        for _ in range(5):
            session.spmm(graph, x, tuned=True)
        assert store.stats.misses == misses_after_tune  # served from memory


_REPLAY_SCRIPT = """
import numpy as np
from repro.runtime.session import Session
from repro.tune import SpMMProblem
from repro.workloads.graphs import generate_adjacency

graph = generate_adjacency(250, 1800, "powerlaw", seed=11)
session = Session(persistent=False)
result = session.autotune("spmm", SpMMProblem(graph, 8), max_trials=10,
                          survivors=2, repeats=1, seed=0)
x = np.ones((graph.cols, 8), dtype=np.float32)
out = session.spmm(graph, x, tuned=True)
assert np.allclose(out, graph.to_scipy() @ x, atol=1e-4)
print("REPLAY", int(result.replayed), result.evaluated, session.stats.runs)
"""


class TestColdProcessReplay:
    def test_fresh_process_replays_with_zero_measurement(self, tmp_path):
        """Acceptance: a cold process re-uses the persisted TuningRecord —
        no cost-model evaluations, no wallclock measurements; only the one
        tuned=True operator call touches the runtime."""
        from repro.tune.records import RECORDS_ENV_VAR

        env = dict(os.environ, **{RECORDS_ENV_VAR: str(tmp_path)})
        env.pop("REPRO_KERNEL_CACHE", None)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

        def run_once():
            proc = subprocess.run(
                [sys.executable, "-c", _REPLAY_SCRIPT],
                env=env, capture_output=True, text=True, timeout=240,
            )
            assert proc.returncode == 0, proc.stderr
            line = [ln for ln in proc.stdout.splitlines() if ln.startswith("REPLAY")][0]
            return [int(v) for v in line.split()[1:]]

        replayed, evaluated, runs = run_once()
        assert replayed == 0 and evaluated > 0 and runs > 1

        replayed, evaluated, runs = run_once()
        assert replayed == 1, "second process re-tuned instead of replaying"
        assert evaluated == 0, "replay must not re-evaluate the cost model"
        assert runs == 1, "replay must not re-measure (only the tuned call runs)"


class TestTunedBitExactness:
    """Every paper workload: the tuned configuration computes the reference."""

    def test_spmm(self, graph, session):
        problem = SpMMProblem(graph, 16)
        session.autotune("spmm", problem, max_trials=12, survivors=3, repeats=1)
        x = np.random.default_rng(1).standard_normal((graph.cols, 16)).astype(np.float32)
        tuned = session.spmm(graph, x, tuned=True)
        np.testing.assert_allclose(tuned, graph.to_scipy() @ x, atol=1e-3)
        # And the tuned decomposition is exactly equivalent to the default.
        np.testing.assert_allclose(tuned, session.spmm(graph, x), atol=1e-3)

    def test_sddmm(self, graph, session):
        from repro.ops.sddmm import sddmm_reference

        problem = SDDMMProblem(graph, 8)
        session.autotune("sddmm", problem, max_trials=8, survivors=2, repeats=1)
        rng = np.random.default_rng(2)
        x = rng.standard_normal((graph.rows, 8)).astype(np.float32)
        y = rng.standard_normal((8, graph.cols)).astype(np.float32)
        tuned = session.sddmm(graph, x, y, tuned=True)
        np.testing.assert_allclose(tuned, sddmm_reference(graph, x, y), atol=1e-3)

    def test_attention(self, session):
        from repro.ops.batched import batched_sddmm_reference, batched_spmm_reference

        mask = block_mask(size=48, block=8, seed=3)
        problem = AttentionProblem(mask, 2, 8)
        result = session.autotune(
            "attention", problem, strategy="grid", survivors=4, repeats=1
        )
        rng = np.random.default_rng(3)
        q = rng.standard_normal((2, mask.rows, 8)).astype(np.float32)
        k = rng.standard_normal((2, 8, mask.cols)).astype(np.float32)
        v = rng.standard_normal((2, mask.cols, 8)).astype(np.float32)
        scores = session.batched_sddmm(mask, q, k, tuned=True)
        out = session.batched_spmm(mask, v, tuned=True)
        np.testing.assert_allclose(scores, batched_sddmm_reference(mask, q, k), atol=1e-3)
        np.testing.assert_allclose(out, batched_spmm_reference(mask, v), atol=1e-3)
        assert result.best_config["format"] in ("csr", "bsr")

    def test_rgms(self, session):
        rng = np.random.default_rng(4)
        adjacency = CSFTensor.from_dense(
            (rng.random((3, 24, 24)) < 0.15).astype(np.float32)
        )
        problem = RGMSProblem(adjacency, 8, 6)
        session.autotune("rgms", problem, strategy="grid", survivors=2, repeats=1)
        x = rng.standard_normal((24, 8)).astype(np.float32)
        w = rng.standard_normal((3, 8, 6)).astype(np.float32)
        tuned = session.rgms(adjacency, x, w, tuned=True)
        np.testing.assert_allclose(tuned, rgms_reference(adjacency, x, w), atol=1e-3)

    def test_sparse_conv(self, session):
        rng = np.random.default_rng(5)
        maps = []
        for _ in range(7):
            count = int(rng.integers(0, 30))
            pairs = (
                np.stack([rng.integers(0, 40, count), rng.integers(0, 40, count)], axis=1)
                if count
                else np.zeros((0, 2), dtype=np.int64)
            )
            maps.append(pairs)
        problem = SparseConvProblem(40, 40, 6, 5, maps)
        session.autotune("sparse_conv", problem, strategy="grid", survivors=2, repeats=1)
        features = rng.standard_normal((40, 6)).astype(np.float32)
        weights = rng.standard_normal((7, 6, 5)).astype(np.float32)
        tuned = session.sparse_conv(problem, features, weights, tuned=True)
        np.testing.assert_allclose(
            tuned, sparse_conv_reference(problem, features, weights), atol=1e-3
        )

    def test_pruned_spmm(self, graph, session):
        from repro.ops.pruned_spmm import pruned_spmm_reference

        rng = np.random.default_rng(6)
        weights = (rng.random((64, 48)) < 0.2).astype(np.float32)
        weights *= rng.standard_normal((64, 48)).astype(np.float32)
        csr = CSRMatrix.from_dense(weights)
        problem = PrunedSpMMProblem(csr, 8)
        result = session.autotune(
            "pruned_spmm", problem, strategy="grid", survivors=3, repeats=1
        )
        block = result.best_config["block_size"] if result.best_config["format"] != "srbcrs" else 16
        bsr = session.decompose_bsr(csr, block)
        x = rng.standard_normal((bsr.shape[1], 8)).astype(np.float32)
        out = session.pruned_spmm(bsr, x)
        np.testing.assert_allclose(out, pruned_spmm_reference(bsr, x), atol=1e-3)
