"""Unit tests for sparse buffers and flat-size computation."""

import numpy as np
import pytest

from repro.core.axes import dense_fixed, dense_variable, sparse_fixed, sparse_variable
from repro.core.buffers import FlatBuffer, SparseBuffer, dtype_bytes, match_sparse_buffer


def make_csr_axes(rows=4, cols=6, nnz=7):
    i = dense_fixed("I", rows)
    indptr = np.array([0, 2, 3, 5, 7])
    indices = np.array([0, 3, 1, 2, 5, 0, 4])
    j = sparse_variable("J", i, cols, nnz, indptr=indptr, indices=indices)
    return i, j


def test_dense_buffer_flat_size():
    i = dense_fixed("I", 4)
    k = dense_fixed("K", 8)
    buf = SparseBuffer("C", [i, k])
    assert buf.flat_size() == 32
    assert buf.shape_dense() == (4, 8)
    assert buf.is_dense()


def test_csr_buffer_flat_size_equals_nnz():
    i, j = make_csr_axes()
    buf = SparseBuffer("A", [i, j])
    assert buf.flat_size() == 7
    assert not buf.is_dense()


def test_bsr_buffer_flat_size():
    io = dense_fixed("IO", 3)
    jo = sparse_variable("JO", io, 5, 4, indptr=np.array([0, 1, 3, 4]), indices=np.array([0, 1, 2, 4]))
    ii = dense_fixed("II", 2)
    ji = dense_fixed("JI", 2)
    buf = SparseBuffer("A_bsr", [io, jo, ii, ji])
    assert buf.flat_size() == 4 * 2 * 2


def test_ell_buffer_flat_size():
    i = dense_fixed("I", 5)
    j = sparse_fixed("J", i, 10, 3)
    buf = SparseBuffer("A_ell", [i, j])
    assert buf.flat_size() == 15


def test_ragged_buffer_flat_size():
    i = dense_fixed("I", 3)
    j = dense_variable("J", i, 4, 9, indptr=np.array([0, 4, 6, 9]))
    buf = SparseBuffer("R", [i, j])
    assert buf.flat_size() == 9


def test_srbcrs_style_buffer_flat_size():
    i0 = dense_fixed("I0", 2)
    i1 = dense_variable("I1", i0, 4, 5, indptr=np.array([0, 2, 5]))
    j = sparse_fixed("JJ", i1, 16, 4)
    t = dense_fixed("T", 8)
    buf = SparseBuffer("W", [i0, i1, j, t])
    assert buf.flat_size() == 5 * 4 * 8


def test_allocate_and_bind():
    i, j = make_csr_axes()
    buf = SparseBuffer("A", [i, j])
    data = buf.allocate(fill=1.5)
    assert data.shape == (7,)
    assert np.all(data == 1.5)
    buf.bind(np.arange(7, dtype=np.float32))
    assert buf.data[3] == 3.0


def test_bind_rejects_wrong_size():
    i, j = make_csr_axes()
    buf = SparseBuffer("A", [i, j])
    with pytest.raises(ValueError):
        buf.bind(np.zeros(6, dtype=np.float32))


def test_nbytes_uses_dtype():
    i = dense_fixed("I", 10)
    assert SparseBuffer("A", [i], dtype="float32").nbytes() == 40
    assert SparseBuffer("B", [i], dtype="float16").nbytes() == 20
    assert SparseBuffer("C", [i], dtype="int64").nbytes() == 80


def test_buffer_requires_axes():
    with pytest.raises(ValueError):
        SparseBuffer("A", [])


def test_getitem_builds_load_with_right_arity():
    i, j = make_csr_axes()
    buf = SparseBuffer("A", [i, j])
    from repro.core.expr import Var

    load = buf[Var("i"), Var("j")]
    assert load.buffer is buf
    assert len(load.indices) == 2


def test_match_sparse_buffer_binds_data():
    i, j = make_csr_axes()
    buf = match_sparse_buffer("A", [i, j], data=np.ones(7))
    assert buf.data is not None and buf.data.dtype == np.float32


def test_flat_buffer_basics():
    flat = FlatBuffer("x", 16, "float32")
    assert flat.nbytes() == 64
    from repro.core.expr import Var

    load = flat[Var("i")]
    assert load.buffer is flat
    with pytest.raises(ValueError):
        _ = flat[(Var("i"), Var("j"))]


def test_dtype_bytes_table():
    assert dtype_bytes("float64") == 8
    assert dtype_bytes("float16") == 2
    assert dtype_bytes("int8") == 1
    with pytest.raises(ValueError):
        dtype_bytes("complex64")
