"""Unit tests for the RGMS, sparse convolution and batched attention operators."""

import numpy as np
import pytest

from repro.core.codegen.build import build
from repro.formats import BSRMatrix
from repro.ops import batched, rgms, sparse_conv
from repro.perf.device import V100
from repro.perf.gpu_model import GPUModel
from repro.workloads.attention import band_mask
from repro.workloads.hetero_graphs import generate_relational_adjacency
from repro.workloads.pointcloud import sparse_conv_problem, PointCloudConfig


@pytest.fixture(scope="module")
def small_relational():
    return generate_relational_adjacency(num_nodes=64, num_edges=400, num_relations=5, seed=1)


@pytest.fixture(scope="module")
def small_conv_problem():
    config = PointCloudConfig(num_points=400, voxel_size=1.0, seed=2)
    return sparse_conv_problem(8, 16, config)


class TestRGMS:
    def test_fused_equals_two_stage(self, small_relational, rng):
        x = rng.standard_normal((64, 8)).astype(np.float32)
        w = rng.standard_normal((5, 8, 6)).astype(np.float32)
        fused = rgms.rgms_reference(small_relational, x, w)
        staged = rgms.rgms_two_stage_reference(small_relational, x, w)
        assert np.allclose(fused, staged, atol=1e-4)
        assert fused.shape == (64, 6)

    def test_reference_validates_relation_count(self, small_relational, rng):
        with pytest.raises(ValueError):
            rgms.rgms_reference(small_relational, rng.standard_normal((64, 8)),
                                rng.standard_normal((3, 8, 6)))

    def test_fused_workload_has_no_intermediate(self, small_relational):
        problem = rgms.RGMSProblem(small_relational, 16, 16)
        fused = rgms.rgms_fused_hyb_workload(problem, V100)
        staged = rgms.rgms_two_stage_workload(problem, V100)
        assert staged.metadata["intermediate_bytes"] > 0
        assert fused.memory_footprint_bytes < staged.memory_footprint_bytes

    def test_hyb_and_tensor_cores_both_help(self):
        # Use a graph large enough to fill the device; on tiny problems the
        # single-block critical path dominates and bucketing cannot help.
        adjacency = generate_relational_adjacency(
            num_nodes=512, num_edges=8000, num_relations=8, seed=3
        )
        problem = rgms.RGMSProblem(adjacency, 32, 32)
        model = GPUModel(V100)
        naive = model.estimate(rgms.rgms_naive_workload(problem, V100)).duration_us
        hyb = model.estimate(
            rgms.rgms_fused_hyb_workload(problem, V100, use_tensor_cores=False)
        ).duration_us
        hyb_tc = model.estimate(
            rgms.rgms_fused_hyb_workload(problem, V100, use_tensor_cores=True)
        ).duration_us
        assert hyb < naive
        assert hyb_tc < hyb

    def test_two_stage_launches_per_relation(self, small_relational):
        problem = rgms.RGMSProblem(small_relational, 8, 8)
        workload = rgms.rgms_two_stage_workload(problem, V100)
        active = sum(1 for m in small_relational.slices if m is not None and m.nnz)
        assert workload.num_launches == 1 + active


class TestSparseConv:
    def test_reference_matches_dense_computation(self, small_conv_problem, rng):
        problem = small_conv_problem
        features = rng.standard_normal((problem.num_in_points, problem.in_channels)).astype(np.float32)
        weights = rng.standard_normal(
            (problem.kernel_volume, problem.in_channels, problem.out_channels)
        ).astype(np.float32) * 0.1
        out = sparse_conv.sparse_conv_reference(problem, features, weights)
        # Manual accumulation over every pair.
        expected = np.zeros_like(out)
        for r, pairs in enumerate(problem.kernel_maps):
            for in_idx, out_idx in pairs:
                expected[out_idx] += features[in_idx] @ weights[r]
        assert np.allclose(out, expected, atol=1e-3)

    def test_reference_validates_shapes(self, small_conv_problem, rng):
        problem = small_conv_problem
        with pytest.raises(ValueError):
            sparse_conv.sparse_conv_reference(
                problem, rng.standard_normal((3, problem.in_channels)),
                rng.standard_normal((problem.kernel_volume, problem.in_channels, problem.out_channels)),
            )

    def test_identity_offset_covers_all_points(self, small_conv_problem):
        problem = small_conv_problem
        sizes = problem.pairs_per_offset()
        center = problem.kernel_volume // 2
        assert sizes[center] == problem.num_in_points

    def test_workloads_materialisation_difference(self, small_conv_problem):
        fused = sparse_conv.sparse_conv_fused_tc_workload(small_conv_problem, V100)
        staged = sparse_conv.sparse_conv_gather_gemm_scatter_workload(small_conv_problem, V100)
        assert staged.metadata["materialized_bytes"] > 0
        assert fused.memory_footprint_bytes < staged.memory_footprint_bytes
        assert staged.num_launches > fused.num_launches


class TestBatchedAttention:
    @pytest.fixture(scope="class")
    def small_mask(self):
        return band_mask(seq_len=64, band_size=16, block_size=8)

    def test_batched_spmm_reference(self, small_mask, rng):
        feats = rng.standard_normal((3, 64, 4)).astype(np.float32)
        out = batched.batched_spmm_reference(small_mask, feats)
        dense = small_mask.to_dense()
        assert np.allclose(out[1], dense @ feats[1], atol=1e-4)
        with pytest.raises(ValueError):
            batched.batched_spmm_reference(small_mask, feats[0])

    def test_batched_sddmm_reference(self, small_mask, rng):
        q = rng.standard_normal((2, 64, 4)).astype(np.float32)
        k = rng.standard_normal((2, 4, 64)).astype(np.float32)
        out = batched.batched_sddmm_reference(small_mask, q, k)
        assert out.shape == (2, small_mask.nnz)

    def test_bsr_tensor_cores_beat_scalar_csr(self, small_mask):
        bsr = BSRMatrix.from_csr(small_mask, 8)
        model = GPUModel(V100)
        t_bsr = model.estimate(batched.batched_spmm_bsr_workload(bsr, 64, 12, V100)).duration_us
        t_csr = model.estimate(batched.batched_spmm_csr_workload(small_mask, 64, 12, V100)).duration_us
        assert t_bsr < t_csr

    def test_workload_scales_with_heads(self, small_mask):
        bsr = BSRMatrix.from_csr(small_mask, 8)
        one = batched.batched_spmm_bsr_workload(bsr, 64, 1, V100)
        many = batched.batched_spmm_bsr_workload(bsr, 64, 8, V100)
        assert many.total_blocks() == 8 * one.total_blocks()
        assert many.total_flops() == pytest.approx(8 * one.total_flops())


class TestExecutablePrograms:
    """The stage-I programs compiled and run through the full pipeline."""

    @pytest.fixture(scope="class")
    def small_mask(self):
        return band_mask(seq_len=48, band_size=12, block_size=6)

    def test_batched_spmm_program_both_engines(self, small_mask, rng):
        feats = rng.standard_normal((3, small_mask.cols, 4)).astype(np.float32)
        func = batched.build_batched_spmm_program(small_mask, 3, 4, feats)
        kernel = build(func, cache=False)
        fast = kernel.run(engine="vectorized")["C"]
        slow = kernel.run(engine="interpret")["C"]
        assert np.array_equal(fast, slow)
        ref = batched.batched_spmm_reference(small_mask, feats)
        assert np.array_equal(fast.reshape(3, small_mask.rows, 4), ref)

    def test_batched_spmm_bsr_program(self, small_mask, rng):
        bsr = BSRMatrix.from_csr(small_mask, 6)
        feats = rng.standard_normal((2, bsr.shape[1], 4)).astype(np.float32)
        func = batched.build_batched_spmm_bsr_program(bsr, 2, 4, feats)
        kernel = build(func, cache=False)
        out = kernel.run(engine="vectorized")["C"].reshape(2, bsr.shape[0], 4)
        ref = batched.batched_spmm_reference(small_mask, feats[:, : small_mask.cols])
        assert np.array_equal(out[:, : small_mask.rows], ref)

    @pytest.mark.parametrize("fuse_ij", [True, False])
    def test_batched_sddmm_program(self, small_mask, rng, fuse_ij):
        q = rng.standard_normal((2, small_mask.rows, 4)).astype(np.float32)
        k = rng.standard_normal((2, 4, small_mask.cols)).astype(np.float32)
        func = batched.build_batched_sddmm_program(small_mask, 2, 4, q, k, fuse_ij=fuse_ij)
        kernel = build(func, cache=False)
        fast = kernel.run(engine="vectorized")["OUT"].reshape(2, small_mask.nnz)
        slow = kernel.run(engine="interpret")["OUT"].reshape(2, small_mask.nnz)
        assert np.array_equal(fast, slow)
        ref = batched.batched_sddmm_reference(small_mask, q, k)
        assert np.allclose(fast, ref, atol=1e-5)

    def test_bsr_element_permutation_roundtrip(self, small_mask):
        bsr = BSRMatrix.from_csr(small_mask, 6)
        perm = batched.bsr_element_permutation(small_mask, bsr)
        # Permuting the BSR value layout must recover the CSR value order.
        assert np.array_equal(bsr.data.reshape(-1)[perm], small_mask.data)

    def test_bsr_element_permutation_requires_alignment(self):
        from repro.formats import CSRMatrix

        csr = CSRMatrix.random(rows=12, cols=12, density=0.2, seed=3)
        with pytest.raises(ValueError):
            batched.bsr_element_permutation(csr, BSRMatrix.from_csr(csr, 4))

    def test_rgms_program_both_engines(self, small_relational, rng):
        x = rng.standard_normal((64, 8)).astype(np.float32)
        w = rng.standard_normal((5, 8, 6)).astype(np.float32)
        func = rgms.build_rgms_program(small_relational, 8, 6, x, w)
        kernel = build(func, cache=False)
        fast = kernel.run(engine="vectorized")["Y"].reshape(64, 6)
        slow = kernel.run(engine="interpret")["Y"].reshape(64, 6)
        assert np.array_equal(fast, slow)
        assert np.allclose(fast, rgms.rgms_reference(small_relational, x, w), atol=1e-4)

    def test_rgms_program_validates_relation_count(self, small_relational, rng):
        with pytest.raises(ValueError):
            rgms.build_rgms_program(
                small_relational, 8, 6, rng.standard_normal((64, 8)),
                rng.standard_normal((2, 8, 6)),
            )

    def test_sparse_conv_program_both_engines(self, small_conv_problem, rng):
        problem = small_conv_problem
        feats = rng.standard_normal(
            (problem.num_in_points, problem.in_channels)
        ).astype(np.float32)
        weights = rng.standard_normal(
            (problem.kernel_volume, problem.in_channels, problem.out_channels)
        ).astype(np.float32)
        func = sparse_conv.build_sparse_conv_program(problem, feats, weights)
        kernel = build(func, cache=False)
        fast = kernel.run(engine="vectorized")["Y"]
        slow = kernel.run(engine="interpret")["Y"]
        assert np.array_equal(fast, slow)
        ref = sparse_conv.sparse_conv_reference(problem, feats, weights)
        assert np.allclose(
            fast.reshape(problem.num_out_points, problem.out_channels), ref, atol=1e-4
        )

    def test_sparse_conv_program_validates_shapes(self, small_conv_problem, rng):
        problem = small_conv_problem
        with pytest.raises(ValueError):
            sparse_conv.build_sparse_conv_program(
                problem, rng.standard_normal((3, problem.in_channels)), None
            )
        with pytest.raises(ValueError):
            sparse_conv.build_sparse_conv_program(
                problem, None,
                rng.standard_normal((1, problem.in_channels, problem.out_channels)),
            )
