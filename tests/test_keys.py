"""Unit tests for the shared content-hash / dtype-resolution helpers."""

import numpy as np
import pytest

from repro.runtime.keys import content_key, resolve_dtype


class TestContentKey:
    def test_deterministic(self):
        a = np.arange(6, dtype=np.float32)
        assert content_key("spmm", a, 4) == content_key("spmm", a, 4)

    def test_array_content_sensitivity(self):
        a = np.arange(6, dtype=np.float32)
        b = a.copy()
        b[3] = -1.0
        assert content_key(a) != content_key(b)

    def test_dtype_participates(self):
        a = np.arange(6, dtype=np.int32)
        assert content_key(a) != content_key(a.astype(np.int64))

    def test_order_participates(self):
        assert content_key("a", "b") != content_key("b", "a")

    def test_scalar_and_none_parts(self):
        assert content_key("x", None, 3) != content_key("x", None, 4)
        assert content_key("x", None) != content_key("x", "None2")

    def test_delimiter_prevents_concatenation_collisions(self):
        assert content_key("ab", "c") != content_key("a", "bc")

    def test_multidimensional_array_flattens_by_content(self):
        a = np.arange(6, dtype=np.float32).reshape(2, 3)
        b = np.arange(6, dtype=np.float32).reshape(3, 2)
        # Same bytes + same dtype hash identically regardless of view shape;
        # callers embed shape explicitly when it matters.
        assert content_key(a) == content_key(b)

    def test_session_aliases_point_here(self):
        from repro.runtime import session

        assert session._content_key is content_key
        assert session._resolve_dtype is resolve_dtype


class TestResolveDtype:
    def test_default_is_float32(self):
        x = np.ones(3, dtype=np.float32)
        assert resolve_dtype([x], None) == "float32"

    def test_any_float64_operand_promotes(self):
        x = np.ones(3, dtype=np.float32)
        y = np.ones(3, dtype=np.float64)
        assert resolve_dtype([x, y], None) == "float64"
        assert resolve_dtype([y, x], None) == "float64"

    def test_explicit_dtype_wins(self):
        y = np.ones(3, dtype=np.float64)
        assert resolve_dtype([y], "float32") == "float32"

    def test_explicit_dtype_validated(self):
        with pytest.raises(ValueError):
            resolve_dtype([np.ones(2)], "int32")

    def test_dtype_bearing_objects(self):
        class Ref:
            dtype = "float64"

        assert resolve_dtype([Ref()], None) == "float64"

    def test_none_operands_ignored(self):
        assert resolve_dtype([None, np.ones(2, dtype=np.float32)], None) == "float32"
