"""Differential harness: the four dispatch tiers must agree bit for bit.

Every test builds a stage-I program from hypothesis-randomized formats,
shapes and value dtypes, runs it through the native compiled-C kernel
(when a toolchain is present), the emitted stage-IV kernel, the vectorized
executor and the scalar interpreter, and asserts that **every** buffer of
the result is bit-identical (``np.array_equal`` on the raw arrays, dtype
equality included).  Structural-zero paths (padded ELL slots, empty rows,
empty relations, nnz=0 matrices) are exercised explicitly — they are where
the tiers' masking strategies differ most.

The native tier is compared against the *emitted* tier: both materialise
whole-scalar reduction residuals at NumPy's ``np.full``/``ufunc.at``
promotion semantics, so they agree bitwise by construction wherever the
emitted tier agrees with the interpreter (which this battery also asserts),
and the comparison stays transitive across all four tiers.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.codegen.build import build
from repro.formats.bsr import BSRMatrix
from repro.formats.csf import CSFTensor
from repro.formats.csr import CSRMatrix
from repro.formats.hyb import HybFormat
from repro.ops.batched import build_batched_sddmm_program, build_batched_spmm_program
from repro.ops.pruned_spmm import build_pruned_spmm_bsr_program
from repro.ops.rgms import build_rgms_program
from repro.ops.sddmm import build_sddmm_program
from repro.ops.spmm import build_spmm_hyb_program, build_spmm_program

SETTINGS = dict(max_examples=25, deadline=None)

dtypes = st.sampled_from([np.float32, np.float64])


def random_dense(rows, cols, density, dtype, seed):
    """A random dense matrix with exact zeros, negatives and tiny values."""
    rng = np.random.default_rng(seed)
    mask = rng.random((rows, cols)) < density
    values = rng.standard_normal((rows, cols))
    # Include exact zeros among stored values' factors downstream by mixing
    # in sign flips and zero rows.
    return (mask * values).astype(dtype)


def assert_tiers_bit_exact(func, expect_emitted=True):
    """Run a program on all four tiers and compare every buffer bitwise."""
    from repro.core.codegen.emit_c import toolchain_available

    kernel = build(func, cache=False)
    if expect_emitted:
        assert kernel.emitted_source() is not None, "program fell out of the emitter fragment"
    interpreted = kernel.run(engine="interpret")
    vectorized = kernel.run(engine="vectorized")
    emitted = kernel.run(engine="emitted")
    assert kernel.last_engine == "emitted"
    native = None
    if toolchain_available() and kernel.native_source() is not None:
        native = kernel.run(engine="native")
        assert kernel.last_engine == "native"
        assert native.keys() == emitted.keys()
    assert interpreted.keys() == vectorized.keys() == emitted.keys()
    for name in interpreted:
        assert interpreted[name].dtype == emitted[name].dtype, name
        assert np.array_equal(interpreted[name], vectorized[name]), (
            f"vectorized diverges from interpreter on {name!r}"
        )
        assert np.array_equal(interpreted[name], emitted[name]), (
            f"emitted diverges from interpreter on {name!r}"
        )
        if native is not None:
            assert emitted[name].dtype == native[name].dtype, name
            assert np.array_equal(emitted[name], native[name]), (
                f"native diverges from emitted on {name!r}"
            )
    return emitted


class TestSpMMDifferential:
    @settings(**SETTINGS)
    @given(
        rows=st.integers(1, 12),
        cols=st.integers(1, 12),
        feat=st.integers(1, 6),
        density=st.floats(0.0, 0.7),
        dtype=dtypes,
        seed=st.integers(0, 2**16),
    )
    def test_csr(self, rows, cols, feat, density, dtype, seed):
        dense = random_dense(rows, cols, density, dtype, seed)
        csr = CSRMatrix.from_dense(dense)
        rng = np.random.default_rng(seed + 1)
        feats = rng.standard_normal((cols, feat)).astype(dtype)
        func = build_spmm_program(csr, feat, feats, dtype=np.dtype(dtype).name)
        out = assert_tiers_bit_exact(func)
        ref = dense.astype(np.float64) @ feats.astype(np.float64)
        np.testing.assert_allclose(
            out["C"].reshape(rows, feat).astype(np.float64), ref, rtol=1e-4, atol=1e-4
        )

    @settings(**SETTINGS)
    @given(
        rows=st.integers(1, 14),
        cols=st.integers(1, 14),
        feat=st.integers(1, 4),
        density=st.floats(0.0, 0.6),
        parts=st.integers(1, 3),
        buckets=st.integers(1, 3),
        seed=st.integers(0, 2**16),
    )
    def test_hyb_with_padded_slots(self, rows, cols, feat, density, parts, buckets, seed):
        """The hyb/ELL path exercises structural-zero (padded slot) masking."""
        dense = random_dense(rows, cols, density, np.float32, seed)
        csr = CSRMatrix.from_dense(dense)
        hyb = HybFormat.from_csr(csr, num_col_parts=parts, num_buckets=buckets)
        feats = np.random.default_rng(seed + 1).standard_normal((cols, feat)).astype(np.float32)
        func = build_spmm_hyb_program(hyb, feat, feats)
        assert_tiers_bit_exact(func)

    def test_empty_matrix(self):
        csr = CSRMatrix.from_dense(np.zeros((5, 7), dtype=np.float32))
        feats = np.ones((7, 3), dtype=np.float32)
        out = assert_tiers_bit_exact(build_spmm_program(csr, 3, feats))
        assert np.all(out["C"] == 0.0)

    def test_empty_rows_and_single_element(self):
        dense = np.zeros((4, 4), dtype=np.float32)
        dense[2, 1] = -3.5
        csr = CSRMatrix.from_dense(dense)
        feats = np.arange(8, dtype=np.float32).reshape(4, 2)
        assert_tiers_bit_exact(build_spmm_program(csr, 2, feats))


class TestSDDMMDifferential:
    @settings(**SETTINGS)
    @given(
        rows=st.integers(1, 10),
        cols=st.integers(1, 10),
        feat=st.integers(1, 5),
        density=st.floats(0.0, 0.7),
        fuse=st.booleans(),
        dtype=dtypes,
        seed=st.integers(0, 2**16),
    )
    def test_csr(self, rows, cols, feat, density, fuse, dtype, seed):
        dense = random_dense(rows, cols, density, dtype, seed)
        csr = CSRMatrix.from_dense(dense)
        rng = np.random.default_rng(seed + 2)
        x = rng.standard_normal((rows, feat)).astype(dtype)
        y = rng.standard_normal((feat, cols)).astype(dtype)
        func = build_sddmm_program(csr, feat, x, y, fuse_ij=fuse, dtype=np.dtype(dtype).name)
        assert_tiers_bit_exact(func)

    def test_fused_loop_over_empty_matrix(self):
        csr = CSRMatrix.from_dense(np.zeros((3, 3), dtype=np.float32))
        x = np.ones((3, 2), dtype=np.float32)
        y = np.ones((2, 3), dtype=np.float32)
        assert_tiers_bit_exact(build_sddmm_program(csr, 2, x, y, fuse_ij=True))


class TestBlockAndBatchedDifferential:
    @settings(**SETTINGS)
    @given(
        block_rows=st.integers(1, 4),
        block_cols=st.integers(1, 4),
        block_size=st.sampled_from([1, 2, 4]),
        seq=st.integers(1, 5),
        density=st.floats(0.1, 1.0),
        seed=st.integers(0, 2**16),
    )
    def test_pruned_spmm_bsr(self, block_rows, block_cols, block_size, seq, density, seed):
        rows, cols = block_rows * block_size, block_cols * block_size
        dense = random_dense(rows, cols, density, np.float32, seed)
        bsr = BSRMatrix.from_dense(dense, block_size)
        x = np.random.default_rng(seed + 3).standard_normal((cols, seq)).astype(np.float32)
        func = build_pruned_spmm_bsr_program(bsr, seq, x)
        assert_tiers_bit_exact(func)

    @settings(**SETTINGS)
    @given(
        heads=st.integers(1, 3),
        rows=st.integers(1, 8),
        cols=st.integers(1, 8),
        feat=st.integers(1, 4),
        density=st.floats(0.0, 0.7),
        seed=st.integers(0, 2**16),
    )
    def test_batched_spmm(self, heads, rows, cols, feat, density, seed):
        dense = random_dense(rows, cols, density, np.float32, seed)
        csr = CSRMatrix.from_dense(dense)
        feats = (
            np.random.default_rng(seed + 4)
            .standard_normal((heads, cols, feat))
            .astype(np.float32)
        )
        func = build_batched_spmm_program(csr, heads, feat, feats)
        assert_tiers_bit_exact(func)

    @settings(**SETTINGS)
    @given(
        heads=st.integers(1, 3),
        rows=st.integers(1, 7),
        cols=st.integers(1, 7),
        feat=st.integers(1, 4),
        density=st.floats(0.0, 0.7),
        scale=st.sampled_from([None, 0.5, 2.0]),
        seed=st.integers(0, 2**16),
    )
    def test_batched_sddmm_with_scale(self, heads, rows, cols, feat, density, scale, seed):
        """The in-kernel rescale nest uses ``np.multiply.at``; cover it too."""
        dense = random_dense(rows, cols, density, np.float32, seed)
        csr = CSRMatrix.from_dense(dense)
        rng = np.random.default_rng(seed + 5)
        q = rng.standard_normal((heads, rows, feat)).astype(np.float32)
        k = rng.standard_normal((heads, feat, cols)).astype(np.float32)
        func = build_batched_sddmm_program(csr, heads, feat, q, k, scale=scale)
        assert_tiers_bit_exact(func)


class TestRGMSDifferential:
    @settings(max_examples=15, deadline=None)
    @given(
        relations=st.integers(1, 4),
        nodes=st.integers(2, 10),
        in_feats=st.integers(1, 4),
        out_feats=st.integers(1, 3),
        density=st.floats(0.0, 0.5),
        seed=st.integers(0, 2**16),
    )
    def test_random_hetero_adjacency(self, relations, nodes, in_feats, out_feats, density, seed):
        rng = np.random.default_rng(seed)
        dense = (rng.random((relations, nodes, nodes)) < density).astype(np.float32)
        adjacency = CSFTensor.from_dense(dense)
        x = rng.standard_normal((nodes, in_feats)).astype(np.float32)
        w = rng.standard_normal((relations, in_feats, out_feats)).astype(np.float32)
        func = build_rgms_program(adjacency, in_feats, out_feats, x, w)
        assert_tiers_bit_exact(func)

    def test_empty_relation(self):
        """A relation with no edges must contribute nothing on every tier."""
        dense = np.zeros((3, 5, 5), dtype=np.float32)
        dense[0, 1, 2] = 1.0
        dense[2, 4, 0] = -2.0  # relation 1 stays empty
        adjacency = CSFTensor.from_dense(dense)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((5, 3)).astype(np.float32)
        w = rng.standard_normal((3, 3, 2)).astype(np.float32)
        func = build_rgms_program(adjacency, 3, 2, x, w)
        assert_tiers_bit_exact(func)


class TestGraphChainDifferential:
    """Fused dataflow graphs must be bit-exact with node-by-node execution.

    Chains of 2–4 operators over hypothesis-randomized structures, dtypes,
    densities (including 0.0: empty rows and all-zero matrices) — the fused
    lowering merges them into one kernel, the unfused lowering runs the exact
    standalone programs the eager path builds, and every output must match
    bitwise (dtype included).
    """

    @settings(**SETTINGS)
    @given(
        nodes=st.integers(2, 10),
        feat=st.integers(1, 5),
        density=st.floats(0.0, 0.7),
        depth=st.integers(2, 4),
        ops=st.lists(st.sampled_from(["spmm", "relu", "add", "gemm"]), min_size=3, max_size=3),
        dtype=dtypes,
        seed=st.integers(0, 2**16),
    )
    def test_random_chain(self, nodes, feat, density, depth, ops, dtype, seed):
        from repro.runtime.session import Session

        dense = random_dense(nodes, nodes, density, dtype, seed)
        csr = CSRMatrix.from_dense(dense)
        rng = np.random.default_rng(seed + 7)
        x = rng.standard_normal((nodes, feat)).astype(dtype)
        w = rng.standard_normal((feat, feat)).astype(dtype)
        session = Session(persistent=False)

        def capture():
            g = session.graph()
            out = g.spmm(csr, g.input("x", x))
            for index in range(depth - 1):
                op = ops[index % len(ops)]
                if op == "spmm":
                    out = g.spmm(csr, out)
                elif op == "relu":
                    out = g.relu(out)
                elif op == "add":
                    out = g.add(out, out)
                else:
                    out = g.gemm(out, w)
            g.output(out)
            return g, out

        g1, out1 = capture()
        g2, out2 = capture()
        fused = g1.compile(fuse=True)
        unfused = g2.compile(fuse=False)
        assert fused.num_kernel_launches < unfused.num_kernel_launches
        rf = fused.run()[out1.name]
        ru = unfused.run()[out2.name]
        assert rf.dtype == ru.dtype == np.dtype(dtype)
        assert np.array_equal(rf, ru), "fused graph diverges from node-by-node"

    @settings(max_examples=10, deadline=None)
    @given(
        relations=st.integers(1, 3),
        nodes=st.integers(2, 8),
        feats=st.integers(1, 4),
        density=st.floats(0.0, 0.4),
        seed=st.integers(0, 2**16),
    )
    def test_rgms_chain(self, relations, nodes, feats, density, seed):
        """Per-relation RGMS chains (incl. empty relations) fuse bit-exactly."""
        from repro.runtime.session import Session

        rng = np.random.default_rng(seed)
        dense = (rng.random((relations, nodes, nodes)) < density).astype(np.float32)
        adjacency = CSFTensor.from_dense(dense)
        x = rng.standard_normal((nodes, feats)).astype(np.float32)
        w1 = rng.standard_normal((relations, feats, feats)).astype(np.float32)
        w2 = rng.standard_normal((relations, feats, feats)).astype(np.float32)
        session = Session(persistent=False)

        def capture():
            g = session.graph()
            out = g.rgms(adjacency, g.input("x", x), w1)
            out = g.relu(out)
            out = g.rgms(adjacency, out, w2)
            g.output(out)
            return g, out

        g1, out1 = capture()
        g2, out2 = capture()
        fused, unfused = g1.compile(fuse=True), g2.compile(fuse=False)
        assert fused.num_kernel_launches < unfused.num_kernel_launches
        assert np.array_equal(fused.run()[out1.name], unfused.run()[out2.name])


class TestFallbackConsistency:
    def test_unsupported_program_rejected_by_both_fast_tiers(self):
        """A program the vectorized analysis rejects is also unemittable, and
        auto dispatch lands on the interpreter."""
        from repro.core.buffers import FlatBuffer
        from repro.core.codegen.emit_numpy import UnsupportedForEmission, emit_numpy_source
        from repro.core.expr import Var
        from repro.core.program import STAGE_LOOP, PrimFunc
        from repro.core.stmt import BufferStore, ForLoop, SeqStmt

        b = FlatBuffer("b", 4)
        c = FlatBuffer("c", 4)
        i = Var("i")
        # c reads b while b is written in the same nest: a read-after-write
        # hazard neither fast tier may batch.
        body = SeqStmt(
            [
                ForLoop(i, 0, 4, BufferStore(b, [i], c[i] + 1.0)),
                ForLoop(i, 0, 4, BufferStore(c, [i], b[i] * 2.0)),
            ]
        )
        # Single nest wrapping both loops -> hazard.
        hazard = PrimFunc(
            "hazard", axes=[], buffers=[],
            body=ForLoop(Var("j"), 0, 1, body),
            stage=STAGE_LOOP, flat_buffers=[b, c],
        )
        with pytest.raises(UnsupportedForEmission):
            emit_numpy_source(hazard)
        kernel = build(hazard, cache=False)
        out = kernel.run()
        assert kernel.last_engine == "interpret"
        assert np.array_equal(out["c"], np.full(4, 2.0, dtype=np.float32))
