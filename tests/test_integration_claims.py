"""Integration tests of the paper's headline claims on reduced-size workloads.

These tests exercise the whole stack — workload generators, composable
formats, operator workload models, baselines and the GPU cost model — and
assert the *direction* of each headline result of the evaluation (who wins),
not the exact factors.
"""

import pytest

from repro.baselines import cusparse, dgl, graphiler, torchsparse, triton
from repro.formats import BSRMatrix, DBSRMatrix, HybFormat, SRBCRSMatrix
from repro.models.rgcn import rgcn_speedup_table
from repro.ops.batched import batched_sddmm_bsr_workload, batched_spmm_bsr_workload
from repro.ops.sddmm import sddmm_workload
from repro.ops.sparse_conv import sparse_conv_fused_tc_workload
from repro.ops.spmm import spmm_csr_workload, spmm_hyb_workload
from repro.perf.device import RTX3070, V100
from repro.perf.gpu_model import GPUModel
from repro.workloads.attention import band_mask
from repro.workloads.graphs import generate_adjacency
from repro.workloads.hetero_graphs import generate_relational_adjacency
from repro.workloads.pointcloud import PointCloudConfig, sparse_conv_problem
from repro.workloads.pruning import block_pruned_weight, unstructured_pruned_weight
from repro.baselines.cublas import gemm_workload


@pytest.fixture(scope="module", params=["V100", "RTX3070"])
def device(request):
    return V100 if request.param == "V100" else RTX3070


@pytest.fixture(scope="module")
def powerlaw_graph():
    return generate_adjacency(6000, 80000, "powerlaw", seed=11)


class TestSpMMClaims:
    def test_hyb_spmm_beats_cusparse_on_power_law_graphs(self, powerlaw_graph, device):
        """Figure 13: SparseTIR(hyb) obtains a speedup over cuSPARSE."""
        model = GPUModel(device)
        hyb = HybFormat.from_csr(powerlaw_graph, num_col_parts=1)
        ours = model.estimate(spmm_hyb_workload(hyb, 128, device)).duration_us
        vendor = model.estimate(cusparse.spmm_workload(powerlaw_graph, 128, device)).duration_us
        assert vendor / ours > 1.0

    def test_composable_formats_matter(self, powerlaw_graph, device):
        """Figure 13 ablation: hyb beats the same kernel without decomposition."""
        model = GPUModel(device)
        hyb = HybFormat.from_csr(powerlaw_graph, num_col_parts=1)
        with_hyb = model.estimate(spmm_hyb_workload(hyb, 128, device)).duration_us
        without = model.estimate(spmm_csr_workload(powerlaw_graph, 128, device)).duration_us
        assert with_hyb < without


class TestSDDMMClaims:
    def test_composable_transformations_matter(self, powerlaw_graph, device):
        """Figure 14 ablation: vectorisation + rfactor beat the plain kernel."""
        model = GPUModel(device)
        tuned = model.estimate(
            sddmm_workload(powerlaw_graph, 256, device, vector_width=4, two_stage_reduction=True)
        ).duration_us
        plain = model.estimate(
            sddmm_workload(powerlaw_graph, 256, device, vector_width=1, two_stage_reduction=False)
        ).duration_us
        assert tuned < plain

    def test_sparsetir_sddmm_beats_featgraph_baseline(self, powerlaw_graph, device):
        model = GPUModel(device)
        ours = model.estimate(sddmm_workload(powerlaw_graph, 128, device)).duration_us
        baseline = model.estimate(
            dgl.sddmm_workload_featgraph(powerlaw_graph, 128, device)
        ).duration_us
        assert baseline / ours > 1.0


class TestSparseAttentionClaims:
    def test_bsr_tensorcore_kernels_beat_triton(self, device):
        """Figure 16: SparseTIR-BSR is at least on par with Triton block-sparse."""
        mask = band_mask(1024, 128, 16)
        bsr = BSRMatrix.from_csr(mask, 16)
        model = GPUModel(device)
        spmm_ratio = (
            model.estimate(triton.blocksparse_spmm_workload(bsr, 64, 12, device)).duration_us
            / model.estimate(batched_spmm_bsr_workload(bsr, 64, 12, device)).duration_us
        )
        sddmm_ratio = (
            model.estimate(triton.blocksparse_sddmm_workload(bsr, 64, 12, device)).duration_us
            / model.estimate(batched_sddmm_bsr_workload(bsr, 64, 12, device)).duration_us
        )
        assert spmm_ratio > 1.0
        assert sddmm_ratio > 1.0


class TestPrunedBertClaims:
    def test_dbsr_beats_bsr_when_block_rows_are_empty(self, device):
        """Figure 17: DBSR consistently outperforms BSR for block pruning."""
        from repro.ops.pruned_spmm import pruned_spmm_bsr_workload, pruned_spmm_dbsr_workload

        weight = block_pruned_weight(768, 768, 32, density=2 ** -5, seed=0)
        model = GPUModel(device)
        bsr = BSRMatrix.from_csr(weight, 32)
        dbsr = DBSRMatrix.from_bsr(bsr)
        t_bsr = model.estimate(pruned_spmm_bsr_workload(bsr, 512, device)).duration_us
        t_dbsr = model.estimate(pruned_spmm_dbsr_workload(dbsr, 512, device)).duration_us
        assert t_dbsr < t_bsr

    def test_sparse_kernels_beat_dense_gemm_only_at_low_density(self, device):
        """Figures 17/19: the dense GEMM wins at high density, sparse at low."""
        from repro.ops.pruned_spmm import pruned_spmm_srbcrs_workload

        model = GPUModel(device)
        dense_time = model.estimate(
            gemm_workload(768, 512, 768, device, dtype="float16")
        ).duration_us
        low = unstructured_pruned_weight(768, 768, density=2 ** -7, seed=1)
        high = unstructured_pruned_weight(768, 768, density=0.5, seed=1)
        t_low = model.estimate(
            pruned_spmm_srbcrs_workload(SRBCRSMatrix(low, 8, 32), 512, device)
        ).duration_us
        t_high = model.estimate(
            pruned_spmm_srbcrs_workload(SRBCRSMatrix(high, 8, 32), 512, device)
        ).duration_us
        assert t_low < dense_time
        assert t_high > t_low


class TestRGCNClaims:
    def test_rgcn_speedup_and_memory(self, device):
        """Figure 20: SparseTIR(hyb+TC) beats Graphiler and the GNN frameworks,
        and composable formats + tensorisation each contribute."""
        adjacency = generate_relational_adjacency(1200, 18000, 16, seed=7)
        table = rgcn_speedup_table(adjacency, 32, device)
        assert table["sparsetir_hyb_tc"].duration_us < table["graphiler"].duration_us
        assert table["sparsetir_hyb_tc"].duration_us < table["sparsetir_hyb"].duration_us
        assert table["sparsetir_hyb"].duration_us < table["sparsetir_naive"].duration_us
        assert (
            table["sparsetir_hyb_tc"].memory_footprint_bytes
            < table["dgl"].memory_footprint_bytes
        )


class TestSparseConvClaims:
    def test_crossover_with_channel_size(self, device):
        """Figure 23: SparseTIR wins at small channel counts, TorchSparse at large."""
        model = GPUModel(device)
        config = PointCloudConfig(num_points=4000, voxel_size=0.4, seed=3)
        small = sparse_conv_problem(32, 32, config)
        large = sparse_conv_problem(256, 256, config)
        speedup_small = (
            model.estimate(torchsparse.sparse_conv_workload(small, device)).duration_us
            / model.estimate(sparse_conv_fused_tc_workload(small, device)).duration_us
        )
        speedup_large = (
            model.estimate(torchsparse.sparse_conv_workload(large, device)).duration_us
            / model.estimate(sparse_conv_fused_tc_workload(large, device)).duration_us
        )
        assert speedup_small > 1.0
        assert speedup_large < speedup_small
