"""Unit tests for the baseline system models."""

import numpy as np
import pytest

from repro.baselines import (
    cublas,
    cusparse,
    dgl,
    dgsparse,
    graphiler,
    pyg,
    sputnik,
    taco,
    torchsparse,
    triton,
)
from repro.formats import BSRMatrix
from repro.ops.rgms import RGMSProblem
from repro.ops.spmm import spmm_reference
from repro.perf.device import V100
from repro.perf.gpu_model import GPUModel
from repro.workloads.attention import band_mask
from repro.workloads.hetero_graphs import generate_relational_adjacency
from repro.workloads.pointcloud import PointCloudConfig, sparse_conv_problem


@pytest.fixture(scope="module")
def graph_csr():
    from repro.workloads.graphs import generate_adjacency

    # Large enough that the device is filled and roofline behaviour (rather
    # than small-problem critical paths) determines the comparison.
    return generate_adjacency(4000, 48000, "powerlaw", seed=5)


class TestNumericalAgreement:
    def test_all_spmm_baselines_compute_the_same_values(self, tiny_csr, rng):
        x = rng.standard_normal((tiny_csr.cols, 3)).astype(np.float32)
        expected = spmm_reference(tiny_csr, x)
        for module in (cusparse, dgsparse, sputnik, taco, dgl, pyg):
            assert np.allclose(module.spmm(tiny_csr, x), expected, atol=1e-5)

    def test_all_sddmm_baselines_compute_the_same_values(self, tiny_csr, rng):
        from repro.ops.sddmm import sddmm_reference

        x = rng.standard_normal((tiny_csr.rows, 3)).astype(np.float32)
        y = rng.standard_normal((3, tiny_csr.cols)).astype(np.float32)
        expected = sddmm_reference(tiny_csr, x, y)
        for module in (cusparse, dgsparse, sputnik, taco, dgl):
            assert np.allclose(module.sddmm(tiny_csr, x, y), expected, atol=1e-5)

    def test_cublas_gemm_reference(self, rng):
        a = rng.standard_normal((8, 4)).astype(np.float32)
        b = rng.standard_normal((4, 6)).astype(np.float32)
        assert np.allclose(cublas.gemm_reference(a, b), a @ b, atol=1e-5)


class TestSpMMWorkloadShapes:
    def test_total_flops_identical_across_csr_baselines(self, graph_csr):
        feat = 64
        expected = 2 * graph_csr.nnz * feat
        for module in (cusparse, dgsparse, sputnik):
            workload = module.spmm_workload(graph_csr, feat, V100)
            assert workload.total_flops() == pytest.approx(expected)

    def test_paper_ordering_on_power_law_graph(self, graph_csr):
        """dgSPARSE (GE-SpMM) should be at least as fast as cuSPARSE, and the
        untuned TACO kernel slower (Figure 13's general trend)."""
        model = GPUModel(V100)
        feat = 128
        t_cusparse = model.estimate(cusparse.spmm_workload(graph_csr, feat, V100)).duration_us
        t_dgsparse = model.estimate(dgsparse.spmm_workload(graph_csr, feat, V100)).duration_us
        t_taco = model.estimate(taco.spmm_workload(graph_csr, feat, V100)).duration_us
        assert t_dgsparse <= t_cusparse * 1.05
        assert t_taco >= t_dgsparse

    def test_dgl_spmm_is_cusparse_backed(self, graph_csr):
        workload = dgl.spmm_workload(graph_csr, 32, V100)
        assert workload.name == "dgl_spmm"
        assert workload.total_flops() == pytest.approx(2 * graph_csr.nnz * 32)

    def test_pyg_gather_scatter_materialises_messages(self, graph_csr):
        workload = pyg.gather_scatter_spmm_workload(graph_csr, 32, V100)
        assert workload.metadata["materialized_messages_bytes"] == graph_csr.nnz * 32 * 4
        assert len(workload.groups) == 2


class TestSDDMMBaselines:
    def test_vendor_sddmm_is_much_slower_than_preds(self, graph_csr):
        model = GPUModel(V100)
        feat = 64
        t_cusparse = model.estimate(cusparse.sddmm_workload(graph_csr, feat, V100)).duration_us
        t_preds = model.estimate(dgsparse.sddmm_workload_coo(graph_csr, feat, V100)).duration_us
        t_dgl = model.estimate(dgl.sddmm_workload_featgraph(graph_csr, feat, V100)).duration_us
        assert t_cusparse > t_dgl          # cuSPARSE not suited to hyper-sparse graphs
        assert t_preds <= t_dgl * 1.05     # PRedS beats the FeatGraph baseline


class TestTensorCoreBaselines:
    @pytest.fixture(scope="class")
    def mask_bsr(self):
        mask = band_mask(512, 64, 16)
        return mask, BSRMatrix.from_csr(mask, 16)

    def test_triton_blocksparse_launches_per_head(self, mask_bsr):
        _, bsr = mask_bsr
        workload = triton.blocksparse_spmm_workload(bsr, 64, 12, V100)
        assert workload.num_launches == 12

    def test_sparsetir_bsr_beats_triton(self, mask_bsr):
        from repro.ops.batched import batched_spmm_bsr_workload

        _, bsr = mask_bsr
        model = GPUModel(V100)
        ours = model.estimate(batched_spmm_bsr_workload(bsr, 64, 12, V100)).duration_us
        theirs = model.estimate(triton.blocksparse_spmm_workload(bsr, 64, 12, V100)).duration_us
        assert ours < theirs

    def test_cublas_gemm_workload_scales_with_shape(self):
        model = GPUModel(V100)
        small = model.estimate(cublas.gemm_workload(512, 512, 512, V100)).duration_us
        large = model.estimate(cublas.gemm_workload(2048, 2048, 2048, V100)).duration_us
        assert large > small


class TestEndToEndBaselines:
    def test_graphiler_has_fixed_overhead(self):
        adjacency = generate_relational_adjacency(256, 2000, 6, seed=2)
        problem = RGMSProblem(adjacency, 16, 16)
        workload = graphiler.rgcn_layer_workload(problem, V100)
        assert workload.metadata["framework_overhead_us"] == graphiler.FIXED_OVERHEAD_US
        assert workload.num_launches == 3

    def test_torchsparse_materialises_gathered_features(self):
        problem = sparse_conv_problem(16, 16, PointCloudConfig(num_points=400, voxel_size=1.0, seed=1))
        workload = torchsparse.sparse_conv_workload(problem, V100)
        assert workload.metadata["materialized_bytes"] > 0
        assert workload.num_launches == 2 + problem.kernel_volume
