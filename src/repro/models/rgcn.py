"""Relational Graph Convolutional Network (RGCN) inference — Figure 20.

The RGCN layer is exactly the RGMS operator plus a self-loop transformation.
The NumPy implementation provides correctness ground truth; passing a
:class:`~repro.runtime.session.Session` to :meth:`RGCN.forward` instead runs
every layer's aggregation through the compiled RGMS kernel (compile-once/
run-many: both layers and repeated forward passes reuse the session's cached
builds).  The end-to-end estimator composes the operator workloads of the six
compared systems (PyG, DGL, Graphiler, SparseTIR naive / hyb / hyb+TC) and
reports both inference time and GPU memory footprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..baselines import graphiler
from ..formats.csf import CSFTensor
from ..ops.rgms import (
    RGMSProblem,
    rgms_fused_hyb_workload,
    rgms_naive_workload,
    rgms_reference,
    rgms_two_stage_workload,
)
from ..perf.device import DeviceSpec
from ..perf.gpu_model import GPUModel
from ..perf.workload import KernelWorkload
from .shared import CompiledForward, relu


@dataclass
class RGCNParams:
    """Weights of a single RGCN layer."""

    relation_weights: np.ndarray  # (R, d_in, d_out)
    self_weight: np.ndarray       # (d_in, d_out)

    @classmethod
    def init(cls, num_relations: int, in_feats: int, out_feats: int, seed: int = 0) -> "RGCNParams":
        rng = np.random.default_rng(seed)
        scale = np.sqrt(6.0 / (in_feats + out_feats))
        return cls(
            relation_weights=rng.uniform(
                -scale, scale, size=(num_relations, in_feats, out_feats)
            ).astype(np.float32),
            self_weight=rng.uniform(-scale, scale, size=(in_feats, out_feats)).astype(np.float32),
        )


class RGCNLayer:
    """One RGCN layer: per-relation aggregation plus a self-loop transform."""

    def __init__(self, adjacency: CSFTensor, params: RGCNParams):
        self.adjacency = adjacency
        self.params = params

    def forward(self, features: np.ndarray, activation: bool = True, session=None) -> np.ndarray:
        """One layer: relational aggregation, self-loop transform, activation.

        Args:
            features: Node features of shape ``(n, d_in)``.
            activation: Apply ReLU to the layer output.
            session: When given, aggregate through the session's compiled
                RGMS kernel instead of the NumPy reference.

        Returns:
            The layer output, shape ``(n, d_out)``.
        """
        if session is not None:
            aggregated = session.rgms(self.adjacency, features, self.params.relation_weights)
        else:
            aggregated = rgms_reference(self.adjacency, features, self.params.relation_weights)
        out = aggregated + features @ self.params.self_weight
        return relu(out) if activation else out


class RGCN:
    """A two-layer RGCN for node classification (inference only)."""

    def __init__(self, adjacency: CSFTensor, in_feats: int, hidden: int, num_classes: int, seed: int = 0):
        num_relations = adjacency.shape[0]
        self.layer1 = RGCNLayer(adjacency, RGCNParams.init(num_relations, in_feats, hidden, seed))
        self.layer2 = RGCNLayer(adjacency, RGCNParams.init(num_relations, hidden, num_classes, seed + 1))

    def forward(self, features: np.ndarray, session=None) -> np.ndarray:
        """Full forward pass; ``session`` selects the compiled RGMS path."""
        hidden = self.layer1.forward(features, activation=True, session=session)
        return self.layer2.forward(hidden, activation=False, session=session)

    def compile(self, session, features: np.ndarray, fuse: bool = True) -> CompiledForward:
        """Capture both layers as one dataflow graph and lower it.

        Each layer is captured as a *per-relation RGMS chain*: every active
        adjacency slice records its own single-relation gather-matmul-scatter
        node, chained by accumulating adds, plus the self-loop transform and
        (first layer) activation.  Unfused that is one kernel launch per node
        — the relation-by-relation dispatch a framework performs; with
        ``fuse=True`` the whole two-layer chain merges into a single emitted
        kernel.  The wrapper reruns on new ``features`` of the same shape.
        """
        g = session.graph()
        x = g.input("features", np.asarray(features, dtype=np.float32))
        out = x
        for layer, activation in ((self.layer1, True), (self.layer2, False)):
            weights = layer.params.relation_weights
            _, rows, cols = layer.adjacency.shape
            aggregated = None
            for rel, matrix in enumerate(layer.adjacency.slices):
                if matrix is None or matrix.nnz == 0:
                    continue
                relation = CSFTensor((1, rows, cols), [matrix])
                gathered = g.rgms(relation, out, weights[rel : rel + 1])
                aggregated = (
                    gathered if aggregated is None else g.add(aggregated, gathered)
                )
            self_loop = g.gemm(out, layer.params.self_weight)
            out = self_loop if aggregated is None else g.add(aggregated, self_loop)
            if activation:
                out = g.relu(out)
        g.output(out)
        return CompiledForward(g.compile(fuse=fuse), "features", out.name)


# ---------------------------------------------------------------------------
# End-to-end inference estimation (Figure 20)
# ---------------------------------------------------------------------------

#: The systems compared in Figure 20, in plotting order.
RGCN_SYSTEMS = (
    "pyg",
    "dgl",
    "graphiler",
    "sparsetir_naive",
    "sparsetir_hyb",
    "sparsetir_hyb_tc",
)


@dataclass
class RGCNEstimate:
    """Inference time and memory footprint of one system on one graph."""

    system: str
    device: str
    duration_us: float
    memory_footprint_bytes: float

    @property
    def memory_footprint_gib(self) -> float:
        return self.memory_footprint_bytes / 2 ** 30


def rgcn_layer_workload(problem: RGMSProblem, system: str, device: DeviceSpec) -> KernelWorkload:
    """The kernel workload of one RGCN layer under the given system."""
    if system == "pyg":
        workload = rgms_two_stage_workload(
            problem, device, gemm_efficiency=0.8, scatter_efficiency=0.55,
            name="pyg_rgcn",
        )
        # PyG launches one transform and one aggregation per relation from
        # Python, and additionally materialises per-edge messages.
        active = sum(1 for m in problem.adjacency.slices if m is not None and m.nnz)
        workload.num_launches = 2 * max(active, 1)
        workload.memory_footprint_bytes += problem.nnz * problem.out_feats * 4
        workload.metadata["framework_overhead_us"] = 40.0 * workload.num_launches
        return workload
    if system == "dgl":
        workload = rgms_two_stage_workload(
            problem, device, gemm_efficiency=0.85, scatter_efficiency=0.7,
            name="dgl_rgcn",
        )
        active = sum(1 for m in problem.adjacency.slices if m is not None and m.nnz)
        workload.num_launches = 1 + max(active, 1)
        workload.metadata["framework_overhead_us"] = 30.0 * workload.num_launches
        return workload
    if system == "graphiler":
        return graphiler.rgcn_layer_workload(problem, device)
    if system == "sparsetir_naive":
        return rgms_naive_workload(problem, device)
    if system == "sparsetir_hyb":
        return rgms_fused_hyb_workload(problem, device, use_tensor_cores=False,
                                       name="sparsetir_rgms_hyb")
    if system == "sparsetir_hyb_tc":
        return rgms_fused_hyb_workload(problem, device, use_tensor_cores=True,
                                       name="sparsetir_rgms_hyb_tc")
    raise ValueError(f"unknown RGCN system {system!r}; available: {RGCN_SYSTEMS}")


def estimate_rgcn_inference(
    adjacency: CSFTensor,
    feat_size: int,
    device: DeviceSpec,
    system: str,
    num_layers: int = 1,
) -> RGCNEstimate:
    """Estimate end-to-end RGCN inference (Figure 20 uses feature size 32)."""
    problem = RGMSProblem(adjacency, in_feats=feat_size, out_feats=feat_size)
    model = GPUModel(device)
    workload = rgcn_layer_workload(problem, system, device)
    report = model.estimate(workload)
    # framework_overhead_us is the total host-side cost per forward pass,
    # already aggregated over the system's operator launches.
    overhead = float(workload.metadata.get("framework_overhead_us", 0.0))
    duration = num_layers * (report.duration_us + overhead)
    return RGCNEstimate(
        system=system,
        device=device.name,
        duration_us=duration,
        memory_footprint_bytes=report.memory_footprint_bytes,
    )


def rgcn_speedup_table(
    adjacency: CSFTensor, feat_size: int, device: DeviceSpec
) -> Dict[str, RGCNEstimate]:
    """Estimates for every system of Figure 20 on one graph."""
    return {
        system: estimate_rgcn_inference(adjacency, feat_size, device, system)
        for system in RGCN_SYSTEMS
    }
