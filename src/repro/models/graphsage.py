"""GraphSAGE (mean aggregator) — NumPy implementation and training-time model.

The end-to-end experiment of Section 4.2.3 integrates SparseTIR's SpMM
kernels into a PyTorch GraphSAGE model and compares full-graph training
throughput against DGL.  Here the model itself (forward and backward passes)
is implemented in NumPy for correctness, and epoch time is estimated by
composing the SpMM workload of the chosen backend with the dense GEMMs and
per-operator framework overhead that both systems share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..baselines import dgl
from ..formats.csr import CSRMatrix
from ..formats.hyb import HybFormat
from ..ops.spmm import spmm_hyb_workload, spmm_reference
from ..perf.device import DeviceSpec
from ..perf.gpu_model import GPUModel
from .shared import (
    CompiledForward,
    gemm_workload_for_model,
    relu,
    relu_grad,
    softmax_cross_entropy,
)


@dataclass
class GraphSAGEParams:
    """Weights of a two-layer GraphSAGE with mean aggregation."""

    w_self_1: np.ndarray
    w_neigh_1: np.ndarray
    w_self_2: np.ndarray
    w_neigh_2: np.ndarray

    @classmethod
    def init(cls, in_feats: int, hidden: int, num_classes: int, seed: int = 0) -> "GraphSAGEParams":
        rng = np.random.default_rng(seed)

        def glorot(rows: int, cols: int) -> np.ndarray:
            scale = np.sqrt(6.0 / (rows + cols))
            return rng.uniform(-scale, scale, size=(rows, cols)).astype(np.float32)

        return cls(
            w_self_1=glorot(in_feats, hidden),
            w_neigh_1=glorot(in_feats, hidden),
            w_self_2=glorot(hidden, num_classes),
            w_neigh_2=glorot(hidden, num_classes),
        )


def normalized_adjacency(csr: CSRMatrix) -> CSRMatrix:
    """Row-normalised adjacency (the mean aggregator as an SpMM).

    GraphSAGE's mean aggregator averages neighbour features, so every stored
    entry becomes ``1 / degree`` regardless of the original edge weight.
    """
    lengths = np.maximum(csr.row_lengths(), 1).astype(np.float32)
    data = 1.0 / np.repeat(lengths, csr.row_lengths())
    return CSRMatrix(csr.shape, csr.indptr, csr.indices, data.astype(np.float32))


class GraphSAGE:
    """A two-layer GraphSAGE model (mean aggregator) in NumPy."""

    def __init__(self, graph: CSRMatrix, params: GraphSAGEParams):
        self.adjacency = normalized_adjacency(graph)
        self.adjacency_t = self.adjacency.transpose()
        self.params = params
        self._cache: Dict[str, np.ndarray] = {}

    # -- forward ---------------------------------------------------------------
    def forward(self, features: np.ndarray) -> np.ndarray:
        p = self.params
        h_neigh_1 = spmm_reference(self.adjacency, features)
        z1 = features @ p.w_self_1 + h_neigh_1 @ p.w_neigh_1
        h1 = relu(z1)
        h_neigh_2 = spmm_reference(self.adjacency, h1)
        logits = h1 @ p.w_self_2 + h_neigh_2 @ p.w_neigh_2
        self._cache = {
            "features": features,
            "h_neigh_1": h_neigh_1,
            "z1": z1,
            "h1": h1,
            "h_neigh_2": h_neigh_2,
        }
        return logits

    def compile(self, session, features: np.ndarray, fuse: bool = True) -> CompiledForward:
        """Capture the forward pass as a dataflow graph and lower it.

        The captured graph runs both aggregations, all four dense transforms
        and the activation through the session's compiled kernels; with
        ``fuse=True`` adjacent nodes merge into single launches (see
        :mod:`repro.graph`).  The returned wrapper is compile-once/run-many:
        call it with new ``features`` of the same shape to rerun.
        """
        p = self.params
        g = session.graph()
        x = g.input("features", np.asarray(features, dtype=np.float32))
        h_neigh_1 = g.spmm(self.adjacency, x)
        h1 = g.relu(g.add(g.gemm(x, p.w_self_1), g.gemm(h_neigh_1, p.w_neigh_1)))
        h_neigh_2 = g.spmm(self.adjacency, h1)
        logits = g.add(g.gemm(h1, p.w_self_2), g.gemm(h_neigh_2, p.w_neigh_2))
        g.output(logits)
        return CompiledForward(g.compile(fuse=fuse), "features", logits.name)

    # -- loss + backward -----------------------------------------------------------
    def training_step(
        self, features: np.ndarray, labels: np.ndarray, learning_rate: float = 1e-2
    ) -> float:
        """One full-graph gradient-descent step; returns the loss."""
        logits = self.forward(features)
        loss, grad_logits = softmax_cross_entropy(logits, labels)
        self._backward(grad_logits, learning_rate)
        return loss

    def _backward(self, grad_logits: np.ndarray, learning_rate: float) -> None:
        p = self.params
        cache = self._cache
        h1, h_neigh_2 = cache["h1"], cache["h_neigh_2"]
        features, h_neigh_1 = cache["features"], cache["h_neigh_1"]

        grad_w_self_2 = h1.T @ grad_logits
        grad_w_neigh_2 = h_neigh_2.T @ grad_logits
        grad_h1 = grad_logits @ p.w_self_2.T + spmm_reference(
            self.adjacency_t, grad_logits
        ) @ p.w_neigh_2.T
        grad_z1 = grad_h1 * relu_grad(cache["z1"])
        grad_w_self_1 = features.T @ grad_z1
        grad_w_neigh_1 = h_neigh_1.T @ grad_z1

        p.w_self_2 -= learning_rate * grad_w_self_2
        p.w_neigh_2 -= learning_rate * grad_w_neigh_2
        p.w_self_1 -= learning_rate * grad_w_self_1
        p.w_neigh_1 -= learning_rate * grad_w_neigh_1


# ---------------------------------------------------------------------------
# End-to-end training-time estimation (Figure 15)
# ---------------------------------------------------------------------------

@dataclass
class TrainingTimeEstimate:
    """Epoch-time breakdown of one GraphSAGE training configuration."""

    backend: str
    device: str
    spmm_us: float
    gemm_us: float
    overhead_us: float

    @property
    def total_us(self) -> float:
        return self.spmm_us + self.gemm_us + self.overhead_us


def _spmm_passes(feat_sizes: Tuple[int, int, int]) -> List[int]:
    """Feature widths of the SpMM calls in one training iteration.

    Two aggregations forward (per layer) and two in the backward pass (the
    transposed aggregation applied to the gradients).
    """
    in_feats, hidden, num_classes = feat_sizes
    return [in_feats, hidden, num_classes, hidden]


def estimate_training_time(
    graph: CSRMatrix,
    feat_sizes: Tuple[int, int, int],
    device: DeviceSpec,
    backend: str = "dgl",
    hyb: Optional[HybFormat] = None,
) -> TrainingTimeEstimate:
    """Estimate one training iteration (forward + backward + update).

    ``backend`` selects how the aggregation SpMMs execute: ``"dgl"`` uses the
    cuSPARSE-backed kernels plus DGL's per-operator overhead;
    ``"sparsetir"`` uses the hyb SpMM kernels integrated into PyTorch (same
    dense GEMMs, same autograd overhead structure).
    """
    in_feats, hidden, num_classes = feat_sizes
    model = GPUModel(device)

    spmm_us = 0.0
    for width in _spmm_passes(feat_sizes):
        if backend == "dgl":
            workload = dgl.spmm_workload(graph, width, device)
            overhead_per_op = dgl.FRAMEWORK_OVERHEAD_US
        elif backend == "sparsetir":
            if hyb is None:
                hyb = HybFormat.from_csr(graph, num_col_parts=1)
            workload = spmm_hyb_workload(hyb, width, device)
            overhead_per_op = 20.0  # PyTorch custom-op dispatch, no graph object
        else:
            raise ValueError(f"unknown backend {backend!r}")
        spmm_us += model.estimate(workload).duration_us

    # Dense GEMMs: identical in both backends (PyTorch/cuBLAS executes them).
    n = graph.rows
    gemm_shapes = [
        (n, hidden, in_feats), (n, hidden, in_feats),          # layer 1 fwd
        (n, num_classes, hidden), (n, num_classes, hidden),    # layer 2 fwd
        (n, hidden, num_classes), (n, in_feats, hidden),       # backward matmuls
        (hidden, num_classes, n), (in_feats, hidden, n),       # weight gradients
    ]
    gemm_us = sum(
        model.estimate(gemm_workload_for_model(m, k, c, device)).duration_us
        for (m, c, k) in gemm_shapes
    )

    num_sparse_ops = len(_spmm_passes(feat_sizes))
    num_dense_ops = len(gemm_shapes) + 6  # activations, loss, optimiser steps
    overhead_us = num_sparse_ops * overhead_per_op + num_dense_ops * 15.0
    return TrainingTimeEstimate(
        backend=backend,
        device=device.name,
        spmm_us=spmm_us,
        gemm_us=gemm_us,
        overhead_us=overhead_us,
    )


def end_to_end_speedup(
    graph: CSRMatrix,
    feat_sizes: Tuple[int, int, int],
    device: DeviceSpec,
    hyb: Optional[HybFormat] = None,
) -> float:
    """Speedup of PyTorch+SparseTIR over DGL on one training iteration."""
    baseline = estimate_training_time(graph, feat_sizes, device, backend="dgl")
    ours = estimate_training_time(graph, feat_sizes, device, backend="sparsetir", hyb=hyb)
    return baseline.total_us / ours.total_us
