"""A MinkowskiNet-style sparse-convolution backbone (Section 4.4.2).

The paper extracts every sparse-convolution operator of MinkowskiNet on
SemanticKITTI.  This module stacks submanifold 3x3x3 sparse-convolution
layers over a synthetic voxelised scan, provides a NumPy forward pass, and
estimates per-layer execution time for SparseTIR's fused Tensor-Core kernel
versus TorchSparse's gather-GEMM-scatter execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines import torchsparse
from ..formats.csr import CSRMatrix
from ..ops.sparse_conv import (
    SparseConvProblem,
    sparse_conv_fused_tc_workload,
    sparse_conv_reference,
)
from ..perf.device import DeviceSpec
from ..perf.gpu_model import GPUModel
from ..workloads.pointcloud import PointCloudConfig, sparse_conv_problem
from .shared import CompiledForward, relu


def _gather_matrix(pairs: np.ndarray, num_in_points: int) -> CSRMatrix:
    """One-hot ``(num_pairs, num_in_points)`` CSR selecting each pair's input."""
    num_pairs = len(pairs)
    return CSRMatrix(
        (num_pairs, num_in_points),
        np.arange(num_pairs + 1, dtype=np.int64),
        np.asarray(pairs[:, 0], dtype=np.int64),
        np.ones(num_pairs, dtype=np.float32),
    )


def _scatter_matrix(pairs: np.ndarray, num_out_points: int) -> CSRMatrix:
    """One-hot ``(num_out_points, num_pairs)`` CSR scatter-adding pair outputs."""
    num_pairs = len(pairs)
    out_index = np.asarray(pairs[:, 1], dtype=np.int64)
    order = np.argsort(out_index, kind="stable")
    counts = np.bincount(out_index, minlength=num_out_points)
    indptr = np.zeros(num_out_points + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRMatrix(
        (num_out_points, num_pairs),
        indptr,
        order.astype(np.int64),
        np.ones(num_pairs, dtype=np.float32),
    )


@dataclass
class SparseConvLayer:
    """One submanifold sparse-convolution layer with its weights."""

    problem: SparseConvProblem
    weights: np.ndarray  # (kernel_volume, in_channels, out_channels)

    @classmethod
    def create(cls, problem: SparseConvProblem, seed: int = 0) -> "SparseConvLayer":
        rng = np.random.default_rng(seed)
        scale = np.sqrt(2.0 / (problem.in_channels * problem.kernel_volume))
        weights = (
            rng.standard_normal(
                (problem.kernel_volume, problem.in_channels, problem.out_channels)
            )
            * scale
        ).astype(np.float32)
        return cls(problem, weights)

    def forward(self, features: np.ndarray, activation: bool = True, session=None) -> np.ndarray:
        """One layer forward pass.

        Args:
            features: Input voxel features ``(num_in_points, in_channels)``.
            activation: Apply ReLU to the layer output.
            session: When given, convolve through the session's compiled
                gather-GEMM-scatter kernel instead of the NumPy reference.

        Returns:
            Output voxel features ``(num_out_points, out_channels)``.
        """
        if session is not None:
            out = session.sparse_conv(self.problem, features, self.weights)
        else:
            out = sparse_conv_reference(self.problem, features, self.weights)
        return relu(out) if activation else out


class MinkowskiBackbone:
    """A stack of sparse-convolution layers over one voxelised scan."""

    def __init__(
        self,
        channel_plan: Sequence[Tuple[int, int]],
        config: Optional[PointCloudConfig] = None,
        seed: int = 0,
    ):
        self.config = config or PointCloudConfig()
        self.layers: List[SparseConvLayer] = []
        for index, (cin, cout) in enumerate(channel_plan):
            problem = sparse_conv_problem(cin, cout, self.config)
            self.layers.append(SparseConvLayer.create(problem, seed=seed + index))

    def forward(self, features: np.ndarray, session=None) -> np.ndarray:
        """Backbone forward pass; ``session`` selects the compiled kernels."""
        out = features
        for index, layer in enumerate(self.layers):
            last = index == len(self.layers) - 1
            out = layer.forward(out, activation=not last, session=session)
        return out

    def compile(self, session, features: np.ndarray, fuse: bool = True) -> CompiledForward:
        """Capture the backbone as one dataflow graph and lower it.

        Every layer is captured as its *per-offset* gather-GEMM-scatter batch:
        each non-empty kernel offset records a gather (SpMM with a one-hot
        selection matrix over the offset's input points), a GEMM with that
        offset's weight slice, and a scatter-add (SpMM with the output-side
        selection matrix), chained by accumulating adds — the launch-per-offset
        execution a TorchSparse-style runtime performs.  With ``fuse=True``
        the whole batch (and adjacent layers, interior ReLUs included) merges
        into a single emitted kernel.  The wrapper reruns on new ``features``
        of the same shape.
        """
        g = session.graph()
        out = g.input("features", np.asarray(features, dtype=np.float32))
        for index, layer in enumerate(self.layers):
            problem, weights = layer.problem, layer.weights
            accumulated = None
            for offset, pairs in enumerate(problem.kernel_maps):
                if len(pairs) == 0:
                    continue
                gathered = g.spmm(_gather_matrix(pairs, problem.num_in_points), out)
                transformed = g.gemm(gathered, weights[offset])
                scattered = g.spmm(
                    _scatter_matrix(pairs, problem.num_out_points), transformed
                )
                accumulated = (
                    scattered
                    if accumulated is None
                    else g.add(accumulated, scattered)
                )
            if accumulated is None:  # no offset has any pair: all-zero output
                accumulated = g.sparse_conv(problem, out, weights)
            out = accumulated
            if index != len(self.layers) - 1:
                out = g.relu(out)
        g.output(out)
        return CompiledForward(g.compile(fuse=fuse), "features", out.name)


def estimate_layer_times(
    problem: SparseConvProblem, device: DeviceSpec
) -> Dict[str, float]:
    """Per-layer execution time (us) of SparseTIR(TC) and TorchSparse."""
    model = GPUModel(device)
    ours = model.estimate(sparse_conv_fused_tc_workload(problem, device))
    baseline = model.estimate(torchsparse.sparse_conv_workload(problem, device))
    return {
        "sparsetir_tc_us": ours.duration_us,
        "torchsparse_us": baseline.duration_us,
        "speedup": baseline.duration_us / ours.duration_us,
    }
