"""A MinkowskiNet-style sparse-convolution backbone (Section 4.4.2).

The paper extracts every sparse-convolution operator of MinkowskiNet on
SemanticKITTI.  This module stacks submanifold 3x3x3 sparse-convolution
layers over a synthetic voxelised scan, provides a NumPy forward pass, and
estimates per-layer execution time for SparseTIR's fused Tensor-Core kernel
versus TorchSparse's gather-GEMM-scatter execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines import torchsparse
from ..ops.sparse_conv import (
    SparseConvProblem,
    sparse_conv_fused_tc_workload,
    sparse_conv_reference,
)
from ..perf.device import DeviceSpec
from ..perf.gpu_model import GPUModel
from ..workloads.pointcloud import PointCloudConfig, sparse_conv_problem
from .shared import relu


@dataclass
class SparseConvLayer:
    """One submanifold sparse-convolution layer with its weights."""

    problem: SparseConvProblem
    weights: np.ndarray  # (kernel_volume, in_channels, out_channels)

    @classmethod
    def create(cls, problem: SparseConvProblem, seed: int = 0) -> "SparseConvLayer":
        rng = np.random.default_rng(seed)
        scale = np.sqrt(2.0 / (problem.in_channels * problem.kernel_volume))
        weights = (
            rng.standard_normal(
                (problem.kernel_volume, problem.in_channels, problem.out_channels)
            ).astype(np.float32)
            * scale
        )
        return cls(problem, weights)

    def forward(self, features: np.ndarray, activation: bool = True, session=None) -> np.ndarray:
        """One layer forward pass.

        Args:
            features: Input voxel features ``(num_in_points, in_channels)``.
            activation: Apply ReLU to the layer output.
            session: When given, convolve through the session's compiled
                gather-GEMM-scatter kernel instead of the NumPy reference.

        Returns:
            Output voxel features ``(num_out_points, out_channels)``.
        """
        if session is not None:
            out = session.sparse_conv(self.problem, features, self.weights)
        else:
            out = sparse_conv_reference(self.problem, features, self.weights)
        return relu(out) if activation else out


class MinkowskiBackbone:
    """A stack of sparse-convolution layers over one voxelised scan."""

    def __init__(
        self,
        channel_plan: Sequence[Tuple[int, int]],
        config: Optional[PointCloudConfig] = None,
        seed: int = 0,
    ):
        self.config = config or PointCloudConfig()
        self.layers: List[SparseConvLayer] = []
        for index, (cin, cout) in enumerate(channel_plan):
            problem = sparse_conv_problem(cin, cout, self.config)
            self.layers.append(SparseConvLayer.create(problem, seed=seed + index))

    def forward(self, features: np.ndarray, session=None) -> np.ndarray:
        """Backbone forward pass; ``session`` selects the compiled kernels."""
        out = features
        for index, layer in enumerate(self.layers):
            last = index == len(self.layers) - 1
            out = layer.forward(out, activation=not last, session=session)
        return out


def estimate_layer_times(
    problem: SparseConvProblem, device: DeviceSpec
) -> Dict[str, float]:
    """Per-layer execution time (us) of SparseTIR(TC) and TorchSparse."""
    model = GPUModel(device)
    ours = model.estimate(sparse_conv_fused_tc_workload(problem, device))
    baseline = model.estimate(torchsparse.sparse_conv_workload(problem, device))
    return {
        "sparsetir_tc_us": ours.duration_us,
        "torchsparse_us": baseline.duration_us,
        "speedup": baseline.duration_us / ours.duration_us,
    }
