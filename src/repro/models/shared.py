"""Shared neural-network primitives and helpers for the end-to-end models."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from ..baselines.cublas import gemm_workload
from ..perf.device import DeviceSpec
from ..perf.workload import KernelWorkload

if TYPE_CHECKING:
    from ..graph import CompiledGraph


@dataclass
class CompiledForward:
    """A model forward pass lowered to a :class:`~repro.graph.CompiledGraph`.

    Calling the wrapper runs the compiled graph — fused kernels, cached
    builds — and returns the single model output as an array.  ``features``
    overrides the graph input captured at compile time; omit it to rerun on
    the captured default.
    """

    compiled: "CompiledGraph"
    input_name: str
    output_name: str

    def __call__(self, features: Optional[np.ndarray] = None) -> np.ndarray:
        feeds = {} if features is None else {self.input_name: features}
        return self.compiled.run(feeds)[self.output_name]

    @property
    def num_kernel_launches(self) -> int:
        return self.compiled.num_kernel_launches


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    return (x > 0.0).astype(np.float32)


def softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def softmax_cross_entropy(logits: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient with respect to the logits."""
    probabilities = softmax(logits)
    n = logits.shape[0]
    eps = 1e-12
    loss = float(-np.log(probabilities[np.arange(n), labels] + eps).mean())
    grad = probabilities.copy()
    grad[np.arange(n), labels] -= 1.0
    grad /= n
    return loss, grad.astype(np.float32)


def gemm_workload_for_model(
    m: int, k: int, n: int, device: DeviceSpec, dtype: str = "float32"
) -> KernelWorkload:
    """A dense (m x k) @ (k x n) GEMM as executed by the framework (cuBLAS)."""
    return gemm_workload(
        m, n, k, device, dtype=dtype, use_tensor_cores=dtype == "float16",
        name=f"gemm_{m}x{k}x{n}",
    )
