"""End-to-end models used in the paper's evaluation.

* :mod:`graphsage` — GraphSAGE training (Section 4.2.3, Figure 15).
* :mod:`rgcn` — Relational GCN inference (Section 4.4.1, Figure 20).
* :mod:`minkowski` — a MinkowskiNet-style sparse-convolution backbone
  (Section 4.4.2, Figure 23).

Each model provides a NumPy implementation (forward, and backward where the
experiment trains) plus an execution-time estimator that composes the
operator workload models of :mod:`repro.ops` and :mod:`repro.baselines`.
"""

from . import graphsage, minkowski, rgcn

__all__ = ["graphsage", "rgcn", "minkowski"]
