"""Lazy capture front-end: records operator calls as graph nodes.

``session.graph()`` returns a :class:`GraphBuilder`.  Its operator methods
take the same arguments as the eager ``Session`` ones — and resolve them
through the same ``prepare_*`` functions, so dtype inference, tuned-override
lookup and format decomposition happen at capture time — but instead of
executing they append a :class:`~repro.graph.ir.GraphNode` and return a
:class:`~repro.graph.ir.TensorRef` for chaining::

    g = session.graph()
    x = g.input("x", features)                  # feedable graph input
    h = g.relu(g.add(g.spmm(csr, x), g.gemm(x, w)))
    compiled = g.compile()                      # fused CompiledGraph
    out = compiled.run()[h.name]

Dense operands may be passed either as arrays (captured as constants, baked
into the node's program) or as ``TensorRef`` edges (graph inputs or upstream
outputs).  Structural arguments — sparse matrices, weights of ``rgms`` /
``sparse_conv``, shapes — are always constants.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from ..ops import registry
from .ir import DataflowGraph, GraphNode, TensorRef

ArrayOrRef = Union[np.ndarray, TensorRef]


class GraphBuilder:
    """Records operator applications into a :class:`DataflowGraph`."""

    def __init__(self, session: Any):
        self.session = session
        self._nodes: List[GraphNode] = []
        self._inputs: Dict[str, TensorRef] = {}
        self._defaults: Dict[str, np.ndarray] = {}
        self._outputs: List[TensorRef] = []
        self._finished = False

    # -- inputs and outputs ------------------------------------------------------
    def input(
        self,
        name: str,
        value: Optional[np.ndarray] = None,
        shape: Optional[Sequence[int]] = None,
        dtype: Any = None,
    ) -> TensorRef:
        """Declare a feedable graph input.

        Pass a concrete ``value`` (its array becomes the default feed and
        fixes shape/dtype), or an explicit ``shape`` (+ optional ``dtype``,
        default float32) for a pure placeholder.
        """
        if self._finished:
            raise RuntimeError("graph already finished")
        if name in self._inputs:
            raise ValueError(f"duplicate graph input {name!r}")
        if value is not None:
            value = np.asarray(value)
            ref = TensorRef(name, value.shape, str(value.dtype))
            self._defaults[name] = value
        elif shape is not None:
            ref = TensorRef(name, tuple(shape), np.dtype(dtype or "float32").name)
        else:
            raise ValueError("input() needs a value or a shape")
        self._inputs[name] = ref
        return ref

    def output(self, *refs: TensorRef) -> None:
        """Mark graph outputs (defaults to every unconsumed node output)."""
        for ref in refs:
            if any(existing.name == ref.name for existing in self._outputs):
                continue
            self._outputs.append(ref)

    # -- recording ---------------------------------------------------------------
    def _record(self, kind: str, *args: Any, **kwargs: Any) -> TensorRef:
        if self._finished:
            raise RuntimeError("graph already finished")
        spec = registry.prepare(self.session, kind, *args, **kwargs)
        node = GraphNode(len(self._nodes), spec)
        self._nodes.append(node)
        return node.output

    # -- operator methods (mirror Session) ---------------------------------------
    def spmm(self, csr: Any, features: ArrayOrRef, **kwargs: Any) -> TensorRef:
        """Record ``A @ X`` (see :meth:`repro.runtime.session.Session.spmm`)."""
        return self._record("spmm", csr, features, **kwargs)

    def sddmm(self, csr: Any, x: ArrayOrRef, y: ArrayOrRef, **kwargs: Any) -> TensorRef:
        """Record an SDDMM (see :meth:`Session.sddmm`)."""
        return self._record("sddmm", csr, x, y, **kwargs)

    def pruned_spmm(self, bsr: Any, x: ArrayOrRef, **kwargs: Any) -> TensorRef:
        """Record a block-pruned SpMM (see :meth:`Session.pruned_spmm`)."""
        return self._record("pruned_spmm", bsr, x, **kwargs)

    def batched_spmm(self, csr: Any, features: ArrayOrRef, **kwargs: Any) -> TensorRef:
        """Record a multi-head SpMM (see :meth:`Session.batched_spmm`)."""
        return self._record("batched_spmm", csr, features, **kwargs)

    def batched_sddmm(self, csr: Any, q: ArrayOrRef, k: ArrayOrRef, **kwargs: Any) -> TensorRef:
        """Record a multi-head SDDMM (see :meth:`Session.batched_sddmm`)."""
        return self._record("batched_sddmm", csr, q, k, **kwargs)

    def rgms(self, adjacency: Any, x: ArrayOrRef, w: np.ndarray, **kwargs: Any) -> TensorRef:
        """Record a relational gather-matmul-scatter (see :meth:`Session.rgms`)."""
        return self._record("rgms", adjacency, x, w, **kwargs)

    def sparse_conv(self, problem: Any, features: ArrayOrRef, weights: np.ndarray,
                    **kwargs: Any) -> TensorRef:
        """Record a sparse convolution (see :meth:`Session.sparse_conv`)."""
        return self._record("sparse_conv", problem, features, weights, **kwargs)

    def edge_softmax(self, csr: Any, scores: ArrayOrRef, **kwargs: Any) -> TensorRef:
        """Record a row-wise edge softmax (see :meth:`Session.edge_softmax`)."""
        return self._record("edge_softmax", csr, scores, **kwargs)

    def batched_spmm_edges(self, csr: Any, edge_values: ArrayOrRef,
                           features: ArrayOrRef, **kwargs: Any) -> TensorRef:
        """Record an SpMM with per-head edge values (attention consumer)."""
        return self._record("batched_spmm_edges", csr, edge_values, features, **kwargs)

    def gemm(self, a: ArrayOrRef, b: ArrayOrRef, **kwargs: Any) -> TensorRef:
        """Record a dense matmul."""
        return self._record("gemm", a, b, **kwargs)

    def add(self, a: ArrayOrRef, b: ArrayOrRef, **kwargs: Any) -> TensorRef:
        """Record an element-wise add."""
        return self._record("add", a, b, **kwargs)

    def relu(self, a: ArrayOrRef, **kwargs: Any) -> TensorRef:
        """Record an element-wise ReLU."""
        return self._record("relu", a, **kwargs)

    # -- finishing ---------------------------------------------------------------
    def graph(self) -> DataflowGraph:
        """Close the capture and return the :class:`DataflowGraph`."""
        self._finished = True
        outputs = list(self._outputs)
        if not outputs:
            consumed = {
                ref.name
                for node in self._nodes
                for ref in node.input_refs().values()
            }
            outputs = [
                node.output for node in self._nodes if node.output.name not in consumed
            ]
        return DataflowGraph(self._nodes, self._inputs, outputs, self._defaults)

    def compile(self, fuse: bool = True) -> "CompiledGraph":
        """Close the capture and lower it to an executable graph."""
        from .compile import CompiledGraph

        return CompiledGraph(self.session, self.graph(), fuse=fuse)
