"""The dataflow IR: tensor references, graph nodes, and the graph itself.

A captured graph is intentionally small: nodes are fully-resolved
:class:`~repro.ops.registry.OpSpec` structs (the same structs the eager
``Session`` methods execute), and edges are :class:`TensorRef` objects stored
*inside* each spec's ``inputs`` mapping.  Capture order is a topological
order by construction — an operator can only consume references that already
exist — so scheduling is trivial and the interesting analyses are liveness
(when intermediate values can be dropped) and fingerprinting (a stable
content hash composing the per-node kernel-cache fingerprints, used for
graph-level tuned-config lookup).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..ops.registry import OpSpec


class TensorRef:
    """A symbolic tensor flowing along a graph edge.

    ``is_ref`` is the marker the operator registry uses to distinguish edges
    from eager arrays; ``shape``/``dtype`` let ``prepare_*`` validate and
    resolve dtypes during capture without touching any data.
    """

    is_ref = True

    def __init__(self, name: str, shape: Tuple[int, ...], dtype: str,
                 node: Optional["GraphNode"] = None):
        self.name = name
        self.shape = tuple(int(s) for s in shape)
        self.dtype = str(dtype)
        self.node = node  # producing node; None for graph inputs

    def __repr__(self) -> str:
        kind = "input" if self.node is None else f"node {self.node.id}"
        return f"TensorRef({self.name!r}, shape={self.shape}, dtype={self.dtype!r}, {kind})"


class GraphNode:
    """One operator application: a spec plus its output reference."""

    def __init__(self, node_id: int, spec: OpSpec):
        self.id = node_id
        self.spec = spec
        self.output = TensorRef(f"v{node_id}", spec.out_shape, spec.dtype, node=self)

    def input_refs(self) -> Dict[str, TensorRef]:
        """The node's edge inputs by logical name (constants excluded)."""
        return {
            name: value
            for name, value in self.spec.inputs.items()
            if isinstance(value, TensorRef)
        }

    def __repr__(self) -> str:
        return f"GraphNode({self.id}, {self.spec.kind!r} -> {self.output.name})"


class DataflowGraph:
    """An ordered DAG of operator nodes with named inputs and outputs."""

    def __init__(
        self,
        nodes: List[GraphNode],
        inputs: Dict[str, TensorRef],
        outputs: List[TensorRef],
        defaults: Optional[Dict[str, np.ndarray]] = None,
    ):
        self.nodes = list(nodes)
        self.inputs = dict(inputs)
        self.outputs = list(outputs)
        #: Default feed arrays for inputs captured from concrete tensors.
        self.defaults = dict(defaults or {})
        self._validate()

    def _validate(self) -> None:
        known = set(self.inputs)
        for node in self.nodes:
            for ref in node.input_refs().values():
                if ref.name not in known:
                    raise ValueError(
                        f"node {node.id} ({node.spec.kind}) consumes {ref.name!r} "
                        "before it is defined — capture order must be topological"
                    )
            known.add(node.output.name)
        for ref in self.outputs:
            if ref.name not in known:
                raise ValueError(f"unknown graph output {ref.name!r}")

    def topo_order(self) -> List[GraphNode]:
        """Nodes in execution order (capture order, validated topological)."""
        return list(self.nodes)

    def liveness(self) -> Dict[str, int]:
        """Value name -> index of the last node that consumes it.

        Graph outputs are pinned to ``len(nodes)`` (live past the last node).
        The executor drops an intermediate as soon as its index passes.
        """
        last: Dict[str, int] = {}
        for index, node in enumerate(self.nodes):
            for ref in node.input_refs().values():
                last[ref.name] = index
        for ref in self.outputs:
            last[ref.name] = len(self.nodes)
        return last

    def fingerprint(self) -> str:
        """A stable content hash of the whole graph.

        Composes the *kernel-cache* structural fingerprint of every node's
        standalone program (structure arrays, dtypes, iteration shape — see
        :func:`repro.core.codegen.cache.structural_fingerprint`) with the
        edge topology and output selection, so two captures of the same
        model over the same sparsity structures hash identically while any
        structural change — a different mask, dtype, feature width or wiring
        — changes the hash.  Graph-level tuning records key on this.
        """
        from ..core.codegen.cache import structural_fingerprint
        from ..ops.registry import build_spec_program
        from ..runtime.keys import content_key

        parts: List[Any] = ["dataflow-graph:v1"]
        for node in self.nodes:
            func, _ = build_spec_program(node.spec)
            parts.append(structural_fingerprint(func))
            for name, ref in sorted(node.input_refs().items()):
                parts.append(f"{node.id}.{name}<-{ref.name}")
        parts.extend(f"out:{ref.name}" for ref in self.outputs)
        parts.extend(f"in:{name}" for name in sorted(self.inputs))
        return content_key(*parts)

    def __repr__(self) -> str:
        return (
            f"DataflowGraph({len(self.nodes)} nodes, "
            f"{len(self.inputs)} inputs, {len(self.outputs)} outputs)"
        )
