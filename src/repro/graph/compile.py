"""Lowering a captured graph into executable kernels.

Each :class:`~repro.graph.fusion.FusionGroup` becomes one prebuilt kernel:

* **singleton groups** build the node's *standalone* program (empty
  namespace), byte-identical to what the eager ``Session`` method builds, so
  they share kernel-cache entries — and persistent warm starts — with eager
  execution;
* **multi-node groups** emit every member's stage-I iterations into one
  program (namespaced ``n<id>_`` per node, sparse axes shared per structure
  object), bind in-group producer outputs directly as buffers, and leave
  cross-group/edge inputs as unbound buffers that are fed at run time.  The
  backend's horizontal-fusion pass launches the merged program as a single
  kernel.

If emitting a merged program fails, the emitted tier declines it (no
stage-IV source), or the merge would *demote* native-capable members to the
emitted tier (see :meth:`CompiledGraph._fusion_demotes_tier`), the group
falls back to node-by-node singleton kernels — bit-exact by construction,
since fusion never alters any nest's computation or order.

At run time the executor walks the units in order, feeds each kernel the
values its ``bindmap`` names, finalises outputs that later units (or the
caller) still need, and drops intermediates as soon as liveness allows.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..core.buffers import _np_dtype
from ..core.script import EmitContext, ProgramBuilder
from ..core.stmt import (
    AssertStmt,
    Block,
    BufferStore,
    ForLoop,
    IfThenElse,
    LetStmt,
    SeqStmt,
)
from ..ops import registry
from .fusion import FusionGroup, plan_groups
from .ir import DataflowGraph, GraphNode


def _store_targets(stmt: Any) -> set:
    """Names of every buffer a stage-III statement tree stores to."""
    out: set = set()
    stack = [stmt]
    while stack:
        node = stack.pop()
        if node is None:
            continue
        if isinstance(node, BufferStore):
            out.add(node.buffer.name)
        elif isinstance(node, SeqStmt):
            stack.extend(node.stmts)
        elif isinstance(node, (ForLoop, LetStmt, AssertStmt)):
            stack.append(node.body)
        elif isinstance(node, IfThenElse):
            stack.append(node.then_case)
            stack.append(node.else_case)
        elif isinstance(node, Block):
            stack.append(node.body)
            stack.append(node.init)
    return out


@dataclass
class _FusedState:
    """Persistent flat buffers of one fused unit, allocated once.

    A fused kernel's intermediates are internal to the merged program — no
    later kernel ever observes them — so the unit owns its flat arrays for
    the lifetime of the :class:`CompiledGraph` instead of re-materialising
    them on every call the way the generic per-kernel path must.  Per call
    only three refreshes run: graph inputs are copied in (``copy_in``),
    store-target scratch buffers are re-zeroed (``zero_fill``), and
    store-target constants are restored from their pristine copy
    (``refresh``).  Escaping outputs are copied out before finalisation, so
    arrays returned to the caller never alias the reused storage.  Reusing
    buffers makes a single CompiledGraph non-reentrant; compile one graph
    per thread for concurrent execution.
    """

    runner: Any
    arrays: Dict[str, np.ndarray]
    #: (destination, graph value name, expected flat size) per bound input.
    copy_in: List[Tuple[np.ndarray, str, int]]
    zero_fill: List[np.ndarray]
    #: (destination, pristine copy) per stored-to constant buffer.
    refresh: List[Tuple[np.ndarray, np.ndarray]]
    #: Which dispatch tier ``runner`` came from ("native" or "emitted").
    engine: str = "emitted"


@dataclass
class _ExecUnit:
    """One prebuilt kernel plus its run-time wiring."""

    kernel: Any
    #: buffer name in the program -> value name to feed it from.
    bindmap: Dict[str, str]
    #: (value name, output buffer name, producing spec) per member node.
    produced: List[Tuple[str, str, Any]]
    node_ids: List[int]
    #: index of the unit's last node in the graph order (liveness horizon).
    max_node_index: int = 0
    fused: bool = False


class CompiledGraph:
    """An executable lowering of a :class:`DataflowGraph`."""

    def __init__(self, session: Any, graph: DataflowGraph, fuse: bool = True):
        self.session = session
        self.graph = graph
        self.fuse = fuse
        self._fingerprint: Optional[str] = None
        self.units: List[_ExecUnit] = []
        #: lazily built per-unit buffer reuse state (False marks unavailable).
        self._states: Dict[int, Any] = {}
        #: Fused units reuse their flat buffers across calls, so concurrent
        #: ``run()`` calls (the serving front-end) must serialise here.
        self._run_lock = threading.Lock()
        index_of = {node.id: i for i, node in enumerate(graph.nodes)}
        for group in plan_groups(graph, fuse=fuse):
            unit = None
            if len(group) > 1:
                unit = self._build_fused(group)
            if unit is None:
                for node in group.nodes:
                    self.units.append(self._build_single(node, index_of))
            else:
                self.units.append(unit)
        for unit in self.units:
            if unit.fused:
                session.stats.graph_nodes_fused += len(unit.node_ids)
            else:
                session.stats.graph_nodes_unfused += len(unit.node_ids)

    # -- lowering ----------------------------------------------------------------
    def _build_single(self, node: GraphNode, index_of: Dict[int, int]) -> _ExecUnit:
        func, names = registry.build_spec_program(node.spec)
        bindmap = {
            names[logical]: ref.name for logical, ref in node.input_refs().items()
        }
        kernel = self.session.build(func)
        return _ExecUnit(
            kernel=kernel,
            bindmap=bindmap,
            produced=[(node.output.name, names["out"], node.spec)],
            node_ids=[node.id],
            max_node_index=index_of[node.id],
            fused=False,
        )

    def _build_fused(self, group: FusionGroup) -> Optional[_ExecUnit]:
        """One merged kernel for a multi-node group, or ``None`` to fall back."""
        name = "fused_" + "_".join(node.spec.kind for node in group.nodes)
        try:
            ctx = EmitContext(ProgramBuilder(name))
            buffers: Dict[str, Any] = {}  # value name -> in-program buffer
            bindmap: Dict[str, str] = {}
            produced: List[Tuple[str, str, Any]] = []
            for node in group.nodes:
                ctx.ns = f"n{node.id}_"
                bind: Dict[str, Any] = {}
                external: List[Tuple[str, Any]] = []
                for logical, ref in node.input_refs().items():
                    if ref.name in buffers:
                        bind[logical] = buffers[ref.name]
                    else:
                        external.append((logical, ref))
                result = registry.emit_spec(ctx, node.spec, bind)
                for logical, ref in external:
                    bindmap[result[logical].name] = ref.name
                    # Later members consuming the same external value bind
                    # this buffer instead of declaring a namespaced duplicate
                    # (one flat copy per call instead of one per consumer).
                    buffers[ref.name] = result[logical]
                buffers[node.output.name] = result["out"]
                produced.append((node.output.name, result["out"].name, node.spec))
            func = ctx.builder.finish()
            kernel = self.session.build(func)
        except Exception:
            return None
        if kernel.emitted_source() is None:
            # The merged program fell outside the emitted tier's fragment;
            # running it interpreted would be slower than unfused emitted
            # kernels, so decline the fusion entirely.
            return None
        if self._fusion_demotes_tier(group, kernel):
            return None
        index_of = {node.id: i for i, node in enumerate(self.graph.nodes)}
        return _ExecUnit(
            kernel=kernel,
            bindmap=bindmap,
            produced=produced,
            node_ids=[node.id for node in group.nodes],
            max_node_index=max(index_of[node.id] for node in group.nodes),
            fused=True,
        )

    def _fusion_demotes_tier(self, group: FusionGroup, kernel: Any) -> bool:
        """Would merging drop native-capable members to the emitted tier?

        A merged program inherits the *weakest* member's dispatch tier: one
        node outside the C fragment (e.g. a softmax's ``exp``, kept off the
        native tier for bit-exactness) pins the whole launch to emitted
        NumPy.  When a toolchain is present and at least one member's
        standalone program compiles natively, the saved launch overhead is
        dwarfed by the lost native speedup, so the planner declines the
        merge and lets the members run node-at-a-time on their best tiers.
        """
        from ..core.codegen.emit_c import toolchain_available

        if not toolchain_available() or kernel.native_source() is not None:
            return False
        for node in group.nodes:
            func, _ = registry.build_spec_program(node.spec)
            # Cache hit for the fall-back singleton build of the same node.
            if self.session.build(func).native_source() is not None:
                return True
        return False

    # -- execution ---------------------------------------------------------------
    def _fused_state(self, index: int, unit: _ExecUnit) -> Any:
        """Build (or recall) the buffer-reuse state of a fused unit.

        Returns ``False`` when the unit cannot take the reuse path (no
        compiled stage-IV runner); the caller then uses the generic
        per-kernel path, which re-materialises buffers every call.
        """
        state = self._states.get(index)
        if state is not None:
            return state
        kernel = unit.kernel
        # The fused unit gets the native tier through the same shared build
        # path as standalone kernels; the emitted NumPy runner is the
        # fallback when the merged program (or this machine) lacks it.
        engine = "native"
        runner = kernel._native_runner()
        if runner is None:
            engine = "emitted"
            runner = kernel._emitted_runner()
        if runner is None:
            self._states[index] = False
            return False
        func = kernel.func
        aux = {buf.name for buf in func.aux_buffers}
        stored = _store_targets(func.body)
        backing = {buf.name: buf.data for buf in func.buffers if buf.data is not None}
        arrays: Dict[str, np.ndarray] = {}
        copy_in: List[Tuple[np.ndarray, str, int]] = []
        zero_fill: List[np.ndarray] = []
        refresh: List[Tuple[np.ndarray, np.ndarray]] = []
        for flat in func.flat_buffers:
            name = flat.name
            if name in aux:
                continue  # baked into the emitted plan; run() never reads them
            dtype = _np_dtype(flat.dtype)
            if name in unit.bindmap:
                arr = np.empty(flat.size, dtype=dtype)
                arrays[name] = arr
                copy_in.append((arr, unit.bindmap[name], flat.size))
                continue
            data = kernel.defaults.get(name)
            if data is None:
                data = backing.get(name)
            if data is not None:
                pristine = np.asarray(data, dtype=dtype).reshape(-1).copy()
                if name in stored:
                    arrays[name] = pristine.copy()
                    refresh.append((arrays[name], pristine))
                else:
                    arrays[name] = pristine
            else:
                arr = np.zeros(flat.size, dtype=dtype)
                arrays[name] = arr
                if name in stored:
                    zero_fill.append(arr)
        state = _FusedState(runner, arrays, copy_in, zero_fill, refresh, engine)
        self._states[index] = state
        return state

    def _run_fused(self, state: _FusedState, env: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """One call of a fused unit over its persistent buffers."""
        for arr, value_name, size in state.copy_in:
            if value_name not in env:
                raise ValueError(f"missing feed for graph input {value_name!r}")
            src = np.asarray(env[value_name], dtype=arr.dtype).reshape(-1)
            if src.size != size:
                raise ValueError(
                    f"feed for {value_name!r} has {src.size} elements, expected {size}"
                )
            np.copyto(arr, src)
        for arr in state.zero_fill:
            arr.fill(0)
        for dst, pristine in state.refresh:
            np.copyto(dst, pristine)
        out = state.runner(state.arrays)
        if state.engine == "native":
            self.session.stats.native_runs += 1
        else:
            self.session.stats.emitted_runs += 1
        return out

    def run(self, feeds: Optional[Mapping[str, np.ndarray]] = None) -> Dict[str, np.ndarray]:
        """Execute the graph; returns output arrays keyed by value name.

        ``feeds`` overrides (or provides) graph inputs by name; inputs
        captured from concrete arrays fall back to those defaults.

        Thread-safe: runs are serialised by an internal lock (fused units
        reuse their flat buffers across calls), so a serving front-end can
        share one compiled graph between the batcher thread and degraded
        inline callers.
        """
        with self._run_lock:
            return self._run_locked(feeds)

    def _run_locked(self, feeds: Optional[Mapping[str, np.ndarray]] = None) -> Dict[str, np.ndarray]:
        env: Dict[str, np.ndarray] = dict(self.graph.defaults)
        if feeds:
            for name, value in feeds.items():
                if name not in self.graph.inputs:
                    raise ValueError(f"unknown graph input {name!r}")
                env[name] = np.asarray(value)
        live = self.graph.liveness()
        horizon = len(self.graph.nodes)
        output_names = [ref.name for ref in self.graph.outputs]
        reuse_ok = self.session.engine in ("auto", "emitted")
        for index, unit in enumerate(self.units):
            state = self._fused_state(index, unit) if unit.fused and reuse_ok else False
            if state is not False:
                out = self._run_fused(state, env)
            else:
                bindings: Dict[str, np.ndarray] = {}
                for buffer_name, value_name in unit.bindmap.items():
                    if value_name not in env:
                        raise ValueError(f"missing feed for graph input {value_name!r}")
                    bindings[buffer_name] = env[value_name]
                out = self.session.run_kernel(unit.kernel, bindings)
            for value_name, buffer_name, spec in unit.produced:
                if live.get(value_name, -1) > unit.max_node_index:
                    flat = out[buffer_name]
                    if state is not False:
                        # Escaping arrays must not alias the reused storage.
                        flat = flat.copy()
                    env[value_name] = registry.finalize(spec, flat)
            # Drop intermediates whose last consumer has now run.
            for name in list(env):
                if live.get(name, horizon + 1) <= unit.max_node_index:
                    del env[name]
        return {name: env[name] for name in output_names}

    # -- introspection -----------------------------------------------------------
    @property
    def num_kernel_launches(self) -> int:
        """Total kernel launches per run (1 per horizontally-fused kernel)."""
        return sum(unit.kernel.num_launches for unit in self.units)

    @property
    def num_nodes_fused(self) -> int:
        return sum(len(unit.node_ids) for unit in self.units if unit.fused)

    @property
    def num_nodes_unfused(self) -> int:
        return sum(len(unit.node_ids) for unit in self.units if not unit.fused)

    def fingerprint(self) -> str:
        """The graph's composed structural fingerprint (memoised)."""
        if self._fingerprint is None:
            self._fingerprint = self.graph.fingerprint()
        return self._fingerprint

    def __repr__(self) -> str:
        return (
            f"CompiledGraph({len(self.graph.nodes)} nodes -> {len(self.units)} kernels, "
            f"launches={self.num_kernel_launches})"
        )
