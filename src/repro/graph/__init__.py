"""Graph-level dataflow IR with cross-op fusion.

Model forward passes are sequences of operator calls; this package captures
them as a :class:`~repro.graph.ir.DataflowGraph` of operator specs
(:class:`~repro.ops.registry.OpSpec`) connected by tensor edges, merges
adjacent nodes that share a sparsity structure into single emitted kernels
(:mod:`repro.graph.fusion`), and executes the result through the session's
existing build/cache/run machinery (:class:`~repro.graph.compile.CompiledGraph`).

Entry point: ``session.graph()`` returns a
:class:`~repro.graph.builder.GraphBuilder`; its operator methods mirror the
``Session`` ones but record lazily, and ``builder.compile()`` lowers the
captured graph.  See ``docs/graph.md``.
"""

from .builder import GraphBuilder
from .compile import CompiledGraph
from .fusion import FusionGroup, plan_groups
from .ir import DataflowGraph, GraphNode, TensorRef

__all__ = [
    "GraphBuilder",
    "CompiledGraph",
    "DataflowGraph",
    "GraphNode",
    "TensorRef",
    "FusionGroup",
    "plan_groups",
]
