"""The fusion pass: group adjacent nodes into shared emitted kernels.

Fusion here is *vertical at the graph level, horizontal at the kernel
level*: the stage-I iterations of every node in a group are emitted into one
program (namespaced per node, sparse axes shared per structure object), the
backend's horizontal-fusion pass launches them as a single grid, and
intermediate tensors stay inside the kernel as ordinary buffers — no
per-node ``prepare_arrays`` copies, no Python dispatch between nodes.

Grouping rule — a node joins the currently-open group exactly when:

* the node's spec is ``fusable`` (its finalisation is a pure reshape and it
  knows how to emit into a shared program);
* its value dtype matches the group's (mixed-dtype groups would change
  cast-at-boundary semantics versus unfused execution).

Nodes over *different* sparsity structures merge freely: each structure
contributes its own namespaced axis set to the shared program, and nests
over the same structure object share one set of plan index arrays (the
emitter CSEs them).  This is what lets a per-relation RGCN chain or a
per-offset sparse-conv batch — dozens of small nodes over dozens of CSR
slices — collapse into a single launch.

Groups are contiguous runs of the capture order, so executing groups in
sequence — with nests inside each group in capture order — preserves the
original execution order exactly; that is what keeps fused results bit-exact
with node-by-node execution (the per-nest computations are untouched).
Anything that cannot join (unfusable kinds, a dtype change) simply opens a
new group; singleton groups compile to the identical standalone programs
the eager path builds, sharing their kernel-cache entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .ir import DataflowGraph, GraphNode


@dataclass
class FusionGroup:
    """A contiguous run of nodes emitted into one program."""

    nodes: List[GraphNode] = field(default_factory=list)
    structure_key: Optional[str] = None
    dtype: Optional[str] = None

    def can_accept(self, node: GraphNode) -> bool:
        spec = node.spec
        if not spec.fusable:
            return False
        if self.dtype is not None and spec.dtype != self.dtype:
            return False
        return True

    def add(self, node: GraphNode) -> None:
        self.nodes.append(node)
        if self.dtype is None:
            self.dtype = node.spec.dtype
        if self.structure_key is None:
            self.structure_key = node.spec.structure_key

    def __len__(self) -> int:
        return len(self.nodes)


def plan_groups(graph: DataflowGraph, fuse: bool = True) -> List[FusionGroup]:
    """Partition the graph's nodes into fusion groups.

    With ``fuse=False`` every node is its own group — the bit-exact
    node-by-node fallback the differential tests and the unfused benchmark
    baseline run.
    """
    groups: List[FusionGroup] = []
    current: Optional[FusionGroup] = None
    for node in graph.topo_order():
        if not fuse or not node.spec.fusable:
            # Unfusable nodes form closed singleton groups: nothing may join.
            group = FusionGroup()
            group.add(node)
            groups.append(group)
            current = None
            continue
        if current is not None and current.can_accept(node):
            current.add(node)
            continue
        current = FusionGroup()
        current.add(node)
        groups.append(current)
    return groups
