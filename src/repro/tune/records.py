"""Persistent tuning records: remember the best decomposition per structure.

Tuning is the expensive step of the compile-once/run-many story: the paper
amortises the search because the sparse structure is known ahead of time and
reused across runs.  A :class:`TuningRecord` captures the outcome of one
:func:`~repro.tune.autoscheduler.autotune` call — the winning configuration,
its predicted and measured costs and enough provenance to audit it — keyed by
the *structural fingerprint* of the tuning task, so a fresh process (or a
fresh :class:`~repro.runtime.session.Session`) replays the decision with zero
re-measurement.

The on-disk store follows the same discipline as
:class:`~repro.core.codegen.cache.DiskKernelCache`:

* one JSON file per record under ``<root>/v<RECORD_SCHEMA_VERSION>/``,
  named ``<fingerprint>.json``;
* writes go through a temporary file plus an atomic :func:`os.replace`;
* reads treat any failure (truncated file, schema skew, fingerprint
  mismatch) as a miss, count it in ``stats.errors`` and discard the entry;
* the root directory is ``$REPRO_TUNING_RECORDS`` (values ``0``/``off``/...
  disable the store) or ``~/.cache/repro-tuning`` when asked for explicitly.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

#: Bumped whenever the persisted record layout changes.
RECORD_SCHEMA_VERSION = 1

#: Environment variable naming the on-disk record root.  Unset disables the
#: persistent layer; the values ``0`` / ``off`` / ``false`` disable it too.
RECORDS_ENV_VAR = "REPRO_TUNING_RECORDS"

_DISABLED_ENV_VALUES = {"", "0", "off", "false", "disabled", "none"}


def _jsonable_value(value: Any) -> Any:
    """Coerce one config value for JSON round trips.

    Tuples become lists; numpy scalars/arrays become their Python
    equivalents (a config assembled from ``np.int64`` candidates must
    persist just like one built from plain ints).
    """
    if isinstance(value, (tuple, list)):
        return [_jsonable_value(item) for item in value]
    if hasattr(value, "item") and callable(value.item) and getattr(value, "ndim", None) == 0:
        return value.item()  # numpy scalar
    if hasattr(value, "tolist") and callable(value.tolist):
        return value.tolist()  # numpy array
    return value


def _jsonable_config(config: Dict[str, Any]) -> Dict[str, Any]:
    """Normalise a configuration for JSON round trips."""
    return {key: _jsonable_value(value) for key, value in config.items()}


@dataclass
class TuningRecord:
    """The persisted outcome of one autotuning run.

    ``config`` is the winning configuration; ``predicted_us`` is its cost
    under the GPU model, ``measured_s`` its best wallclock through the
    runtime (``None`` when the run was predict-only).  ``evaluated`` counts
    configurations examined by the search that produced the record.
    """

    fingerprint: str
    workload: str
    config: Dict[str, Any]
    predicted_us: Optional[float] = None
    measured_s: Optional[float] = None
    evaluated: int = 0
    strategy: str = ""
    seed: int = 0
    metadata: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": RECORD_SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "workload": self.workload,
            "config": _jsonable_config(self.config),
            "predicted_us": self.predicted_us,
            "measured_s": self.measured_s,
            "evaluated": self.evaluated,
            "strategy": self.strategy,
            "seed": self.seed,
            "metadata": self.metadata,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "TuningRecord":
        if not isinstance(payload, dict):
            raise TypeError("record payload is not a dict")
        if payload.get("schema") != RECORD_SCHEMA_VERSION:
            raise ValueError(
                f"record schema {payload.get('schema')} != {RECORD_SCHEMA_VERSION}"
            )
        config = payload["config"]
        if not isinstance(config, dict):
            raise TypeError("record config is not a dict")
        return cls(
            fingerprint=payload["fingerprint"],
            workload=payload["workload"],
            config=config,
            predicted_us=payload.get("predicted_us"),
            measured_s=payload.get("measured_s"),
            evaluated=int(payload.get("evaluated", 0)),
            strategy=payload.get("strategy", ""),
            seed=int(payload.get("seed", 0)),
            metadata=payload.get("metadata", {}),
        )


@dataclass
class _StoreStats:
    hits: int = 0
    misses: int = 0
    errors: int = 0
    writes: int = 0


class TuningRecordStore:
    """Fingerprint-keyed persistent store of :class:`TuningRecord` entries."""

    def __init__(self, root: Union[str, Path, None] = None):
        if root is None:
            env = os.environ.get(RECORDS_ENV_VAR)
            if env is None or env.strip().lower() in _DISABLED_ENV_VALUES:
                root = "~/.cache/repro-tuning"
            else:
                root = env
        self.root = Path(root).expanduser()
        self.dir = self.root / f"v{RECORD_SCHEMA_VERSION}"
        self.stats = _StoreStats()

    @classmethod
    def from_env(cls) -> Optional["TuningRecordStore"]:
        """The store named by ``$REPRO_TUNING_RECORDS``, or ``None`` if disabled."""
        value = os.environ.get(RECORDS_ENV_VAR)
        if value is None or value.strip().lower() in _DISABLED_ENV_VALUES:
            return None
        return cls(value)

    def _path(self, fingerprint: str) -> Path:
        return self.dir / f"{fingerprint}.json"

    def __contains__(self, fingerprint: str) -> bool:
        return self._path(fingerprint).exists()

    def __len__(self) -> int:
        if not self.dir.is_dir():
            return 0
        return sum(1 for _ in self.dir.glob("*.json"))

    # -- read ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[TuningRecord]:
        """Load one record, or ``None`` on miss / corruption / schema skew."""
        path = self._path(fingerprint)
        try:
            text = path.read_text()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            record = TuningRecord.from_json(json.loads(text))
            if record.fingerprint != fingerprint:
                raise ValueError("fingerprint mismatch (renamed or corrupted record)")
        except Exception:
            self.stats.errors += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return record

    # -- write -----------------------------------------------------------------
    def put(self, record: TuningRecord) -> None:
        """Persist one record atomically; failures are swallowed (best-effort)."""
        path = self._path(record.fingerprint)
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(path.parent), prefix=path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(record.to_json(), handle, indent=2, sort_keys=True)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, TypeError, ValueError):
            # Best-effort: an unwritable directory or an unserialisable
            # config costs the persisted record, never the tuning result.
            self.stats.errors += 1
            return
        self.stats.writes += 1

    def clear(self) -> None:
        if self.dir.is_dir():
            for path in self.dir.iterdir():
                try:
                    path.unlink()
                except OSError:
                    pass

    def __repr__(self) -> str:
        return f"TuningRecordStore({str(self.root)!r}, records={len(self)})"


def resolve_record_store(records: Any) -> Optional[TuningRecordStore]:
    """Normalise a ``records`` argument.

    ``None`` resolves ``$REPRO_TUNING_RECORDS`` (no variable means no
    persistence); ``False`` disables persistence explicitly; ``True`` uses
    the default location; a path or :class:`TuningRecordStore` selects an
    explicit store.
    """
    if records is None:
        return TuningRecordStore.from_env()
    if records is False:
        return None
    if records is True:
        return TuningRecordStore()
    if isinstance(records, TuningRecordStore):
        return records
    return TuningRecordStore(records)
