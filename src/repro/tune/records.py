"""Persistent tuning records: remember the best decomposition per structure.

Tuning is the expensive step of the compile-once/run-many story: the paper
amortises the search because the sparse structure is known ahead of time and
reused across runs.  A :class:`TuningRecord` captures the outcome of one
:func:`~repro.tune.autoscheduler.autotune` call — the winning configuration,
its predicted and measured costs and enough provenance to audit it — keyed by
the *structural fingerprint* of the tuning task, so a fresh process (or a
fresh :class:`~repro.runtime.session.Session`) replays the decision with zero
re-measurement.

The on-disk store follows the same discipline as
:class:`~repro.core.codegen.cache.DiskKernelCache`:

* one JSON file per record under ``<root>/v<RECORD_SCHEMA_VERSION>/``,
  named ``<fingerprint>.json``;
* writes go through a temporary file plus an atomic :func:`os.replace`;
* reads treat any failure (truncated file, schema skew, fingerprint
  mismatch) as a miss, count it in ``stats.errors`` and discard the entry;
* the root directory is ``$REPRO_TUNING_RECORDS`` (values ``0``/``off``/...
  disable the store) or ``~/.cache/repro-tuning`` when asked for explicitly.

Next to the per-fingerprint *record* the store also keeps a per-fingerprint
*measurement corpus* under ``<root>/corpus-v<CORPUS_SCHEMA_VERSION>/``: every
phase-2 (feature_vector, predicted_us, measured_s) triple the autoscheduler
produces, with the same atomic-write/corruption-tolerant discipline.  The
corpus is the training set of :class:`~repro.perf.learned.RidgeCostModel`
and the neighbour index of :mod:`~repro.tune.transfer`.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

#: Bumped whenever the persisted record layout changes.
RECORD_SCHEMA_VERSION = 1

#: Bumped whenever the persisted corpus layout changes.
CORPUS_SCHEMA_VERSION = 1

#: Per-fingerprint cap on persisted measurement triples (oldest dropped).
CORPUS_MAX_ENTRIES = 512

#: Environment variable naming the on-disk record root.  Unset disables the
#: persistent layer; the values ``0`` / ``off`` / ``false`` disable it too.
RECORDS_ENV_VAR = "REPRO_TUNING_RECORDS"

_DISABLED_ENV_VALUES = {"", "0", "off", "false", "disabled", "none"}


def _jsonable_value(value: Any) -> Any:
    """Coerce one config value for JSON round trips.

    Tuples become lists; numpy scalars/arrays become their Python
    equivalents (a config assembled from ``np.int64`` candidates must
    persist just like one built from plain ints).
    """
    if isinstance(value, (tuple, list)):
        return [_jsonable_value(item) for item in value]
    if hasattr(value, "item") and callable(value.item) and getattr(value, "ndim", None) == 0:
        return value.item()  # numpy scalar
    if hasattr(value, "tolist") and callable(value.tolist):
        return value.tolist()  # numpy array
    return value


def _jsonable_config(config: Dict[str, Any]) -> Dict[str, Any]:
    """Normalise a configuration for JSON round trips."""
    return {key: _jsonable_value(value) for key, value in config.items()}


@dataclass
class TuningRecord:
    """The persisted outcome of one autotuning run.

    ``config`` is the winning configuration; ``predicted_us`` is its cost
    under the GPU model, ``measured_s`` its best wallclock through the
    runtime (``None`` when the run was predict-only).  ``evaluated`` counts
    configurations examined by the search that produced the record.
    """

    fingerprint: str
    workload: str
    config: Dict[str, Any]
    predicted_us: Optional[float] = None
    measured_s: Optional[float] = None
    evaluated: int = 0
    strategy: str = ""
    seed: int = 0
    metadata: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": RECORD_SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "workload": self.workload,
            "config": _jsonable_config(self.config),
            "predicted_us": self.predicted_us,
            "measured_s": self.measured_s,
            "evaluated": self.evaluated,
            "strategy": self.strategy,
            "seed": self.seed,
            "metadata": self.metadata,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "TuningRecord":
        if not isinstance(payload, dict):
            raise TypeError("record payload is not a dict")
        if payload.get("schema") != RECORD_SCHEMA_VERSION:
            raise ValueError(
                f"record schema {payload.get('schema')} != {RECORD_SCHEMA_VERSION}"
            )
        config = payload["config"]
        if not isinstance(config, dict):
            raise TypeError("record config is not a dict")
        return cls(
            fingerprint=payload["fingerprint"],
            workload=payload["workload"],
            config=config,
            predicted_us=payload.get("predicted_us"),
            measured_s=payload.get("measured_s"),
            evaluated=int(payload.get("evaluated", 0)),
            strategy=payload.get("strategy", ""),
            seed=int(payload.get("seed", 0)),
            metadata=payload.get("metadata", {}),
        )


def _validate_corpus_payload(payload: Any, fingerprint: str) -> Dict[str, Any]:
    """Check one corpus payload's shape; raises on anything suspicious."""
    if not isinstance(payload, dict):
        raise TypeError("corpus payload is not a dict")
    if payload.get("schema") != CORPUS_SCHEMA_VERSION:
        raise ValueError(
            f"corpus schema {payload.get('schema')} != {CORPUS_SCHEMA_VERSION}"
        )
    if payload.get("fingerprint") != fingerprint:
        raise ValueError("corpus fingerprint mismatch (renamed or corrupted file)")
    if not isinstance(payload.get("workload"), str):
        raise TypeError("corpus workload is not a string")
    if not isinstance(payload.get("feature_version"), int):
        raise TypeError("corpus feature_version is not an int")
    entries = payload.get("entries")
    if not isinstance(entries, list):
        raise TypeError("corpus entries is not a list")
    for entry in entries:
        if not isinstance(entry, dict):
            raise TypeError("corpus entry is not a dict")
        features = entry.get("features")
        if not isinstance(features, list) or not all(
            isinstance(v, (int, float)) for v in features
        ):
            raise TypeError("corpus entry features is not a numeric list")
        for key in ("predicted_us", "measured_s"):
            if not isinstance(entry.get(key), (int, float)):
                raise TypeError(f"corpus entry {key} is not numeric")
    return payload


@dataclass
class _StoreStats:
    hits: int = 0
    misses: int = 0
    errors: int = 0
    writes: int = 0
    corpus_hits: int = 0
    corpus_misses: int = 0
    corpus_errors: int = 0
    corpus_writes: int = 0


class TuningRecordStore:
    """Fingerprint-keyed persistent store of :class:`TuningRecord` entries."""

    def __init__(self, root: Union[str, Path, None] = None):
        if root is None:
            env = os.environ.get(RECORDS_ENV_VAR)
            if env is None or env.strip().lower() in _DISABLED_ENV_VALUES:
                root = "~/.cache/repro-tuning"
            else:
                root = env
        self.root = Path(root).expanduser()
        self.dir = self.root / f"v{RECORD_SCHEMA_VERSION}"
        self.corpus_dir = self.root / f"corpus-v{CORPUS_SCHEMA_VERSION}"
        self.stats = _StoreStats()

    @classmethod
    def from_env(cls) -> Optional["TuningRecordStore"]:
        """The store named by ``$REPRO_TUNING_RECORDS``, or ``None`` if disabled."""
        value = os.environ.get(RECORDS_ENV_VAR)
        if value is None or value.strip().lower() in _DISABLED_ENV_VALUES:
            return None
        return cls(value)

    def _path(self, fingerprint: str) -> Path:
        return self.dir / f"{fingerprint}.json"

    def __contains__(self, fingerprint: str) -> bool:
        return self._path(fingerprint).exists()

    def __len__(self) -> int:
        if not self.dir.is_dir():
            return 0
        return sum(1 for _ in self.dir.glob("*.json"))

    # -- read ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[TuningRecord]:
        """Load one record, or ``None`` on miss / corruption / schema skew."""
        path = self._path(fingerprint)
        try:
            text = path.read_text()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            record = TuningRecord.from_json(json.loads(text))
            if record.fingerprint != fingerprint:
                raise ValueError("fingerprint mismatch (renamed or corrupted record)")
        except Exception:
            self.stats.errors += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return record

    # -- write -----------------------------------------------------------------
    def _atomic_write_json(self, path: Path, payload: Dict[str, Any]) -> bool:
        """Write ``payload`` to ``path`` via tmp-file + ``os.replace``."""
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(path.parent), prefix=path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(payload, handle, indent=2, sort_keys=True)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, TypeError, ValueError):
            return False
        return True

    def put(self, record: TuningRecord) -> None:
        """Persist one record atomically; failures are swallowed (best-effort)."""
        # Best-effort: an unwritable directory or an unserialisable
        # config costs the persisted record, never the tuning result.
        if self._atomic_write_json(self._path(record.fingerprint), record.to_json()):
            self.stats.writes += 1
        else:
            self.stats.errors += 1

    # -- measurement corpus ------------------------------------------------------
    def _corpus_path(self, fingerprint: str) -> Path:
        return self.corpus_dir / f"{fingerprint}.json"

    def get_corpus(
        self, fingerprint: str, feature_version: Optional[int] = None
    ) -> Optional[Dict[str, Any]]:
        """Load one fingerprint's corpus payload, or ``None``.

        Misses, truncated/corrupt files, schema skew and (when
        ``feature_version`` is given) feature-layout skew all return ``None``;
        damaged or stale files are discarded so they cannot poison training.
        """
        path = self._corpus_path(fingerprint)
        try:
            text = path.read_text()
        except OSError:
            self.stats.corpus_misses += 1
            return None
        try:
            payload = _validate_corpus_payload(json.loads(text), fingerprint)
            if feature_version is not None and payload["feature_version"] != feature_version:
                raise ValueError("corpus feature-version skew")
        except Exception:
            self.stats.corpus_errors += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.corpus_hits += 1
        return payload

    def add_corpus(
        self,
        fingerprint: str,
        workload: str,
        entries: Any,
        task_features: Any = None,
        feature_version: int = 0,
        cap: int = CORPUS_MAX_ENTRIES,
    ) -> None:
        """Append measurement triples to one fingerprint's corpus (best-effort).

        Each entry is ``{"features", "predicted_us", "measured_s", "config"}``.
        The merged list keeps the most recent ``cap`` entries; a payload whose
        workload or feature version no longer matches is reset rather than
        mixed.
        """
        existing = self.get_corpus(fingerprint, feature_version)
        if existing is not None and existing["workload"] != workload:
            existing = None
        merged = list(existing["entries"]) if existing else []
        merged.extend(_jsonable_value(entry) for entry in entries)
        if cap > 0:
            merged = merged[-cap:]
        if task_features is None and existing is not None:
            task_features = existing.get("task_features")
        payload = {
            "schema": CORPUS_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "workload": workload,
            "feature_version": feature_version,
            "task_features": _jsonable_value(task_features),
            "entries": merged,
        }
        if self._atomic_write_json(self._corpus_path(fingerprint), payload):
            self.stats.corpus_writes += 1
        else:
            self.stats.corpus_errors += 1

    def corpus_fingerprints(self) -> list:
        """Fingerprints with a corpus file, sorted for deterministic training."""
        if not self.corpus_dir.is_dir():
            return []
        return sorted(path.stem for path in self.corpus_dir.glob("*.json"))

    def corpus_size(self) -> int:
        return len(self.corpus_fingerprints())

    def clear(self) -> None:
        for directory in (self.dir, self.corpus_dir):
            if directory.is_dir():
                for path in directory.iterdir():
                    try:
                        path.unlink()
                    except OSError:
                        pass

    def __repr__(self) -> str:
        return f"TuningRecordStore({str(self.root)!r}, records={len(self)})"


def resolve_record_store(records: Any) -> Optional[TuningRecordStore]:
    """Normalise a ``records`` argument.

    ``None`` resolves ``$REPRO_TUNING_RECORDS`` (no variable means no
    persistence); ``False`` disables persistence explicitly; ``True`` uses
    the default location; a path or :class:`TuningRecordStore` selects an
    explicit store.
    """
    if records is None:
        return TuningRecordStore.from_env()
    if records is False:
        return None
    if records is True:
        return TuningRecordStore()
    if isinstance(records, TuningRecordStore):
        return records
    return TuningRecordStore(records)
