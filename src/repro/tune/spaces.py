"""Per-workload search spaces over composable format decompositions.

This is the registry the format autoscheduler drives: every paper workload
(SpMM, SDDMM, batched multi-head attention, RGMS, sparse convolution — plus
the pruned-weight SpMM family that exercises the bsr/dbsr/srbcrs corner of
the format zoo) contributes one :class:`WorkloadSpec` describing

* its **search space** — a :class:`~repro.tune.search_space.ParameterSpace`
  enumerating composable decompositions (formats, bucket counts, block
  shapes) joint with schedule parameters (threads per block, vector widths);
* a **predict** function mapping a configuration to the analytic
  :class:`~repro.perf.workload.KernelWorkload` the GPU cost model prices —
  the cheap phase-1 objective that prunes the space;
* a **run** function executing one operator call through a
  :class:`~repro.runtime.session.Session` with the configuration's
  execution-relevant parameters applied — the phase-2 wallclock objective
  measured on the cached emitted-kernel tier;
* a structural **fingerprint** of the problem, keying persistent
  :class:`~repro.tune.records.TuningRecord` entries.

Configurations mix *execution* parameters (``exec_keys`` — they change which
kernel runs: format choice, partition/bucket counts, block sizes, loop
fusion) with *model-only* schedule parameters (they change the predicted GPU
cost but not the NumPy execution).  ``canonical`` maps a configuration to its
behavioural identity — inert parameters pinned to their first candidate — so
search strategies never price or measure the same candidate twice.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from ..formats.bsr import BSRMatrix
from ..formats.csr import CSRMatrix
from ..formats.dbsr import DBSRMatrix
from ..formats.hyb import HybFormat
from ..formats.srbcrs import SRBCRSMatrix
from ..perf.device import DeviceSpec
from ..perf.workload import KernelWorkload
from .search_space import Choice, ParameterSpace


class InfeasibleConfig(Exception):
    """Raised by ``predict`` when a configuration cannot apply to the problem."""


# ---------------------------------------------------------------------------
# Problem descriptions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SpMMProblem:
    """``A @ X`` with a sparse ``A`` and a dense ``(cols, feat_size)`` operand."""

    csr: CSRMatrix
    feat_size: int


@dataclass(frozen=True)
class SDDMMProblem:
    """Sampled dense-dense matmul at the non-zeros of ``csr``."""

    csr: CSRMatrix
    feat_size: int


@dataclass(frozen=True)
class AttentionProblem:
    """Multi-head sparse attention: SDDMM + SpMM per head over one mask."""

    csr: CSRMatrix
    num_heads: int
    feat_size: int


@dataclass(frozen=True)
class PrunedSpMMProblem:
    """``W @ X`` with block/unstructured-pruned weights ``W`` (csr source)."""

    csr: CSRMatrix
    seq_len: int


def _content_digest(*parts: Any) -> str:
    """A stable sha256 over structural arrays and scalar shape parameters."""
    digest = hashlib.sha256()
    for part in parts:
        if isinstance(part, np.ndarray):
            arr = np.ascontiguousarray(part)
            digest.update(str(arr.dtype).encode())
            digest.update(str(arr.shape).encode())
            digest.update(arr.tobytes())
        else:
            digest.update(repr(part).encode())
        digest.update(b"|")
    return digest.hexdigest()


def _csr_parts(csr: CSRMatrix) -> Tuple:
    """Structural identity of a CSR matrix: sparsity pattern, never values.

    Matches the kernel cache's discipline — a matrix whose edge *weights*
    change between epochs keeps its tuning record, because every registered
    decomposition depends only on the sparsity structure.
    """
    return (csr.shape, csr.indptr, csr.indices)


# ---------------------------------------------------------------------------
# The workload registry
# ---------------------------------------------------------------------------

def _identity_canonical(config: Dict[str, Any]) -> Dict[str, Any]:
    return dict(config)


def _always_measurable(config: Dict[str, Any]) -> bool:
    return True


@dataclass(frozen=True)
class WorkloadSpec:
    """One tunable workload family: space, cost model hook, runtime hook."""

    name: str
    space: Callable[[Any], ParameterSpace]
    predict: Callable[[Any, Dict[str, Any], DeviceSpec, Dict], KernelWorkload]
    make_inputs: Callable[[Any, np.random.Generator], Dict[str, np.ndarray]]
    run: Callable[[Any, Any, Dict[str, Any], Dict[str, np.ndarray]], np.ndarray]
    fingerprint_parts: Callable[[Any], Tuple]
    exec_keys: Tuple[str, ...] = ()
    canonical: Callable[[Dict[str, Any]], Dict[str, Any]] = field(
        default=_identity_canonical
    )
    measurable: Callable[[Dict[str, Any]], bool] = field(default=_always_measurable)
    version: int = 1

    def exec_config(self, config: Dict[str, Any]) -> Dict[str, Any]:
        """The execution-relevant projection of one configuration."""
        canonical = self.canonical(config)
        return {key: canonical[key] for key in self.exec_keys if key in canonical}


_REGISTRY: Dict[str, WorkloadSpec] = {}


def register_workload(spec: WorkloadSpec) -> WorkloadSpec:
    if spec.name in _REGISTRY:
        raise ValueError(f"workload {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_workload(name: str) -> WorkloadSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def available_workloads() -> List[str]:
    return sorted(_REGISTRY)


# ---------------------------------------------------------------------------
# SpMM: csr vs hyb(c, k) — the Figure 13 joint format/schedule space
# ---------------------------------------------------------------------------

def _spmm_space(problem: SpMMProblem) -> ParameterSpace:
    return ParameterSpace(
        [
            Choice("format", ("csr", "hyb")),
            Choice("num_col_parts", (1, 2, 4, 8, 16)),
            Choice("num_buckets", (None, 2, 3, 4, 5)),
            Choice("threads_per_block", (64, 128, 256)),
        ]
    )


def _spmm_canonical(config: Dict[str, Any]) -> Dict[str, Any]:
    canonical = dict(config)
    if canonical.get("format") == "csr":
        canonical["num_col_parts"] = 1
        canonical["num_buckets"] = None
    return canonical


def _spmm_hyb(problem: SpMMProblem, config: Dict[str, Any], memo: Dict) -> HybFormat:
    key = ("hyb", config["num_col_parts"], config["num_buckets"])
    if key not in memo:
        memo[key] = HybFormat.from_csr(
            problem.csr,
            num_col_parts=config["num_col_parts"],
            num_buckets=config["num_buckets"],
        )
    return memo[key]


def _spmm_predict(
    problem: SpMMProblem, config: Dict[str, Any], device: DeviceSpec, memo: Dict
) -> KernelWorkload:
    from ..ops.spmm import spmm_csr_workload, spmm_hyb_workload

    if config["format"] == "csr":
        return spmm_csr_workload(
            problem.csr,
            problem.feat_size,
            device,
            threads_per_block=config["threads_per_block"],
        )
    hyb = _spmm_hyb(problem, config, memo)
    return spmm_hyb_workload(
        hyb, problem.feat_size, device, threads_per_block=config["threads_per_block"]
    )


def _spmm_inputs(problem: SpMMProblem, rng: np.random.Generator) -> Dict[str, np.ndarray]:
    return {
        "features": rng.standard_normal(
            (problem.csr.cols, problem.feat_size)
        ).astype(np.float32)
    }


def _spmm_run(session, problem: SpMMProblem, config: Dict[str, Any], inputs) -> np.ndarray:
    return session.spmm(
        problem.csr,
        inputs["features"],
        format=config["format"],
        num_col_parts=config["num_col_parts"],
        num_buckets=config["num_buckets"],
    )


register_workload(
    WorkloadSpec(
        name="spmm",
        space=_spmm_space,
        predict=_spmm_predict,
        make_inputs=_spmm_inputs,
        run=_spmm_run,
        fingerprint_parts=lambda p: ("spmm", p.feat_size, *_csr_parts(p.csr)),
        exec_keys=("format", "num_col_parts", "num_buckets"),
        canonical=_spmm_canonical,
    )
)


# ---------------------------------------------------------------------------
# SDDMM: fused edge loop + schedule parameters (Figure 14)
# ---------------------------------------------------------------------------

def _sddmm_space(problem: SDDMMProblem) -> ParameterSpace:
    return ParameterSpace(
        [
            Choice("fuse_ij", (True, False)),
            Choice("nnz_per_block", (16, 32, 64, 128)),
            Choice("threads_per_block", (128, 256, 512)),
            Choice("vector_width", (1, 2, 4)),
        ]
    )


def _sddmm_predict(
    problem: SDDMMProblem, config: Dict[str, Any], device: DeviceSpec, memo: Dict
) -> KernelWorkload:
    from ..ops.sddmm import sddmm_workload

    # The unfused (i, j) loop loses the balanced edge-slice mapping and with
    # it the two-stage reduction, which is how the model prices fuse_ij.
    return sddmm_workload(
        problem.csr,
        problem.feat_size,
        device,
        nnz_per_block=config["nnz_per_block"],
        threads_per_block=config["threads_per_block"],
        vector_width=config["vector_width"],
        two_stage_reduction=config["fuse_ij"],
    )


def _sddmm_inputs(problem: SDDMMProblem, rng: np.random.Generator) -> Dict[str, np.ndarray]:
    return {
        "x": rng.standard_normal((problem.csr.rows, problem.feat_size)).astype(np.float32),
        "y": rng.standard_normal((problem.feat_size, problem.csr.cols)).astype(np.float32),
    }


def _sddmm_run(session, problem: SDDMMProblem, config: Dict[str, Any], inputs) -> np.ndarray:
    return session.sddmm(problem.csr, inputs["x"], inputs["y"], fuse_ij=config["fuse_ij"])


register_workload(
    WorkloadSpec(
        name="sddmm",
        space=_sddmm_space,
        predict=_sddmm_predict,
        make_inputs=_sddmm_inputs,
        run=_sddmm_run,
        fingerprint_parts=lambda p: ("sddmm", p.feat_size, *_csr_parts(p.csr)),
        exec_keys=("fuse_ij",),
    )
)


# ---------------------------------------------------------------------------
# Batched multi-head attention: csr vs bsr(block_size) (Figure 16)
# ---------------------------------------------------------------------------

def _attention_space(problem: AttentionProblem) -> ParameterSpace:
    return ParameterSpace(
        [
            Choice("format", ("csr", "bsr")),
            Choice("block_size", (8, 16, 32)),
        ]
    )


def _attention_canonical(config: Dict[str, Any]) -> Dict[str, Any]:
    canonical = dict(config)
    if canonical.get("format") == "csr":
        canonical["block_size"] = 8
    return canonical


def _attention_bsr(problem: AttentionProblem, block_size: int, memo: Dict) -> BSRMatrix:
    key = ("bsr", block_size)
    if key not in memo:
        memo[key] = BSRMatrix.from_csr(problem.csr, block_size)
    return memo[key]


def _attention_predict(
    problem: AttentionProblem, config: Dict[str, Any], device: DeviceSpec, memo: Dict
) -> KernelWorkload:
    from ..ops.batched import (
        batched_sddmm_bsr_workload,
        batched_sddmm_csr_workload,
        batched_spmm_bsr_workload,
        batched_spmm_csr_workload,
    )

    if config["format"] == "csr":
        sddmm = batched_sddmm_csr_workload(
            problem.csr, problem.feat_size, problem.num_heads, device
        )
        spmm = batched_spmm_csr_workload(
            problem.csr, problem.feat_size, problem.num_heads, device
        )
    else:
        bsr = _attention_bsr(problem, config["block_size"], memo)
        if bsr.num_blocks == 0:
            raise InfeasibleConfig("empty block decomposition")
        if bsr.nnz_stored != problem.csr.nnz:
            # The per-block SDDMM scores every element of a stored block, so
            # the decomposition is only exact for block-aligned masks (the
            # paper's band/butterfly structures).
            raise InfeasibleConfig(
                f"mask is not block-aligned at block_size={config['block_size']}"
            )
        sddmm = batched_sddmm_bsr_workload(
            bsr, problem.feat_size, problem.num_heads, device
        )
        spmm = batched_spmm_bsr_workload(
            bsr, problem.feat_size, problem.num_heads, device
        )
    return sddmm.merged(spmm, name=f"attention_{config['format']}")


def _attention_inputs(
    problem: AttentionProblem, rng: np.random.Generator
) -> Dict[str, np.ndarray]:
    h, d = problem.num_heads, problem.feat_size
    return {
        "q": rng.standard_normal((h, problem.csr.rows, d)).astype(np.float32),
        "k": rng.standard_normal((h, d, problem.csr.cols)).astype(np.float32),
        "v": rng.standard_normal((h, problem.csr.cols, d)).astype(np.float32),
    }


def _attention_run(
    session, problem: AttentionProblem, config: Dict[str, Any], inputs
) -> np.ndarray:
    scores = session.batched_sddmm(
        problem.csr,
        inputs["q"],
        inputs["k"],
        format=config["format"],
        block_size=config["block_size"],
    )
    out = session.batched_spmm(
        problem.csr,
        inputs["v"],
        format=config["format"],
        block_size=config["block_size"],
    )
    return np.concatenate([scores.reshape(-1), out.reshape(-1)])


register_workload(
    WorkloadSpec(
        name="attention",
        space=_attention_space,
        predict=_attention_predict,
        make_inputs=_attention_inputs,
        run=_attention_run,
        fingerprint_parts=lambda p: (
            "attention", p.num_heads, p.feat_size, *_csr_parts(p.csr),
        ),
        exec_keys=("format", "block_size"),
        canonical=_attention_canonical,
    )
)


# ---------------------------------------------------------------------------
# RGMS: fused-hyb vs naive vs two-stage strategies (Figure 20)
# ---------------------------------------------------------------------------

def _rgms_space(problem) -> ParameterSpace:
    return ParameterSpace(
        [
            Choice("strategy", ("fused_hyb", "naive", "two_stage")),
            Choice("num_buckets", (3, 4, 5)),
            Choice("rows_per_block", (8, 16, 32)),
        ]
    )


def _rgms_canonical(config: Dict[str, Any]) -> Dict[str, Any]:
    canonical = dict(config)
    if canonical.get("strategy") != "fused_hyb":
        canonical["num_buckets"] = 3
        canonical["rows_per_block"] = 8
    return canonical


def _rgms_predict(problem, config: Dict[str, Any], device: DeviceSpec, memo: Dict):
    from ..ops.rgms import (
        rgms_fused_hyb_workload,
        rgms_naive_workload,
        rgms_two_stage_workload,
    )

    if config["strategy"] == "fused_hyb":
        widths = tuple(2 ** i for i in range(config["num_buckets"]))
        return rgms_fused_hyb_workload(
            problem,
            device,
            bucket_widths=widths,
            rows_per_block=config["rows_per_block"],
        )
    if config["strategy"] == "naive":
        return rgms_naive_workload(problem, device)
    return rgms_two_stage_workload(problem, device)


def _rgms_inputs(problem, rng: np.random.Generator) -> Dict[str, np.ndarray]:
    n, r = problem.num_nodes, problem.num_relations
    return {
        "x": rng.standard_normal((n, problem.in_feats)).astype(np.float32),
        "w": rng.standard_normal((r, problem.in_feats, problem.out_feats)).astype(
            np.float32
        ),
    }


def _rgms_run(session, problem, config: Dict[str, Any], inputs) -> np.ndarray:
    return session.rgms(problem.adjacency, inputs["x"], inputs["w"])


def _rgms_fingerprint(problem) -> Tuple:
    parts: List[Any] = ["rgms", problem.in_feats, problem.out_feats, problem.adjacency.shape]
    for matrix in problem.adjacency.slices:
        if matrix is None:
            parts.append("empty")
        else:
            parts.extend(_csr_parts(matrix))
    return tuple(parts)


register_workload(
    WorkloadSpec(
        name="rgms",
        space=_rgms_space,
        predict=_rgms_predict,
        make_inputs=_rgms_inputs,
        run=_rgms_run,
        fingerprint_parts=_rgms_fingerprint,
        exec_keys=(),
        canonical=_rgms_canonical,
    )
)


# ---------------------------------------------------------------------------
# Sparse convolution: fused TC vs gather-GEMM-scatter (Figure 23)
# ---------------------------------------------------------------------------

def _sparse_conv_space(problem) -> ParameterSpace:
    return ParameterSpace(
        [
            Choice("strategy", ("fused_tc", "gather_gemm_scatter")),
            Choice("pairs_per_block", (32, 64, 128)),
        ]
    )


def _sparse_conv_canonical(config: Dict[str, Any]) -> Dict[str, Any]:
    canonical = dict(config)
    if canonical.get("strategy") != "fused_tc":
        canonical["pairs_per_block"] = 32
    return canonical


def _sparse_conv_predict(problem, config: Dict[str, Any], device: DeviceSpec, memo: Dict):
    from ..ops.sparse_conv import (
        sparse_conv_fused_tc_workload,
        sparse_conv_gather_gemm_scatter_workload,
    )

    if config["strategy"] == "fused_tc":
        return sparse_conv_fused_tc_workload(
            problem, device, pairs_per_block=config["pairs_per_block"]
        )
    return sparse_conv_gather_gemm_scatter_workload(problem, device)


def _sparse_conv_inputs(problem, rng: np.random.Generator) -> Dict[str, np.ndarray]:
    return {
        "features": rng.standard_normal(
            (problem.num_in_points, problem.in_channels)
        ).astype(np.float32),
        "weights": rng.standard_normal(
            (problem.kernel_volume, problem.in_channels, problem.out_channels)
        ).astype(np.float32),
    }


def _sparse_conv_run(session, problem, config: Dict[str, Any], inputs) -> np.ndarray:
    return session.sparse_conv(problem, inputs["features"], inputs["weights"])


def _sparse_conv_fingerprint(problem) -> Tuple:
    parts: List[Any] = [
        "sparse_conv",
        problem.num_in_points,
        problem.num_out_points,
        problem.in_channels,
        problem.out_channels,
    ]
    for pairs in problem.kernel_maps:
        parts.append(np.asarray(pairs, dtype=np.int64))
    return tuple(parts)


register_workload(
    WorkloadSpec(
        name="sparse_conv",
        space=_sparse_conv_space,
        predict=_sparse_conv_predict,
        make_inputs=_sparse_conv_inputs,
        run=_sparse_conv_run,
        fingerprint_parts=_sparse_conv_fingerprint,
        exec_keys=(),
        canonical=_sparse_conv_canonical,
    )
)


# ---------------------------------------------------------------------------
# Pruned-weight SpMM: bsr vs dbsr vs srbcrs (Figures 17 and 19)
# ---------------------------------------------------------------------------

def _pruned_space(problem: PrunedSpMMProblem) -> ParameterSpace:
    return ParameterSpace(
        [
            Choice("format", ("bsr", "dbsr", "srbcrs")),
            Choice("block_size", (16, 32)),
            Choice("tile_rows", (4, 8)),
            Choice("group_size", (2, 4)),
        ]
    )


def _pruned_canonical(config: Dict[str, Any]) -> Dict[str, Any]:
    canonical = dict(config)
    if canonical.get("format") == "srbcrs":
        canonical["block_size"] = 16
    else:
        canonical["tile_rows"] = 4
        canonical["group_size"] = 2
    return canonical


def _pruned_predict(
    problem: PrunedSpMMProblem, config: Dict[str, Any], device: DeviceSpec, memo: Dict
) -> KernelWorkload:
    from ..ops.pruned_spmm import (
        pruned_spmm_bsr_workload,
        pruned_spmm_dbsr_workload,
        pruned_spmm_srbcrs_workload,
    )

    fmt = config["format"]
    if fmt == "srbcrs":
        key = ("srbcrs", config["tile_rows"], config["group_size"])
        if key not in memo:
            memo[key] = SRBCRSMatrix(
                problem.csr, config["tile_rows"], config["group_size"]
            )
        return pruned_spmm_srbcrs_workload(memo[key], problem.seq_len, device)
    key = ("bsr", config["block_size"])
    if key not in memo:
        memo[key] = BSRMatrix.from_csr(problem.csr, config["block_size"])
    bsr = memo[key]
    if fmt == "bsr":
        return pruned_spmm_bsr_workload(bsr, problem.seq_len, device)
    return pruned_spmm_dbsr_workload(DBSRMatrix.from_bsr(bsr), problem.seq_len, device)


def _pruned_inputs(
    problem: PrunedSpMMProblem, rng: np.random.Generator
) -> Dict[str, np.ndarray]:
    return {
        "x": rng.standard_normal((problem.csr.cols, problem.seq_len)).astype(np.float32)
    }


def _pruned_run(
    session, problem: PrunedSpMMProblem, config: Dict[str, Any], inputs
) -> np.ndarray:
    bsr = session.decompose_bsr(problem.csr, config["block_size"])
    x = inputs["x"]
    if bsr.shape[1] != x.shape[0]:
        pad = np.zeros((bsr.shape[1] - x.shape[0], x.shape[1]), dtype=np.float32)
        x = np.vstack([x, pad])
    return session.pruned_spmm(bsr, x)[: problem.csr.rows]


register_workload(
    WorkloadSpec(
        name="pruned_spmm",
        space=_pruned_space,
        predict=_pruned_predict,
        make_inputs=_pruned_inputs,
        run=_pruned_run,
        fingerprint_parts=lambda p: ("pruned_spmm", p.seq_len, *_csr_parts(p.csr)),
        exec_keys=("format", "block_size"),
        canonical=_pruned_canonical,
        # Only the plain BSR decomposition has an executable program today;
        # dbsr/srbcrs candidates are ranked by the cost model alone.
        measurable=lambda config: config["format"] == "bsr",
    )
)


def task_fingerprint(spec: WorkloadSpec, problem: Any) -> str:
    """The structural fingerprint keying one workload/problem tuning task.

    The digest covers the workload name and spec version, the search space
    itself (a changed space invalidates old records) and the problem's
    structural arrays — never the dense operand values, which are rebound per
    run exactly as in the kernel cache.
    """
    space = spec.space(problem)
    space_repr = [(c.name, c.values) for c in space.choices]
    return _content_digest(
        "task", spec.name, spec.version, space_repr, *spec.fingerprint_parts(problem)
    )
