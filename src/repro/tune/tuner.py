"""Search drivers and the SpMM format/schedule tuner."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..formats.csr import CSRMatrix
from ..formats.hyb import HybFormat
from ..ops.spmm import spmm_hyb_workload
from ..perf.device import DeviceSpec
from ..perf.gpu_model import GPUModel
from .search_space import ParameterSpace

Objective = Callable[[Dict[str, Any]], float]


@dataclass
class TuningResult:
    """Outcome of one tuning run.

    The first four fields are shared by every search driver; the remainder
    is filled in by the format autoscheduler
    (:func:`~repro.tune.autoscheduler.autotune`): the workload family and
    task fingerprint, the phase-wise best costs (``best_predicted_us`` from
    the GPU cost model, ``best_measured_s`` from wallclock measurement
    through the runtime), whether the result was **replayed** from a
    persisted :class:`~repro.tune.records.TuningRecord` with zero new work,
    and the record itself.
    """

    best_config: Dict[str, Any]
    best_cost: float
    evaluated: int
    history: List[Dict[str, Any]] = field(default_factory=list)
    workload: str = ""
    fingerprint: str = ""
    strategy: str = ""
    best_predicted_us: Optional[float] = None
    best_measured_s: Optional[float] = None
    replayed: bool = False
    record: Any = None
    #: Phase-1 ranking objective the run used ("analytic"/"learned"/"hybrid").
    cost_model: str = "analytic"
    #: Fingerprint of the corpus neighbour whose seeds replaced phase 2
    #: (transfer tuning), or ``None`` for an ordinary run.
    transferred_from: Optional[str] = None
    transfer_distance: Optional[float] = None
    #: Distinct configurations that reached wallclock measurement, and the
    #: total number of timed runs spent on them (0 when replayed).
    measured_configs: int = 0
    timed_runs: int = 0

    def __repr__(self) -> str:
        cost = "None" if self.best_cost is None else f"{self.best_cost:.3g}"
        return (
            f"TuningResult(best_cost={cost}, evaluated={self.evaluated}, "
            f"replayed={self.replayed}, best_config={self.best_config})"
        )


def grid_search(space: ParameterSpace, objective: Objective) -> TuningResult:
    """Exhaustively evaluate the space and return the minimum-cost configuration."""
    best_config: Optional[Dict[str, Any]] = None
    best_cost = float("inf")
    history: List[Dict[str, Any]] = []
    count = 0
    for config in space.configurations():
        cost = objective(config)
        history.append({"config": dict(config), "cost": cost})
        count += 1
        if cost < best_cost:
            best_cost = cost
            best_config = dict(config)
    if best_config is None:
        raise ValueError("empty search space")
    return TuningResult(best_config, best_cost, count, history)


def random_search(
    space: ParameterSpace, objective: Objective, trials: int, seed: int = 0
) -> TuningResult:
    """Evaluate up to ``trials`` *distinct* random configurations.

    Sampling is without replacement (:meth:`ParameterSpace.sample`
    deduplicates draws), so a trial budget at or beyond the space size
    degenerates to an exhaustive grid pass: the objective is never invoked
    twice for the same configuration and ``evaluated`` never exceeds
    ``len(space)``.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    best_config: Optional[Dict[str, Any]] = None
    best_cost = float("inf")
    history: List[Dict[str, Any]] = []
    configs = space.sample(min(trials, len(space)), seed=seed)
    for config in configs:
        cost = objective(config)
        history.append({"config": dict(config), "cost": cost})
        if cost < best_cost:
            best_cost = cost
            best_config = dict(config)
    if best_config is None:
        raise ValueError("no configurations evaluated")
    return TuningResult(best_config, best_cost, len(configs), history)


def tune_spmm(
    csr: CSRMatrix,
    feat_size: int,
    device: DeviceSpec,
    space: Optional[ParameterSpace] = None,
    max_trials: Optional[int] = None,
    seed: int = 0,
    session=None,
    objective: str = "model",
    wallclock_repeats: int = 1,
) -> TuningResult:
    """Search composable-format and schedule parameters for the hyb SpMM.

    The default objective is the performance model's estimated kernel
    duration; ``objective="wallclock"`` instead *executes* each candidate
    through the runtime's three-tier dispatch (emitted kernel, vectorized
    executor, interpreter fallback) and minimises measured seconds — the
    compile-once/run-many loop the stage-IV backend exists for: every
    candidate structure is lowered and emitted once, then timed on its
    cached runner.  Each candidate column-partition / bucket-count pair is
    decomposed at most once — through the
    :class:`~repro.runtime.session.Session`'s content-addressed format cache
    when ``session`` is given (so repeated tuning runs over the same matrix
    share decompositions and any kernels built from them), or a run-local
    memo otherwise.  This is exactly the joint format-and-schedule space of
    the paper.
    """
    from .search_space import ParameterSpace, spmm_search_space

    if objective not in ("model", "wallclock"):
        raise ValueError(f"unknown objective {objective!r}; use 'model' or 'wallclock'")
    if space is None:
        space = spmm_search_space()
        if objective == "wallclock":
            # Schedule-only parameters (thread-block size) do not change the
            # NumPy execution; keeping them would time identical kernels
            # several times and pick among them by noise.
            space = ParameterSpace(
                [c for c in space.choices if c.name in ("num_col_parts", "num_buckets")]
            )
    local: Dict[Any, HybFormat] = {}
    model = GPUModel(device)
    if objective == "wallclock" and session is None:
        from ..runtime.session import Session

        session = Session()

    def decompose(num_col_parts: int, num_buckets: int) -> HybFormat:
        if session is not None:
            return session.decompose_hyb(
                csr, num_col_parts=num_col_parts, num_buckets=num_buckets
            )
        key = (num_col_parts, num_buckets)
        if key not in local:
            local[key] = HybFormat.from_csr(
                csr, num_col_parts=num_col_parts, num_buckets=num_buckets
            )
        return local[key]

    def model_objective(config: Dict[str, Any]) -> float:
        hyb = decompose(config["num_col_parts"], config["num_buckets"])
        workload = spmm_hyb_workload(
            hyb, feat_size, device, threads_per_block=config.get("threads_per_block", 128)
        )
        return model.estimate(workload).duration_us

    features = (
        np.random.default_rng(seed).standard_normal((csr.cols, feat_size)).astype(np.float32)
        if objective == "wallclock"
        else None
    )

    def wallclock_objective(config: Dict[str, Any]) -> float:
        # Warm-up builds (and caches) the kernel; the timed calls measure the
        # run-many path only.
        kwargs = dict(
            format="hyb",
            num_col_parts=config["num_col_parts"],
            num_buckets=config["num_buckets"],
        )
        session.spmm(csr, features, **kwargs)
        best = float("inf")
        for _ in range(max(1, wallclock_repeats)):
            start = time.perf_counter()
            session.spmm(csr, features, **kwargs)
            best = min(best, time.perf_counter() - start)
        return best

    chosen = model_objective if objective == "model" else wallclock_objective
    if max_trials is not None and max_trials < len(space):
        return random_search(space, chosen, trials=max_trials, seed=seed)
    return grid_search(space, chosen)
