"""Parameter spaces for format/schedule tuning."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Sequence

import numpy as np


@dataclass(frozen=True)
class Choice:
    """One tunable parameter: a name and its candidate values."""

    name: str
    values: tuple

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"parameter {self.name!r} needs at least one candidate value")


class ParameterSpace:
    """A Cartesian product of named parameter choices."""

    def __init__(self, choices: Sequence[Choice]):
        names = [c.name for c in choices]
        if len(names) != len(set(names)):
            raise ValueError("duplicate parameter names in the search space")
        self.choices = list(choices)

    def __len__(self) -> int:
        size = 1
        for choice in self.choices:
            size *= len(choice.values)
        return size

    def configurations(self) -> Iterator[Dict[str, Any]]:
        """Iterate over every configuration of the space."""
        names = [c.name for c in self.choices]
        for combo in itertools.product(*(c.values for c in self.choices)):
            yield dict(zip(names, combo))

    def sample(self, count: int, seed: int = 0) -> List[Dict[str, Any]]:
        """Sample ``count`` configurations uniformly (without replacement when possible)."""
        rng = np.random.default_rng(seed)
        total = len(self)
        if count >= total:
            return list(self.configurations())
        picked = set()
        configs: List[Dict[str, Any]] = []
        all_values = [c.values for c in self.choices]
        names = [c.name for c in self.choices]
        while len(configs) < count:
            key = tuple(int(rng.integers(0, len(v))) for v in all_values)
            if key in picked:
                continue
            picked.add(key)
            configs.append({name: values[idx] for name, values, idx in zip(names, all_values, key)})
        return configs


def spmm_search_space() -> ParameterSpace:
    """The SpMM tuning space of Section 4.2.1.

    ``num_col_parts`` follows the paper's candidate set {1, 2, 4, 8, 16};
    the bucket count is either the heuristic (None) or an explicit value;
    schedule parameters cover the thread-block size used for the ELL buckets.
    """
    return ParameterSpace(
        [
            Choice("num_col_parts", (1, 2, 4, 8, 16)),
            Choice("num_buckets", (None, 2, 3, 4, 5)),
            Choice("threads_per_block", (64, 128, 256)),
        ]
    )


def sddmm_search_space() -> ParameterSpace:
    """The SDDMM tuning space: group size, vector width, edges per block."""
    return ParameterSpace(
        [
            Choice("nnz_per_block", (16, 32, 64, 128)),
            Choice("threads_per_block", (128, 256, 512)),
            Choice("vector_width", (1, 2, 4)),
        ]
    )
