"""Parameter spaces for format/schedule tuning."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Sequence, Tuple, Union

import numpy as np


def config_key(config: Dict[str, Any]) -> Tuple:
    """A hashable identity for one configuration (used to deduplicate)."""
    return tuple(sorted(config.items(), key=lambda item: item[0]))


@dataclass(frozen=True)
class Choice:
    """One tunable parameter: a name and its candidate values."""

    name: str
    values: tuple

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"parameter {self.name!r} needs at least one candidate value")


class ParameterSpace:
    """A Cartesian product of named parameter choices."""

    def __init__(self, choices: Sequence[Choice]):
        names = [c.name for c in choices]
        if len(names) != len(set(names)):
            raise ValueError("duplicate parameter names in the search space")
        self.choices = list(choices)

    def __len__(self) -> int:
        size = 1
        for choice in self.choices:
            size *= len(choice.values)
        return size

    def configurations(self) -> Iterator[Dict[str, Any]]:
        """Iterate over every configuration of the space."""
        names = [c.name for c in self.choices]
        for combo in itertools.product(*(c.values for c in self.choices)):
            yield dict(zip(names, combo))

    def sample(
        self, count: Union[int, np.random.Generator], seed: int = 0
    ) -> Union[Dict[str, Any], List[Dict[str, Any]]]:
        """Sample configurations uniformly, never repeating one.

        Two call shapes, so search strategies never re-implement config
        iteration themselves:

        * ``sample(count, seed=...)`` returns a list of ``count`` *distinct*
          configurations; a ``count`` at or beyond the space size returns the
          full enumeration (the guarantee :func:`~repro.tune.tuner.random_search`
          relies on when its trial budget exceeds the space).
        * ``sample(rng)`` with a :class:`numpy.random.Generator` draws a
          single configuration from the given generator and returns it as a
          dict (the shape evolutionary mutation uses).
        """
        if isinstance(count, np.random.Generator):
            return self._draw(count)
        rng = np.random.default_rng(seed)
        total = len(self)
        if count >= total:
            return list(self.configurations())
        picked = set()
        configs: List[Dict[str, Any]] = []
        while len(configs) < count:
            config = self._draw(rng)
            key = config_key(config)
            if key in picked:
                continue
            picked.add(key)
            configs.append(config)
        return configs

    def _draw(self, rng: np.random.Generator) -> Dict[str, Any]:
        return {
            c.name: c.values[int(rng.integers(0, len(c.values)))] for c in self.choices
        }

    def subspace(self, names: Sequence[str]) -> "ParameterSpace":
        """The space restricted to the named parameters (order preserved).

        Raises:
            KeyError: If any name is not a parameter of this space.
        """
        known = {c.name: c for c in self.choices}
        missing = [name for name in names if name not in known]
        if missing:
            raise KeyError(f"unknown parameters {missing}; space has {sorted(known)}")
        return ParameterSpace([c for c in self.choices if c.name in set(names)])

    def contains(self, config: Dict[str, Any]) -> bool:
        """Whether *config* assigns every parameter one of its candidate values."""
        known = {c.name: c.values for c in self.choices}
        if set(config) != set(known):
            return False
        return all(config[name] in values for name, values in known.items())

    def mutate(
        self, config: Dict[str, Any], rng: np.random.Generator
    ) -> Dict[str, Any]:
        """Flip one randomly chosen parameter of *config* to a different value.

        Parameters with a single candidate are left untouched; a space where
        every parameter has one value returns the config unchanged.
        """
        mutable = [c for c in self.choices if len(c.values) > 1]
        if not mutable:
            return dict(config)
        choice = mutable[int(rng.integers(0, len(mutable)))]
        alternatives = [v for v in choice.values if v != config.get(choice.name)]
        mutated = dict(config)
        mutated[choice.name] = alternatives[int(rng.integers(0, len(alternatives)))]
        return mutated

    def crossover(
        self, left: Dict[str, Any], right: Dict[str, Any], rng: np.random.Generator
    ) -> Dict[str, Any]:
        """Uniform crossover: each parameter inherits from one parent at random."""
        return {
            c.name: (left if rng.integers(0, 2) == 0 else right)[c.name]
            for c in self.choices
        }


def spmm_search_space() -> ParameterSpace:
    """The SpMM tuning space of Section 4.2.1.

    ``num_col_parts`` follows the paper's candidate set {1, 2, 4, 8, 16};
    the bucket count is either the heuristic (None) or an explicit value;
    schedule parameters cover the thread-block size used for the ELL buckets.
    """
    return ParameterSpace(
        [
            Choice("num_col_parts", (1, 2, 4, 8, 16)),
            Choice("num_buckets", (None, 2, 3, 4, 5)),
            Choice("threads_per_block", (64, 128, 256)),
        ]
    )


def sddmm_search_space() -> ParameterSpace:
    """The SDDMM tuning space: group size, vector width, edges per block."""
    return ParameterSpace(
        [
            Choice("nnz_per_block", (16, 32, 64, 128)),
            Choice("threads_per_block", (128, 256, 512)),
            Choice("vector_width", (1, 2, 4)),
        ]
    )
