"""Transfer tuning: reuse the measurement corpus across related workloads.

Two capabilities build on the per-fingerprint corpus the
:class:`~repro.tune.records.TuningRecordStore` accumulates:

* :func:`train_from_corpus` fits a
  :class:`~repro.perf.learned.RidgeCostModel` on every persisted
  (feature_vector, predicted_us, measured_s) triple, giving
  :func:`~repro.tune.autoscheduler.autotune` its ``cost_model="learned"`` /
  ``"hybrid"`` phase-1 ranking.
* :func:`plan_transfer` finds the nearest already-tuned neighbour of a *new*
  task in feature space.  Each corpus file stores the task's reference
  feature vector (the analytic features of its first feasible
  configuration), so two structurally similar problems — the same graph at a
  different feature size, a re-partitioned variant — land close together
  while unrelated workloads stay far apart.  A close neighbour seeds phase 1
  with its winning configurations; when the learned model is confident the
  autoscheduler skips phase-2 measurement entirely, which is the warm-tenant
  amortisation story of the paper taken one step further.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..perf.device import DeviceSpec
from ..perf.learned import FEATURE_VERSION, RidgeCostModel, feature_list, workload_features
from .records import TuningRecordStore
from .search_space import config_key
from .spaces import InfeasibleConfig, WorkloadSpec

#: How many of the neighbour's configurations seed phase 1.
DEFAULT_MAX_SEEDS = 4

#: Default relative feature-space distance below which a corpus entry counts
#: as a near neighbour (0 = identical task features).
DEFAULT_MAX_DISTANCE = 0.1


def task_features(
    spec: WorkloadSpec,
    problem: Any,
    device: DeviceSpec,
    memo: Optional[Dict] = None,
) -> Optional[np.ndarray]:
    """The reference feature vector of one tuning task.

    Uses the analytic workload of the first *feasible* configuration in the
    space's deterministic enumeration order, so the same task always maps to
    the same vector regardless of search strategy or seed.
    """
    memo = memo if memo is not None else {}
    for config in spec.space(problem).configurations():
        try:
            workload = spec.predict(problem, config, device, memo)
        except InfeasibleConfig:
            continue
        return workload_features(workload, device)
    return None


def feature_distance(a: Any, b: Any) -> float:
    """Relative Euclidean distance between two feature vectors (0 = equal)."""
    va = np.asarray(a, dtype=np.float64)
    vb = np.asarray(b, dtype=np.float64)
    if va.shape != vb.shape:
        return float("inf")
    scale = max(float(np.linalg.norm(va)), float(np.linalg.norm(vb)), 1.0)
    return float(np.linalg.norm(va - vb)) / scale


def train_from_corpus(
    store: Optional[TuningRecordStore],
    workload: Optional[str] = None,
    l2: float = 1e-3,
    min_samples: int = 8,
    max_residual_std: float = 0.75,
) -> Optional[RidgeCostModel]:
    """Fit a residual cost model on the store's accumulated corpus.

    Returns ``None`` when the store is missing or holds fewer than
    ``min_samples`` usable triples (for the given workload family, when
    named).  Training is deterministic: the fingerprint iteration order is
    sorted and the regression is closed-form, so the same corpus always
    yields byte-identical weights.
    """
    if store is None:
        return None
    features: List[List[float]] = []
    predicted: List[float] = []
    measured: List[float] = []
    for fingerprint in store.corpus_fingerprints():
        payload = store.get_corpus(fingerprint, feature_version=FEATURE_VERSION)
        if payload is None:
            continue
        if workload is not None and payload["workload"] != workload:
            continue
        for entry in payload["entries"]:
            features.append(entry["features"])
            predicted.append(entry["predicted_us"])
            measured.append(entry["measured_s"])
    if len(features) < max(1, min_samples):
        return None
    model = RidgeCostModel(
        l2=l2, min_samples=min_samples, max_residual_std=max_residual_std
    )
    try:
        return model.fit(features, predicted, measured)
    except (ValueError, np.linalg.LinAlgError):
        return None


@dataclass
class TransferPlan:
    """A near neighbour found in the corpus, and what to reuse from it."""

    source_fingerprint: str
    distance: float
    seed_configs: List[Dict[str, Any]] = field(default_factory=list)


def plan_transfer(
    store: Optional[TuningRecordStore],
    spec: WorkloadSpec,
    problem: Any,
    device: DeviceSpec,
    fingerprint: str,
    features: Optional[np.ndarray] = None,
    max_distance: float = DEFAULT_MAX_DISTANCE,
    max_seeds: int = DEFAULT_MAX_SEEDS,
    memo: Optional[Dict] = None,
) -> Optional[TransferPlan]:
    """Find the nearest corpus neighbour of a new task and collect its seeds.

    The task's own fingerprint is excluded (a same-fingerprint hit is the
    record-replay path, not transfer).  Seeds are the neighbour's winning
    record configuration followed by its best-measured corpus
    configurations, filtered to members of *this* task's space and
    deduplicated by canonical form.
    """
    if store is None:
        return None
    if features is None:
        features = task_features(spec, problem, device, memo=memo)
    if features is None:
        return None

    best_fp: Optional[str] = None
    best_distance = float("inf")
    best_payload: Optional[Dict[str, Any]] = None
    for candidate in store.corpus_fingerprints():
        if candidate == fingerprint:
            continue
        payload = store.get_corpus(candidate, feature_version=FEATURE_VERSION)
        if payload is None or payload["workload"] != spec.name:
            continue
        reference = payload.get("task_features")
        if not reference:
            continue
        distance = feature_distance(features, reference)
        if distance < best_distance:
            best_fp, best_distance, best_payload = candidate, distance, payload
    if best_fp is None or best_distance > max_distance:
        return None

    space = spec.space(problem)
    seeds: List[Dict[str, Any]] = []
    seen = set()

    def admit(config: Any) -> None:
        if len(seeds) >= max_seeds or not isinstance(config, dict):
            return
        if not space.contains(config):
            return
        key = config_key(spec.canonical(config))
        if key in seen:
            return
        seen.add(key)
        seeds.append(dict(config))

    record = store.get(best_fp)
    if record is not None:
        admit(record.config)
    assert best_payload is not None
    for entry in sorted(best_payload["entries"], key=lambda e: e["measured_s"]):
        admit(entry.get("config"))
    if not seeds:
        return None
    return TransferPlan(
        source_fingerprint=best_fp,
        distance=best_distance,
        seed_configs=seeds,
    )


__all__ = [
    "TransferPlan",
    "task_features",
    "feature_distance",
    "feature_list",
    "train_from_corpus",
    "plan_transfer",
    "DEFAULT_MAX_DISTANCE",
    "DEFAULT_MAX_SEEDS",
]
