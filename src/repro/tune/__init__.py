"""Performance tuning over composable formats and composable transformations.

Section 2 of the paper describes a tuning system that searches the joint
space of format parameters (e.g. the ``hyb`` column-partition count and
bucket widths) and schedule parameters (threads per block, vector widths,
rows per block, ...).  The tuner here performs the same search with the GPU
performance model as its objective; because the sparse structure is known at
"compile" time, the chosen configuration is reused for every subsequent run,
amortising the search cost exactly as the paper argues.
"""

from .search_space import Choice, ParameterSpace
from .tuner import TuningResult, grid_search, random_search, tune_spmm

__all__ = [
    "Choice",
    "ParameterSpace",
    "TuningResult",
    "grid_search",
    "random_search",
    "tune_spmm",
]
