"""Performance tuning over composable formats and composable transformations.

Section 2 of the paper describes a tuning system that searches the joint
space of format parameters (e.g. the ``hyb`` column-partition count and
bucket widths) and schedule parameters (threads per block, vector widths,
rows per block, ...).  This package implements that search as a
workload-generic **format autoscheduler**:

* :mod:`~repro.tune.search_space` — :class:`ParameterSpace`, the reusable
  config-iteration primitive (enumeration, deduplicated sampling,
  subspacing, mutation/crossover);
* :mod:`~repro.tune.spaces` — the per-workload registry: search spaces over
  composable decompositions for spmm, sddmm, batched attention, rgms,
  sparse_conv and pruned_spmm, each with a cost-model hook and a runtime
  hook;
* :mod:`~repro.tune.autoscheduler` — the two-phase driver
  (:func:`autotune`): predicted-cost pruning with the GPU model, then
  wallclock measurement of the survivors through the cached emitted-kernel
  runtime, under grid / random / evolutionary / successive-halving
  strategies;
* :mod:`~repro.tune.records` — persistent :class:`TuningRecord` storage
  keyed by structural fingerprint, so the search cost is paid once per
  sparsity structure, exactly as the paper argues — plus the per-fingerprint
  *measurement corpus* every phase-2 run feeds;
* :mod:`~repro.tune.transfer` — the learned-cost-model layer over that
  corpus: residual-model training (``cost_model="learned"|"hybrid"``) and
  transfer tuning from the nearest already-tuned neighbour in feature space.

The original SpMM-only :func:`tune_spmm` entry point is kept for the
Figure 12/13 harnesses.
"""

from .autoscheduler import COST_MODELS, DEFAULT_MAX_TRIALS, STRATEGIES, autotune
from .records import (
    RECORDS_ENV_VAR,
    TuningRecord,
    TuningRecordStore,
    resolve_record_store,
)
from .transfer import TransferPlan, plan_transfer, task_features, train_from_corpus
from .search_space import Choice, ParameterSpace, config_key
from .spaces import (
    AttentionProblem,
    InfeasibleConfig,
    PrunedSpMMProblem,
    SDDMMProblem,
    SpMMProblem,
    WorkloadSpec,
    available_workloads,
    get_workload,
    register_workload,
    task_fingerprint,
)
from .tuner import TuningResult, grid_search, random_search, tune_spmm

__all__ = [
    "AttentionProblem",
    "COST_MODELS",
    "Choice",
    "DEFAULT_MAX_TRIALS",
    "InfeasibleConfig",
    "ParameterSpace",
    "PrunedSpMMProblem",
    "RECORDS_ENV_VAR",
    "SDDMMProblem",
    "SpMMProblem",
    "STRATEGIES",
    "TransferPlan",
    "TuningRecord",
    "TuningRecordStore",
    "TuningResult",
    "WorkloadSpec",
    "autotune",
    "available_workloads",
    "config_key",
    "get_workload",
    "grid_search",
    "plan_transfer",
    "random_search",
    "register_workload",
    "resolve_record_store",
    "task_features",
    "task_fingerprint",
    "train_from_corpus",
    "tune_spmm",
]
