"""The workload-generic format autoscheduler: predict, prune, measure, record.

The driver runs the two-phase search the paper's tuning section describes,
generalised over every registered workload family
(:mod:`repro.tune.spaces`):

1. **Predict** — a search strategy (``grid``, ``random``, ``evolutionary`` or
   ``successive_halving``) walks the workload's
   :class:`~repro.tune.search_space.ParameterSpace`, pricing each candidate
   decomposition with the :class:`~repro.perf.gpu_model.GPUModel` cost of its
   analytic kernel workload.  Candidates are deduplicated by their
   *canonical* form (model-inert parameters pinned), and infeasible
   configurations are discarded.
2. **Measure** — the best-predicted candidates with *distinct execution
   behaviour* run through a :class:`~repro.runtime.session.Session`:
   the first (untimed) call compiles and caches the emitted stage-IV kernel,
   subsequent calls time the run-many path only.  ``successive_halving``
   re-measures shrinking survivor sets with doubling repeat counts.

The winning configuration is persisted as a
:class:`~repro.tune.records.TuningRecord` keyed by the structural task
fingerprint, so later sessions — including fresh processes — replay the
decision without re-measuring anything (``TuningResult.replayed``).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..perf.device import DeviceSpec, V100
from ..perf.gpu_model import estimate_us
from ..perf.learned import FEATURE_VERSION, RidgeCostModel, feature_list, workload_features
from .records import TuningRecord, _jsonable_config, resolve_record_store
from .search_space import ParameterSpace, config_key
from .spaces import InfeasibleConfig, WorkloadSpec, get_workload, task_fingerprint
from .transfer import DEFAULT_MAX_DISTANCE, plan_transfer, task_features, train_from_corpus
from .tuner import TuningResult

STRATEGIES = ("grid", "random", "evolutionary", "successive_halving")

#: Phase-1 ranking objectives: the analytic GPU model alone, the
#: corpus-trained residual model alone, or the residual model only once it
#: is confident (enough samples, tight residual) — the safe default upgrade.
COST_MODELS = ("analytic", "learned", "hybrid")

#: Default cap on phase-1 cost-model evaluations for the sampling strategies.
DEFAULT_MAX_TRIALS = 64


# ---------------------------------------------------------------------------
# Phase 1: candidate generation under the cost model
# ---------------------------------------------------------------------------

class _Predictor:
    """Memoised cost-model objective over canonical configurations.

    ``cost`` returns the phase-1 *ranking score*: the analytic estimate, or —
    when a corpus-trained :class:`RidgeCostModel` is attached — the analytic
    estimate times the learned residual correction.  The raw analytic price
    and the feature vector of every priced configuration stay available for
    the tuning record and the measurement corpus.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        problem: Any,
        device: DeviceSpec,
        model: Optional[RidgeCostModel] = None,
        collect_features: bool = False,
    ):
        self.spec = spec
        self.problem = problem
        self.device = device
        self.model = model
        self.collect_features = collect_features or model is not None
        self.memo: Dict = {}
        self.costs: Dict[Tuple, float] = {}
        self.analytic: Dict[Tuple, float] = {}
        self.features: Dict[Tuple, List[float]] = {}
        self.history: List[Dict[str, Any]] = []

    def cost(self, config: Dict[str, Any]) -> float:
        """Ranking score of *config*; ``inf`` when infeasible."""
        key = config_key(self.spec.canonical(config))
        if key in self.costs:
            return self.costs[key]
        features: Optional[List[float]] = None
        try:
            workload = self.spec.predict(self.problem, config, self.device, self.memo)
            analytic = float(estimate_us(workload, self.device))
            if self.collect_features:
                features = feature_list(workload_features(workload, self.device))
                self.features[key] = features
        except InfeasibleConfig:
            analytic = float("inf")
        score = analytic
        if self.model is not None and features is not None and analytic != float("inf"):
            score = float(self.model.predict_us(features, analytic))
        self.costs[key] = score
        self.analytic[key] = analytic
        entry = {
            "phase": "predict",
            "config": dict(config),
            "predicted_us": None if analytic == float("inf") else analytic,
        }
        if self.model is not None:
            entry["score"] = None if score == float("inf") else score
        self.history.append(entry)
        return score

    def analytic_us(self, config: Dict[str, Any]) -> float:
        """The uncorrected analytic estimate of *config*."""
        key = config_key(self.spec.canonical(config))
        if key not in self.analytic:
            self.cost(config)
        return self.analytic[key]

    def features_of(self, config: Dict[str, Any]) -> Optional[List[float]]:
        """The feature vector of *config* (``None`` when infeasible)."""
        key = config_key(self.spec.canonical(config))
        if key in self.features:
            return self.features[key]
        try:
            workload = self.spec.predict(self.problem, config, self.device, self.memo)
        except InfeasibleConfig:
            return None
        features = feature_list(workload_features(workload, self.device))
        self.features[key] = features
        return features

    @property
    def evaluated(self) -> int:
        return len(self.costs)


def _phase1_candidates(
    strategy: str,
    space: ParameterSpace,
    predictor: _Predictor,
    max_trials: Optional[int],
    seed: int,
) -> List[Tuple[float, Dict[str, Any]]]:
    """Run one search strategy; returns (cost, config) sorted best-first.

    Only one entry per *canonical* configuration survives, so phase 2 never
    sees behavioural duplicates.
    """
    budget = max_trials if max_trials is not None else min(len(space), DEFAULT_MAX_TRIALS)
    budget = max(1, budget)
    if strategy == "grid" or budget >= len(space):
        configs = list(space.configurations())
    elif strategy in ("random", "successive_halving"):
        configs = space.sample(budget, seed=seed)
    elif strategy == "evolutionary":
        configs = _evolutionary(space, predictor, budget, seed)
    else:
        raise ValueError(f"unknown strategy {strategy!r}; use one of {STRATEGIES}")

    ranked: List[Tuple[float, Dict[str, Any]]] = []
    seen = set()
    for config in configs:
        cost = predictor.cost(config)
        key = config_key(predictor.spec.canonical(config))
        if key in seen or cost == float("inf"):
            continue
        seen.add(key)
        ranked.append((cost, config))
    ranked.sort(key=lambda item: item[0])
    return ranked


def _evolutionary(
    space: ParameterSpace,
    predictor: _Predictor,
    budget: int,
    seed: int,
    population_size: int = 16,
    mutation_rate: float = 0.5,
) -> List[Dict[str, Any]]:
    """A small deterministic genetic search over predicted cost.

    Seeds a random population, then repeatedly breeds children from the
    fitter half (uniform crossover + single-parameter mutation), keeping
    only configurations whose canonical form has not been priced yet, until
    the evaluation budget is exhausted or the space stops yielding novelty.
    """
    rng = np.random.default_rng(seed)
    population_size = min(population_size, len(space), budget)
    population = space.sample(population_size, seed=seed)
    evaluated: List[Dict[str, Any]] = []
    seen = set()

    def admit(config: Dict[str, Any]) -> bool:
        key = config_key(predictor.spec.canonical(config))
        if key in seen:
            return False
        seen.add(key)
        predictor.cost(config)
        evaluated.append(config)
        return True

    for config in population:
        if len(evaluated) >= budget:
            return evaluated
        admit(config)

    stale_rounds = 0
    while len(evaluated) < budget and stale_rounds < 3:
        ranked = sorted(evaluated, key=predictor.cost)
        parents = ranked[: max(2, len(ranked) // 2)]
        admitted = 0
        for _ in range(population_size):
            if len(evaluated) >= budget:
                break
            left = parents[int(rng.integers(0, len(parents)))]
            right = parents[int(rng.integers(0, len(parents)))]
            child = space.crossover(left, right, rng)
            if rng.random() < mutation_rate:
                child = space.mutate(child, rng)
            if admit(child):
                admitted += 1
        stale_rounds = 0 if admitted else stale_rounds + 1
    return evaluated


# ---------------------------------------------------------------------------
# Phase 2: wallclock measurement through the session runtime
# ---------------------------------------------------------------------------

def _measure_once(run: Callable[[], Any]) -> float:
    start = time.perf_counter()
    run()
    return time.perf_counter() - start


def _phase2_measure(
    spec: WorkloadSpec,
    problem: Any,
    session: Any,
    candidates: List[Tuple[float, Dict[str, Any]]],
    survivors: int,
    repeats: int,
    halving: bool,
    seed: int,
    fingerprint: str,
    predictor: _Predictor,
    forced: Optional[List[Tuple[float, Dict[str, Any]]]] = None,
) -> List[Tuple[float, float, Dict[str, Any]]]:
    """Measure the best-predicted survivors; returns (seconds, us, config).

    Candidates whose execution-relevant projection coincides collapse onto
    the one with the best predicted cost — measuring both would time the
    same cached kernel twice and pick between them by noise.  ``forced``
    candidates (baselines the caller wants in the comparison) are always
    measured, on top of the ``survivors`` budget.
    """
    chosen: List[Tuple[float, Dict[str, Any]]] = []
    seen_exec = set()
    for cost, config in forced or []:
        exec_key = config_key(spec.exec_config(config))
        if spec.measurable(config) and exec_key not in seen_exec:
            seen_exec.add(exec_key)
            chosen.append((cost, config))
    budget = len(chosen) + survivors
    for cost, config in candidates:
        if len(chosen) >= budget:
            break
        if not spec.measurable(config):
            continue
        exec_key = config_key(spec.exec_config(config))
        if exec_key in seen_exec:
            continue
        seen_exec.add(exec_key)
        chosen.append((cost, config))
    if not chosen:
        return []

    # Deterministic dense operands: a function of the task and seed only.
    rng = np.random.default_rng(
        np.frombuffer(bytes.fromhex(fingerprint[:16]), dtype=np.uint64) ^ np.uint64(seed)
    )
    inputs = spec.make_inputs(problem, rng)

    timings: List[Tuple[float, float, Dict[str, Any]]] = []
    for cost, config in chosen:
        # Warm-up compiles and caches the kernel; it is never timed.
        spec.run(session, problem, config, inputs)
        timings.append((float("inf"), cost, config))

    rounds: List[Tuple[int, int]] = []
    if halving:
        remaining = len(timings)
        round_repeats = 1
        while remaining > 1:
            rounds.append((remaining, round_repeats))
            remaining = max(1, remaining // 2)
            round_repeats *= 2
        rounds.append((1, round_repeats))
    else:
        rounds.append((len(timings), max(1, repeats)))

    for keep, round_repeats in rounds:
        timings = timings[:keep]
        for index, (best, cost, config) in enumerate(timings):
            for _ in range(round_repeats):
                best = min(
                    best, _measure_once(lambda: spec.run(session, problem, config, inputs))
                )
            timings[index] = (best, cost, config)
            predictor.history.append(
                {
                    "phase": "measure",
                    "config": dict(config),
                    "predicted_us": predictor.analytic_us(config),
                    "measured_s": best,
                    "repeats": round_repeats,
                }
            )
        timings.sort(key=lambda item: item[0])
    return timings


# ---------------------------------------------------------------------------
# The driver
# ---------------------------------------------------------------------------

def autotune(
    workload: str,
    problem: Any,
    device: DeviceSpec = V100,
    session: Any = None,
    strategy: str = "evolutionary",
    max_trials: Optional[int] = None,
    survivors: int = 8,
    repeats: int = 3,
    seed: int = 0,
    records: Any = None,
    force: bool = False,
    include: Optional[List[Dict[str, Any]]] = None,
    cost_model: str = "analytic",
    transfer: bool = False,
    transfer_max_distance: float = DEFAULT_MAX_DISTANCE,
    corpus_min_samples: int = 8,
) -> TuningResult:
    """Search the workload's decomposition space and persist the winner.

    Args:
        workload: Registered workload family name
            (see :func:`~repro.tune.spaces.available_workloads`).
        problem: The workload's problem description (e.g.
            :class:`~repro.tune.spaces.SpMMProblem`).
        device: Device whose cost model prunes phase 1.
        session: :class:`~repro.runtime.session.Session` to measure through;
            ``None`` creates a private one.
        strategy: ``"grid"``, ``"random"``, ``"evolutionary"`` or
            ``"successive_halving"``.
        max_trials: Phase-1 cost-model evaluation budget (defaults to the
            whole space for ``grid``, else ``min(|space|, 64)``).
        survivors: How many best-predicted candidates reach wallclock
            measurement.  ``0`` makes the run predict-only (deterministic:
            same seed, same history).
        repeats: Timed runs per surviving candidate (best-of).
        seed: Seed for sampling, evolution and measurement inputs.
        records: Persistent record store selector — ``None`` resolves
            ``$REPRO_TUNING_RECORDS``, ``False`` disables persistence,
            ``True``/path/:class:`TuningRecordStore` select a store.
        force: Re-run the search even when a record exists.
        include: Configurations that must be measured regardless of their
            predicted rank (e.g. the untuned default, so the result is
            guaranteed at least as fast as the baseline it replaces).  Each
            must be a member of the workload's space; infeasible baselines
            are skipped.  Requires ``survivors > 0`` (forcing baselines into
            a predict-only run would let the baseline win unmeasured).
        cost_model: Phase-1 ranking objective.  ``"analytic"`` uses the GPU
            model alone; ``"learned"`` multiplies it by the residual
            correction of a :class:`~repro.perf.learned.RidgeCostModel`
            trained on the store's measurement corpus; ``"hybrid"`` applies
            the correction only once the model is *confident* (enough
            corpus samples, tight training residual) and then also halves
            the phase-2 survivor budget — fewer wallclock measurements for
            the same search quality.  Without a record store both learned
            modes silently degrade to the analytic ranking.
        transfer: Seed phase 1 from the winning configurations of the
            nearest corpus neighbour in feature space (a structurally
            similar, already-tuned task).  Combined with a confident
            learned model (and no ``include`` baselines) the neighbour's
            knowledge replaces phase 2 entirely: the run is predict-only
            and ``result.transferred_from`` names the source fingerprint.
        transfer_max_distance: Relative feature-space distance bound for a
            corpus entry to count as a near neighbour.
        corpus_min_samples: Minimum corpus triples before a learned model
            is trained at all (also its confidence floor).

    Returns:
        A :class:`~repro.tune.tuner.TuningResult`; ``result.replayed`` is
        True when a persisted record satisfied the call with zero model
        evaluations and zero measurements.
    """
    spec = get_workload(workload)
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; use one of {STRATEGIES}")
    if cost_model not in COST_MODELS:
        raise ValueError(f"unknown cost_model {cost_model!r}; use one of {COST_MODELS}")
    store = resolve_record_store(records)
    fingerprint = task_fingerprint(spec, problem)
    space = spec.space(problem)

    if store is not None and not force:
        record = store.get(fingerprint)
        if record is not None and space.contains(record.config):
            if session is not None and hasattr(session, "_remember_tuning"):
                session._remember_tuning(record)
            return TuningResult(
                best_config=dict(record.config),
                best_cost=(
                    record.measured_s
                    if record.measured_s is not None
                    else record.predicted_us
                ),
                evaluated=0,
                history=[],
                workload=workload,
                fingerprint=fingerprint,
                strategy=record.strategy,
                best_predicted_us=record.predicted_us,
                best_measured_s=record.measured_s,
                replayed=True,
                record=record,
                cost_model=cost_model,
            )

    if include and survivors <= 0:
        raise ValueError(
            "include= forces baselines into the measured set; it requires survivors > 0"
        )

    model: Optional[RidgeCostModel] = None
    if cost_model in ("learned", "hybrid") and store is not None:
        model = train_from_corpus(
            store, workload=workload, min_samples=corpus_min_samples
        )
    use_model = model is not None and (cost_model == "learned" or model.confident)

    # Feature vectors for unmeasured candidates are only needed when the
    # model ranks with them; the corpus write recomputes the few measured
    # ones on demand (``features_of``).
    predictor = _Predictor(spec, problem, device, model=model if use_model else None)
    ranked = _phase1_candidates(strategy, space, predictor, max_trials, seed)

    reference_features = None
    if store is not None:
        reference_features = task_features(spec, problem, device, memo=predictor.memo)

    plan = None
    if transfer and store is not None:
        plan = plan_transfer(
            store,
            spec,
            problem,
            device,
            fingerprint,
            features=reference_features,
            max_distance=transfer_max_distance,
            memo=predictor.memo,
        )
        if plan is not None:
            # Seed phase 1 with the neighbour's winners: price them and merge
            # them into the ranked list even when sampling missed them.
            seen = {config_key(spec.canonical(config)) for _, config in ranked}
            for config in plan.seed_configs:
                cost = predictor.cost(config)
                key = config_key(spec.canonical(config))
                if cost != float("inf") and key not in seen:
                    seen.add(key)
                    ranked.append((cost, config))
            ranked.sort(key=lambda item: item[0])

    forced: List[Tuple[float, Dict[str, Any]]] = []
    for config in include or []:
        if not space.contains(config):
            raise ValueError(f"include config {config} is not in the search space")
        cost = predictor.cost(config)
        if cost != float("inf"):  # infeasible baselines never reach the runtime
            forced.append((cost, config))
    if not ranked and not forced:
        raise ValueError(f"no feasible configuration for workload {workload!r}")

    # A confident learned model needs fewer wallclock samples: halve the
    # survivor budget, and with a transferred seed set skip phase 2 outright.
    effective_survivors = survivors
    confident = use_model and model is not None and model.confident
    if confident and survivors > 1:
        effective_survivors = max(1, survivors // 2)
    transferred = bool(plan is not None and confident and not include and survivors > 0)
    if transferred:
        effective_survivors = 0

    measured: List[Tuple[float, float, Dict[str, Any]]] = []
    if effective_survivors > 0:
        if session is None:
            from ..runtime.session import Session

            session = Session()
        measured = _phase2_measure(
            spec,
            problem,
            session,
            ranked,
            effective_survivors,
            repeats,
            halving=(strategy == "successive_halving"),
            seed=seed,
            fingerprint=fingerprint,
            predictor=predictor,
            forced=forced,
        )

    if measured:
        best_seconds, _, best_config = measured[0]
        best_cost: float = best_seconds
        best_measured: Optional[float] = best_seconds
    else:
        if not ranked:
            raise ValueError(f"no feasible configuration for workload {workload!r}")
        _, best_config = ranked[0]
        best_cost = predictor.cost(best_config)
        best_measured = None
    best_predicted = predictor.analytic_us(best_config)

    measured_configs, timed_runs = _persist_corpus(
        store, spec, predictor, fingerprint, workload, reference_features
    )

    metadata: Dict[str, Any] = {
        "device": device.name,
        "space_size": len(space),
        "cost_model": cost_model,
        "corpus_samples": model.n_samples if model is not None else 0,
    }
    if plan is not None:
        metadata["transfer_from"] = plan.source_fingerprint
        metadata["transfer_distance"] = plan.distance
        metadata["transferred"] = transferred
    record = TuningRecord(
        fingerprint=fingerprint,
        workload=workload,
        config=dict(best_config),
        predicted_us=best_predicted,
        measured_s=best_measured,
        evaluated=predictor.evaluated,
        strategy=strategy,
        seed=seed,
        metadata=metadata,
    )
    if store is not None:
        store.put(record)
    if session is not None and hasattr(session, "_remember_tuning"):
        session._remember_tuning(record)

    return TuningResult(
        best_config=dict(best_config),
        best_cost=best_cost,
        evaluated=predictor.evaluated,
        history=predictor.history,
        workload=workload,
        fingerprint=fingerprint,
        strategy=strategy,
        best_predicted_us=best_predicted,
        best_measured_s=best_measured,
        replayed=False,
        record=record,
        cost_model=cost_model,
        transferred_from=plan.source_fingerprint if transferred else None,
        transfer_distance=plan.distance if transferred else None,
        measured_configs=measured_configs,
        timed_runs=timed_runs,
    )


def _persist_corpus(
    store: Any,
    spec: WorkloadSpec,
    predictor: _Predictor,
    fingerprint: str,
    workload: str,
    reference_features: Any,
) -> Tuple[int, int]:
    """Persist this run's phase-2 triples; returns (measured configs, timed runs).

    Every measured configuration contributes its best wallclock together
    with its feature vector and analytic price — the training data of the
    learned cost model.  The counts are returned for the
    :class:`TuningResult` regardless of whether a store is attached.
    """
    best_by_config: Dict[str, Dict[str, Any]] = {}
    timed_runs = 0
    for entry in predictor.history:
        if entry.get("phase") != "measure":
            continue
        timed_runs += int(entry.get("repeats", 1))
        config = entry["config"]
        features = predictor.features_of(config)
        if features is None:
            continue
        key = repr(config_key(spec.canonical(config)))
        previous = best_by_config.get(key)
        if previous is None or entry["measured_s"] < previous["measured_s"]:
            best_by_config[key] = {
                "features": features,
                "predicted_us": entry["predicted_us"],
                "measured_s": entry["measured_s"],
                "config": _jsonable_config(config),
            }
    if store is not None and best_by_config:
        store.add_corpus(
            fingerprint,
            workload,
            [best_by_config[key] for key in sorted(best_by_config)],
            task_features=(
                feature_list(reference_features) if reference_features is not None else None
            ),
            feature_version=FEATURE_VERSION,
        )
    return len(best_by_config), timed_runs
