"""Per-tenant serving statistics.

The serving runtime attributes every request to a *tenant* (an opaque
string, default ``"default"``) and keeps one :class:`TenantStats` record per
tenant: request and batch counters, degradation counters, kernel-cache
attribution and a bounded latency reservoir from which p50/p99 are read.
:class:`ServingStats` is the thread-safe registry the server and the
batching helpers write through; :meth:`ServingStats.snapshot` renders
everything into plain dictionaries for logging or benchmark payloads.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

import numpy as np

#: Default size of the per-tenant latency reservoir (ring buffer).
DEFAULT_RESERVOIR = 4096


class LatencyReservoir:
    """A fixed-size ring buffer of latency samples (seconds).

    Percentiles are computed over the retained window, so long-running
    servers report *recent* latency rather than an all-time aggregate, and
    memory stays bounded no matter how many requests flow through.
    """

    __slots__ = ("_buf", "_count")

    def __init__(self, capacity: int = DEFAULT_RESERVOIR):
        if capacity <= 0:
            raise ValueError("reservoir capacity must be positive")
        self._buf = np.empty(capacity, dtype=np.float64)
        self._count = 0

    def add(self, seconds: float) -> None:
        self._buf[self._count % len(self._buf)] = seconds
        self._count += 1

    @property
    def count(self) -> int:
        """Total samples ever recorded (not the retained window size)."""
        return self._count

    def percentile(self, q: float) -> Optional[float]:
        """The *q*-th percentile of the retained window (``None`` if empty)."""
        filled = min(self._count, len(self._buf))
        if filled == 0:
            return None
        return float(np.percentile(self._buf[:filled], q))


class TenantStats:
    """Counters and latency for a single tenant."""

    __slots__ = (
        "requests",
        "batched_requests",
        "batches",
        "occupancy_sum",
        "cache_hits",
        "degraded_eager",
        "degraded_inline",
        "errors",
        "latency",
    )

    def __init__(self, reservoir: int = DEFAULT_RESERVOIR):
        #: Requests completed (successfully or not) for this tenant.
        self.requests = 0
        #: Requests that executed inside a coalesced batch of size > 1.
        self.batched_requests = 0
        #: Coalesced batch launches that contained at least one of this
        #: tenant's requests.
        self.batches = 0
        #: Sum of batch sizes over ``batches`` (mean occupancy = sum/batches).
        self.occupancy_sum = 0
        #: Requests whose group build was served from the kernel cache.
        self.cache_hits = 0
        #: Requests that fell back from a failed batch to eager execution.
        self.degraded_eager = 0
        #: Requests executed inline on the caller thread (queue saturated or
        #: worker unavailable).
        self.degraded_inline = 0
        #: Requests that completed with an exception.
        self.errors = 0
        self.latency = LatencyReservoir(reservoir)

    @property
    def mean_occupancy(self) -> Optional[float]:
        if self.batches == 0:
            return None
        return self.occupancy_sum / self.batches

    @property
    def p50(self) -> Optional[float]:
        return self.latency.percentile(50)

    @property
    def p99(self) -> Optional[float]:
        return self.latency.percentile(99)

    def as_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "batched_requests": self.batched_requests,
            "batches": self.batches,
            "mean_occupancy": self.mean_occupancy,
            "cache_hits": self.cache_hits,
            "degraded_eager": self.degraded_eager,
            "degraded_inline": self.degraded_inline,
            "errors": self.errors,
            "latency_count": self.latency.count,
            "p50_s": self.p50,
            "p99_s": self.p99,
        }


class ServingStats:
    """Thread-safe per-tenant statistics registry.

    Every mutation happens under one lock; the batcher thread, inline
    fallbacks on caller threads and the benchmark harness all write through
    the same instance.
    """

    def __init__(self, reservoir: int = DEFAULT_RESERVOIR):
        self._lock = threading.Lock()
        self._reservoir = reservoir
        self._tenants: Dict[str, TenantStats] = {}

    def _tenant(self, tenant: str) -> TenantStats:
        stats = self._tenants.get(tenant)
        if stats is None:
            stats = self._tenants[tenant] = TenantStats(self._reservoir)
        return stats

    def tenant(self, tenant: str = "default") -> TenantStats:
        """The (live) stats record for *tenant*, created on first use."""
        with self._lock:
            return self._tenant(tenant)

    def record_request(
        self,
        tenant: str,
        latency_s: float,
        *,
        batch_size: int = 1,
        cache_hit: bool = False,
        degraded: Optional[str] = None,
        error: bool = False,
    ) -> None:
        """Record one completed request.

        ``batch_size`` is the size of the coalesced group the request ran
        in (1 for eager/inline execution); ``degraded`` is ``None``,
        ``"eager"`` or ``"inline"``.
        """
        with self._lock:
            stats = self._tenant(tenant)
            stats.requests += 1
            if batch_size > 1:
                stats.batched_requests += 1
            if cache_hit:
                stats.cache_hits += 1
            if degraded == "eager":
                stats.degraded_eager += 1
            elif degraded == "inline":
                stats.degraded_inline += 1
            if error:
                stats.errors += 1
            stats.latency.add(latency_s)

    def record_batch(self, tenants, size: int) -> None:
        """Record one coalesced batch launch touching the given *tenants*.

        Each distinct tenant in the batch counts the launch once, with the
        full batch size as its occupancy sample.
        """
        with self._lock:
            for tenant in set(tenants):
                stats = self._tenant(tenant)
                stats.batches += 1
                stats.occupancy_sum += size

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All tenants' stats as plain dictionaries (JSON-ready)."""
        with self._lock:
            return {name: stats.as_dict() for name, stats in self._tenants.items()}
