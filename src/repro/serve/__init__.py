"""Serving runtime: async request batching + multi-process sharding.

A serving layer in front of :class:`~repro.runtime.session.Session` /
:class:`~repro.graph.compile.CompiledGraph` (see ``docs/serving.md``):

* :class:`Server` — async front-end with a bounded request queue and a
  coalescing batcher thread: concurrent same-structure requests execute as
  one ``batched_spmm`` / ``batched_sddmm`` launch, bit-exact with
  sequential eager execution, with graceful degradation (eager, then
  inline) when a batch fails or the queue saturates.
* :class:`WorkerPool` / :func:`spmm_sharded` — multi-process sharding of
  large workloads over contiguous column ranges (``num_col_parts`` as the
  shard key), with the persistent kernel cache as shared warm state: the
  single-flight guard makes N cold workers perform exactly one lowering
  per structure.
* :class:`ServingStats` — per-tenant request/batch/cache/latency counters.
"""

from .batching import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_LANES,
    ServeRequest,
    coalesce,
    execute_eager,
    make_call_request,
    make_sddmm_request,
    make_spmm_request,
    run_group,
)
from .server import Server, ServerConfig, ServerSaturated
from .stats import LatencyReservoir, ServingStats, TenantStats
from .workers import (
    WorkerDied,
    WorkerPool,
    csr_col_slice,
    split_col_parts,
    spmm_sharded,
)

__all__ = [
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_LANES",
    "LatencyReservoir",
    "ServeRequest",
    "Server",
    "ServerConfig",
    "ServerSaturated",
    "ServingStats",
    "TenantStats",
    "WorkerDied",
    "WorkerPool",
    "coalesce",
    "csr_col_slice",
    "execute_eager",
    "make_call_request",
    "make_sddmm_request",
    "make_spmm_request",
    "run_group",
    "split_col_parts",
    "spmm_sharded",
]
