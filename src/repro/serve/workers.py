"""Multi-process sharding: a worker pool over the persistent kernel cache.

Workloads too large for one process shard across a pool of worker
processes.  The shard key is the same ``num_col_parts`` decomposition the
tuning layer searches over: :func:`split_col_parts` cuts the column space
into contiguous ranges, :func:`csr_col_slice` extracts each range as an
independent CSR matrix, and :func:`spmm_sharded` sums the per-shard partial
products *in part order* (deterministic, but floating-point summation order
differs from the unsharded kernel — results are ``allclose``, not
bit-exact).

Every worker builds its own :class:`~repro.runtime.session.Session` against
a *shared* on-disk kernel cache directory, so the pool's warm state is the
persistent :class:`~repro.core.codegen.cache.DiskKernelCache` +
tuning-record store — and the single-flight guard in the cache guarantees
that ``N`` cold workers lowering the same structure perform exactly one
lowering between them (``tests/test_serving_faults.py``).

Fault handling: :meth:`WorkerPool.run_tasks` detects worker death while
polling for results, resubmits the in-flight tasks once per death wave
(surviving workers pick them up; duplicate completions are deduplicated by
task id), and past the deadline — or with no survivors — degrades to an
inline ``fallback`` on the calling process rather than wedging the queue.
"""

from __future__ import annotations

import itertools
import os
import queue
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Poll interval while waiting on the result queue (also the cadence of
#: worker-death checks).
_POLL_S = 0.1


class WorkerDied(RuntimeError):
    """Raised when tasks cannot complete and no fallback was provided."""


def _csr_payload(csr) -> Tuple[Tuple[int, int], np.ndarray, np.ndarray, np.ndarray]:
    """A picklable description of a CSR matrix for the task queue."""
    return (csr.shape, csr.indptr, csr.indices, csr.data)


def _worker_main(task_queue, result_queue, cache_dir):  # pragma: no cover
    """Worker process entry point.

    Runs in a spawned subprocess (invisible to coverage).  Each worker owns
    a private :class:`Session` whose kernel cache shares the pool's on-disk
    layer; tuning-record persistence is disabled so concurrent workers never
    contend on the record store.

    Task dictionaries understand two test hooks: ``not_before`` (an absolute
    ``time.time()`` barrier — every worker sleeps until the same instant, so
    stampede tests release all workers at once) and ``delay_s`` (a sleep
    before executing, used to hold a task in flight while the test kills the
    worker).
    """
    os.environ.pop("REPRO_TUNING_RECORDS", None)
    from ..formats.csr import CSRMatrix
    from ..runtime.session import Session

    session = Session(persistent=cache_dir if cache_dir else False, tuning_records=False)
    pid = os.getpid()
    while True:
        task = task_queue.get()
        if task is None:
            break
        try:
            not_before = task.get("not_before")
            if not_before is not None:
                while time.time() < not_before:
                    time.sleep(0.002)
            delay = task.get("delay_s")
            if delay:
                time.sleep(delay)
            kind = task["kind"]
            lowerings_before = session.cache.stats.lowerings
            if kind == "ping":
                out: Any = None
            elif kind == "crash":
                os._exit(1)
            elif kind == "spmm":
                shape, indptr, indices, data = task["csr"]
                csr = CSRMatrix(shape, indptr, indices, data)
                out = session.spmm(csr, task["features"], dtype=task.get("dtype"))
            else:
                raise ValueError(f"unknown task kind {kind!r}")
            result_queue.put(
                {
                    "id": task["id"],
                    "ok": True,
                    "out": out,
                    "pid": pid,
                    "lowerings": session.cache.stats.lowerings - lowerings_before,
                }
            )
        except Exception as exc:
            result_queue.put(
                {"id": task["id"], "ok": False, "error": repr(exc), "pid": pid}
            )


class WorkerPool:
    """A pool of session-owning worker processes sharing one disk cache.

    Parameters
    ----------
    num_workers:
        Number of worker processes (spawned cold — no inherited caches).
    cache_dir:
        Shared on-disk kernel cache directory (``None`` disables the
        persistent layer; each worker then compiles privately).
    """

    def __init__(self, num_workers: int, cache_dir=None):
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        import multiprocessing as mp

        self._ctx = mp.get_context("spawn")
        self.cache_dir = str(cache_dir) if cache_dir else None
        self._task_queue = self._ctx.Queue()
        self._result_queue = self._ctx.Queue()
        self._ids = itertools.count()
        self._known_dead = 0
        #: Death waves survived via resubmission (observable by tests).
        self.retries = 0
        self.processes = [
            self._ctx.Process(
                target=_worker_main,
                args=(self._task_queue, self._result_queue, self.cache_dir),
                daemon=True,
            )
            for _ in range(num_workers)
        ]
        for proc in self.processes:
            proc.start()

    # -- lifecycle ------------------------------------------------------------
    def alive(self) -> int:
        """Number of live worker processes."""
        return sum(1 for proc in self.processes if proc.is_alive())

    def close(self) -> None:
        """Shut the pool down (idempotent): sentinel, join, terminate."""
        for _ in self.processes:
            try:
                self._task_queue.put_nowait(None)
            except Exception:  # pragma: no cover - full queue on teardown
                break
        for proc in self.processes:
            proc.join(timeout=5.0)
        for proc in self.processes:
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- task execution ---------------------------------------------------------
    def run_tasks(
        self,
        tasks: Sequence[Dict[str, Any]],
        timeout: float = 120.0,
        fallback: Optional[Callable[[Dict[str, Any]], Any]] = None,
    ) -> List[Dict[str, Any]]:
        """Run *tasks* on the pool, surviving worker death.

        Each task is a dict with at least ``kind``; an ``id`` is assigned if
        missing.  Returns one result dict per task, in task order:
        ``{"id", "ok", "out"| "error", ...}``.  Results carry
        ``degraded=True`` when the task ran through *fallback* on the
        calling process.

        Death handling: when a poll comes back empty and workers have died
        since the last check, every still-pending task is resubmitted once
        for that death wave (a dead worker may have taken tasks down with
        it; duplicates completed by survivors are deduplicated by id).  When
        the deadline passes, or no worker remains alive, pending tasks run
        through *fallback* inline — or :class:`WorkerDied` is raised when no
        fallback was given.
        """
        tasks = [dict(task) for task in tasks]
        for task in tasks:
            task.setdefault("id", next(self._ids))
        pending: Dict[Any, Dict[str, Any]] = {task["id"]: task for task in tasks}
        results: Dict[Any, Dict[str, Any]] = {}
        deadline = time.monotonic() + timeout
        for task in tasks:
            self._task_queue.put(task)
        while pending:
            try:
                result = self._result_queue.get(timeout=_POLL_S)
            except queue.Empty:
                dead = len(self.processes) - self.alive()
                if dead > self._known_dead:
                    self._known_dead = dead
                    self.retries += 1
                    if self.alive():
                        # A dying worker may have dequeued tasks it will
                        # never answer; resubmit everything unresolved.
                        for task in pending.values():
                            self._task_queue.put(task)
                if time.monotonic() >= deadline or self.alive() == 0:
                    self._degrade(pending, results, fallback)
                continue
            if result["id"] in pending:
                del pending[result["id"]]
                results[result["id"]] = result
        return [results[task["id"]] for task in tasks]

    def _degrade(
        self,
        pending: Dict[Any, Dict[str, Any]],
        results: Dict[Any, Dict[str, Any]],
        fallback: Optional[Callable[[Dict[str, Any]], Any]],
    ) -> None:
        if fallback is None:
            raise WorkerDied(
                f"{len(pending)} task(s) unresolved with {self.alive()} live worker(s)"
            )
        for task_id, task in list(pending.items()):
            try:
                out = fallback(task)
                results[task_id] = {"id": task_id, "ok": True, "out": out, "degraded": True}
            except Exception as exc:
                results[task_id] = {
                    "id": task_id,
                    "ok": False,
                    "error": repr(exc),
                    "degraded": True,
                }
            del pending[task_id]


# -- column sharding ------------------------------------------------------------
def split_col_parts(cols: int, num_parts: int) -> List[Tuple[int, int]]:
    """Balanced contiguous column ranges covering ``[0, cols)``.

    The same partitioning scheme as the ``num_col_parts`` knob of the
    composable-format decomposition, reused here as the shard key.
    """
    if num_parts <= 0:
        raise ValueError("num_parts must be positive")
    num_parts = min(num_parts, max(cols, 1))
    bounds = np.linspace(0, cols, num_parts + 1).astype(np.int64)
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(num_parts)]


def csr_col_slice(csr, start: int, end: int):
    """The sub-matrix of the columns ``[start, end)`` as a fresh CSR matrix.

    Column indices are remapped to the slice's local coordinates, so the
    slice is a standalone ``(rows, end - start)`` matrix whose product with
    the matching feature rows is one partial term of the full SpMM.
    """
    from ..formats.csr import CSRMatrix

    mask = (csr.indices >= start) & (csr.indices < end)
    rows = np.repeat(np.arange(csr.shape[0]), np.diff(csr.indptr))
    counts = np.bincount(rows[mask], minlength=csr.shape[0])
    indptr = np.concatenate([[0], np.cumsum(counts)])
    return CSRMatrix(
        (csr.shape[0], end - start),
        indptr,
        csr.indices[mask] - start,
        csr.data[mask],
        dtype=csr.dtype,
    )


def spmm_sharded(
    csr,
    features: np.ndarray,
    num_col_parts: int,
    pool: Optional[WorkerPool] = None,
    session=None,
    dtype: Any = None,
    timeout: float = 120.0,
) -> np.ndarray:
    """``A @ X`` sharded into ``num_col_parts`` column-range partials.

    With a *pool*, each shard runs on a worker process (degrading to inline
    execution on the calling process if workers die); without one, shards
    run sequentially through *session* (a fresh default session when
    omitted).  Partials are summed in part order, so the result is
    deterministic but only ``allclose`` to the unsharded product.
    """
    features = np.asarray(features)
    parts = split_col_parts(csr.shape[1], num_col_parts)
    shards = [
        (csr_col_slice(csr, start, end), np.ascontiguousarray(features[start:end]))
        for start, end in parts
    ]
    if pool is None:
        if session is None:
            from ..runtime.session import Session

            session = Session()
        partials = [
            session.spmm(shard, feats, dtype=dtype) for shard, feats in shards
        ]
    else:
        tasks = [
            {
                "kind": "spmm",
                "csr": _csr_payload(shard),
                "features": feats,
                "dtype": dtype,
            }
            for shard, feats in shards
        ]

        def _inline(task: Dict[str, Any]) -> np.ndarray:
            from ..formats.csr import CSRMatrix
            from ..runtime.session import Session

            shape, indptr, indices, data = task["csr"]
            local = Session(persistent=pool.cache_dir or False, tuning_records=False)
            return local.spmm(
                CSRMatrix(shape, indptr, indices, data),
                task["features"],
                dtype=task.get("dtype"),
            )

        outcomes = pool.run_tasks(tasks, timeout=timeout, fallback=_inline)
        failed = [res for res in outcomes if not res["ok"]]
        if failed:
            raise RuntimeError(f"sharded spmm failed: {failed[0].get('error')}")
        partials = [res["out"] for res in outcomes]
    total = partials[0]
    for partial in partials[1:]:
        total = total + partial
    return total
