"""The async serving front-end: bounded queue + coalescing batcher thread.

:class:`Server` accepts concurrent operator requests from any number of
threads (or an asyncio event loop via the ``*_async`` helpers), parks them
on a bounded queue, and drains the queue from a single daemon batcher
thread.  Each drain *lingers* briefly (``linger_s``) so that a burst of
same-fingerprint requests lands in one drain, then hands the batch to
:func:`~repro.serve.batching.coalesce` / ``run_group``: same-structure
requests execute as one ``batched_spmm`` / ``batched_sddmm`` launch, and
every caller's :class:`~concurrent.futures.Future` resolves with a result
bit-exact to sequential eager execution.

Degradation ladder (each rung stamped into :class:`ServingStats`):

1. **coalesced** — the happy path, one launch per same-fingerprint group;
2. **eager** — a failed batched launch re-runs each member individually, so
   one poisoned request cannot fail its batch-mates;
3. **inline** — a saturated queue (``saturation="inline"``, the default)
   executes the request on the caller's thread instead of blocking or
   dropping it; :meth:`Server.close` drains stragglers the same way.

The server never wedges: every submitted request's future resolves with a
result or an exception.
"""

from __future__ import annotations

import asyncio
import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

import numpy as np

from .batching import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_LANES,
    ServeRequest,
    coalesce,
    make_call_request,
    make_sddmm_request,
    make_spmm_request,
    run_group,
)
from .stats import DEFAULT_RESERVOIR, ServingStats

#: Queue sentinel that tells the batcher thread to exit.
_SHUTDOWN = object()


class ServerSaturated(RuntimeError):
    """Raised (via the future) when the queue is full and saturation="reject"."""


@dataclass
class ServerConfig:
    """Tunables of the serving front-end.

    ``linger_s`` trades latency for occupancy: the batcher waits this long
    after the first dequeued request for more work to coalesce with.
    ``saturation`` selects the full-queue policy: ``"inline"`` (default)
    executes on the caller's thread, ``"block"`` applies backpressure,
    ``"reject"`` fails the future with :class:`ServerSaturated`.
    """

    max_batch: int = DEFAULT_MAX_BATCH
    max_batch_lanes: int = DEFAULT_MAX_LANES
    queue_capacity: int = 1024
    linger_s: float = 0.002
    poll_s: float = 0.05
    saturation: str = "inline"
    reservoir: int = DEFAULT_RESERVOIR

    def __post_init__(self) -> None:
        if self.saturation not in ("inline", "block", "reject"):
            raise ValueError(f"unknown saturation policy {self.saturation!r}")
        if self.queue_capacity <= 0:
            raise ValueError("queue_capacity must be positive")


class Server:
    """Async request front-end over one :class:`~repro.runtime.session.Session`.

    Thread-safe: any thread may submit; all coalesced execution happens on
    the internal batcher thread (the session's operator path is protected
    against the residual concurrency of inline fallbacks by the session's
    own locks).  Use as a context manager, or call :meth:`close`.
    """

    def __init__(self, session=None, config: Optional[ServerConfig] = None):
        if session is None:
            from ..runtime.session import Session

            session = Session()
        self.session = session
        self.config = config or ServerConfig()
        self.stats = ServingStats(self.config.reservoir)
        self._queue: "queue.Queue" = queue.Queue(maxsize=self.config.queue_capacity)
        self._closed = False
        self._inflight = 0
        self._idle = threading.Condition()
        self._thread = threading.Thread(
            target=self._loop, daemon=True, name="repro-serve-batcher"
        )
        self._thread.start()

    # -- submission ------------------------------------------------------------
    def submit(self, request: ServeRequest):
        """Enqueue a request; returns its :class:`~concurrent.futures.Future`.

        Applies the configured saturation policy when the queue is full.
        """
        if self._closed:
            raise RuntimeError("server is closed")
        self._begin(1)
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            policy = self.config.saturation
            if policy == "block":
                self._queue.put(request)
            elif policy == "reject":
                try:
                    exc = ServerSaturated(
                        f"queue full ({self.config.queue_capacity}); request rejected"
                    )
                    self.stats.record_request(
                        request.tenant,
                        time.monotonic() - request.submitted_at,
                        error=True,
                    )
                    if request.future.set_running_or_notify_cancel():
                        request.future.set_exception(exc)
                finally:
                    self._done(1)
            else:  # inline: execute on the caller's thread
                request.degraded = "inline"
                try:
                    run_group(self.session, [request], self.stats)
                finally:
                    self._done(1)
        return request.future

    def spmm(self, csr, features: np.ndarray, dtype: Any = None, tenant: str = "default"):
        """Submit ``A @ X``; coalesces with same-structure requests."""
        return self.submit(make_spmm_request(csr, features, dtype=dtype, tenant=tenant))

    def sddmm(
        self,
        csr,
        x: np.ndarray,
        y: np.ndarray,
        dtype: Any = None,
        tenant: str = "default",
    ):
        """Submit an SDDMM; coalesces with same-structure requests."""
        return self.submit(make_sddmm_request(csr, x, y, dtype=dtype, tenant=tenant))

    def call(
        self,
        fn: Callable[..., Any],
        *args: Any,
        tenant: str = "default",
        **kwargs: Any,
    ):
        """Submit an arbitrary callable (e.g. a compiled graph run) eagerly."""
        return self.submit(make_call_request(fn, args, kwargs, tenant=tenant))

    async def spmm_async(
        self, csr, features: np.ndarray, dtype: Any = None, tenant: str = "default"
    ):
        """``await``-able :meth:`spmm` for asyncio front-ends."""
        return await asyncio.wrap_future(self.spmm(csr, features, dtype=dtype, tenant=tenant))

    async def sddmm_async(
        self,
        csr,
        x: np.ndarray,
        y: np.ndarray,
        dtype: Any = None,
        tenant: str = "default",
    ):
        """``await``-able :meth:`sddmm` for asyncio front-ends."""
        return await asyncio.wrap_future(
            self.sddmm(csr, x, y, dtype=dtype, tenant=tenant)
        )

    # -- lifecycle ------------------------------------------------------------
    def flush(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted request has resolved.

        Returns ``False`` if *timeout* elapsed with work still in flight.
        """
        with self._idle:
            return self._idle.wait_for(lambda: self._inflight == 0, timeout)

    def close(self) -> None:
        """Stop accepting work, join the batcher, drain stragglers inline."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(_SHUTDOWN)
        self._thread.join(timeout=30.0)
        # Safety net: anything still queued (e.g. enqueued by a "block"
        # producer racing close) resolves inline so no future is orphaned.
        while True:
            try:
                leftover = self._queue.get_nowait()
            except queue.Empty:
                break
            if leftover is _SHUTDOWN:
                continue
            leftover.degraded = "inline"
            try:
                run_group(self.session, [leftover], self.stats)
            finally:
                self._done(1)

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals ------------------------------------------------------------
    def _begin(self, n: int) -> None:
        with self._idle:
            self._inflight += n

    def _done(self, n: int) -> None:
        with self._idle:
            self._inflight -= n
            if self._inflight <= 0:
                self._idle.notify_all()

    def _loop(self) -> None:
        cfg = self.config
        stop = False
        while not stop:
            try:
                first = self._queue.get(timeout=cfg.poll_s)
            except queue.Empty:
                if self._closed:
                    break
                continue
            if first is _SHUTDOWN:
                break
            batch = [first]
            # Linger: give a concurrent burst time to land in this drain so
            # same-fingerprint requests coalesce instead of trickling
            # through one-by-one.
            deadline = time.monotonic() + cfg.linger_s
            while len(batch) < cfg.queue_capacity:
                remaining = deadline - time.monotonic()
                try:
                    item = (
                        self._queue.get(timeout=remaining)
                        if remaining > 0
                        else self._queue.get_nowait()
                    )
                except queue.Empty:
                    break
                if item is _SHUTDOWN:
                    stop = True
                    break
                batch.append(item)
            for group in coalesce(batch, cfg.max_batch, cfg.max_batch_lanes):
                try:
                    run_group(self.session, group, self.stats)
                finally:
                    self._done(len(group))

    # -- introspection ------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-tenant serving statistics (see :class:`ServingStats`)."""
        return self.stats.snapshot()
