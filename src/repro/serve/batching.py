"""Request fingerprinting and same-structure coalescing.

The serving front-end turns every incoming operator call into a
:class:`ServeRequest` carrying a *serving fingerprint*: a content hash of
everything that must be identical for two requests to share one batched
kernel launch — the sparse structure (``indptr``/``indices``), the shared
edge values (``data``), the feature width and the value dtype.  Requests
with equal fingerprints multiply the *same* matrix, so ``N`` concurrent
``spmm(A, x_i)`` calls collapse into one ``batched_spmm(A, stack(x_i))``
whose head axis is the batch axis; the multi-head kernel accumulates every
``(head, row, feat)`` lane in the same j-order as the single-head program,
which is what makes coalesced results *bit-exact* with sequential eager
execution (asserted by ``tests/test_serving_differential.py``).

:func:`coalesce` groups a drained queue FIFO-by-fingerprint under two caps:
``max_batch`` (head-axis length) and ``max_lanes`` (total ``nnz x feat``
lanes per launch — beyond the cache working set, batching loses to eager,
so the batcher refuses to build such launches).  :func:`run_group` executes
one group and resolves its futures, degrading to per-request eager
execution if the batched launch itself fails.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..runtime.keys import content_key, resolve_dtype

#: Default cap on the coalesced head axis.
DEFAULT_MAX_BATCH = 16

#: Default cap on total lanes (``batch * nnz * feat``) per coalesced launch.
#: Past roughly this working set the vectorized multi-head kernel stops
#: beating sequential eager execution (cache-capacity crossover), so larger
#: groups are chunked rather than batched blindly.
DEFAULT_MAX_LANES = 1_500_000


def _csr_content_key(csr) -> str:
    """Content hash of a CSR matrix (structure + values), memoized per epoch.

    Hashing ``indptr``/``indices``/``data`` costs ~nnz work per call, which
    would dominate the serving fast path if paid per request.  Matrices that
    track mutations (:class:`~repro.formats.csr.CSRMatrix`) memoise the hash
    by ``structure_epoch`` via ``content_signature()``, so a mutated matrix
    re-fingerprints while unchanged-epoch requests stay O(1) — the hash can
    never go stale.  Foreign matrix types without an epoch are immutable by
    convention, so their hash is computed once and cached on the object.
    """
    signature = getattr(csr, "content_signature", None)
    if callable(signature):
        return signature()
    cached = getattr(csr, "_serve_content_key", None)
    if cached is None:
        cached = content_key(csr.shape, csr.indptr, csr.indices, csr.data)
        try:
            csr._serve_content_key = cached
        except AttributeError:  # pragma: no cover - slotted/frozen matrix types
            pass
    return cached


@dataclass
class ServeRequest:
    """One queued operator invocation.

    ``payload`` holds the operator inputs keyed by name; ``fingerprint``
    groups batchable requests; ``lanes`` is the per-request lane footprint
    used by the batcher's lane budget; ``future`` receives the result (or
    exception).  ``degraded`` is stamped by whichever fallback path executed
    the request (``"eager"`` / ``"inline"``), ``None`` for the happy path.
    """

    kind: str
    tenant: str
    payload: Dict[str, Any]
    fingerprint: str
    batchable: bool
    lanes: int
    future: Future = field(default_factory=Future)
    submitted_at: float = field(default_factory=time.monotonic)
    degraded: Optional[str] = None


def make_spmm_request(
    csr,
    features: np.ndarray,
    dtype: Any = None,
    tenant: str = "default",
) -> ServeRequest:
    """Wrap one ``A @ X`` call as a batchable serving request.

    The dtype is resolved eagerly (float64 features select a float64
    kernel) so requests that would compile different programs never share a
    fingerprint.  ``csr.data`` is part of the fingerprint: the batched
    kernel shares one value array across the whole group, so only requests
    against the *same* weighted matrix may coalesce.
    """
    features = np.asarray(features)
    if features.ndim != 2:
        raise ValueError(f"spmm features must be 2-D, got shape {features.shape}")
    value_dtype = resolve_dtype(features, dtype)
    feat = int(features.shape[1])
    fingerprint = content_key("serve/spmm", _csr_content_key(csr), feat, value_dtype)
    return ServeRequest(
        kind="spmm",
        tenant=tenant,
        payload={"csr": csr, "features": features, "dtype": value_dtype},
        fingerprint=fingerprint,
        batchable=True,
        lanes=csr.nnz * max(feat, 1),
    )


def make_sddmm_request(
    csr,
    x: np.ndarray,
    y: np.ndarray,
    dtype: Any = None,
    tenant: str = "default",
) -> ServeRequest:
    """Wrap one SDDMM call as a batchable serving request.

    ``N`` same-structure requests coalesce into one ``batched_sddmm`` whose
    head axis stacks the per-request ``(x, y)`` operand pairs.
    """
    x = np.asarray(x)
    y = np.asarray(y)
    if x.ndim != 2 or y.ndim != 2:
        raise ValueError("sddmm operands must be 2-D")
    value_dtype = resolve_dtype((x, y), dtype)
    feat = int(x.shape[1])
    fingerprint = content_key("serve/sddmm", _csr_content_key(csr), feat, value_dtype)
    return ServeRequest(
        kind="sddmm",
        tenant=tenant,
        payload={"csr": csr, "x": x, "y": y, "dtype": value_dtype},
        fingerprint=fingerprint,
        batchable=True,
        lanes=csr.nnz * max(feat, 1),
    )


def make_call_request(
    fn: Callable[..., Any],
    args: Sequence[Any] = (),
    kwargs: Optional[Dict[str, Any]] = None,
    tenant: str = "default",
) -> ServeRequest:
    """Wrap an arbitrary callable as a non-batchable (eager) request.

    Used for work the batcher cannot coalesce — e.g. running a compiled
    graph — while still flowing through the queue, stats and degradation
    machinery.
    """
    return ServeRequest(
        kind="call",
        tenant=tenant,
        payload={"fn": fn, "args": tuple(args), "kwargs": dict(kwargs or {})},
        fingerprint=content_key("serve/call", id(fn)),
        batchable=False,
        lanes=0,
    )


def coalesce(
    requests: Sequence[ServeRequest],
    max_batch: int = DEFAULT_MAX_BATCH,
    max_lanes: int = DEFAULT_MAX_LANES,
) -> List[List[ServeRequest]]:
    """Group a drained queue into coalesced launch groups.

    Requests are grouped by fingerprint in FIFO order of first arrival, and
    each fingerprint's run is chunked so that no group exceeds ``max_batch``
    requests or ``max_lanes`` total lanes (a single over-budget request
    still gets its own singleton group — the caps chunk, they never drop).
    Non-batchable requests always form singleton groups.
    """
    if max_batch <= 0:
        raise ValueError("max_batch must be positive")
    groups: List[List[ServeRequest]] = []
    open_group: Dict[str, int] = {}  # fingerprint -> index into groups
    open_lanes: Dict[str, int] = {}
    for request in requests:
        if not request.batchable:
            groups.append([request])
            continue
        index = open_group.get(request.fingerprint)
        if index is not None:
            group = groups[index]
            if (
                len(group) < max_batch
                and open_lanes[request.fingerprint] + request.lanes <= max_lanes
            ):
                group.append(request)
                open_lanes[request.fingerprint] += request.lanes
                continue
        # Start a new chunk for this fingerprint (or the first one).
        open_group[request.fingerprint] = len(groups)
        open_lanes[request.fingerprint] = request.lanes
        groups.append([request])
    return groups


def execute_eager(session, request: ServeRequest) -> Any:
    """Execute one request on its own (no coalescing)."""
    payload = request.payload
    if request.kind == "spmm":
        return session.spmm(
            payload["csr"], payload["features"], dtype=payload["dtype"]
        )
    if request.kind == "sddmm":
        return session.sddmm(
            payload["csr"], payload["x"], payload["y"], dtype=payload["dtype"]
        )
    if request.kind == "call":
        return payload["fn"](*payload["args"], **payload["kwargs"])
    raise ValueError(f"unknown request kind {request.kind!r}")


def _execute_batched(session, group: List[ServeRequest]) -> List[np.ndarray]:
    """One coalesced launch for a same-fingerprint group of size > 1."""
    kind = group[0].kind
    csr = group[0].payload["csr"]
    dtype = group[0].payload["dtype"]
    if kind == "spmm":
        stacked = np.stack([req.payload["features"] for req in group])
        out = session.batched_spmm(csr, stacked, dtype=dtype)
    elif kind == "sddmm":
        q = np.stack([req.payload["x"] for req in group])
        k = np.stack(
            [np.ascontiguousarray(req.payload["y"]) for req in group]
        )
        out = session.batched_sddmm(csr, q, k, dtype=dtype)
    else:  # pragma: no cover - coalesce() only batches spmm/sddmm
        raise ValueError(f"kind {kind!r} cannot be batched")
    # Contiguous copies: handing out views of `out` would pin the whole
    # batch array alive for as long as any single caller keeps its result.
    return [np.ascontiguousarray(out[i]) for i in range(len(group))]


def _resolve(request: ServeRequest, result: Any) -> None:
    if request.future.set_running_or_notify_cancel():
        request.future.set_result(result)


def _fail(request: ServeRequest, exc: BaseException) -> None:
    if request.future.set_running_or_notify_cancel():
        request.future.set_exception(exc)


def run_group(session, group: List[ServeRequest], stats=None) -> None:
    """Execute one coalesced group and resolve its futures.

    Groups of size > 1 run as a single batched launch; if that launch
    raises, every member falls back to eager execution individually
    (``degraded="eager"``), so one poisoned request cannot take down its
    batch-mates.  Per-request latency, batch occupancy and the group's
    kernel-cache attribution are recorded into *stats* when given.
    """
    size = len(group)
    hits_before = session.stats.kernel_cache_hits
    results: Optional[List[Any]] = None
    batch_error: Optional[BaseException] = None
    if size > 1:
        try:
            results = _execute_batched(session, group)
        except Exception as exc:  # degrade to per-request eager execution
            batch_error = exc
            for request in group:
                request.degraded = "eager"
    if results is None:
        results = []
        for request in group:
            try:
                results.append(execute_eager(session, request))
            except Exception as exc:
                results.append(exc)
    cache_hit = session.stats.kernel_cache_hits > hits_before
    if stats is not None and size > 1 and batch_error is None:
        stats.record_batch((req.tenant for req in group), size)
    now = time.monotonic()
    for request, result in zip(group, results):
        failed = isinstance(result, BaseException)
        if stats is not None:
            stats.record_request(
                request.tenant,
                now - request.submitted_at,
                batch_size=size if batch_error is None else 1,
                cache_hit=cache_hit,
                degraded=request.degraded,
                error=failed,
            )
        if failed:
            _fail(request, result)
        else:
            _resolve(request, result)
