"""Set-associative LRU cache simulator.

Used to reproduce Figure 12: the L1/L2 hit rates of the SparseTIR SpMM kernel
as the number of column partitions of the ``hyb`` format grows.  The
simulator operates on coarse-grained address traces (one entry per global
load, at cache-line granularity) generated from the kernel's access pattern
on the concrete sparse structure; sampling keeps trace sizes tractable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple



@dataclass
class CacheStats:
    """Result of one cache simulation."""

    accesses: int
    hits: int

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class LRUCache:
    """A set-associative cache with least-recently-used replacement."""

    def __init__(self, capacity_bytes: int, line_bytes: int = 64, associativity: int = 8):
        if capacity_bytes <= 0 or line_bytes <= 0 or associativity <= 0:
            raise ValueError("cache capacity, line size and associativity must be positive")
        num_lines = max(1, capacity_bytes // line_bytes)
        self.line_bytes = line_bytes
        self.associativity = min(associativity, num_lines)
        self.num_sets = max(1, num_lines // self.associativity)
        # Each set maps line tag -> logical timestamp of last use.
        self._sets: List[Dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._clock = 0
        self._hits = 0
        self._accesses = 0

    def access(self, address: int) -> bool:
        """Access one byte address; returns True on hit."""
        line = address // self.line_bytes
        index = line % self.num_sets
        cache_set = self._sets[index]
        self._clock += 1
        self._accesses += 1
        if line in cache_set:
            cache_set[line] = self._clock
            self._hits += 1
            return True
        if len(cache_set) >= self.associativity:
            victim = min(cache_set, key=cache_set.get)
            del cache_set[victim]
        cache_set[line] = self._clock
        return False

    def access_many(self, addresses: Iterable[int]) -> CacheStats:
        start_accesses, start_hits = self._accesses, self._hits
        for address in addresses:
            self.access(int(address))
        return CacheStats(self._accesses - start_accesses, self._hits - start_hits)

    def stats(self) -> CacheStats:
        return CacheStats(self._accesses, self._hits)

    def reset(self) -> None:
        self._sets = [dict() for _ in range(self.num_sets)]
        self._clock = 0
        self._hits = 0
        self._accesses = 0


class CacheHierarchy:
    """A two-level (per-SM L1 + shared L2) cache hierarchy.

    The simulator routes every address through one L1 (representing the SM
    the accessing thread block runs on — the trace generator interleaves
    blocks round-robin, which is what the hardware scheduler does) and sends
    L1 misses to the shared L2.
    """

    def __init__(
        self,
        l1_bytes: int,
        l2_bytes: int,
        line_bytes: int = 64,
        l1_associativity: int = 4,
        l2_associativity: int = 16,
        num_l1: int = 1,
    ):
        self.l1 = [LRUCache(l1_bytes, line_bytes, l1_associativity) for _ in range(max(1, num_l1))]
        self.l2 = LRUCache(l2_bytes, line_bytes, l2_associativity)
        self.line_bytes = line_bytes

    def access(self, address: int, l1_slot: int = 0) -> Tuple[bool, Optional[bool]]:
        """Access an address; returns (l1_hit, l2_hit or None if not reached)."""
        l1 = self.l1[l1_slot % len(self.l1)]
        if l1.access(address):
            return True, None
        return False, self.l2.access(address)

    def run_trace(self, addresses: Iterable[int], slots: Optional[Iterable[int]] = None) -> Dict[str, CacheStats]:
        if slots is None:
            for address in addresses:
                self.access(int(address))
        else:
            for address, slot in zip(addresses, slots):
                self.access(int(address), int(slot))
        return {"l1": self.l1_stats(), "l2": self.l2.stats()}

    def l1_stats(self) -> CacheStats:
        accesses = sum(c.stats().accesses for c in self.l1)
        hits = sum(c.stats().hits for c in self.l1)
        return CacheStats(accesses, hits)


def reuse_distance_hit_rate(unique_bytes: float, touched_bytes: float, cache_bytes: float) -> float:
    """Analytic hit-rate estimate used when full trace simulation is too costly.

    If the working set (``unique_bytes``) fits in the cache, every re-access
    hits, so the hit rate approaches ``1 - unique/touched``.  When the working
    set exceeds the cache, only the cached fraction of re-accesses hit.
    """
    if touched_bytes <= 0:
        return 0.0
    reuse_fraction = max(0.0, 1.0 - unique_bytes / touched_bytes)
    if unique_bytes <= cache_bytes:
        return reuse_fraction
    return reuse_fraction * (cache_bytes / unique_bytes)
