"""Deriving a performance-model workload from a compiled kernel's IR.

The extraction is intentionally conservative and coarse: its purpose is to
make the compilation pipeline schedule-sensitive end-to-end (thread bindings,
vectorisation, caching and tensorisation annotations all change the
estimate), not to replace the analytic workload models the benchmark harness
builds for each operator and baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core.buffers import dtype_bytes
from ..core.codegen.fusion import is_horizontally_fused, launch_groups
from ..core.expr import BinaryOp, BufferLoad, Call, Expr, IntImm, Sub
from ..core.stmt import (
    Block,
    ForLoop,
    IfThenElse,
    LOOP_THREAD_BINDING,
    LOOP_UNROLLED,
    LOOP_VECTORIZED,
    SeqStmt,
    Stmt,
    collect_buffer_loads,
    collect_buffer_stores,
    find_blocks,
)
from .workload import BlockGroup, KernelWorkload

_DEFAULT_THREADS = 128


def extract_workload(kernel, overrides: Optional[Dict] = None) -> KernelWorkload:
    """Build a :class:`KernelWorkload` from a compiled kernel."""
    overrides = overrides or {}
    func = kernel.func
    data = _binding_data(kernel)
    workload = KernelWorkload(name=func.name)
    groups = launch_groups(func)
    for index, group_stmt in enumerate(groups):
        block_group = _extract_group(f"{func.name}_g{index}", group_stmt, data)
        if block_group is not None:
            workload.add(block_group)
    workload.num_launches = 1 if is_horizontally_fused(func) else len(groups)
    workload.memory_footprint_bytes = sum(fb.nbytes() for fb in func.flat_buffers)
    for key, value in overrides.items():
        setattr(workload, key, value)
    return workload


def _binding_data(kernel) -> Dict[str, np.ndarray]:
    # Run-time defaults first: structurally-cached kernels carry the current
    # workload's value arrays there rather than on the (stripped) buffers.
    data: Dict[str, np.ndarray] = {
        name: np.asarray(value) for name, value in getattr(kernel, "defaults", {}).items()
    }
    for buf in list(kernel.func.buffers) + list(kernel.func.aux_buffers):
        if buf.data is not None and buf.name not in data:
            data[buf.name] = np.asarray(buf.data)
    return data


def _extract_group(name: str, stmt: Stmt, data: Dict[str, np.ndarray]) -> Optional[BlockGroup]:
    spine = _loop_spine(stmt)
    if not spine:
        return None

    grid = 1.0
    threads = 1.0
    serial_iterations = 1.0
    vector_width = 1
    unrolled = False
    for loop in spine:
        extent = _estimate_extent(loop.extent, data)
        if loop.kind == LOOP_THREAD_BINDING and loop.thread_tag and loop.thread_tag.startswith("blockIdx"):
            grid *= extent
        elif loop.kind == LOOP_THREAD_BINDING and loop.thread_tag and loop.thread_tag.startswith("threadIdx"):
            threads *= extent
        elif loop.kind == LOOP_VECTORIZED:
            vector_width = max(vector_width, int(min(extent, 8)))
            serial_iterations *= extent
        else:
            if loop.kind == LOOP_UNROLLED:
                unrolled = True
            serial_iterations *= extent

    if threads <= 1.0 and grid <= 1.0:
        # Unscheduled kernel: treat the outermost loop as the grid dimension.
        outer = spine[0]
        grid = max(1.0, _estimate_extent(outer.extent, data))
        serial_iterations = max(1.0, serial_iterations / grid)
        threads = _DEFAULT_THREADS
    threads = max(1.0, threads)
    grid = max(1.0, grid)

    blocks = find_blocks(stmt)
    flops_per_iteration = 0.0
    load_bytes_per_iteration = 0.0
    store_bytes_per_iteration = 0.0
    uses_tensor_core = False
    shared_mem = 0
    register_caching = False
    dtype = "float32"
    for block in blocks:
        if block.annotations.get("tensorize"):
            uses_tensor_core = True
        for entry in block.annotations.get("cache_read", []):
            shared_mem += 8 * 1024 if entry.get("scope") == "shared" else 0
        if block.annotations.get("cache_write"):
            register_caching = True
        stores = collect_buffer_stores(block.body)
        loads = collect_buffer_loads(block.body)
        for store in stores:
            flops_per_iteration += _count_flops(store.value)
            store_bytes_per_iteration += dtype_bytes(getattr(store.buffer, "dtype", "float32"))
        for load in loads:
            load_dtype = getattr(load.buffer, "dtype", "float32")
            load_bytes_per_iteration += dtype_bytes(load_dtype)
            if load_dtype == "float64":
                # Double precision dominates: the whole group pays the fp64 rate.
                dtype = "float64"
            elif load_dtype in ("float16", "bfloat16") and dtype == "float32":
                dtype = "float16"

    iterations_per_block = threads * serial_iterations
    flops_per_block = flops_per_iteration * iterations_per_block
    read_per_block = load_bytes_per_iteration * iterations_per_block
    write_per_block = store_bytes_per_iteration * iterations_per_block
    if register_caching:
        # Accumulation happens in registers: only the final value is written.
        write_per_block = store_bytes_per_iteration * threads

    return BlockGroup(
        name=name,
        num_blocks=int(round(grid)),
        threads_per_block=int(round(threads)),
        flops_per_block=flops_per_block,
        dram_read_bytes_per_block=read_per_block,
        dram_write_bytes_per_block=write_per_block,
        shared_mem_bytes=shared_mem,
        uses_tensor_core=uses_tensor_core,
        dtype=dtype,
        vector_width=vector_width,
        register_caching=register_caching,
        unrolled=unrolled,
    )


def _loop_spine(stmt: Stmt) -> List[ForLoop]:
    """The chain of loops from the group root down to the innermost block."""
    spine: List[ForLoop] = []
    cursor: Optional[Stmt] = stmt
    while cursor is not None:
        if isinstance(cursor, ForLoop):
            spine.append(cursor)
            cursor = cursor.body
        elif isinstance(cursor, Block):
            cursor = cursor.body
        elif isinstance(cursor, IfThenElse):
            cursor = cursor.then_case
        elif isinstance(cursor, SeqStmt) and cursor.stmts:
            cursor = cursor.stmts[0]
        else:
            cursor = None
    return spine


def _estimate_extent(extent: Expr, data: Dict[str, np.ndarray]) -> float:
    """Estimate a loop extent; data-dependent extents use the bound structure."""
    if isinstance(extent, IntImm):
        return float(extent.value)
    if isinstance(extent, Sub):
        # The canonical CSR pattern: indptr[i + 1] - indptr[i].
        left, right = extent.a, extent.b
        if isinstance(left, BufferLoad) and isinstance(right, BufferLoad):
            name = getattr(left.buffer, "name", "")
            array = data.get(name)
            if array is not None and array.size > 1:
                diffs = np.diff(array)
                if diffs.size:
                    return float(max(diffs.mean(), 1.0))
            return 8.0
    if isinstance(extent, BinaryOp):
        a = _estimate_extent(extent.a, data)
        b = _estimate_extent(extent.b, data)
        try:
            return float(max(type(extent).py_op(a, b), 1.0))
        except Exception:
            return max(a, b)
    if isinstance(extent, BufferLoad):
        name = getattr(extent.buffer, "name", "")
        array = data.get(name)
        if array is not None and array.size:
            return float(max(array.mean(), 1.0))
    return 8.0


def _count_flops(expr: Expr) -> float:
    """Count floating point operations in one store's value expression."""
    count = 0.0
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, BinaryOp):
            if "float" in node.dtype:
                count += 1.0
            stack.append(node.a)
            stack.append(node.b)
        elif isinstance(node, BufferLoad):
            stack.extend(node.indices)
        elif isinstance(node, Call):
            stack.extend(node.args)
    return max(count, 1.0)
