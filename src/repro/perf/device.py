"""Device specifications for the simulated GPUs used in the evaluation."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural parameters of one GPU.

    The numbers below are public datasheet values; the performance model uses
    them to convert kernel workload descriptions into time estimates.  The
    evaluation only relies on *relative* numbers (speedups), so moderate
    inaccuracy in any single constant does not change which kernel wins.
    """

    name: str
    sm_count: int
    warp_size: int
    max_threads_per_sm: int
    max_threads_per_block: int
    max_blocks_per_sm: int
    shared_mem_per_sm_bytes: int
    registers_per_sm: int
    l1_bytes_per_sm: int
    l2_bytes: int
    l2_line_bytes: int
    hbm_bandwidth_gbs: float
    fp32_tflops: float
    fp16_tflops: float
    fp64_tflops: float
    tensor_core_tflops: float
    kernel_launch_us: float
    block_schedule_overhead_us: float
    dram_latency_us: float
    memory_gib: float

    # -- derived quantities ------------------------------------------------------
    @property
    def hbm_bandwidth_bytes_per_us(self) -> float:
        return self.hbm_bandwidth_gbs * 1e9 / 1e6

    @property
    def fp32_flops_per_us(self) -> float:
        return self.fp32_tflops * 1e12 / 1e6

    @property
    def fp16_flops_per_us(self) -> float:
        return self.fp16_tflops * 1e12 / 1e6

    @property
    def fp64_flops_per_us(self) -> float:
        return self.fp64_tflops * 1e12 / 1e6

    @property
    def tensor_core_flops_per_us(self) -> float:
        return self.tensor_core_tflops * 1e12 / 1e6

    def flops_per_us(self, dtype: str = "float32", tensor_core: bool = False) -> float:
        """Peak device throughput in FLOPs per microsecond."""
        if tensor_core:
            return self.tensor_core_flops_per_us
        if dtype == "float64":
            return self.fp64_flops_per_us
        if dtype in ("float16", "bfloat16"):
            return self.fp16_flops_per_us
        return self.fp32_flops_per_us


#: NVIDIA Tesla V100 (SXM2, 16/32 GB) — the datacentre GPU of the evaluation.
V100 = DeviceSpec(
    name="V100",
    sm_count=80,
    warp_size=32,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    max_blocks_per_sm=32,
    shared_mem_per_sm_bytes=96 * 1024,
    registers_per_sm=65536,
    l1_bytes_per_sm=128 * 1024,
    l2_bytes=6 * 1024 * 1024,
    l2_line_bytes=64,
    hbm_bandwidth_gbs=900.0,
    fp32_tflops=15.7,
    fp16_tflops=31.4,
    fp64_tflops=7.8,
    tensor_core_tflops=125.0,
    kernel_launch_us=5.0,
    block_schedule_overhead_us=0.2,
    dram_latency_us=0.4,
    memory_gib=16.0,
)

#: NVIDIA GeForce RTX 3070 — the desktop (Ampere) GPU of the evaluation.
RTX3070 = DeviceSpec(
    name="RTX3070",
    sm_count=46,
    warp_size=32,
    max_threads_per_sm=1536,
    max_threads_per_block=1024,
    max_blocks_per_sm=16,
    shared_mem_per_sm_bytes=100 * 1024,
    registers_per_sm=65536,
    l1_bytes_per_sm=128 * 1024,
    l2_bytes=4 * 1024 * 1024,
    l2_line_bytes=64,
    hbm_bandwidth_gbs=448.0,
    fp32_tflops=20.3,
    fp16_tflops=20.3,
    fp64_tflops=0.317,
    tensor_core_tflops=81.3,
    kernel_launch_us=5.0,
    block_schedule_overhead_us=0.2,
    dram_latency_us=0.35,
    memory_gib=8.0,
)

ALL_DEVICES = (V100, RTX3070)


def device_by_name(name: str) -> DeviceSpec:
    """Look up a device spec by its name (case insensitive)."""
    for device in ALL_DEVICES:
        if device.name.lower() == name.lower():
            return device
    raise KeyError(f"unknown device {name!r}; available: {[d.name for d in ALL_DEVICES]}")
