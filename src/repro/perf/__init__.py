"""Simulated-GPU performance model.

This package substitutes for the NVIDIA V100 / RTX 3070 hardware used in the
paper's evaluation.  Operators and baselines describe each kernel launch as a
:class:`~repro.perf.workload.KernelWorkload` (thread-block groups with their
FLOP counts, DRAM traffic, shared-memory usage and execution features); the
:class:`~repro.perf.gpu_model.GPUModel` estimates execution time from
occupancy, whole-device roofline costs, a load-balance-aware critical-path
bound on the heaviest block, tensor-core throughput and kernel-launch
overhead.  A set-associative cache simulator provides the L1/L2 hit rates
reported in Figure 12, and :mod:`~repro.perf.learned` layers a corpus-trained
residual corrector on top of the analytic estimate.
"""

from .device import RTX3070, V100, DeviceSpec
from .gpu_model import GPUModel, PerfReport, estimate_us, profile_kernel
from .learned import FEATURE_NAMES, FEATURE_VERSION, RidgeCostModel, workload_features
from .workload import BlockGroup, KernelWorkload

__all__ = [
    "DeviceSpec",
    "V100",
    "RTX3070",
    "GPUModel",
    "PerfReport",
    "estimate_us",
    "profile_kernel",
    "KernelWorkload",
    "BlockGroup",
    "FEATURE_NAMES",
    "FEATURE_VERSION",
    "RidgeCostModel",
    "workload_features",
]
