"""Simulated-GPU performance model.

This package substitutes for the NVIDIA V100 / RTX 3070 hardware used in the
paper's evaluation.  Operators and baselines describe each kernel launch as a
:class:`~repro.perf.workload.KernelWorkload` (thread-block groups with their
FLOP counts, DRAM traffic, shared-memory usage and execution features); the
:class:`~repro.perf.gpu_model.GPUModel` estimates execution time from
occupancy, per-block roofline costs, load-balance-aware makespan scheduling
across SMs, tensor-core throughput and kernel-launch overhead.  A
set-associative cache simulator provides the L1/L2 hit rates reported in
Figure 12.
"""

from .device import RTX3070, V100, DeviceSpec
from .gpu_model import GPUModel, PerfReport, estimate_us, profile_kernel
from .workload import BlockGroup, KernelWorkload

__all__ = [
    "DeviceSpec",
    "V100",
    "RTX3070",
    "GPUModel",
    "PerfReport",
    "estimate_us",
    "profile_kernel",
    "KernelWorkload",
    "BlockGroup",
]
