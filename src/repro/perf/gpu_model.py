"""The GPU cost model: from kernel workloads to execution-time estimates.

The model is a load-balance-aware roofline:

1. For every :class:`~repro.perf.workload.BlockGroup`, occupancy determines
   how many thread blocks run concurrently (limited by threads, shared
   memory, registers and the architectural block limit).
2. Every block's duration is the maximum of its compute time (FLOPs over its
   share of CUDA-core or tensor-core throughput) and its memory time (DRAM
   bytes over its share of HBM bandwidth), plus a small scheduling overhead.
3. A group's duration is the larger of two bounds — the whole-device
   roofline (all blocks overlap and share peak throughput) and the critical
   path (the heaviest single block at the rates one block can sustain alone)
   — plus a per-wave scheduling overhead.  The critical-path bound is what
   makes skewed per-block work (long CSR rows) slow — the load-balancing
   phenomenon the hyb format addresses.
4. Kernel-launch overhead is charged per launch, so composable formats
   without horizontal fusion pay for every sub-format kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .device import DeviceSpec
from .workload import BlockGroup, KernelWorkload

_VECTOR_EFFICIENCY = {1: 0.70, 2: 0.85, 4: 1.0, 8: 1.0}


def _vector_efficiency(width: int) -> float:
    """Memory-efficiency factor for a vector width, floored to the nearest
    known width below it (width 3 prices like 2, widths 5-7 like 4) so that
    wider accesses never price *worse* than narrower ones."""
    width = max(1, int(width))
    known = [w for w in _VECTOR_EFFICIENCY if w <= width]
    return _VECTOR_EFFICIENCY[max(known)]

#: Fraction of the device's HBM bandwidth a single thread block can sustain
#: on its own (limits the critical path of a severely imbalanced kernel: a
#: lone block streaming a very long row is latency-bound, far below peak).
_SOLO_BANDWIDTH_FRACTION = 0.01


@dataclass
class PerfReport:
    """Estimated execution profile of one kernel workload on one device."""

    name: str
    device: str
    duration_us: float
    compute_us: float
    memory_us: float
    launch_us: float
    total_flops: float
    total_dram_bytes: float
    num_blocks: int
    num_launches: int
    occupancy: float
    memory_footprint_bytes: float
    l1_hit_rate: Optional[float] = None
    l2_hit_rate: Optional[float] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_ms(self) -> float:
        return self.duration_us / 1e3

    @property
    def achieved_bandwidth_gbs(self) -> float:
        if self.duration_us <= 0:
            return 0.0
        return self.total_dram_bytes / (self.duration_us * 1e-6) / 1e9

    @property
    def achieved_tflops(self) -> float:
        if self.duration_us <= 0:
            return 0.0
        return self.total_flops / (self.duration_us * 1e-6) / 1e12

    def speedup_over(self, other: "PerfReport") -> float:
        """How much faster this kernel is than *other* (>1 means faster)."""
        if self.duration_us <= 0:
            return float("inf")
        return other.duration_us / self.duration_us

    def as_dict(self) -> Dict[str, object]:
        """A JSON-friendly summary (used by goldens and benchmark reports)."""
        return {
            "name": self.name,
            "device": self.device,
            "duration_us": self.duration_us,
            "compute_us": self.compute_us,
            "memory_us": self.memory_us,
            "launch_us": self.launch_us,
            "total_flops": self.total_flops,
            "total_dram_bytes": self.total_dram_bytes,
            "num_blocks": self.num_blocks,
            "num_launches": self.num_launches,
            "occupancy": self.occupancy,
            "memory_footprint_bytes": self.memory_footprint_bytes,
        }


class GPUModel:
    """Estimates kernel execution time on a :class:`DeviceSpec`."""

    def __init__(self, device: DeviceSpec):
        self.device = device

    # -- occupancy -----------------------------------------------------------------
    def blocks_per_sm(self, group: BlockGroup) -> int:
        device = self.device
        by_threads = max(1, device.max_threads_per_sm // group.threads_per_block)
        by_blocks = device.max_blocks_per_sm
        by_shared = (
            max(1, device.shared_mem_per_sm_bytes // group.shared_mem_bytes)
            if group.shared_mem_bytes > 0
            else device.max_blocks_per_sm
        )
        registers_per_block = group.registers_per_thread * group.threads_per_block
        by_registers = (
            max(1, device.registers_per_sm // registers_per_block)
            if registers_per_block > 0
            else device.max_blocks_per_sm
        )
        return max(1, min(by_threads, by_blocks, by_shared, by_registers))

    def occupancy(self, group: BlockGroup) -> float:
        per_sm = self.blocks_per_sm(group)
        return min(
            1.0, per_sm * group.threads_per_block / self.device.max_threads_per_sm
        )

    # -- per-group timing -------------------------------------------------------------
    def group_time_us(self, group: BlockGroup) -> Dict[str, float]:
        """Duration of one block group plus its compute/memory breakdown.

        The estimate combines a whole-device roofline (all blocks overlap and
        share peak compute/bandwidth) with a critical-path bound (the largest
        single block running with the resources one block can actually
        sustain).  Severely imbalanced kernels — the long rows of power-law
        graphs under row-split schedules — are limited by the critical path;
        balanced kernels by the roofline.
        """
        device = self.device
        if group.num_blocks == 0:
            return {
                "duration": 0.0, "roofline": 0.0, "critical": 0.0,
                "overhead": 0.0, "compute": 0.0, "memory": 0.0,
            }
        per_sm = self.blocks_per_sm(group)
        slots = max(1, device.sm_count * per_sm)
        occupancy = self.occupancy(group)

        compute_rate = device.flops_per_us(group.dtype, group.uses_tensor_core)
        compute_rate *= group.compute_efficiency
        if not group.unrolled:
            compute_rate *= 0.75
        if not group.register_caching:
            compute_rate *= 0.80
        # Low occupancy limits latency hiding and therefore achieved rates.
        utilisation = min(1.0, 0.25 + 0.75 * occupancy)
        device_compute_rate = compute_rate * utilisation

        memory_rate = device.hbm_bandwidth_bytes_per_us * group.memory_efficiency
        memory_rate *= _vector_efficiency(group.vector_width)
        device_memory_rate = memory_rate * utilisation

        flops = group.flops_array()
        bytes_moved = group.read_bytes_array() + group.write_bytes_array()
        if not group.register_caching:
            # Partial results spill to global memory between updates.
            bytes_moved = bytes_moved + group.write_bytes_array()

        total_flops = float(flops.sum())
        total_bytes = float(bytes_moved.sum())
        compute_us = total_flops / device_compute_rate
        memory_us = total_bytes / device_memory_rate
        roofline_us = max(compute_us, memory_us)

        # Critical path: the heaviest block with the throughput one block can
        # sustain by itself (one SM's compute, a bounded bandwidth share).
        solo_compute_rate = compute_rate / device.sm_count
        solo_memory_rate = memory_rate * _SOLO_BANDWIDTH_FRACTION
        critical_us = float(
            np.max(
                np.maximum(flops / solo_compute_rate, bytes_moved / solo_memory_rate)
            )
        )

        # Block-scheduling overhead is proportional to the number of waves the
        # grid needs; a group smaller than one wave costs a proportionally
        # smaller slice (several such groups share one wave after horizontal
        # fusion).
        waves = group.num_blocks / slots
        overhead_us = waves * device.block_schedule_overhead_us

        duration = max(roofline_us, critical_us) + overhead_us
        return {
            "duration": float(duration),
            "roofline": float(roofline_us),
            "critical": float(critical_us),
            "overhead": float(overhead_us),
            "compute": float(compute_us),
            "memory": float(memory_us),
        }

    # -- whole workload -----------------------------------------------------------------
    def estimate(self, workload: KernelWorkload) -> PerfReport:
        """Whole-workload estimate.

        The block groups of one workload execute on the device together (they
        are either phases of one horizontally fused grid or back-to-back
        launches of the same operator), so their roofline times — which model
        contention for the whole device's bandwidth and compute — add up,
        while their critical paths overlap and only the longest one matters.
        """
        compute_us = 0.0
        memory_us = 0.0
        roofline_us = 0.0
        overhead_us = 0.0
        critical_us = 0.0
        occupancies: List[float] = []
        for group in workload.groups:
            timing = self.group_time_us(group)
            roofline_us += timing["roofline"]
            overhead_us += timing["overhead"]
            critical_us = max(critical_us, timing["critical"])
            compute_us += timing["compute"]
            memory_us += timing["memory"]
            occupancies.append(self.occupancy(group))
        duration_us = max(roofline_us, critical_us) + overhead_us
        launch_us = workload.num_launches * self.device.kernel_launch_us
        duration_us += launch_us
        if workload.groups:
            # First-access DRAM latency is paid once per launched grid, not
            # once per block group.
            duration_us += self.device.dram_latency_us * max(1, workload.num_launches)
        return PerfReport(
            name=workload.name,
            device=self.device.name,
            duration_us=duration_us,
            compute_us=compute_us,
            memory_us=memory_us,
            launch_us=launch_us,
            total_flops=workload.total_flops(),
            total_dram_bytes=workload.total_dram_bytes(),
            num_blocks=workload.total_blocks(),
            num_launches=workload.num_launches,
            occupancy=float(np.mean(occupancies)) if occupancies else 0.0,
            memory_footprint_bytes=workload.memory_footprint_bytes,
            l1_hit_rate=workload.metadata.get("l1_hit_rate"),
            l2_hit_rate=workload.metadata.get("l2_hit_rate"),
            metadata=dict(workload.metadata),
        )


def estimate_us(workload: KernelWorkload, device: DeviceSpec) -> float:
    """Shorthand for ``GPUModel(device).estimate(workload).duration_us``.

    The format autoscheduler's phase-1 objective and the cost-model golden
    tests both price candidates through this single entry point, so a model
    change that reorders candidate rankings is caught in one place.
    """
    return GPUModel(device).estimate(workload).duration_us


# ---------------------------------------------------------------------------
# Profiling compiled kernels directly from their IR
# ---------------------------------------------------------------------------

def profile_kernel(kernel, device: DeviceSpec, feature_overrides: Optional[Dict] = None) -> PerfReport:
    """Estimate the execution time of a compiled :class:`Kernel` from its IR.

    The extraction walks each launch group of the stage-III program, derives
    grid/block dimensions from thread-bound loops, estimates trip counts of
    data-dependent loops from the bound sparse structure, and counts FLOPs and
    global memory traffic from the loads/stores of the innermost blocks.  It
    is intentionally coarse — the headline benchmarks build their workload
    descriptions analytically — but gives schedule-sensitive estimates for
    kernels built through the public compilation pipeline.
    """
    from .kernel_features import extract_workload

    workload = extract_workload(kernel, feature_overrides or {})
    return GPUModel(device).estimate(workload)
