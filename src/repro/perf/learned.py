"""A learned cost model over the tuning-record measurement corpus.

The analytic :func:`~repro.perf.gpu_model.estimate_us` prices phase-1
candidates from first principles; every phase-2 measurement the
autoscheduler performs then tells us how far off that price was.  This
module closes the loop: :func:`workload_features` turns a
:class:`~repro.perf.workload.KernelWorkload` into a fixed-length,
deterministic feature vector, and :class:`RidgeCostModel` fits a closed-form
ridge regression (NumPy only — no external ML dependency) on the *residual*
``log(measured / predicted)`` over the accumulated corpus.  At prediction
time the model multiplies the analytic estimate by the learned correction
factor, so with an empty or uninformative corpus it degrades gracefully to
the analytic ranking.

Only relative numbers matter for phase-1 ranking, so the unit mismatch
between ``predicted_us`` (model microseconds) and ``measured_s`` (simulated
wallclock seconds) is deliberately absorbed by the regression's intercept.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .device import DeviceSpec
from .gpu_model import GPUModel
from .workload import KernelWorkload

#: Bump when the feature layout below changes; corpus files recorded with a
#: different version are discarded rather than misinterpreted.
FEATURE_VERSION = 1

#: Names of the entries of a feature vector, in order.
FEATURE_NAMES = (
    "log_flops",
    "log_read_bytes",
    "log_write_bytes",
    "log_blocks",
    "log_launches",
    "log_threads_per_block",
    "log_serial_work",          # flops per thread: flops / (blocks * threads)
    "arithmetic_intensity",     # log1p(flops / bytes)
    "flops_imbalance",          # log(max/mean per-block flops)
    "bytes_imbalance",          # log(max/mean per-block bytes)
    "log_footprint_bytes",
    "log_shared_mem",
    "mean_occupancy",
    "log_vector_width",
    "tensor_core_fraction",
    "register_caching_fraction",
    "unrolled_fraction",
    "num_groups",
)

_EPS = 1e-12


def workload_features(workload: KernelWorkload, device: DeviceSpec) -> np.ndarray:
    """A deterministic ``float64`` vector of length ``len(FEATURE_NAMES)``.

    Totals are log-scaled so graphs spanning orders of magnitude remain
    comparable; ratios (imbalance, intensity, occupancy) are unit-free.
    """
    values: Dict[str, float] = {name: 0.0 for name in FEATURE_NAMES}
    groups = workload.groups
    if groups:
        model = GPUModel(device)
        flops = np.concatenate([g.flops_array() for g in groups])
        read_bytes = np.concatenate([g.read_bytes_array() for g in groups])
        write_bytes = np.concatenate([g.write_bytes_array() for g in groups])
        per_block_bytes = read_bytes + write_bytes
        total_flops = float(flops.sum())
        total_bytes = float(per_block_bytes.sum())
        total_blocks = max(1, workload.total_blocks())
        block_weights = np.array([max(1, g.num_blocks) for g in groups], dtype=np.float64)
        threads = np.array([g.threads_per_block for g in groups], dtype=np.float64)
        mean_threads = float(np.average(threads, weights=block_weights))

        values["log_flops"] = np.log1p(total_flops)
        values["log_read_bytes"] = np.log1p(float(read_bytes.sum()))
        values["log_write_bytes"] = np.log1p(float(write_bytes.sum()))
        values["log_blocks"] = np.log1p(float(total_blocks))
        values["log_launches"] = np.log1p(float(workload.num_launches))
        values["log_threads_per_block"] = np.log1p(mean_threads)
        values["log_serial_work"] = np.log1p(total_flops / (total_blocks * mean_threads + _EPS))
        values["arithmetic_intensity"] = np.log1p(total_flops / (total_bytes + _EPS))
        values["flops_imbalance"] = np.log1p(float(flops.max()) / (float(flops.mean()) + _EPS))
        values["bytes_imbalance"] = np.log1p(
            float(per_block_bytes.max()) / (float(per_block_bytes.mean()) + _EPS)
        )
        values["log_footprint_bytes"] = np.log1p(float(workload.memory_footprint_bytes))
        values["log_shared_mem"] = np.log1p(
            float(np.average([g.shared_mem_bytes for g in groups], weights=block_weights))
        )
        values["mean_occupancy"] = float(
            np.average([model.occupancy(g) for g in groups], weights=block_weights)
        )
        values["log_vector_width"] = float(
            np.average([np.log2(max(1, g.vector_width)) for g in groups], weights=block_weights)
        )
        values["tensor_core_fraction"] = float(
            np.average([1.0 if g.uses_tensor_core else 0.0 for g in groups], weights=block_weights)
        )
        values["register_caching_fraction"] = float(
            np.average([1.0 if g.register_caching else 0.0 for g in groups], weights=block_weights)
        )
        values["unrolled_fraction"] = float(
            np.average([1.0 if g.unrolled else 0.0 for g in groups], weights=block_weights)
        )
        values["num_groups"] = float(len(groups))
    return np.array([values[name] for name in FEATURE_NAMES], dtype=np.float64)


class RidgeCostModel:
    """Closed-form ridge regression on the log-residual of the analytic model.

    ``fit`` standardises the features, appends an (unpenalised) intercept and
    solves the normal equations directly — the training is deterministic:
    the same corpus always yields byte-identical weights, which the corpus
    fault battery pins.
    """

    #: Process-wide count of ``fit`` invocations; the tune-smoke benchmark
    #: asserts replaying a tuned workload performs zero retraining.
    fit_count = 0

    def __init__(
        self,
        l2: float = 1e-3,
        min_samples: int = 8,
        max_residual_std: float = 0.75,
    ):
        if l2 < 0:
            raise ValueError("l2 must be >= 0")
        self.l2 = float(l2)
        self.min_samples = int(min_samples)
        self.max_residual_std = float(max_residual_std)
        self.weights: Optional[np.ndarray] = None
        self.feature_mean: Optional[np.ndarray] = None
        self.feature_std: Optional[np.ndarray] = None
        self.n_samples = 0
        self.residual_std = float("inf")

    # -- training ----------------------------------------------------------------
    def fit(
        self,
        features: Sequence[Sequence[float]],
        predicted_us: Sequence[float],
        measured_s: Sequence[float],
    ) -> "RidgeCostModel":
        """Fit the residual ``log(measured_s) - log(predicted_us)``."""
        X = np.asarray(features, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("features must be a 2-D matrix")
        predicted = np.asarray(predicted_us, dtype=np.float64)
        measured = np.asarray(measured_s, dtype=np.float64)
        if not (X.shape[0] == predicted.size == measured.size):
            raise ValueError("features, predicted_us and measured_s must align")
        valid = (predicted > 0) & (measured > 0) & np.isfinite(X).all(axis=1)
        X, predicted, measured = X[valid], predicted[valid], measured[valid]
        if X.shape[0] == 0:
            raise ValueError("no valid training samples")

        target = np.log(measured) - np.log(predicted)
        self.feature_mean = X.mean(axis=0)
        std = X.std(axis=0)
        self.feature_std = np.where(std > _EPS, std, 1.0)
        Xs = (X - self.feature_mean) / self.feature_std
        Xb = np.hstack([np.ones((Xs.shape[0], 1)), Xs])

        penalty = self.l2 * np.eye(Xb.shape[1])
        penalty[0, 0] = 0.0  # the intercept absorbs the unit offset unshrunk
        self.weights = np.linalg.solve(Xb.T @ Xb + penalty, Xb.T @ target)
        self.n_samples = int(X.shape[0])
        self.residual_std = float(np.std(target - Xb @ self.weights))
        RidgeCostModel.fit_count += 1
        return self

    # -- prediction --------------------------------------------------------------
    @property
    def fitted(self) -> bool:
        return self.weights is not None

    @property
    def confident(self) -> bool:
        """Whether the model has seen enough data to trust its corrections."""
        return (
            self.fitted
            and self.n_samples >= self.min_samples
            and self.residual_std <= self.max_residual_std
        )

    def correction(self, features: Sequence[float]) -> float:
        """The multiplicative correction factor for one feature vector."""
        if not self.fitted:
            return 1.0
        x = (np.asarray(features, dtype=np.float64) - self.feature_mean) / self.feature_std
        residual = float(self.weights[0] + x @ self.weights[1:])
        # Clip so one extrapolated outlier cannot invert the whole ranking.
        return float(np.exp(np.clip(residual, -8.0, 8.0)))

    def predict_us(self, features: Sequence[float], analytic_us: float) -> float:
        """The corrected score: analytic estimate times the learned factor.

        Because the intercept absorbs the us-vs-seconds offset the output is
        only meaningful for *ranking* candidates, which is all phase 1 needs.
        """
        return analytic_us * self.correction(features)

    # -- serialisation (debugging / determinism tests) ---------------------------
    def to_json(self) -> Dict[str, object]:
        if not self.fitted:
            return {"fitted": False}
        return {
            "fitted": True,
            "feature_version": FEATURE_VERSION,
            "l2": self.l2,
            "n_samples": self.n_samples,
            "residual_std": self.residual_std,
            "weights": [float(w) for w in self.weights],
            "feature_mean": [float(v) for v in self.feature_mean],
            "feature_std": [float(v) for v in self.feature_std],
        }


def feature_list(vector: np.ndarray) -> List[float]:
    """A JSON-ready representation of one feature vector."""
    return [float(v) for v in np.asarray(vector, dtype=np.float64)]
