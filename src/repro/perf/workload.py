"""Kernel workload descriptions consumed by the GPU performance model.

A :class:`KernelWorkload` describes one logical operator launch as a list of
:class:`BlockGroup` items.  Each group corresponds to a set of thread blocks
sharing the same code (e.g. "one block per row bucket of the ELL sub-matrix")
and records the work each block performs.  Per-block arrays are used when the
work is data dependent (e.g. one CSR row per block), which is what lets the
model capture load imbalance — the central performance phenomenon behind the
hyb format of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

ArrayLike = Union[float, int, Sequence[float], np.ndarray]


@dataclass
class BlockGroup:
    """A homogeneous group of thread blocks within one kernel.

    Parameters
    ----------
    name:
        Human-readable identifier (shows up in reports).
    num_blocks:
        Number of thread blocks in the group.
    threads_per_block:
        CUDA threads per block.
    flops_per_block:
        Floating point operations per block; a scalar (uniform) or an array
        of length ``num_blocks`` (imbalanced).
    dram_read_bytes_per_block / dram_write_bytes_per_block:
        Bytes each block moves to/from HBM after accounting for on-chip reuse.
    shared_mem_bytes:
        Shared memory (SRAM) each block allocates.
    registers_per_thread:
        Register usage, limits occupancy.
    uses_tensor_core:
        Whether the block's inner product runs on tensor cores.
    dtype:
        Compute dtype ("float32", "float64" or "float16").
    vector_width:
        Width of vectorised global loads (1 = scalar, 4 = float4).
    register_caching:
        Whether partial results are accumulated in registers (saves write
        traffic and instruction overhead; TACO's generated SpMM lacks this).
    unrolled:
        Whether the inner loops are unrolled.
    compute_efficiency / memory_efficiency:
        Optional extra derating factors (0-1] applied to the peak rates, used
        by baselines to model known algorithmic inefficiencies.
    """

    name: str
    num_blocks: int
    threads_per_block: int
    flops_per_block: ArrayLike
    dram_read_bytes_per_block: ArrayLike
    dram_write_bytes_per_block: ArrayLike = 0.0
    shared_mem_bytes: int = 0
    registers_per_thread: int = 32
    uses_tensor_core: bool = False
    dtype: str = "float32"
    vector_width: int = 1
    register_caching: bool = True
    unrolled: bool = True
    compute_efficiency: float = 1.0
    memory_efficiency: float = 1.0
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_blocks < 0:
            raise ValueError(f"group {self.name!r}: num_blocks must be >= 0")
        if self.threads_per_block <= 0:
            raise ValueError(f"group {self.name!r}: threads_per_block must be positive")
        if not 0.0 < self.compute_efficiency <= 1.0:
            raise ValueError(f"group {self.name!r}: compute_efficiency must be in (0, 1]")
        if not 0.0 < self.memory_efficiency <= 1.0:
            raise ValueError(f"group {self.name!r}: memory_efficiency must be in (0, 1]")

    # -- per-block arrays ----------------------------------------------------------
    def flops_array(self) -> np.ndarray:
        return _as_block_array(self.flops_per_block, self.num_blocks, "flops_per_block", self.name)

    def read_bytes_array(self) -> np.ndarray:
        return _as_block_array(
            self.dram_read_bytes_per_block, self.num_blocks, "dram_read_bytes_per_block", self.name
        )

    def write_bytes_array(self) -> np.ndarray:
        return _as_block_array(
            self.dram_write_bytes_per_block, self.num_blocks, "dram_write_bytes_per_block", self.name
        )

    # -- aggregates ----------------------------------------------------------------
    def total_flops(self) -> float:
        return float(self.flops_array().sum())

    def total_dram_bytes(self) -> float:
        return float(self.read_bytes_array().sum() + self.write_bytes_array().sum())


@dataclass
class KernelWorkload:
    """One operator launch: a list of block groups plus launch metadata."""

    name: str
    groups: List[BlockGroup] = field(default_factory=list)
    num_launches: int = 1
    memory_footprint_bytes: float = 0.0
    metadata: Dict[str, object] = field(default_factory=dict)

    def add(self, group: BlockGroup) -> "BlockGroup":
        self.groups.append(group)
        return group

    def total_flops(self) -> float:
        return sum(group.total_flops() for group in self.groups)

    def total_dram_bytes(self) -> float:
        return sum(group.total_dram_bytes() for group in self.groups)

    def total_blocks(self) -> int:
        return sum(group.num_blocks for group in self.groups)

    def merged(self, other: "KernelWorkload", name: Optional[str] = None) -> "KernelWorkload":
        """Concatenate two workloads (e.g. the kernels of a multi-format op)."""
        return KernelWorkload(
            name=name or f"{self.name}+{other.name}",
            groups=list(self.groups) + list(other.groups),
            num_launches=self.num_launches + other.num_launches,
            memory_footprint_bytes=self.memory_footprint_bytes + other.memory_footprint_bytes,
            metadata={**self.metadata, **other.metadata},
        )


def _as_block_array(value: ArrayLike, count: int, field_name: str, group: str) -> np.ndarray:
    if np.isscalar(value):
        return np.full(count, float(value), dtype=np.float64)
    array = np.asarray(value, dtype=np.float64).reshape(-1)
    if array.size != count:
        raise ValueError(
            f"group {group!r}: {field_name} has {array.size} entries for {count} blocks"
        )
    return array
