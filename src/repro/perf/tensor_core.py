"""Tensor-core (MMA) execution model.

The paper uses ``tensorize`` to map block computations onto Tensor Core MMA
instructions (``m16n16k16`` for BSR operators, ``m8n32k16`` for SR-BCRS).
Here each intrinsic is described by its tile shape; the model computes how
many MMA tiles a block computation needs (including padding waste when the
problem shape does not divide the tile shape) and charges them at the
device's tensor-core throughput.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from .device import DeviceSpec


@dataclass(frozen=True)
class MMAShape:
    """One warp-level matrix-multiply-accumulate tile."""

    m: int
    n: int
    k: int
    dtype: str = "float16"

    @property
    def flops(self) -> int:
        return 2 * self.m * self.n * self.k


#: Intrinsics available to ``Schedule.tensorize``.
MMA_SHAPES: Dict[str, MMAShape] = {
    "mma_m16n16k16": MMAShape(16, 16, 16),
    "mma_m8n32k16": MMAShape(8, 32, 16),
    "mma_m32n8k16": MMAShape(32, 8, 16),
    "wmma_m16n16k16_f32": MMAShape(16, 16, 16, dtype="float32"),
}


def mma_tiles(m: int, n: int, k: int, shape: MMAShape) -> int:
    """Number of MMA tiles needed to cover an (m, n, k) matrix multiply."""
    return math.ceil(m / shape.m) * math.ceil(n / shape.n) * math.ceil(k / shape.k)


def tensor_core_time_us(
    m: int, n: int, k: int, device: DeviceSpec, intrin: str = "mma_m16n16k16",
    efficiency: float = 0.75,
) -> float:
    """Execution time of an (m, n, k) matmul on tensor cores, in microseconds.

    ``efficiency`` accounts for issue overheads and fragment load/store; 0.75
    of peak is a typical sustained figure for well-formed WMMA kernels.
    """
    shape = MMA_SHAPES[intrin]
    tiles = mma_tiles(m, n, k, shape)
    effective_flops = tiles * shape.flops
    return effective_flops / (device.tensor_core_flops_per_us * efficiency)


def cuda_core_time_us(
    flops: float, device: DeviceSpec, dtype: str = "float32", efficiency: float = 0.7
) -> float:
    """Execution time of ``flops`` floating point operations on CUDA cores."""
    return flops / (device.flops_per_us(dtype) * efficiency)


def padding_waste(rows: int, cols: int, tile_rows: int, tile_cols: int) -> float:
    """Fraction of padded (wasted) multiply-accumulate work for a tiled shape."""
    padded = math.ceil(rows / tile_rows) * tile_rows * math.ceil(cols / tile_cols) * tile_cols
    if padded == 0:
        return 0.0
    return 1.0 - (rows * cols) / padded
