"""Sputnik baseline (Gale et al., SC'20): sparse kernels for deep learning.

Modelled characteristics:

* **SpMM:** 1-D tiling with row-splitting across subwarps, vector loads and
  residue handling.  Designed for the moderate sparsity of pruned networks
  (70-95%); on hyper-sparse power-law graph adjacencies the per-row tiles are
  mostly empty and the row-length skew causes imbalance, which is why Sputnik
  trails the GNN-specific libraries in Figure 13.
* **SDDMM:** same tiling philosophy; very low relative performance on graph
  workloads (Figure 14).
* Sputnik does not use Tensor Cores.
"""

from __future__ import annotations

import numpy as np

from ..formats.csr import CSRMatrix
from ..ops.sddmm import sddmm_reference, sddmm_workload
from ..ops.spmm import spmm_csr_workload, spmm_reference
from ..perf.device import DeviceSpec
from ..perf.workload import KernelWorkload


def spmm(csr: CSRMatrix, features: np.ndarray) -> np.ndarray:
    return spmm_reference(csr, features)


def spmm_workload(csr: CSRMatrix, feat_size: int, device: DeviceSpec) -> KernelWorkload:
    """Sputnik SpMM: row-split 1-D tiling tuned for moderate sparsity.

    The 1-D tile residue handling wastes lanes on very short rows (graph
    adjacencies average a handful of non-zeros per row), modelled as a lower
    compute efficiency than the GNN-specific kernels.
    """
    average_degree = csr.mean_row_length()
    short_row_penalty = min(1.0, max(0.40, average_degree / 32.0))
    return spmm_csr_workload(
        csr,
        feat_size,
        device,
        rows_per_block=2,
        threads_per_block=64,
        vector_width=4,
        register_caching=True,
        unrolled=True,
        compute_efficiency=0.9 * short_row_penalty,
        memory_efficiency=0.65 + 0.3 * short_row_penalty,
        max_nnz_per_block=512,  # row-swizzle load balancing
        name="sputnik_spmm",
    )


def sddmm(csr: CSRMatrix, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return sddmm_reference(csr, x, y)


def sddmm_workload_graph(csr: CSRMatrix, feat_size: int, device: DeviceSpec) -> KernelWorkload:
    """Sputnik SDDMM on graph adjacencies: 1-D tiles are mostly wasted."""
    return sddmm_workload(
        csr,
        feat_size,
        device,
        nnz_per_block=8,
        threads_per_block=64,
        vector_width=2,
        two_stage_reduction=False,
        compute_efficiency=0.25,
        memory_efficiency=0.6,
        name="sputnik_sddmm",
    )
