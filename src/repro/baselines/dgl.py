"""DGL / FeatGraph baseline.

DGL's sparse kernels for SpMM delegate to cuSPARSE (or a built-in kernel with
similar structure); its SDDMM uses the FeatGraph optimisations
(feature-dimension parallelism, no vectorised loads, no two-stage reduction)
and is the normalisation baseline of Figure 14.  End-to-end model execution
adds per-operator framework overhead (kernel dispatch, autograd bookkeeping,
graph-object handling), which is what SparseTIR's integration into PyTorch
avoids only partially — the end-to-end speedups of Figure 15 are therefore
smaller than the kernel-level speedups of Figure 13.
"""

from __future__ import annotations

import numpy as np

from ..formats.csr import CSRMatrix
from ..ops.sddmm import sddmm_reference, sddmm_workload
from ..ops.spmm import spmm_reference
from ..perf.device import DeviceSpec
from ..perf.workload import KernelWorkload
from . import cusparse

#: Per-operator framework overhead of DGL's message-passing execution, in
#: microseconds (kernel dispatch + graph bookkeeping on the host).
FRAMEWORK_OVERHEAD_US = 30.0


def spmm(csr: CSRMatrix, features: np.ndarray) -> np.ndarray:
    return spmm_reference(csr, features)


def spmm_workload(csr: CSRMatrix, feat_size: int, device: DeviceSpec) -> KernelWorkload:
    """DGL's SpMM: cuSPARSE-backed kernel."""
    workload = cusparse.spmm_workload(csr, feat_size, device)
    workload.name = "dgl_spmm"
    return workload


def sddmm(csr: CSRMatrix, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return sddmm_reference(csr, x, y)


def sddmm_workload_featgraph(csr: CSRMatrix, feat_size: int, device: DeviceSpec) -> KernelWorkload:
    """DGL 0.9 SDDMM with the FeatGraph schedule (the Figure 14 baseline).

    Edges are parallelised across threads and the feature dimension across a
    thread block, but loads are scalar and the reduction is single-stage.
    """
    return sddmm_workload(
        csr,
        feat_size,
        device,
        nnz_per_block=32,
        threads_per_block=256,
        vector_width=1,
        two_stage_reduction=False,
        compute_efficiency=0.85,
        memory_efficiency=0.85,
        name="dgl_featgraph_sddmm",
    )
