"""Baseline systems the paper compares against.

Each baseline is implemented as a concrete kernel strategy — the format it
uses, how it maps work to thread blocks, and which optimisations it applies
(vectorised loads, register caching, two-stage reductions, tensor cores,
intermediate materialisation) — evaluated on the same GPU performance model
as the SparseTIR kernels.  The modelled characteristics are documented in
each module and come from the baselines' papers or source code:

* ``cusparse``   — NVIDIA cuSPARSE CSR SpMM/SDDMM and CSRMM.
* ``dgsparse``   — dgSPARSE (GE-SpMM SpMM, PRedS SDDMM).
* ``sputnik``    — Sputnik's 1-D tiled SpMM/SDDMM for deep learning sparsity.
* ``taco``       — TACO with the Senanayake et al. scheduling extension.
* ``dgl``        — DGL / FeatGraph kernels plus framework overhead.
* ``pyg``        — PyTorch Geometric (gather/scatter based message passing).
* ``graphiler``  — Graphiler's compiled message-passing data-flow graph.
* ``triton``     — Triton block-sparse matmul kernels.
* ``cublas``     — dense cuBLAS GEMM (the dense baseline for pruned models).
* ``torchsparse``— TorchSparse gather-GEMM-scatter sparse convolution.
"""

from . import (
    cublas,
    cusparse,
    dgl,
    dgsparse,
    graphiler,
    pyg,
    sputnik,
    taco,
    torchsparse,
    triton,
)

__all__ = [
    "cusparse",
    "dgsparse",
    "sputnik",
    "taco",
    "dgl",
    "pyg",
    "graphiler",
    "triton",
    "cublas",
    "torchsparse",
]
