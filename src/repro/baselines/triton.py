"""Triton block-sparse baseline.

Triton's block-sparse matmul kernels (used by sparse attention
implementations) run on Tensor Cores with a fixed block size and a generic
tile pipeline.  Compared with a SparseTIR kernel specialised to the concrete
sparse structure, the generic kernel has lower sustained MMA efficiency
(software pipelining tuned for dense-ish tile streams, look-up-table
indirection per tile) and launches one kernel per operator without
structure-specific fusion.  It is the normalisation baseline of Figure 16 and
a comparison point of Figure 17.
"""

from __future__ import annotations


from ..formats.bsr import BSRMatrix
from ..ops.batched import batched_sddmm_bsr_workload, batched_spmm_bsr_workload
from ..perf.device import DeviceSpec
from ..perf.workload import KernelWorkload

#: Sustained fraction of Tensor Core peak for Triton's generic block-sparse
#: kernels on the evaluated shapes.
MMA_EFFICIENCY = 0.45


def blocksparse_spmm_workload(
    bsr: BSRMatrix, feat_size: int, num_heads: int, device: DeviceSpec
) -> KernelWorkload:
    """Triton block-sparse SpMM (one launch per head in the library wrapper)."""
    workload = batched_spmm_bsr_workload(
        bsr, feat_size, num_heads, device, mma_efficiency=MMA_EFFICIENCY,
        name="triton_blocksparse_spmm",
    )
    workload.num_launches = num_heads
    return workload


def blocksparse_sddmm_workload(
    bsr: BSRMatrix, feat_size: int, num_heads: int, device: DeviceSpec
) -> KernelWorkload:
    """Triton block-sparse SDDMM."""
    workload = batched_sddmm_bsr_workload(
        bsr, feat_size, num_heads, device, mma_efficiency=MMA_EFFICIENCY,
        name="triton_blocksparse_sddmm",
    )
    workload.num_launches = num_heads
    return workload


def bsrmm_workload(
    bsr: BSRMatrix, dense_cols: int, device: DeviceSpec
) -> KernelWorkload:
    """Triton BSRMM for block-pruned weights (Figure 17).

    The kernel cannot skip all-zero block rows (no doubly-compressed row
    index), so empty block rows still launch tiles that immediately exit —
    modelled as per-block-row work that includes a fixed tile overhead.
    """
    workload = batched_spmm_bsr_workload(
        bsr, dense_cols, 1, device, mma_efficiency=MMA_EFFICIENCY, name="triton_bsrmm"
    )
    return workload
