"""TorchSparse baseline (point-cloud sparse convolution).

TorchSparse executes sparse convolution as explicit gather -> adaptive
grouped cuBLAS GEMM -> scatter, materialising both the gathered inputs and
the per-offset GEMM outputs in HBM (it does not fuse the three phases
on-chip, unlike the SparseTIR schedule of Figure 21).  The GEMM phase runs at
cuBLAS efficiency, which is why TorchSparse wins once the channel count makes
the matmul dominate (Figure 23's crossover above ~128 channels).
"""

from __future__ import annotations

from ..ops.sparse_conv import SparseConvProblem, sparse_conv_gather_gemm_scatter_workload
from ..perf.device import DeviceSpec
from ..perf.workload import KernelWorkload

GEMM_EFFICIENCY = 0.90


def sparse_conv_workload(problem: SparseConvProblem, device: DeviceSpec) -> KernelWorkload:
    """TorchSparse's gather-GEMM-scatter sparse convolution."""
    workload = sparse_conv_gather_gemm_scatter_workload(
        problem, device, gemm_efficiency=GEMM_EFFICIENCY, name="torchsparse_conv"
    )
    return workload
