"""dgSPARSE baseline: GE-SpMM for SpMM and PRedS for SDDMM.

Modelled characteristics (from the GE-SpMM and PRedS papers):

* **SpMM (GE-SpMM):** coalesced row-split with shared-memory staging of the
  column indices, one row per thread block row-group, warp-wide coalesced
  access of the dense operand.  No bucketing and no column partitioning, so
  load imbalance and dense-operand cache behaviour are those of plain CSR.
* **SDDMM (PRedS):** vectorised (float4/float2) loads and a two-stage
  intra/inter-group reduction — the optimisations SparseTIR expresses as
  ``vectorize`` + ``rfactor``, but with fixed (untuned) parameters.
"""

from __future__ import annotations

import numpy as np

from ..formats.csr import CSRMatrix
from ..ops.sddmm import sddmm_reference, sddmm_workload
from ..ops.spmm import spmm_csr_workload, spmm_reference
from ..perf.device import DeviceSpec
from ..perf.workload import KernelWorkload


def spmm(csr: CSRMatrix, features: np.ndarray) -> np.ndarray:
    return spmm_reference(csr, features)


def spmm_workload(csr: CSRMatrix, feat_size: int, device: DeviceSpec) -> KernelWorkload:
    """GE-SpMM: one row per block, coalesced feature access, shared-memory indices."""
    return spmm_csr_workload(
        csr,
        feat_size,
        device,
        rows_per_block=1,
        threads_per_block=128,
        vector_width=4,
        register_caching=True,
        unrolled=True,
        compute_efficiency=0.88,
        memory_efficiency=0.95,
        max_nnz_per_block=1024,
        name="dgsparse_gespmm",
    )


def sddmm(csr: CSRMatrix, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return sddmm_reference(csr, x, y)


def sddmm_workload_csr(csr: CSRMatrix, feat_size: int, device: DeviceSpec) -> KernelWorkload:
    """PRedS on the CSR layout (dgSPARSE-csr in Figure 14)."""
    return sddmm_workload(
        csr,
        feat_size,
        device,
        nnz_per_block=32,
        threads_per_block=256,
        vector_width=4,
        two_stage_reduction=True,
        compute_efficiency=0.80,
        memory_efficiency=0.92,
        name="dgsparse_preds_csr",
    )


def sddmm_workload_coo(csr: CSRMatrix, feat_size: int, device: DeviceSpec) -> KernelWorkload:
    """PRedS on the COO layout (dgSPARSE-coo in Figure 14): better balance,
    slightly more index traffic."""
    return sddmm_workload(
        csr,
        feat_size,
        device,
        nnz_per_block=32,
        threads_per_block=256,
        vector_width=4,
        two_stage_reduction=True,
        compute_efficiency=0.85,
        memory_efficiency=0.95,
        name="dgsparse_preds_coo",
    )
