"""PyTorch Geometric (PyG) baseline.

PyG expresses message passing with explicit gather/scatter tensors: messages
are materialised per edge before being reduced, which multiplies DRAM traffic
and memory footprint by the average degree for aggregation-style operators.
Its RGCN implementation (the best-performing official one, as selected in the
paper) loops over relations from Python, paying per-relation kernel launch
and framework overhead.
"""

from __future__ import annotations

import numpy as np

from ..formats.csr import CSRMatrix
from ..ops.common import INDEX_BYTES, ceil_div, value_bytes
from ..ops.spmm import spmm_reference
from ..perf.device import DeviceSpec
from ..perf.workload import BlockGroup, KernelWorkload

#: Host-side overhead per launched operator (Python dispatch, autograd).
FRAMEWORK_OVERHEAD_US = 40.0


def spmm(csr: CSRMatrix, features: np.ndarray) -> np.ndarray:
    return spmm_reference(csr, features)


def gather_scatter_spmm_workload(
    csr: CSRMatrix, feat_size: int, device: DeviceSpec
) -> KernelWorkload:
    """PyG-style aggregation: materialise per-edge messages, then scatter-add."""
    vbytes = value_bytes("float32")
    edges = csr.nnz
    edges_per_block = 128
    num_blocks = max(1, ceil_div(edges, edges_per_block))

    workload = KernelWorkload(name="pyg_gather_scatter_spmm", num_launches=2)
    # Gather: read source features, write the per-edge message tensor.
    workload.add(
        BlockGroup(
            name="gather_messages",
            num_blocks=num_blocks,
            threads_per_block=128,
            flops_per_block=edges_per_block * feat_size,
            dram_read_bytes_per_block=edges_per_block * (feat_size * vbytes + 2 * INDEX_BYTES),
            dram_write_bytes_per_block=edges_per_block * feat_size * vbytes,
            vector_width=4,
        )
    )
    # Scatter-add: read the message tensor, atomically accumulate to outputs.
    workload.add(
        BlockGroup(
            name="scatter_add",
            num_blocks=num_blocks,
            threads_per_block=128,
            flops_per_block=edges_per_block * feat_size,
            dram_read_bytes_per_block=edges_per_block * (feat_size * vbytes + INDEX_BYTES),
            dram_write_bytes_per_block=edges_per_block * feat_size * vbytes,
            vector_width=4,
            compute_efficiency=0.6,  # atomics serialise colliding rows
        )
    )
    message_tensor = edges * feat_size * vbytes
    workload.memory_footprint_bytes = (
        csr.nbytes() + (csr.rows + csr.cols) * feat_size * vbytes + message_tensor
    )
    workload.metadata["materialized_messages_bytes"] = message_tensor
    return workload
