"""TACO baseline (Kjolstad et al.) with the sparse-iteration-space scheduling
of Senanayake et al. (auto-scheduling enabled, as in the paper's evaluation).

Modelled characteristics:

* **SpMM:** TACO's GPU schedule achieves compile-time load balancing by
  splitting the non-zero space evenly across thread blocks (``pos`` split).
  However, as the paper notes, TACO cannot cache the partially aggregated
  output row in registers (every update is written through) and the
  irregularity of CSR prevents unrolling of the inner loop — both modelled
  explicitly (``register_caching=False``, ``unrolled=False``).
* **SDDMM:** the provenance-graph IR cannot express ``rfactor``-style
  two-stage reductions or vectorised loads, so the generated kernel is a
  straightforward per-edge reduction.
"""

from __future__ import annotations

import numpy as np

from ..formats.csr import CSRMatrix
from ..ops.common import INDEX_BYTES, ceil_div, dense_reuse_miss_rate, value_bytes
from ..ops.sddmm import sddmm_reference, sddmm_workload
from ..ops.spmm import spmm_reference
from ..perf.device import DeviceSpec
from ..perf.workload import BlockGroup, KernelWorkload


def spmm(csr: CSRMatrix, features: np.ndarray) -> np.ndarray:
    return spmm_reference(csr, features)


def spmm_workload(
    csr: CSRMatrix, feat_size: int, device: DeviceSpec, nnz_per_block: int = 64
) -> KernelWorkload:
    """TACO SpMM: nnz-balanced blocks, write-through accumulation, no unrolling."""
    vbytes = value_bytes("float32")
    num_blocks = max(1, ceil_div(csr.nnz, nnz_per_block))
    flops = 2.0 * nnz_per_block * feat_size
    touched_x = csr.nnz * feat_size * vbytes
    unique_x = csr.cols * feat_size * vbytes
    x_miss = dense_reuse_miss_rate(unique_x, touched_x, device)
    # Without register caching of the output row the accumulation is
    # read-modify-written per non-zero.  Most of those round trips are
    # absorbed by the L2 cache; the fraction below spills to DRAM.
    write_through_spill = 0.03
    writeback = nnz_per_block * feat_size * vbytes * write_through_spill
    reads = (
        nnz_per_block * (INDEX_BYTES + vbytes)
        + nnz_per_block * feat_size * vbytes * x_miss
        + writeback
    )
    writes = writeback + (csr.rows / num_blocks) * feat_size * vbytes

    workload = KernelWorkload(name="taco_spmm", num_launches=1)
    workload.memory_footprint_bytes = csr.nbytes() + (csr.rows + csr.cols) * feat_size * vbytes
    workload.add(
        BlockGroup(
            name="pos_split",
            num_blocks=num_blocks,
            threads_per_block=128,
            flops_per_block=flops,
            dram_read_bytes_per_block=reads,
            dram_write_bytes_per_block=writes,
            vector_width=1,
            register_caching=True,  # spill traffic is modelled explicitly above
            unrolled=False,
            compute_efficiency=0.65,
            memory_efficiency=0.85,
        )
    )
    return workload


def sddmm(csr: CSRMatrix, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return sddmm_reference(csr, x, y)


def sddmm_workload_scheduled(csr: CSRMatrix, feat_size: int, device: DeviceSpec) -> KernelWorkload:
    """TACO SDDMM: per-edge reduction without vectorisation or rfactor."""
    return sddmm_workload(
        csr,
        feat_size,
        device,
        nnz_per_block=32,
        threads_per_block=128,
        vector_width=1,
        two_stage_reduction=False,
        compute_efficiency=0.75,
        memory_efficiency=0.8,
        name="taco_sddmm",
    )
