"""Graphiler baseline (the state-of-the-art GNN compiler for RGCN inference).

Graphiler compiles user-defined message functions into a message-passing
data-flow graph and emits fused, template-based kernels.  For RGCN it still
follows the two-stage formulation (dense per-relation feature transforms with
a materialised intermediate, then gather/scatter aggregation), but with far
lower framework overhead than DGL/PyG because the whole layer is compiled.
It is the normalisation baseline of Figure 20.
"""

from __future__ import annotations

from ..ops.rgms import RGMSProblem, rgms_two_stage_workload
from ..perf.device import DeviceSpec
from ..perf.workload import KernelWorkload

#: Interpreting the compiled message-passing data-flow graph has a fixed
#: per-forward-pass cost (graph walking, tensor bookkeeping) that dominates
#: on small graphs — the reason SparseTIR's single fused kernel wins by the
#: largest margins on AIFB/MUTAG in Figure 20.
FIXED_OVERHEAD_US = 1000.0


def rgcn_layer_workload(problem: RGMSProblem, device: DeviceSpec) -> KernelWorkload:
    """Graphiler's compiled two-stage RGCN layer."""
    workload = rgms_two_stage_workload(
        problem,
        device,
        gemm_efficiency=0.85,
        scatter_efficiency=0.8,
        name="graphiler_rgcn",
    )
    # The compiled graph fuses the per-relation kernels into a small number
    # of launches, but walking the data-flow graph costs a fixed overhead.
    workload.num_launches = 3
    workload.metadata["framework_overhead_us"] = FIXED_OVERHEAD_US
    return workload
