"""cuBLAS dense GEMM baseline.

For pruned-weight workloads (Figures 17 and 19) the dense baseline simply
runs the un-pruned GEMM; for sparse convolution it is the matmul engine
TorchSparse calls after gathering.  cuBLAS sustains a high fraction of Tensor
Core peak on the evaluated shapes, which is exactly why sparse kernels only
win when density (and therefore useful FLOPs) is low enough.
"""

from __future__ import annotations

import numpy as np

from ..ops.common import ceil_div, value_bytes
from ..perf.device import DeviceSpec
from ..perf.workload import BlockGroup, KernelWorkload

#: Sustained fraction of peak for a well-shaped half-precision GEMM.
GEMM_TC_EFFICIENCY = 0.85
GEMM_FP32_EFFICIENCY = 0.90


def gemm_reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.asarray(a, dtype=np.float32) @ np.asarray(b, dtype=np.float32)


def gemm_workload(
    m: int,
    n: int,
    k: int,
    device: DeviceSpec,
    dtype: str = "float16",
    use_tensor_cores: bool = True,
    name: str = "cublas_gemm",
) -> KernelWorkload:
    """A dense (m x k) @ (k x n) GEMM with cuBLAS-grade tiling."""
    vbytes = value_bytes(dtype)
    tile_m, tile_n = 128, 64
    tiles = max(1, ceil_div(m, tile_m) * ceil_div(n, tile_n))
    total_flops = 2.0 * m * n * k
    # Tiled GEMM reads each operand roughly once per tile wave.
    read_bytes = (m * k + k * n) * vbytes * max(1.0, min(4.0, (m / 2048 + n / 2048)))
    write_bytes = m * n * vbytes
    efficiency = GEMM_TC_EFFICIENCY if use_tensor_cores else GEMM_FP32_EFFICIENCY
    workload = KernelWorkload(name=name, num_launches=1)
    workload.add(
        BlockGroup(
            name="gemm_tiles",
            num_blocks=tiles,
            threads_per_block=256,
            flops_per_block=total_flops / tiles,
            dram_read_bytes_per_block=read_bytes / tiles,
            dram_write_bytes_per_block=write_bytes / tiles,
            shared_mem_bytes=48 * 1024,
            uses_tensor_core=use_tensor_cores and dtype == "float16",
            dtype=dtype,
            vector_width=8,
            compute_efficiency=efficiency,
        )
    )
    workload.memory_footprint_bytes = (m * k + k * n + m * n) * vbytes
    return workload
