"""cuSPARSE baseline (vendor library).

Modelled characteristics:

* **SpMM (csrmm2 / SpMM_ALG2):** row-split mapping, one warp per row within
  128-thread blocks, scalar or 2-wide loads of the dense operand.  There is
  no bucketing, so the per-block work follows the raw row-length distribution
  and power-law graphs cause load imbalance.
* **SDDMM:** tuned for moderately sparse matrices; for the hyper-sparse
  graph adjacencies of GNNs its tiling wastes most of each tile, which the
  paper reports as near-zero relative performance.
* **CSRMM for pruned weights (Figure 19):** scalar CSR kernel; only beats a
  dense GEMM at extremely low density.
"""

from __future__ import annotations

import numpy as np

from ..formats.csr import CSRMatrix
from ..ops.common import INDEX_BYTES, ceil_div, value_bytes
from ..ops.sddmm import sddmm_reference
from ..ops.spmm import spmm_csr_workload, spmm_reference
from ..perf.device import DeviceSpec
from ..perf.workload import BlockGroup, KernelWorkload

#: Relative efficiency of cuSPARSE's generic SpMM inner loop (no per-matrix
#: tuning) compared with a hand-tuned kernel.
SPMM_COMPUTE_EFFICIENCY = 0.85
SPMM_MEMORY_EFFICIENCY = 0.95


def spmm(csr: CSRMatrix, features: np.ndarray) -> np.ndarray:
    """Numerical reference (cuSPARSE computes the same values)."""
    return spmm_reference(csr, features)


def spmm_workload(csr: CSRMatrix, feat_size: int, device: DeviceSpec) -> KernelWorkload:
    """cuSPARSE csrmm: warp-per-row, 4 rows per 128-thread block.

    The library splits very long rows across blocks (its ALG2 path performs
    merge-style balancing), so the per-block work is capped.
    """
    return spmm_csr_workload(
        csr,
        feat_size,
        device,
        rows_per_block=4,
        threads_per_block=128,
        vector_width=2,
        register_caching=True,
        unrolled=True,
        compute_efficiency=SPMM_COMPUTE_EFFICIENCY,
        memory_efficiency=SPMM_MEMORY_EFFICIENCY,
        max_nnz_per_block=512,
        name="cusparse_spmm",
    )


def sddmm(csr: CSRMatrix, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return sddmm_reference(csr, x, y)


def sddmm_workload(csr: CSRMatrix, feat_size: int, device: DeviceSpec) -> KernelWorkload:
    """cuSPARSE SDDMM (constrained dense-dense tiling).

    The kernel tiles the dense operands as if the output were moderately
    dense; on graph adjacencies (density well below 1%) almost every tile is
    wasted, modelled as streaming a large fraction of the dense operands.
    """
    vbytes = value_bytes("float32")
    tile = 32
    row_tiles = ceil_div(csr.rows, tile)
    col_tiles = ceil_div(csr.cols, tile)
    occupied = np.zeros(row_tiles * col_tiles, dtype=bool)
    for row in range(csr.rows):
        start, end = csr.indptr[row], csr.indptr[row + 1]
        cols = csr.indices[start:end]
        occupied[(row // tile) * col_tiles + cols // tile] = True
    active_tiles = max(1, int(occupied.sum()))
    flops = 2.0 * tile * tile * feat_size
    reads = 2 * tile * feat_size * vbytes + tile * tile * INDEX_BYTES
    writes = tile * tile * vbytes
    workload = KernelWorkload(name="cusparse_sddmm", num_launches=1)
    workload.add(
        BlockGroup(
            name="dense_tiles",
            num_blocks=active_tiles,
            threads_per_block=128,
            flops_per_block=flops,
            dram_read_bytes_per_block=reads,
            dram_write_bytes_per_block=writes,
            vector_width=2,
            compute_efficiency=0.6,
            memory_efficiency=0.8,
        )
    )
    workload.memory_footprint_bytes = csr.nbytes() + (csr.rows + csr.cols) * feat_size * vbytes
    return workload


def csrmm_pruned_workload(
    csr: CSRMatrix, dense_cols: int, device: DeviceSpec, dtype: str = "float16"
) -> KernelWorkload:
    """cuSPARSE CSRMM over a pruned weight matrix (Figure 19 baseline)."""
    return spmm_csr_workload(
        csr,
        dense_cols,
        device,
        rows_per_block=4,
        threads_per_block=128,
        vector_width=2,
        register_caching=True,
        unrolled=False,
        compute_efficiency=SPMM_COMPUTE_EFFICIENCY,
        memory_efficiency=SPMM_MEMORY_EFFICIENCY,
        max_nnz_per_block=512,
        dtype=dtype,
        name="cusparse_csrmm",
    )
