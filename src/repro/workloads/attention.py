"""Sparse attention masks: the Longformer band mask and the Pixelated
Butterfly mask (Section 4.3.1).

Both masks are manually designed block-sparse structures; the evaluation
fixes the sequence length to 4096, the band size to 256, 12 heads and a
64-dimensional head.  Generators return CSR matrices (element granularity)
from which BSR views are derived for the Tensor Core kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..formats.bsr import BSRMatrix
from ..formats.csr import CSRMatrix


@dataclass(frozen=True)
class AttentionConfig:
    """The sparse-attention operator configuration of Figure 16."""

    seq_len: int = 4096
    num_heads: int = 12
    head_dim: int = 64
    band_size: int = 256
    block_size: int = 16


def band_mask(seq_len: int, band_size: int, block_size: int = 16) -> CSRMatrix:
    """The Longformer banded attention mask.

    Every query attends to keys within ``band_size`` positions on either
    side; the mask is built at block granularity so it is exactly expressible
    in BSR with the given block size.
    """
    if seq_len % block_size:
        raise ValueError("seq_len must be divisible by the block size")
    num_blocks = seq_len // block_size
    band_blocks = max(1, band_size // block_size)
    rows = []
    cols = []
    for block_row in range(num_blocks):
        lo = max(0, block_row - band_blocks)
        hi = min(num_blocks, block_row + band_blocks + 1)
        for block_col in range(lo, hi):
            rows.append(block_row)
            cols.append(block_col)
    block_mask = sp.coo_matrix(
        (np.ones(len(rows), dtype=np.float32), (rows, cols)), shape=(num_blocks, num_blocks)
    )
    dense_blocks = np.ones((block_size, block_size), dtype=np.float32)
    full = sp.kron(block_mask, dense_blocks, format="csr")
    return CSRMatrix.from_scipy(full)


def butterfly_mask(seq_len: int, block_size: int = 16, num_factors: Optional[int] = None) -> CSRMatrix:
    """The Pixelated Butterfly block-sparse mask.

    The mask is the union of a block-diagonal part and butterfly factors that
    connect blocks at power-of-two strides — the flat butterfly pattern used
    by the Pixelated Butterfly transformer.
    """
    if seq_len % block_size:
        raise ValueError("seq_len must be divisible by the block size")
    num_blocks = seq_len // block_size
    if num_factors is None:
        num_factors = max(1, int(np.log2(num_blocks)))
    block_mask = sp.lil_matrix((num_blocks, num_blocks), dtype=np.float32)
    for block in range(num_blocks):
        block_mask[block, block] = 1.0
    for level in range(num_factors):
        stride = 2 ** level
        for block in range(num_blocks):
            partner = block ^ stride
            if partner < num_blocks:
                block_mask[block, partner] = 1.0
    dense_blocks = np.ones((block_size, block_size), dtype=np.float32)
    full = sp.kron(block_mask.tocsr(), dense_blocks, format="csr")
    return CSRMatrix.from_scipy(full)


def mask_to_bsr(mask: CSRMatrix, block_size: int) -> BSRMatrix:
    """View an (already block-aligned) mask in BSR."""
    return BSRMatrix.from_csr(mask, block_size)


def attention_inputs(
    config: AttentionConfig, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random Q, K, V tensors of shape (heads, seq, head_dim)."""
    rng = np.random.default_rng(seed)
    shape = (config.num_heads, config.seq_len, config.head_dim)
    q = rng.standard_normal(shape).astype(np.float32) / np.sqrt(config.head_dim)
    k = rng.standard_normal(shape).astype(np.float32) / np.sqrt(config.head_dim)
    v = rng.standard_normal(shape).astype(np.float32)
    return q, k, v


def capture_sparse_attention(
    builder,
    mask: CSRMatrix,
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    scale: Optional[float] = None,
):
    """Record the masked-attention chain on a graph builder.

    The chain is the three sparse operators of Figure 16 — masked SDDMM
    (``Q K^T`` on the stored entries), row-wise edge softmax, and SpMM with
    the attention weights as per-head edge values — captured as graph inputs
    ``q``/``k``/``v`` so the compiled graph reruns on new tensors.  All three
    share the mask's sparsity structure, so they fuse into a single kernel.

    ``q``, ``k`` and ``v`` are (heads, seq, head_dim); ``k`` is transposed to
    the SDDMM's (heads, head_dim, seq) layout before capture, and feeds for
    the ``k`` input must use that transposed layout too.  Returns the output
    :class:`~repro.graph.TensorRef`.
    """
    q = np.asarray(q, dtype=np.float32)
    k = np.asarray(k, dtype=np.float32)
    v = np.asarray(v, dtype=np.float32)
    if scale is None:
        scale = 1.0 / float(np.sqrt(q.shape[-1]))
    q_in = builder.input("q", q)
    k_in = builder.input("k", np.ascontiguousarray(k.transpose(0, 2, 1)))
    v_in = builder.input("v", v)
    scores = builder.batched_sddmm(mask, q_in, k_in, scale=scale)
    weights = builder.edge_softmax(mask, scores)
    out = builder.batched_spmm_edges(mask, weights, v_in)
    builder.output(out)
    return out


def sparse_attention_reference(
    mask: CSRMatrix,
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    scale: Optional[float] = None,
) -> np.ndarray:
    """NumPy ground truth for the masked-attention chain.

    Matches :func:`capture_sparse_attention` (softmax over the stored edges
    only, no max-subtraction); ``q``/``k``/``v`` are (heads, seq, head_dim).
    """
    from ..ops.batched import (
        batched_sddmm_reference,
        batched_spmm_edges_reference,
        edge_softmax_reference,
    )

    q = np.asarray(q, dtype=np.float32)
    k = np.asarray(k, dtype=np.float32)
    v = np.asarray(v, dtype=np.float32)
    if scale is None:
        scale = 1.0 / float(np.sqrt(q.shape[-1]))
    scores = batched_sddmm_reference(mask, q, k.transpose(0, 2, 1)) * scale
    weights = edge_softmax_reference(mask, scores.astype(np.float32))
    return batched_spmm_edges_reference(mask, weights.astype(np.float32), v)
