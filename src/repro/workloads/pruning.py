"""Pruned transformer weights (Section 4.3.2).

The paper extracts the SpMM operators of two pruned BERT models from
HuggingFace: a block-pruned model (block size 32, ~93% sparsity) and a
movement-pruned model (unstructured, ~94% sparsity).  The generators below
produce weight matrices with the same shapes (BERT-base projections and FFN
layers) and pruning patterns at a configurable density.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..formats.csr import CSRMatrix

#: The (out_features, in_features) shapes of the BERT-base linear layers the
#: paper benchmarks (attention projections and the two FFN matrices).
BERT_LAYER_SHAPES: Dict[str, Tuple[int, int]] = {
    "attention.query": (768, 768),
    "attention.key": (768, 768),
    "attention.value": (768, 768),
    "attention.output": (768, 768),
    "ffn.intermediate": (3072, 768),
    "ffn.output": (768, 3072),
}

#: Sequence length (batch 1) used in the pruned-BERT benchmarks.
SEQUENCE_LENGTH = 512


@dataclass(frozen=True)
class PrunedLayer:
    """One pruned linear layer: its weight matrix and the dense input shape."""

    name: str
    weight: CSRMatrix
    seq_len: int = SEQUENCE_LENGTH

    @property
    def density(self) -> float:
        return self.weight.density


def block_pruned_weight(
    rows: int,
    cols: int,
    block_size: int,
    density: float,
    seed: int = 0,
    empty_block_row_fraction: float = 0.5,
) -> CSRMatrix:
    """A block-pruned weight matrix.

    ``density`` is the fraction of surviving *elements*; surviving blocks are
    fully dense (block pruning keeps or drops whole blocks).  A configurable
    fraction of block rows is entirely pruned, which is the property that the
    DBSR format exploits (Figure 17).
    """
    if rows % block_size or cols % block_size:
        raise ValueError("weight shape must be divisible by the block size")
    rng = np.random.default_rng(seed)
    block_rows, block_cols = rows // block_size, cols // block_size
    total_blocks = block_rows * block_cols
    keep_blocks = max(1, int(round(density * total_blocks)))

    empty_rows = rng.choice(
        block_rows, size=int(block_rows * empty_block_row_fraction), replace=False
    )
    allowed_rows = np.setdiff1d(np.arange(block_rows), empty_rows)
    if allowed_rows.size == 0:
        allowed_rows = np.arange(block_rows)
    candidates = np.array(
        [(r, c) for r in allowed_rows for c in range(block_cols)], dtype=np.int64
    )
    keep_blocks = min(keep_blocks, len(candidates))
    chosen = candidates[rng.choice(len(candidates), size=keep_blocks, replace=False)]

    dense = np.zeros((rows, cols), dtype=np.float32)
    for block_row, block_col in chosen:
        block = rng.standard_normal((block_size, block_size)).astype(np.float32) * 0.02
        block[block == 0.0] = 0.01
        dense[
            block_row * block_size : (block_row + 1) * block_size,
            block_col * block_size : (block_col + 1) * block_size,
        ] = block
    return CSRMatrix.from_dense(dense)


def unstructured_pruned_weight(
    rows: int, cols: int, density: float, seed: int = 0
) -> CSRMatrix:
    """A movement-pruning-style unstructured weight matrix.

    Surviving weights cluster mildly by output neuron (some rows keep more
    weights than others), matching the mild row-imbalance of real
    movement-pruned checkpoints.
    """
    rng = np.random.default_rng(seed)
    row_scale = rng.gamma(shape=4.0, scale=0.25, size=rows)
    row_scale /= row_scale.mean()
    keep_per_row = np.round(row_scale * density * cols).astype(np.int64).clip(0, cols)
    indptr = np.zeros(rows + 1, dtype=np.int64)
    columns: List[np.ndarray] = []
    for row in range(rows):
        count = int(keep_per_row[row])
        cols_kept = np.sort(rng.choice(cols, size=count, replace=False)) if count else np.zeros(0, dtype=np.int64)
        columns.append(cols_kept)
        indptr[row + 1] = indptr[row] + count
    indices = np.concatenate(columns) if columns else np.zeros(0, dtype=np.int64)
    data = (rng.standard_normal(len(indices)) * 0.02).astype(np.float32)
    data[data == 0.0] = 0.01
    return CSRMatrix((rows, cols), indptr, indices, data)


def pruned_bert_layers(
    mode: str, density: float, block_size: int = 32, seed: int = 0
) -> List[PrunedLayer]:
    """All SpMM operators of a pruned BERT encoder layer at the given density."""
    if mode not in ("block", "unstructured"):
        raise ValueError("mode must be 'block' or 'unstructured'")
    layers = []
    for index, (name, (out_features, in_features)) in enumerate(BERT_LAYER_SHAPES.items()):
        if mode == "block":
            weight = block_pruned_weight(
                out_features, in_features, block_size, density, seed=seed + index
            )
        else:
            weight = unstructured_pruned_weight(out_features, in_features, density, seed=seed + index)
        layers.append(PrunedLayer(name, weight))
    return layers


def density_sweep(mode: str = "block") -> List[float]:
    """The density grid of Figures 17 (block) and 19 (unstructured)."""
    if mode == "block":
        return [2.0 ** -e for e in range(7, 0, -1)]
    return [2.0 ** -e for e in range(7, 2, -1)]
