"""Synthetic heterogeneous graphs reproducing the statistics of Table 2.

Heterogeneous (multi-relation) graphs drive the RGCN / RGMS experiments.
Each generated graph preserves the relation count and the skewed distribution
of edges across relations (RDF graphs concentrate most edges in a few
relations), with node/edge counts scaled down for the largest datasets.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..formats.csf import CSFTensor
from .graphs import generate_adjacency


@dataclass(frozen=True)
class HeteroGraphSpec:
    """Statistical description of one heterogeneous benchmark graph."""

    name: str
    paper_nodes: int
    paper_edges: int
    num_etypes: int
    nodes: int
    edges: int
    paper_padding_percent: float

    @property
    def scale(self) -> float:
        return self.nodes / self.paper_nodes

    @property
    def average_degree(self) -> float:
        return self.edges / max(self.nodes, 1)


#: Table 2 of the paper with the synthetic (possibly scaled) sizes.
HETERO_SPECS: Dict[str, HeteroGraphSpec] = {
    "aifb": HeteroGraphSpec("aifb", 7262, 48810, 45, 3631, 24405, 17.9),
    "mutag": HeteroGraphSpec("mutag", 27163, 148100, 46, 4527, 24683, 8.0),
    "bgs": HeteroGraphSpec("bgs", 94806, 672884, 96, 4740, 33644, 4.3),
    "ogbl-biokg": HeteroGraphSpec("ogbl-biokg", 93773, 4762678, 51, 2344, 119066, 4.2),
    "am": HeteroGraphSpec("am", 1885136, 5668682, 96, 4712, 14171, 10.8),
}


@dataclass
class HeteroGraph:
    """A generated heterogeneous graph: one CSR adjacency per relation."""

    spec: HeteroGraphSpec
    adjacency: CSFTensor

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_nodes(self) -> int:
        return self.adjacency.shape[1]

    @property
    def num_edges(self) -> int:
        return self.adjacency.nnz

    @property
    def num_etypes(self) -> int:
        return self.adjacency.shape[0]

    def relation_sizes(self) -> np.ndarray:
        return self.adjacency.slice_nnz()


def available_hetero_graphs() -> List[str]:
    return list(HETERO_SPECS.keys())


#: Generated graphs memoised by (name, seed), LRU-bounded; generation is
#: deterministic and the cached arrays are frozen (non-writeable) so an
#: accidental in-place edit raises instead of corrupting later calls.
_HETERO_CACHE: "OrderedDict[tuple, HeteroGraph]" = OrderedDict()
_HETERO_CACHE_CAPACITY = 8


def synthetic_hetero_graph(name: str, seed: int = 0) -> HeteroGraph:
    """Generate the named heterogeneous graph with its Table-2 statistics.

    Memoised per (name, seed): device/feature sweeps over one dataset pay the
    relation-by-relation sampling cost once per process.
    """
    if name not in HETERO_SPECS:
        raise KeyError(
            f"unknown heterogeneous graph {name!r}; available: {available_hetero_graphs()}"
        )
    cached = _HETERO_CACHE.get((name, seed))
    if cached is not None:
        _HETERO_CACHE.move_to_end((name, seed))
        return cached
    spec = HETERO_SPECS[name]
    adjacency = generate_relational_adjacency(
        spec.nodes, spec.edges, spec.num_etypes, seed=seed
    )
    for csr in adjacency.slices:
        if csr is None:
            continue
        for array in (csr.indptr, csr.indices, csr.data):
            array.setflags(write=False)
    graph = HeteroGraph(spec, adjacency)
    _HETERO_CACHE[(name, seed)] = graph
    while len(_HETERO_CACHE) > _HETERO_CACHE_CAPACITY:
        _HETERO_CACHE.popitem(last=False)
    return graph


def generate_relational_adjacency(
    num_nodes: int, num_edges: int, num_relations: int, seed: int = 0
) -> CSFTensor:
    """Generate a 3-D relational adjacency tensor.

    Edge counts per relation follow a Zipf-like distribution (a few dominant
    relations plus a long tail of tiny ones), which is the relation imbalance
    the fused RGMS kernel must load-balance across.
    """
    weights = 1.0 / np.arange(1, num_relations + 1) ** 1.1
    weights /= weights.sum()
    per_relation = np.maximum(1, np.round(weights * num_edges)).astype(np.int64)
    slices = []
    for relation in range(num_relations):
        edges = int(per_relation[relation])
        slices.append(
            generate_adjacency(
                num_nodes,
                edges,
                distribution="powerlaw",
                powerlaw_exponent=2.2,
                seed=seed * 1009 + relation,
            )
        )
    return CSFTensor((num_relations, num_nodes, num_nodes), slices)
