"""Voxelised point clouds and sparse-convolution kernel maps (Section 4.4.2).

SemanticKITTI LiDAR scans are not available offline; the generator produces
point clouds with a similar structure — points concentrated near the ground
plane along road-like corridors, voxelised at a configurable resolution —
and builds the per-offset kernel maps (the ELL(1) relations of Figure 22)
that a submanifold 3x3x3 sparse convolution needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..ops.sparse_conv import SparseConvProblem


@dataclass(frozen=True)
class PointCloudConfig:
    """Configuration of one synthetic LiDAR-like scan."""

    num_points: int = 20000
    extent: Tuple[float, float, float] = (80.0, 40.0, 6.0)
    voxel_size: float = 0.4
    seed: int = 0


def lidar_like_points(config: PointCloudConfig) -> np.ndarray:
    """Generate 3-D points with road-scene-like anisotropy."""
    rng = np.random.default_rng(config.seed)
    n = config.num_points
    x = rng.uniform(-config.extent[0] / 2, config.extent[0] / 2, size=n)
    # Points cluster along a corridor in y and near the ground in z.
    y = rng.normal(0.0, config.extent[1] / 6, size=n).clip(
        -config.extent[1] / 2, config.extent[1] / 2
    )
    z = np.abs(rng.normal(0.0, config.extent[2] / 4, size=n)).clip(0, config.extent[2])
    return np.stack([x, y, z], axis=1).astype(np.float32)


def voxelize(points: np.ndarray, voxel_size: float) -> np.ndarray:
    """Quantise points to unique integer voxel coordinates."""
    voxels = np.floor(np.asarray(points) / voxel_size).astype(np.int64)
    return np.unique(voxels, axis=0)


def kernel_offsets(kernel_size: int = 3, dims: int = 3) -> List[Tuple[int, ...]]:
    """All relative offsets of a cubic convolution kernel."""
    half = kernel_size // 2
    ranges = [range(-half, half + 1)] * dims
    offsets: List[Tuple[int, ...]] = []
    grid = np.meshgrid(*ranges, indexing="ij")
    for idx in np.ndindex(*[kernel_size] * dims):
        offsets.append(tuple(int(g[idx]) for g in grid))
    return offsets


def build_kernel_maps(
    voxels: np.ndarray, kernel_size: int = 3
) -> List[np.ndarray]:
    """Build the (input, output) pair list for every kernel offset.

    For a submanifold convolution the output voxel set equals the input set;
    offset ``o`` connects input voxel ``v`` to output voxel ``v + o`` whenever
    both exist.
    """
    voxel_index: Dict[Tuple[int, int, int], int] = {
        tuple(v): i for i, v in enumerate(voxels)
    }
    maps: List[np.ndarray] = []
    for offset in kernel_offsets(kernel_size):
        pairs: List[Tuple[int, int]] = []
        offset_arr = np.array(offset, dtype=np.int64)
        shifted = voxels + offset_arr
        for in_idx, coords in enumerate(shifted):
            out_idx = voxel_index.get(tuple(coords))
            if out_idx is not None:
                pairs.append((in_idx, out_idx))
        maps.append(np.array(pairs, dtype=np.int64).reshape(-1, 2))
    return maps


def sparse_conv_problem(
    in_channels: int,
    out_channels: int,
    config: Optional[PointCloudConfig] = None,
    kernel_size: int = 3,
) -> SparseConvProblem:
    """A full sparse-convolution layer problem on a synthetic scan."""
    config = config or PointCloudConfig()
    voxels = voxelize(lidar_like_points(config), config.voxel_size)
    maps = build_kernel_maps(voxels, kernel_size)
    return SparseConvProblem(
        num_in_points=len(voxels),
        num_out_points=len(voxels),
        in_channels=in_channels,
        out_channels=out_channels,
        kernel_maps=maps,
    )


#: The channel configurations swept in Figure 23 (sqrt(Cin * Cout)).
MINKOWSKINET_CHANNEL_SWEEP: List[Tuple[int, int]] = [
    (32, 32),
    (64, 64),
    (128, 128),
    (256, 256),
]
