"""Synthetic workload generators standing in for the paper's datasets.

The original evaluation uses OGB / DGL graph datasets, RDF heterogeneous
graphs, HuggingFace pruned-BERT checkpoints and the SemanticKITTI point-cloud
dataset — none of which can be downloaded in this offline environment.  Each
generator reproduces the structural statistics that drive the performance
phenomena the paper studies (node/edge counts — scaled down where noted —
degree skew, relation counts and imbalance, block-sparsity patterns, pruning
densities, voxel occupancy), and the Tables 1/2 benchmarks report the
resulting statistics next to the paper's numbers.
"""

from . import attention, graphs, hetero_graphs, pointcloud, pruning

__all__ = ["graphs", "hetero_graphs", "attention", "pruning", "pointcloud"]
