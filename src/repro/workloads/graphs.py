"""Synthetic GNN graphs reproducing the statistics of Table 1.

Each named dataset is generated with the node count, average degree and
degree-distribution shape of its real counterpart; the largest graphs are
scaled down (keeping the average degree and skew) so that the pure-Python
pipeline stays tractable.  The ``scale`` field records the node-count scaling
applied relative to the real dataset.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..formats.csr import CSRMatrix


@dataclass(frozen=True)
class GraphSpec:
    """Statistical description of one GNN benchmark graph."""

    name: str
    paper_nodes: int
    paper_edges: int
    nodes: int
    edges: int
    degree_distribution: str  # "powerlaw" or "centralized"
    powerlaw_exponent: float = 2.1
    paper_padding_percent: float = 0.0

    @property
    def scale(self) -> float:
        """Node-count scaling applied relative to the real dataset."""
        return self.nodes / self.paper_nodes

    @property
    def average_degree(self) -> float:
        return self.edges / max(self.nodes, 1)


#: Table 1 of the paper, with the synthetic (possibly scaled) sizes we generate.
GRAPH_SPECS: Dict[str, GraphSpec] = {
    "cora": GraphSpec("cora", 2708, 10556, 2708, 10556, "powerlaw", 2.4, 15.9),
    "citeseer": GraphSpec("citeseer", 3327, 9228, 3327, 9228, "powerlaw", 2.4, 13.0),
    "pubmed": GraphSpec("pubmed", 19717, 88651, 9858, 44324, "powerlaw", 2.3, 23.1),
    "ppi": GraphSpec("ppi", 44906, 1271274, 5613, 158908, "powerlaw", 2.0, 22.9),
    "ogbn-arxiv": GraphSpec("ogbn-arxiv", 169343, 1166243, 8467, 58312, "powerlaw", 2.1, 17.5),
    "ogbn-proteins": GraphSpec(
        "ogbn-proteins", 132534, 39561252, 1380, 412096, "centralized", 2.1, 21.6
    ),
    "reddit": GraphSpec("reddit", 232965, 114615892, 1456, 716348, "powerlaw", 1.9, 28.6),
}


@dataclass
class Graph:
    """A generated graph: adjacency in CSR plus its specification."""

    spec: GraphSpec
    csr: CSRMatrix

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_nodes(self) -> int:
        return self.csr.rows

    @property
    def num_edges(self) -> int:
        return self.csr.nnz

    def to_csr(self) -> CSRMatrix:
        return self.csr


def available_graphs() -> List[str]:
    """Names of the graphs of Table 1."""
    return list(GRAPH_SPECS.keys())


#: Generated graphs memoised by (name, seed), LRU-bounded.  Generation is
#: deterministic, so benchmarks and tests that sweep devices or feature sizes
#: over the same dataset pay the sampling cost once per process.  The cached
#: arrays are frozen (non-writeable) so an accidental in-place edit raises
#: instead of silently corrupting every later call.
_GRAPH_CACHE: "OrderedDict[Tuple[str, int], Graph]" = OrderedDict()
_GRAPH_CACHE_CAPACITY = 32


def synthetic_graph(name: str, seed: int = 0) -> Graph:
    """Generate the named graph with its Table-1 statistics (memoised)."""
    if name not in GRAPH_SPECS:
        raise KeyError(f"unknown graph {name!r}; available: {available_graphs()}")
    cached = _GRAPH_CACHE.get((name, seed))
    if cached is not None:
        _GRAPH_CACHE.move_to_end((name, seed))
        return cached
    spec = GRAPH_SPECS[name]
    csr = generate_adjacency(
        spec.nodes,
        spec.edges,
        distribution=spec.degree_distribution,
        powerlaw_exponent=spec.powerlaw_exponent,
        seed=seed,
    )
    for array in (csr.indptr, csr.indices, csr.data):
        array.setflags(write=False)
    graph = Graph(spec, csr)
    _GRAPH_CACHE[(name, seed)] = graph
    while len(_GRAPH_CACHE) > _GRAPH_CACHE_CAPACITY:
        _GRAPH_CACHE.popitem(last=False)
    return graph


def generate_adjacency(
    num_nodes: int,
    num_edges: int,
    distribution: str = "powerlaw",
    powerlaw_exponent: float = 2.1,
    seed: int = 0,
) -> CSRMatrix:
    """Generate a directed adjacency matrix with the requested degree profile.

    ``powerlaw`` produces the heavy-tailed out-degree distribution of citation
    and social graphs (a few very long rows — the load-balancing stress case);
    ``centralized`` produces degrees concentrated around the mean, like
    ogbn-proteins, where the benefit of bucketing is smaller.
    """
    rng = np.random.default_rng(seed)
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    average = max(num_edges / num_nodes, 0.1)

    if distribution == "powerlaw":
        raw = rng.pareto(powerlaw_exponent - 1.0, size=num_nodes) + 1.0
        # Real power-law graphs contain a few extreme hubs whose degree is a
        # sizeable fraction of the node count (the rows that break row-split
        # load balancing).  Plant them explicitly so scaled-down graphs keep
        # the hub-to-total ratio of their full-size counterparts.
        num_hubs = max(2, num_nodes // 2000)
        hub_ids = rng.choice(num_nodes, size=num_hubs, replace=False)
        raw[hub_ids] = np.maximum(raw[hub_ids], 0.05 * num_nodes)
    elif distribution == "centralized":
        raw = rng.normal(loc=1.0, scale=0.15, size=num_nodes).clip(0.3, 2.0)
    else:
        raise ValueError(f"unknown degree distribution {distribution!r}")

    # Iteratively rescale so that, after rounding and capping at the node
    # count, the total degree matches the requested edge count.  Rows may end
    # up with degree zero when the edge budget is smaller than the node count
    # (isolated nodes / empty relations are common in real datasets).
    scale = average / raw.mean()
    degrees = np.zeros(num_nodes, dtype=np.int64)
    for _ in range(8):
        degrees = np.clip(np.round(raw * scale), 0, num_nodes).astype(np.int64)
        total = int(degrees.sum())
        if total == 0 or abs(total - num_edges) <= max(1, num_edges // 100):
            break
        scale *= num_edges / total
    if degrees.sum() == 0 and num_edges > 0:
        degrees[np.argmax(raw)] = min(num_edges, num_nodes)

    # Column (in-degree) popularity is also skewed: sample targets with Zipf
    # weights so hub columns emerge (this drives the cache behaviour of X).
    # The inverse-CDF draw below consumes the same uniforms as
    # ``rng.choice(num_nodes, size=degree, replace=True, p=popularity)`` and
    # therefore produces identical graphs, but hoists the O(num_nodes) CDF
    # setup out of the per-row loop.
    popularity = 1.0 / np.arange(1, num_nodes + 1) ** 0.8
    popularity /= popularity.sum()
    cdf = popularity.cumsum()
    cdf /= cdf[-1]
    permutation = rng.permutation(num_nodes)

    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    columns: List[np.ndarray] = []
    for node in range(num_nodes):
        degree = int(min(degrees[node], num_nodes))
        if degree == 0:
            indptr[node + 1] = indptr[node]
            columns.append(np.zeros(0, dtype=np.int64))
            continue
        # Sample distinct targets: oversample with the skewed popularity and
        # top up uniformly so the requested degree (and edge count) is met.
        targets = np.unique(
            permutation[cdf.searchsorted(rng.random(degree), side="right")]
        )
        if len(targets) < degree:
            missing = degree - len(targets)
            available = np.ones(num_nodes, dtype=bool)
            available[targets] = False
            pool = np.flatnonzero(available)
            extra = rng.choice(pool, size=min(missing, len(pool)), replace=False)
            targets = np.concatenate([targets, extra])
        columns.append(np.sort(targets))
        indptr[node + 1] = indptr[node] + len(targets)
    indices = np.concatenate(columns) if columns else np.zeros(0, dtype=np.int64)
    data = rng.random(len(indices)).astype(np.float32) + 0.1
    return CSRMatrix((num_nodes, num_nodes), indptr, indices, data)


def feature_matrix(num_rows: int, feat_size: int, seed: int = 0) -> np.ndarray:
    """A dense feature matrix with unit-variance entries."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((num_rows, feat_size)).astype(np.float32)
