"""SpMM: sparse matrix x dense matrix (Section 4.2.1).

``Y[i, k] = sum_j A[i, j] * X[j, k]`` with ``A`` sparse and ``X``/``Y`` dense.

Three layers are provided:

* :func:`spmm_reference` — NumPy ground truth;
* :func:`build_spmm_program` / :func:`build_spmm_hyb_program` — SparseTIR
  stage-I programs compiled and executed through the full pipeline;
* :func:`spmm_csr_workload` / :func:`spmm_hyb_workload` — analytic kernel
  workload models of the SparseTIR schedules (GE-SpMM-style row mapping for
  CSR, bucketed ELL thread-block mapping for ``hyb(c, k)``) used by the
  performance model to regenerate Figures 12 and 13.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.buffers import SparseBuffer
from ..core.program import PrimFunc
from ..core.script import EmitContext, ProgramBuilder
from ..formats.csr import CSRMatrix
from ..formats.hyb import HybFormat
from ..perf.device import DeviceSpec
from ..perf.workload import BlockGroup, KernelWorkload
from .common import (
    INDEX_BYTES,
    ceil_div,
    dense_reuse_miss_rate,
    keyword_session,
    split_row_blocks,
    value_bytes,
)


# ---------------------------------------------------------------------------
# Reference implementation
# ---------------------------------------------------------------------------

def spmm_reference(csr: CSRMatrix, features: np.ndarray) -> np.ndarray:
    """Dense ground truth: ``A @ X``."""
    features = np.asarray(features, dtype=np.float32)
    if features.shape[0] != csr.cols:
        raise ValueError(
            f"feature matrix has {features.shape[0]} rows, expected {csr.cols}"
        )
    return csr.to_scipy() @ features


def spmm_hyb_reference(hyb: HybFormat, features: np.ndarray) -> np.ndarray:
    """Ground truth computed bucket by bucket (validates the decomposition)."""
    features = np.asarray(features, dtype=np.float32)
    out = np.zeros((hyb.source.rows, features.shape[1]), dtype=np.float32)
    for bucket in hyb.buckets:
        ell = bucket.ell
        for local_row in range(ell.num_rows):
            target = int(ell.row_map[local_row])
            acc = np.zeros(features.shape[1], dtype=np.float32)
            for slot in range(ell.nnz_cols):
                col = ell.indices[local_row, slot]
                if col >= 0:
                    acc += ell.data[local_row, slot] * features[bucket.col_offset + col]
            out[target] += acc
    return out


# ---------------------------------------------------------------------------
# Executable operator (compile-once/run-many Session path)
# ---------------------------------------------------------------------------

@keyword_session
def spmm(
    csr: CSRMatrix,
    features: np.ndarray,
    format: str = "csr",
    num_col_parts: int = 1,
    num_buckets: Optional[int] = None,
    *,
    session=None,
    tuned: bool = False,
) -> np.ndarray:
    """Execute ``A @ X`` through the compiler pipeline and NumPy runtime.

    Compiles the stage-I program (CSR, or composable ``hyb`` when
    ``format="hyb"``), runs it on the vectorized executor (interpreter
    fallback) and returns the dense ``(rows, feat_size)`` result.  Repeated
    calls with the same sparsity structure reuse the session's cached
    decomposition and lowered kernel.  ``tuned=True`` picks up the
    autotuned decomposition recorded for this structure (see
    :meth:`repro.runtime.session.Session.autotune`).
    """
    from ..runtime.session import get_default_session

    session = session or get_default_session()
    return session.spmm(
        csr,
        features,
        format=format,
        num_col_parts=num_col_parts,
        num_buckets=num_buckets,
        tuned=tuned,
    )


# ---------------------------------------------------------------------------
# SparseTIR programs (compiled through the full pipeline)
# ---------------------------------------------------------------------------

def emit_spmm(
    ctx: EmitContext,
    csr: CSRMatrix,
    feat_size: int,
    features: Optional[np.ndarray] = None,
    dtype: str = "float32",
    bind: Optional[Dict[str, SparseBuffer]] = None,
) -> Dict[str, SparseBuffer]:
    """Append the Figure-3 CSR SpMM iteration to a shared program.

    ``bind`` may map ``"features"`` to an already-emitted buffer (the output
    of a fused producer), in which case no fresh input buffer is created.
    Returns the operator's buffers by logical role (``"out"``,
    ``"features"``).
    """
    bind = bind or {}
    i_axis, j_axis = ctx.csr_axes(csr)
    b_buf = bind.get("features")
    if b_buf is None:
        j_dense = ctx.dense_fixed("J_", csr.cols)
    k_axis = ctx.dense_fixed("K", feat_size)
    a_buf = ctx.buffer("A", [i_axis, j_axis], dtype=dtype, data=csr.data)
    if b_buf is None:
        b_buf = ctx.buffer("B", [j_dense, k_axis], dtype=dtype, data=features)
    c_buf = ctx.buffer("C", [i_axis, k_axis], dtype=dtype)
    with ctx.sp_iter([i_axis, j_axis, k_axis], "SRS", "spmm") as (i, j, k):
        ctx.init(c_buf[i, k], 0.0)
        ctx.compute(c_buf[i, k], c_buf[i, k] + a_buf[i, j] * b_buf[j, k])
    return {"out": c_buf, "features": b_buf}


def build_spmm_program(
    csr: CSRMatrix,
    feat_size: int,
    features: Optional[np.ndarray] = None,
    dtype: str = "float32",
) -> PrimFunc:
    """The CSR SpMM program of Figure 3."""
    ctx = EmitContext(ProgramBuilder("spmm"))
    emit_spmm(ctx, csr, feat_size, features, dtype=dtype)
    return ctx.builder.finish()


def emit_spmm_hyb(
    ctx: EmitContext,
    hyb: HybFormat,
    feat_size: int,
    features: Optional[np.ndarray] = None,
    dtype: str = "float32",
    bind: Optional[Dict[str, SparseBuffer]] = None,
) -> Dict[str, SparseBuffer]:
    """Append the composable hyb SpMM iterations (init + one per bucket)."""
    bind = bind or {}
    rows, cols = hyb.source.shape
    i_axis = ctx.dense_fixed("I", rows)
    k_axis = ctx.dense_fixed("K", feat_size)
    b_buf = bind.get("features")
    if b_buf is None:
        j_dense = ctx.dense_fixed("J_", cols)
        b_buf = ctx.buffer("B", [j_dense, k_axis], dtype=dtype, data=features)
    c_buf = ctx.buffer("C", [i_axis, k_axis], dtype=dtype)

    with ctx.sp_iter([i_axis, k_axis], "SS", "init_output") as (i, k):
        ctx.compute(c_buf[i, k], 0.0)

    for index, bucket in enumerate(hyb.buckets):
        ell = bucket.ell
        name = f"p{bucket.partition}_w{bucket.width}_{index}"
        row_axis = ctx.dense_fixed(f"I_{name}", ell.num_rows)
        col_axis = ctx.builder.sparse_fixed(
            ctx.name(f"J_{name}"), parent=row_axis, length=cols, nnz_cols=ell.nnz_cols,
            indices=(ell.indices + np.where(ell.indices >= 0, bucket.col_offset, 0)).reshape(-1),
        )
        k_local = ctx.dense_fixed(f"K_{name}", feat_size)
        values = ctx.buffer(
            f"A_{name}", [row_axis, col_axis], dtype=dtype, data=ell.data.reshape(-1)
        )
        row_map = ctx.buffer(f"rowmap_{name}", [row_axis], dtype="int32", data=ell.row_map)
        with ctx.sp_iter([row_axis, col_axis, k_local], "SRS", f"spmm_{name}") as (i, j, k):
            ctx.compute(
                c_buf[row_map[i], k], c_buf[row_map[i], k] + values[i, j] * b_buf[j, k]
            )
    return {"out": c_buf, "features": b_buf}


def build_spmm_hyb_program(
    hyb: HybFormat,
    feat_size: int,
    features: Optional[np.ndarray] = None,
    dtype: str = "float32",
) -> PrimFunc:
    """SpMM decomposed over the buckets of a hyb format.

    One sparse iteration is generated per ELL bucket; each iteration gathers
    the bucket's rows through its ``row_map`` buffer (the non-affine indirect
    indexing SparseTIR supports, Section 3.1) and accumulates into the shared
    output.  Zero-initialisation of the output is a separate spatial
    iteration, mirroring how the generated kernels accumulate across buckets.
    """
    ctx = EmitContext(ProgramBuilder("spmm_hyb"))
    emit_spmm_hyb(ctx, hyb, feat_size, features, dtype=dtype)
    return ctx.builder.finish()


# ---------------------------------------------------------------------------
# Workload models of the scheduled kernels
# ---------------------------------------------------------------------------

def spmm_csr_workload(
    csr: CSRMatrix,
    feat_size: int,
    device: DeviceSpec,
    rows_per_block: int = 1,
    threads_per_block: int = 128,
    vector_width: int = 4,
    register_caching: bool = True,
    unrolled: bool = True,
    name: str = "sparsetir_spmm_csr",
    dtype: str = "float32",
    memory_efficiency: float = 1.0,
    compute_efficiency: float = 0.9,
    max_nnz_per_block: Optional[int] = None,
) -> KernelWorkload:
    """GE-SpMM-style CSR SpMM: a group of rows per thread block.

    The per-block work follows the actual row lengths, so the model sees the
    load imbalance of skewed (power-law) graphs — the phenomenon that the
    ``hyb`` format removes.  ``max_nnz_per_block`` enables long-row splitting
    for baselines whose kernels bound the per-block work.
    """
    vbytes = value_bytes(dtype)
    lengths = csr.row_lengths()
    per_block_nnz = split_row_blocks(lengths, rows_per_block, max_nnz_per_block)
    num_blocks = len(per_block_nnz)
    flops = 2.0 * per_block_nnz * feat_size

    touched_x = csr.nnz * feat_size * vbytes
    unique_x = csr.cols * feat_size * vbytes
    x_miss = dense_reuse_miss_rate(unique_x, touched_x, device)
    reads = (
        per_block_nnz * (INDEX_BYTES + vbytes)              # indices + values
        + per_block_nnz * feat_size * vbytes * x_miss       # gathered X rows
        + INDEX_BYTES * (rows_per_block + 1)                # indptr
    )
    writes = np.full(num_blocks, rows_per_block * feat_size * vbytes, dtype=np.float64)

    workload = KernelWorkload(name=name, num_launches=1)
    workload.memory_footprint_bytes = (
        csr.nbytes() + (csr.cols + csr.rows) * feat_size * vbytes
    )
    workload.metadata["x_miss_rate"] = x_miss
    workload.add(
        BlockGroup(
            name="csr_rows",
            num_blocks=num_blocks,
            threads_per_block=threads_per_block,
            flops_per_block=flops,
            dram_read_bytes_per_block=reads,
            dram_write_bytes_per_block=writes,
            vector_width=vector_width,
            register_caching=register_caching,
            unrolled=unrolled,
            dtype=dtype,
            memory_efficiency=memory_efficiency,
            compute_efficiency=compute_efficiency,
        )
    )
    return workload


def spmm_hyb_workload(
    hyb: HybFormat,
    feat_size: int,
    device: DeviceSpec,
    threads_per_block: int = 128,
    horizontal_fusion: bool = True,
    name: str = "sparsetir_spmm_hyb",
    dtype: str = "float32",
) -> KernelWorkload:
    """SpMM over ``hyb(c, k)``: one balanced block group per ELL bucket.

    Following Section 4.2.1, bucket ``i`` (width ``2^i``) groups ``2^(k-i)``
    rows per thread block so every block processes ``2^k`` stored elements.
    Column partitioning improves the locality of the dense operand (the
    partition's slice of ``X`` is what must stay cached) at the cost of
    updating the output once per partition.
    """
    vbytes = value_bytes(dtype)
    csr = hyb.source
    max_width = hyb.bucket_widths[-1]
    num_parts = hyb.num_col_parts
    partition_cols = ceil_div(csr.cols, num_parts)

    # Reuse of the dense operand happens across all buckets of one column
    # partition (they gather from the same slice of X), so the miss rate is
    # computed per partition, not per bucket.
    stored_per_partition: Dict[int, int] = {}
    for bucket in hyb.buckets:
        stored_per_partition[bucket.partition] = (
            stored_per_partition.get(bucket.partition, 0) + bucket.stored
        )
    partition_miss = {
        part: dense_reuse_miss_rate(
            partition_cols * feat_size * vbytes, stored * feat_size * vbytes, device
        )
        for part, stored in stored_per_partition.items()
    }

    workload = KernelWorkload(name=name)
    for bucket in hyb.buckets:
        ell = bucket.ell
        rows_per_block = max(1, max_width // bucket.width)
        num_blocks = ceil_div(ell.num_rows, rows_per_block)
        stored_per_block = rows_per_block * bucket.width
        flops = 2.0 * stored_per_block * feat_size
        x_miss = partition_miss[bucket.partition]
        reads = (
            stored_per_block * (INDEX_BYTES + vbytes)
            + stored_per_block * feat_size * vbytes * x_miss
            + rows_per_block * INDEX_BYTES                     # row_map
        )
        # With more than one column partition the output row is read-modify-
        # written once per partition.
        output_traffic = rows_per_block * feat_size * vbytes
        reads += output_traffic if num_parts > 1 else 0.0
        writes = output_traffic

        workload.add(
            BlockGroup(
                name=f"ell_p{bucket.partition}_w{bucket.width}",
                num_blocks=num_blocks,
                threads_per_block=threads_per_block,
                flops_per_block=flops,
                dram_read_bytes_per_block=reads,
                dram_write_bytes_per_block=writes,
                vector_width=4,
                register_caching=True,
                unrolled=True,
                dtype=dtype,
                compute_efficiency=0.9,
                metadata={"x_miss_rate": x_miss, "width": bucket.width},
            )
        )
    workload.num_launches = 1 if horizontal_fusion else max(1, len(hyb.buckets))
    workload.memory_footprint_bytes = (
        hyb.nbytes() + (csr.cols + csr.rows) * feat_size * vbytes
    )
    workload.metadata["padding_ratio"] = hyb.padding_ratio
    return workload


def choose_hyb_parameters(csr: CSRMatrix) -> Tuple[int, int]:
    """Default hyb parameters: ``c = 16``, ``k = ceil(log2(max(nnz/n, 1))) + 1``.

    The bucket count is one more than the paper's stated
    ``ceil(log2(avg_degree))`` so the widest bucket width ``2^(k-1)`` covers
    the average degree without row splitting (matches
    :meth:`repro.formats.hyb.HybFormat.from_csr`).
    """
    average_degree = max(csr.nnz / max(csr.rows, 1), 1.0)
    num_buckets = max(1, int(math.ceil(math.log2(average_degree))) + 1)
    candidate_parts = [1, 2, 4, 8, 16]
    return candidate_parts[-1], num_buckets


def spmm_flops(csr: CSRMatrix, feat_size: int) -> float:
    """Useful floating point operations of the SpMM."""
    return 2.0 * csr.nnz * feat_size
