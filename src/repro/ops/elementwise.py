"""Dense element-wise and GEMM operators for graph capture.

The model forward passes interleave sparse aggregation with small dense
pieces — ``X @ W`` projections, residual adds and ReLUs.  Capturing those as
graph nodes lets the fusion pass keep a whole layer inside one emitted
kernel: the dense nodes carry no sparsity structure, so they ride along with
whichever sparse group precedes them (see :mod:`repro.graph.fusion`).

All operators are 2-D (``(m, n)`` matrices); the references mirror the
generated programs exactly (loop-order ``np.add``/``np.maximum``/matmul
accumulation in the same dtype), keeping the differential suite bit-exact.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..core.buffers import SparseBuffer
from ..core.expr import Max
from ..core.program import PrimFunc
from ..core.script import EmitContext, ProgramBuilder


# ---------------------------------------------------------------------------
# References
# ---------------------------------------------------------------------------

def gemm_reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense ``A @ B`` ground truth (NumPy matmul)."""
    return np.asarray(a) @ np.asarray(b)


def add_reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise ``A + B``."""
    return np.asarray(a) + np.asarray(b)


def relu_reference(a: np.ndarray) -> np.ndarray:
    """Element-wise ``max(A, 0)``."""
    a = np.asarray(a)
    return np.maximum(a, np.zeros((), dtype=a.dtype))


# ---------------------------------------------------------------------------
# Emitters
# ---------------------------------------------------------------------------

def emit_gemm(
    ctx: EmitContext,
    m: int,
    k: int,
    n: int,
    a: Optional[np.ndarray] = None,
    b: Optional[np.ndarray] = None,
    dtype: str = "float32",
    bind: Optional[Dict[str, SparseBuffer]] = None,
) -> Dict[str, SparseBuffer]:
    """Append a dense GEMM nest: ``C[i, j] = sum_k A[i, k] * B[k, j]``."""
    bind = bind or {}
    a_buf = bind.get("a")
    b_buf = bind.get("b")
    i_axis = ctx.dense_fixed("I", m)
    k_axis = ctx.dense_fixed("K", k)
    j_axis = ctx.dense_fixed("J", n)
    if a_buf is None:
        a_buf = ctx.buffer(
            "A", [i_axis, k_axis], dtype=dtype,
            data=None if a is None else np.asarray(a).reshape(-1),
        )
    if b_buf is None:
        b_buf = ctx.buffer(
            "B", [k_axis, j_axis], dtype=dtype,
            data=None if b is None else np.asarray(b).reshape(-1),
        )
    c_buf = ctx.buffer("C", [i_axis, j_axis], dtype=dtype)
    with ctx.sp_iter([i_axis, k_axis, j_axis], "SRS", "gemm") as (i, kk, j):
        ctx.init(c_buf[i, j], 0.0)
        ctx.compute(c_buf[i, j], c_buf[i, j] + a_buf[i, kk] * b_buf[kk, j])
    return {"out": c_buf, "a": a_buf, "b": b_buf}


def build_gemm_program(
    m: int,
    k: int,
    n: int,
    a: Optional[np.ndarray] = None,
    b: Optional[np.ndarray] = None,
    dtype: str = "float32",
) -> PrimFunc:
    """Standalone dense GEMM program."""
    ctx = EmitContext(ProgramBuilder("gemm"))
    emit_gemm(ctx, m, k, n, a, b, dtype=dtype)
    return ctx.builder.finish()


def emit_add(
    ctx: EmitContext,
    m: int,
    n: int,
    a: Optional[np.ndarray] = None,
    b: Optional[np.ndarray] = None,
    dtype: str = "float32",
    bind: Optional[Dict[str, SparseBuffer]] = None,
) -> Dict[str, SparseBuffer]:
    """Append an element-wise add nest over an ``(m, n)`` matrix."""
    bind = bind or {}
    a_buf = bind.get("a")
    b_buf = bind.get("b")
    i_axis = ctx.dense_fixed("I", m)
    j_axis = ctx.dense_fixed("J", n)
    if a_buf is None:
        a_buf = ctx.buffer(
            "A", [i_axis, j_axis], dtype=dtype,
            data=None if a is None else np.asarray(a).reshape(-1),
        )
    if b_buf is None:
        b_buf = ctx.buffer(
            "B", [i_axis, j_axis], dtype=dtype,
            data=None if b is None else np.asarray(b).reshape(-1),
        )
    c_buf = ctx.buffer("C", [i_axis, j_axis], dtype=dtype)
    with ctx.sp_iter([i_axis, j_axis], "SS", "add") as (i, j):
        ctx.compute(c_buf[i, j], a_buf[i, j] + b_buf[i, j])
    return {"out": c_buf, "a": a_buf, "b": b_buf}


def build_add_program(
    m: int,
    n: int,
    a: Optional[np.ndarray] = None,
    b: Optional[np.ndarray] = None,
    dtype: str = "float32",
) -> PrimFunc:
    """Standalone element-wise add program."""
    ctx = EmitContext(ProgramBuilder("add"))
    emit_add(ctx, m, n, a, b, dtype=dtype)
    return ctx.builder.finish()


def emit_relu(
    ctx: EmitContext,
    m: int,
    n: int,
    a: Optional[np.ndarray] = None,
    dtype: str = "float32",
    bind: Optional[Dict[str, SparseBuffer]] = None,
) -> Dict[str, SparseBuffer]:
    """Append an element-wise ReLU nest over an ``(m, n)`` matrix."""
    bind = bind or {}
    a_buf = bind.get("a")
    i_axis = ctx.dense_fixed("I", m)
    j_axis = ctx.dense_fixed("J", n)
    if a_buf is None:
        a_buf = ctx.buffer(
            "A", [i_axis, j_axis], dtype=dtype,
            data=None if a is None else np.asarray(a).reshape(-1),
        )
    c_buf = ctx.buffer("C", [i_axis, j_axis], dtype=dtype)
    with ctx.sp_iter([i_axis, j_axis], "SS", "relu") as (i, j):
        ctx.compute(c_buf[i, j], Max(a_buf[i, j], 0.0))
    return {"out": c_buf, "a": a_buf}


def build_relu_program(
    m: int,
    n: int,
    a: Optional[np.ndarray] = None,
    dtype: str = "float32",
) -> PrimFunc:
    """Standalone element-wise ReLU program."""
    ctx = EmitContext(ProgramBuilder("relu"))
    emit_relu(ctx, m, n, a, dtype=dtype)
    return ctx.builder.finish()


__all__ = [
    "gemm_reference", "add_reference", "relu_reference",
    "emit_gemm", "emit_add", "emit_relu",
    "build_gemm_program", "build_add_program", "build_relu_program",
]
