"""Operator specs: the single description every execution path shares.

The ``Session`` operator methods, the module-level ``ops.*`` free functions
and the graph capture front-end (:mod:`repro.graph`) all funnel into the same
two-step protocol:

1. ``prepare_<kind>(session, ...)`` validates arguments, resolves the value
   dtype (:func:`repro.runtime.keys.resolve_dtype`), applies tuned overrides
   and cached format decompositions, and returns an :class:`OpSpec` — a
   self-contained description of one operator application;
2. ``Session._execute(spec)`` (or a :class:`~repro.graph.compile.CompiledGraph`
   for captured specs) builds the spec's program, runs it and finalises the
   raw flat buffers into the operator's documented output array.

Specs whose ``fusable`` flag is set also know how to *emit* their stage-I
iterations into a shared program (:func:`emit_spec`), which is what the
graph fusion pass uses to merge adjacent operators into one kernel; with an
empty namespace and no bindings the emitted program is byte-identical to the
standalone one, so singleton graph nodes share kernel-cache entries with
eager ``Session`` calls.

Inputs recorded in ``OpSpec.inputs`` may be NumPy arrays (eager calls,
graph-captured constants), ``None`` (bound at run time) or lightweight
reference objects exposing ``shape``/``dtype`` (graph edges; anything with a
true ``is_ref`` attribute).  Only arrays are baked into programs as buffer
defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from ..core.program import PrimFunc
from ..core.script import EmitContext, ProgramBuilder
from ..runtime.keys import content_key, resolve_dtype


@dataclass
class OpSpec:
    """One fully-resolved operator application.

    Attributes
    ----------
    kind:
        Registry key (``"spmm"``, ``"batched_sddmm_bsr"``, ``"relu"``, ...).
        Format/tuning resolution happens in ``prepare_*``, so the kind names
        the exact program family that will run.
    structure:
        The sparsity-structure object the program iterates (CSR/BSR/hyb/CSF
        matrix, sparse-conv problem) or ``None`` for dense operators.
    structure_key:
        Content hash of the *fusion-relevant* sparsity pattern, or ``None``
        for dense operators.  The fusion pass only merges nodes whose keys
        agree (dense nodes ride along with any group).
    params:
        Plain parameters of the program builder (sizes, scale, permutations).
    inputs:
        Logical input name -> array / ``None`` / graph reference.
    dtype:
        Resolved value dtype (``"float32"`` / ``"float64"``).
    out_shape:
        Shape of the finalised output array.
    fusable:
        Whether the operator can be emitted into a shared program.  Kinds
        whose finalisation is not a pure reshape (BSR padding/permutation,
        hyb decompositions) stay unfusable and always run standalone.
    program_name:
        Name of the standalone program (must match the historical builders so
        structural fingerprints — and therefore kernel/tuning caches — are
        unchanged).
    """

    kind: str
    structure: Any
    structure_key: Optional[str]
    params: Dict[str, Any]
    inputs: Dict[str, Any]
    dtype: str
    out_shape: Tuple[int, ...]
    fusable: bool
    program_name: str
    extra_outputs: Dict[str, Any] = field(default_factory=dict)

    def input_array(self, name: str) -> Optional[np.ndarray]:
        """The input as an array, or ``None`` when unbound / a graph edge."""
        value = self.inputs.get(name)
        if value is None or getattr(value, "is_ref", False):
            return None
        return value


def _is_ref(value: Any) -> bool:
    return getattr(value, "is_ref", False)


def _pad_axis(array: np.ndarray, axis: int, length: int) -> np.ndarray:
    """Zero-pad one axis of *array* up to *length* (no-op when equal)."""
    if array.shape[axis] == length:
        return array
    pad = [(0, 0)] * array.ndim
    pad[axis] = (0, length - array.shape[axis])
    return np.pad(array, pad)


def _as_value(value: Any, dtype: str) -> Any:
    """Cast eager arrays to the resolved dtype; pass refs/None through."""
    if value is None or _is_ref(value):
        return value
    return np.asarray(value, dtype=dtype)


def csr_structure_key(csr: Any) -> str:
    """Content hash of a CSR sparsity pattern (values excluded)."""
    return content_key("csr", csr.shape, csr.indptr, csr.indices)


def csf_structure_key(adjacency: Any) -> str:
    """Content hash of a CSF adjacency (per-relation patterns)."""
    parts: list = ["csf", adjacency.shape]
    for matrix in adjacency.slices:
        if matrix is None:
            parts.append(None)
        else:
            parts.extend((matrix.indptr, matrix.indices))
    return content_key(*parts)


def conv_structure_key(problem: Any) -> str:
    """Content hash of a sparse-conv problem's kernel maps."""
    parts: list = ["conv", problem.num_in_points, problem.num_out_points]
    for pairs in problem.kernel_maps:
        parts.append(np.asarray(pairs).reshape(-1))
    return content_key(*parts)


# ---------------------------------------------------------------------------
# prepare_* — argument resolution into OpSpecs
# ---------------------------------------------------------------------------

def prepare_spmm(
    session: Any,
    csr: Any,
    features: Any,
    format: str = "csr",
    num_col_parts: int = 1,
    num_buckets: Optional[int] = None,
    dtype: Any = None,
    tuned: bool = False,
) -> OpSpec:
    value_dtype = resolve_dtype((features, csr.data), dtype)
    features = _as_value(features, value_dtype)
    feat_size = features.shape[1]
    if features.shape[0] != csr.cols:
        raise ValueError(
            f"features have {features.shape[0]} rows, expected {csr.cols}"
        )
    if tuned:
        from ..tune.spaces import SpMMProblem

        overrides = session._tuned_overrides("spmm", SpMMProblem(csr, feat_size))
        format = overrides.get("format", format)
        num_col_parts = overrides.get("num_col_parts", num_col_parts)
        num_buckets = overrides.get("num_buckets", num_buckets)
    if format == "csr":
        return OpSpec(
            kind="spmm", structure=csr, structure_key=csr_structure_key(csr),
            params={"feat_size": feat_size, "rows": csr.rows},
            inputs={"features": features}, dtype=value_dtype,
            out_shape=(csr.rows, feat_size), fusable=True, program_name="spmm",
        )
    if format == "hyb":
        hyb = session.decompose_hyb(csr, num_col_parts=num_col_parts, num_buckets=num_buckets)
        return OpSpec(
            kind="spmm_hyb", structure=hyb, structure_key=None,
            params={"feat_size": feat_size, "rows": csr.rows},
            inputs={"features": features}, dtype=value_dtype,
            out_shape=(csr.rows, feat_size), fusable=False, program_name="spmm_hyb",
        )
    raise ValueError(f"unknown SpMM format {format!r}; use 'csr' or 'hyb'")


def prepare_sddmm(
    session: Any,
    csr: Any,
    x: Any,
    y: Any,
    fuse_ij: bool = True,
    dtype: Any = None,
    tuned: bool = False,
) -> OpSpec:
    value_dtype = resolve_dtype((x, y, csr.data), dtype)
    x = _as_value(x, value_dtype)
    y = _as_value(y, value_dtype)
    if tuned:
        from ..tune.spaces import SDDMMProblem

        overrides = session._tuned_overrides("sddmm", SDDMMProblem(csr, x.shape[1]))
        fuse_ij = overrides.get("fuse_ij", fuse_ij)
    return OpSpec(
        kind="sddmm", structure=csr, structure_key=csr_structure_key(csr),
        params={"feat_size": x.shape[1], "fuse_ij": fuse_ij, "nnz": csr.nnz},
        inputs={"x": x, "y": y}, dtype=value_dtype,
        out_shape=(csr.nnz,), fusable=True, program_name="sddmm",
    )


def prepare_pruned_spmm(session: Any, bsr: Any, x: Any) -> OpSpec:
    x = _as_value(x, "float32")
    return OpSpec(
        kind="pruned_spmm", structure=bsr, structure_key=None,
        params={"seq_len": x.shape[1], "out_rows": bsr.shape[0]},
        inputs={"x": x}, dtype="float32",
        out_shape=(bsr.shape[0], x.shape[1]), fusable=False,
        program_name="pruned_spmm_bsr",
    )


def prepare_batched_spmm(
    session: Any,
    csr: Any,
    features: Any,
    format: str = "csr",
    block_size: int = 16,
    dtype: Any = None,
    tuned: bool = False,
) -> OpSpec:
    # ``None`` keeps the historical float32 default (batched attention is a
    # float32 workload) rather than promoting — explicit float64 callers
    # (e.g. coalesced float64 serving requests) must opt in.
    value_dtype = "float32" if dtype is None else resolve_dtype(features, dtype)
    features = _as_value(features, value_dtype)
    if len(features.shape) != 3:
        raise ValueError("features must be (heads, cols, feat)")
    heads, cols, feat = features.shape
    if cols != csr.cols:
        raise ValueError(f"features have {cols} rows per head, expected {csr.cols}")
    if tuned:
        from ..tune.spaces import AttentionProblem

        overrides = session._tuned_overrides("attention", AttentionProblem(csr, heads, feat))
        format = overrides.get("format", format)
        block_size = overrides.get("block_size", block_size)
    if format == "csr":
        return OpSpec(
            kind="batched_spmm", structure=csr, structure_key=csr_structure_key(csr),
            params={"heads": heads, "feat_size": feat, "rows": csr.rows},
            inputs={"features": features}, dtype=value_dtype,
            out_shape=(heads, csr.rows, feat), fusable=True, program_name="batched_spmm",
        )
    if value_dtype != "float32":
        raise ValueError(
            f"batched_spmm over {format!r} computes in float32 only; "
            "use format='csr' for float64"
        )
    if format == "bsr":
        if _is_ref(features):
            raise ValueError(
                "batched_spmm over BSR pads its features eagerly and cannot "
                "take a graph edge; capture the CSR format instead"
            )
        bsr = session.decompose_bsr(csr, block_size)
        padded = _pad_axis(features, axis=1, length=bsr.shape[1])
        return OpSpec(
            kind="batched_spmm_bsr", structure=bsr, structure_key=None,
            params={
                "heads": heads, "feat_size": feat,
                "rows": csr.rows, "padded_rows": bsr.shape[0],
            },
            inputs={"features": padded}, dtype="float32",
            out_shape=(heads, csr.rows, feat), fusable=False,
            program_name="batched_spmm_bsr",
        )
    raise ValueError(f"unknown batched-SpMM format {format!r}; use 'csr' or 'bsr'")


def prepare_batched_sddmm(
    session: Any,
    csr: Any,
    q: Any,
    k: Any,
    format: str = "csr",
    block_size: int = 16,
    fuse_ij: bool = True,
    scale: Optional[float] = None,
    dtype: Any = None,
    tuned: bool = False,
) -> OpSpec:
    # ``None`` keeps the historical float32 default, as in prepare_batched_spmm.
    value_dtype = "float32" if dtype is None else resolve_dtype((q, k), dtype)
    q = _as_value(q, value_dtype)
    k = _as_value(k, value_dtype)
    if len(q.shape) != 3 or len(k.shape) != 3:
        raise ValueError("q and k must be 3-D (heads, ., .)")
    heads, _, feat = q.shape
    if tuned:
        from ..tune.spaces import AttentionProblem

        overrides = session._tuned_overrides("attention", AttentionProblem(csr, heads, feat))
        format = overrides.get("format", format)
        block_size = overrides.get("block_size", block_size)
    if format == "csr":
        return OpSpec(
            kind="batched_sddmm", structure=csr, structure_key=csr_structure_key(csr),
            params={
                "heads": heads, "feat_size": feat,
                "fuse_ij": fuse_ij, "scale": scale, "nnz": csr.nnz,
            },
            inputs={"q": q, "k": k}, dtype=value_dtype,
            out_shape=(heads, csr.nnz), fusable=True, program_name="batched_sddmm",
        )
    if value_dtype != "float32":
        raise ValueError(
            f"batched_sddmm over {format!r} computes in float32 only; "
            "use format='csr' for float64"
        )
    if format == "bsr":
        if _is_ref(q) or _is_ref(k):
            raise ValueError(
                "batched_sddmm over BSR pads its operands eagerly and cannot "
                "take graph edges; capture the CSR format instead"
            )
        from .batched import bsr_element_permutation

        bsr = session.decompose_bsr(csr, block_size)
        perm_key = content_key("bsr_perm", csr.shape, csr.indptr, csr.indices, block_size)
        perm = session._memoized_format(perm_key, lambda: bsr_element_permutation(csr, bsr))
        q_pad = _pad_axis(q, axis=1, length=bsr.shape[0])
        k_pad = _pad_axis(k, axis=2, length=bsr.shape[1])
        return OpSpec(
            kind="batched_sddmm_bsr", structure=bsr, structure_key=None,
            params={"heads": heads, "feat_size": feat, "scale": scale, "perm": perm},
            inputs={"q": q_pad, "k": k_pad}, dtype="float32",
            out_shape=(heads, csr.nnz), fusable=False, program_name="batched_sddmm_bsr",
        )
    raise ValueError(f"unknown batched-SDDMM format {format!r}; use 'csr' or 'bsr'")


def prepare_rgms(session: Any, adjacency: Any, x: Any, w: Any, tuned: bool = False) -> OpSpec:
    if _is_ref(w):
        raise ValueError("rgms weights must be constant arrays, not graph edges")
    x = _as_value(x, "float32")
    w = np.asarray(w, dtype=np.float32)
    if len(x.shape) != 2 or w.ndim != 3:
        raise ValueError("x must be (n, d_in) and w (R, d_in, d_out)")
    return OpSpec(
        kind="rgms", structure=adjacency, structure_key=csf_structure_key(adjacency),
        params={"in_feats": x.shape[1], "out_feats": w.shape[2],
                "rows": adjacency.shape[1], "w": w},
        inputs={"x": x}, dtype="float32",
        out_shape=(adjacency.shape[1], w.shape[2]), fusable=True, program_name="rgms",
    )


def prepare_sparse_conv(
    session: Any, problem: Any, features: Any, weights: Any, tuned: bool = False
) -> OpSpec:
    if _is_ref(weights):
        raise ValueError("sparse_conv weights must be constant arrays, not graph edges")
    features = _as_value(features, "float32")
    weights = np.asarray(weights, dtype=np.float32)
    return OpSpec(
        kind="sparse_conv", structure=problem, structure_key=conv_structure_key(problem),
        params={"w": weights},
        inputs={"features": features}, dtype="float32",
        out_shape=(problem.num_out_points, problem.out_channels),
        fusable=True, program_name="sparse_conv",
    )


def prepare_edge_softmax(
    session: Any, csr: Any, scores: Any, dtype: Any = None
) -> OpSpec:
    value_dtype = resolve_dtype(scores, dtype)
    scores = _as_value(scores, value_dtype)
    if len(scores.shape) != 2 or scores.shape[1] != csr.nnz:
        raise ValueError("scores must be (heads, nnz)")
    heads = scores.shape[0]
    return OpSpec(
        kind="edge_softmax", structure=csr, structure_key=csr_structure_key(csr),
        params={"heads": heads, "nnz": csr.nnz},
        inputs={"scores": scores}, dtype=value_dtype,
        out_shape=(heads, csr.nnz), fusable=True, program_name="edge_softmax",
    )


def prepare_batched_spmm_edges(
    session: Any, csr: Any, edge_values: Any, features: Any, dtype: Any = None
) -> OpSpec:
    value_dtype = resolve_dtype((edge_values, features), dtype)
    edge_values = _as_value(edge_values, value_dtype)
    features = _as_value(features, value_dtype)
    if len(edge_values.shape) != 2 or edge_values.shape[1] != csr.nnz:
        raise ValueError("edge_values must be (heads, nnz)")
    if len(features.shape) != 3 or features.shape[1] != csr.cols:
        raise ValueError("features must be (heads, cols, feat)")
    heads, feat = edge_values.shape[0], features.shape[2]
    return OpSpec(
        kind="batched_spmm_edges", structure=csr, structure_key=csr_structure_key(csr),
        params={"heads": heads, "feat_size": feat, "rows": csr.rows},
        inputs={"edge_values": edge_values, "features": features}, dtype=value_dtype,
        out_shape=(heads, csr.rows, feat), fusable=True, program_name="batched_spmm_edges",
    )


def prepare_gemm(session: Any, a: Any, b: Any, dtype: Any = None) -> OpSpec:
    value_dtype = resolve_dtype((a, b), dtype)
    a = _as_value(a, value_dtype)
    b = _as_value(b, value_dtype)
    if len(a.shape) != 2 or len(b.shape) != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"gemm shapes do not agree: {a.shape} @ {b.shape}")
    m, kk = a.shape
    n = b.shape[1]
    return OpSpec(
        kind="gemm", structure=None, structure_key=None,
        params={"m": m, "k": kk, "n": n},
        inputs={"a": a, "b": b}, dtype=value_dtype,
        out_shape=(m, n), fusable=True, program_name="gemm",
    )


def prepare_add(session: Any, a: Any, b: Any, dtype: Any = None) -> OpSpec:
    value_dtype = resolve_dtype((a, b), dtype)
    a = _as_value(a, value_dtype)
    b = _as_value(b, value_dtype)
    if len(a.shape) != 2 or a.shape != b.shape:
        raise ValueError(f"add shapes do not agree: {a.shape} + {b.shape}")
    return OpSpec(
        kind="add", structure=None, structure_key=None,
        params={"m": a.shape[0], "n": a.shape[1]},
        inputs={"a": a, "b": b}, dtype=value_dtype,
        out_shape=tuple(a.shape), fusable=True, program_name="add",
    )


def prepare_relu(session: Any, a: Any, dtype: Any = None) -> OpSpec:
    value_dtype = resolve_dtype(a, dtype)
    a = _as_value(a, value_dtype)
    if len(a.shape) != 2:
        raise ValueError("relu expects a 2-D matrix")
    return OpSpec(
        kind="relu", structure=None, structure_key=None,
        params={"m": a.shape[0], "n": a.shape[1]},
        inputs={"a": a}, dtype=value_dtype,
        out_shape=tuple(a.shape), fusable=True, program_name="relu",
    )


PREPARE: Dict[str, Callable[..., OpSpec]] = {
    "spmm": prepare_spmm,
    "sddmm": prepare_sddmm,
    "pruned_spmm": prepare_pruned_spmm,
    "batched_spmm": prepare_batched_spmm,
    "batched_sddmm": prepare_batched_sddmm,
    "rgms": prepare_rgms,
    "sparse_conv": prepare_sparse_conv,
    "edge_softmax": prepare_edge_softmax,
    "batched_spmm_edges": prepare_batched_spmm_edges,
    "gemm": prepare_gemm,
    "add": prepare_add,
    "relu": prepare_relu,
}


def prepare(session: Any, kind: str, *args: Any, **kwargs: Any) -> OpSpec:
    """Resolve one operator application into an :class:`OpSpec`."""
    try:
        fn = PREPARE[kind]
    except KeyError:
        raise ValueError(f"unknown operator kind {kind!r}") from None
    return fn(session, *args, **kwargs)


# ---------------------------------------------------------------------------
# emit / build — OpSpec -> stage-I program
# ---------------------------------------------------------------------------

def emit_spec(
    ctx: EmitContext, spec: OpSpec, bind: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Emit the spec's iterations into *ctx*; returns buffers by logical role.

    Only valid for ``spec.fusable`` kinds.  ``bind`` maps logical input names
    to already-emitted buffers (fused producers); unbound inputs become fresh
    buffers whose data defaults are the spec's arrays (graph references bake
    no data — their values arrive as run-time bindings).
    """
    from .batched import (
        emit_batched_sddmm,
        emit_batched_spmm,
        emit_batched_spmm_edges,
        emit_edge_softmax,
    )
    from .elementwise import emit_add, emit_gemm, emit_relu
    from .rgms import emit_rgms
    from .sddmm import emit_sddmm
    from .sparse_conv import emit_sparse_conv
    from .spmm import emit_spmm

    p = spec.params
    kind = spec.kind
    if kind == "spmm":
        return emit_spmm(
            ctx, spec.structure, p["feat_size"], spec.input_array("features"),
            dtype=spec.dtype, bind=bind,
        )
    if kind == "sddmm":
        return emit_sddmm(
            ctx, spec.structure, p["feat_size"], spec.input_array("x"),
            spec.input_array("y"), fuse_ij=p["fuse_ij"], dtype=spec.dtype, bind=bind,
        )
    if kind == "batched_spmm":
        return emit_batched_spmm(
            ctx, spec.structure, p["heads"], p["feat_size"],
            spec.input_array("features"), dtype=spec.dtype, bind=bind,
        )
    if kind == "batched_sddmm":
        return emit_batched_sddmm(
            ctx, spec.structure, p["heads"], p["feat_size"],
            spec.input_array("q"), spec.input_array("k"),
            fuse_ij=p["fuse_ij"], scale=p["scale"], dtype=spec.dtype, bind=bind,
        )
    if kind == "rgms":
        return emit_rgms(
            ctx, spec.structure, p["in_feats"], p["out_feats"],
            spec.input_array("x"), p["w"], bind=bind,
        )
    if kind == "sparse_conv":
        return emit_sparse_conv(
            ctx, spec.structure, spec.input_array("features"), p["w"], bind=bind
        )
    if kind == "edge_softmax":
        return emit_edge_softmax(
            ctx, spec.structure, p["heads"], spec.input_array("scores"),
            dtype=spec.dtype, bind=bind,
        )
    if kind == "batched_spmm_edges":
        return emit_batched_spmm_edges(
            ctx, spec.structure, p["heads"], p["feat_size"],
            spec.input_array("edge_values"), spec.input_array("features"),
            dtype=spec.dtype, bind=bind,
        )
    if kind == "gemm":
        return emit_gemm(
            ctx, p["m"], p["k"], p["n"], spec.input_array("a"),
            spec.input_array("b"), dtype=spec.dtype, bind=bind,
        )
    if kind == "add":
        return emit_add(
            ctx, p["m"], p["n"], spec.input_array("a"), spec.input_array("b"),
            dtype=spec.dtype, bind=bind,
        )
    if kind == "relu":
        return emit_relu(
            ctx, p["m"], p["n"], spec.input_array("a"), dtype=spec.dtype, bind=bind
        )
    raise ValueError(f"operator kind {spec.kind!r} cannot be emitted into a shared program")


def build_spec_program(spec: OpSpec) -> Tuple[PrimFunc, Dict[str, str]]:
    """The spec's standalone program plus logical-name -> buffer-name map.

    Fusable kinds build through :func:`emit_spec` with an empty namespace, so
    the program — and therefore its structural fingerprint — is identical to
    the historical ``build_*_program`` output.
    """
    if spec.fusable:
        ctx = EmitContext(ProgramBuilder(spec.program_name))
        buffers = emit_spec(ctx, spec)
        return ctx.builder.finish(), {role: buf.name for role, buf in buffers.items()}

    p = spec.params
    if spec.kind == "spmm_hyb":
        from .spmm import build_spmm_hyb_program

        func = build_spmm_hyb_program(
            spec.structure, p["feat_size"], spec.input_array("features"), dtype=spec.dtype
        )
        return func, {"out": "C", "features": "B"}
    if spec.kind == "pruned_spmm":
        from .pruned_spmm import build_pruned_spmm_bsr_program

        func = build_pruned_spmm_bsr_program(spec.structure, p["seq_len"], spec.input_array("x"))
        return func, {"out": "Y", "x": "X"}
    if spec.kind == "batched_spmm_bsr":
        from .batched import build_batched_spmm_bsr_program

        func = build_batched_spmm_bsr_program(
            spec.structure, p["heads"], p["feat_size"], spec.input_array("features")
        )
        return func, {"out": "C", "features": "B"}
    if spec.kind == "batched_sddmm_bsr":
        from .batched import build_batched_sddmm_bsr_program

        func = build_batched_sddmm_bsr_program(
            spec.structure, p["heads"], p["feat_size"],
            spec.input_array("q"), spec.input_array("k"), scale=p["scale"],
        )
        return func, {"out": "OUT", "q": "Q", "k": "Kv"}
    raise ValueError(f"unknown operator kind {spec.kind!r}")


# ---------------------------------------------------------------------------
# finalize — raw flat output -> documented output array
# ---------------------------------------------------------------------------

def finalize(spec: OpSpec, flat: np.ndarray) -> np.ndarray:
    """Reshape/slice the operator's raw flat output buffer."""
    p = spec.params
    kind = spec.kind
    if kind in ("spmm", "spmm_hyb"):
        return flat.reshape(p["rows"], p["feat_size"])
    if kind == "sddmm":
        return flat.reshape(-1)[: p["nnz"]]
    if kind == "pruned_spmm":
        return flat.reshape(p["out_rows"], p["seq_len"])
    if kind == "batched_spmm":
        return flat.reshape(p["heads"], p["rows"], p["feat_size"])
    if kind == "batched_spmm_bsr":
        return flat.reshape(p["heads"], p["padded_rows"], p["feat_size"])[:, : p["rows"]]
    if kind == "batched_sddmm":
        return flat.reshape(p["heads"], -1)[:, : p["nnz"]]
    if kind == "batched_sddmm_bsr":
        return flat.reshape(p["heads"], -1)[:, p["perm"]]
    if kind in ("rgms", "sparse_conv", "gemm", "add", "relu",
                "edge_softmax", "batched_spmm_edges"):
        return flat.reshape(spec.out_shape)
    raise ValueError(f"unknown operator kind {kind!r}")


__all__ = [
    "OpSpec", "prepare", "PREPARE", "emit_spec", "build_spec_program", "finalize",
    "csr_structure_key", "csf_structure_key", "conv_structure_key",
]
