"""Batched (multi-head) SpMM and SDDMM for sparse attention (Section 4.3.1).

Sparse transformers share one manually designed sparse structure (band /
butterfly) across all attention heads; the heavy operators are a batched
SpMM (``O[h] = S[h] @ V[h]``) and a batched SDDMM (``S[h] = Q[h] K[h]^T``
sampled at the mask).  The block-sparse structure lets the BSR variants run
on Tensor Cores with half-precision inputs, which is where the speedups of
Figure 16 come from; the CSR variants fall back to scalar CUDA cores and lose
badly (0.04-0.08x in the paper), which the model reproduces.

Both operators are executable end-to-end: ``build_batched_*_program`` emit
stage-I programs whose head axis is a plain dense batch loop (flattened into
lanes by the vectorized executor), and :func:`batched_spmm` /
:func:`batched_sddmm` run them through a compile-once/run-many
:class:`~repro.runtime.session.Session` in CSR or BSR form.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.program import PrimFunc
from ..core.script import ProgramBuilder
from ..core.sparse_iteration import fuse
from ..formats.bsr import BSRMatrix
from ..formats.csr import CSRMatrix
from ..perf.device import DeviceSpec
from ..perf.tensor_core import MMA_SHAPES
from ..perf.workload import BlockGroup, KernelWorkload
from .common import INDEX_BYTES, ceil_div, value_bytes
from .sddmm import sddmm_reference
from .spmm import spmm_reference


# ---------------------------------------------------------------------------
# Reference implementations
# ---------------------------------------------------------------------------

def batched_spmm_reference(csr: CSRMatrix, features: np.ndarray) -> np.ndarray:
    """``out[h] = A @ X[h]`` for every head; ``features`` is (heads, n, d)."""
    features = np.asarray(features, dtype=np.float32)
    if features.ndim != 3:
        raise ValueError("features must be (heads, cols, feat)")
    return np.stack([spmm_reference(csr, features[h]) for h in range(features.shape[0])])


def batched_sddmm_reference(csr: CSRMatrix, q: np.ndarray, k: np.ndarray) -> np.ndarray:
    """Per-head SDDMM; ``q`` is (heads, rows, d) and ``k`` is (heads, d, cols)."""
    q = np.asarray(q, dtype=np.float32)
    k = np.asarray(k, dtype=np.float32)
    if q.ndim != 3 or k.ndim != 3:
        raise ValueError("q and k must be 3-D (heads, ., .)")
    return np.stack([sddmm_reference(csr, q[h], k[h]) for h in range(q.shape[0])])


# ---------------------------------------------------------------------------
# Executable operators (compile-once/run-many Session path)
# ---------------------------------------------------------------------------

def batched_spmm(
    csr: CSRMatrix,
    features: np.ndarray,
    format: str = "csr",
    block_size: int = 16,
    session=None,
    tuned: bool = False,
) -> np.ndarray:
    """Execute the multi-head SpMM through the pipeline and NumPy runtime.

    Args:
        csr: The shared attention mask (one sparsity structure for all heads).
        features: Per-head dense operands of shape ``(heads, cols, feat)``.
        format: ``"csr"`` (scalar program) or ``"bsr"`` (block program).
        block_size: BSR block size when ``format="bsr"``.
        session: Optional explicit :class:`~repro.runtime.session.Session`.
        tuned: Apply the ``attention`` tuning record for this mask/shape.

    Returns:
        The per-head products, shape ``(heads, rows, feat)``.
    """
    from ..runtime.session import get_default_session

    session = session or get_default_session()
    return session.batched_spmm(
        csr, features, format=format, block_size=block_size, tuned=tuned
    )


def batched_sddmm(
    csr: CSRMatrix,
    q: np.ndarray,
    k: np.ndarray,
    format: str = "csr",
    block_size: int = 16,
    scale: Optional[float] = None,
    session=None,
    tuned: bool = False,
) -> np.ndarray:
    """Execute the multi-head SDDMM through the pipeline and NumPy runtime.

    Args:
        csr: The shared attention mask.
        q: Per-head queries of shape ``(heads, rows, feat)``.
        k: Per-head keys of shape ``(heads, feat, cols)``.
        format: ``"csr"`` (fused edge loop) or ``"bsr"`` (block program).
        block_size: BSR block size when ``format="bsr"``.
        scale: Optional post-scaling factor (e.g. ``1/sqrt(d)``) applied by a
            separate pointwise iteration.
        session: Optional explicit :class:`~repro.runtime.session.Session`.
        tuned: Apply the ``attention`` tuning record for this mask/shape.

    Returns:
        Per-head edge scores in CSR order, shape ``(heads, nnz)``.
    """
    from ..runtime.session import get_default_session

    session = session or get_default_session()
    return session.batched_sddmm(
        csr, q, k, format=format, block_size=block_size, scale=scale, tuned=tuned
    )


# ---------------------------------------------------------------------------
# SparseTIR programs (compiled through the full pipeline)
# ---------------------------------------------------------------------------

def build_batched_spmm_program(
    csr: CSRMatrix,
    num_heads: int,
    feat_size: int,
    features: Optional[np.ndarray] = None,
) -> PrimFunc:
    """The CSR multi-head SpMM program: Figure 3 plus a leading batch axis.

    The head axis ``H`` is an ordinary dense-fixed loop, so the vectorized
    executor flattens it into lanes exactly like the row/feature axes; the
    sparsity structure (and the edge-value buffer ``A``) is shared by all
    heads, matching the attention masks of Section 4.3.1.
    """
    builder = ProgramBuilder("batched_spmm")
    h_axis = builder.dense_fixed("H", num_heads)
    i_axis = builder.dense_fixed("I", csr.rows)
    j_axis = builder.sparse_variable(
        "J", parent=i_axis, length=csr.cols, nnz=csr.nnz, indptr=csr.indptr, indices=csr.indices
    )
    j_dense = builder.dense_fixed("J_", csr.cols)
    k_axis = builder.dense_fixed("K", feat_size)
    a_buf = builder.match_sparse_buffer("A", [i_axis, j_axis], data=csr.data)
    b_buf = builder.match_sparse_buffer(
        "B", [h_axis, j_dense, k_axis],
        data=None if features is None else np.asarray(features, dtype=np.float32).reshape(-1),
    )
    c_buf = builder.match_sparse_buffer("C", [h_axis, i_axis, k_axis])
    with builder.sp_iter([h_axis, i_axis, j_axis, k_axis], "SSRS", "batched_spmm") as (h, i, j, k):
        builder.init(c_buf[h, i, k], 0.0)
        builder.compute(c_buf[h, i, k], c_buf[h, i, k] + a_buf[i, j] * b_buf[h, j, k])
    return builder.finish()


def build_batched_spmm_bsr_program(
    bsr: BSRMatrix,
    num_heads: int,
    feat_size: int,
    features: Optional[np.ndarray] = None,
) -> PrimFunc:
    """The BSR multi-head SpMM program (the Tensor-Core variant of Figure 16).

    ``(IB, JB)`` walk the block structure, ``(BI, BJ)`` the dense interior of
    each block, and the leading ``H`` axis batches the heads.
    """
    b = bsr.block_size
    builder = ProgramBuilder("batched_spmm_bsr")
    h_axis = builder.dense_fixed("H", num_heads)
    ib_axis = builder.dense_fixed("IB", bsr.block_rows)
    jb_axis = builder.sparse_variable(
        "JB", parent=ib_axis, length=bsr.block_cols, nnz=bsr.num_blocks,
        indptr=bsr.indptr, indices=bsr.indices,
    )
    bi_axis = builder.dense_fixed("BI", b)
    bj_axis = builder.dense_fixed("BJ", b)
    k_axis = builder.dense_fixed("K", feat_size)
    i_dense = builder.dense_fixed("I_", bsr.shape[0])
    j_dense = builder.dense_fixed("J_", bsr.shape[1])
    a_buf = builder.match_sparse_buffer(
        "A", [ib_axis, jb_axis, bi_axis, bj_axis], data=bsr.data.reshape(-1)
    )
    b_buf = builder.match_sparse_buffer(
        "B", [h_axis, j_dense, k_axis],
        data=None if features is None else np.asarray(features, dtype=np.float32).reshape(-1),
    )
    c_buf = builder.match_sparse_buffer("C", [h_axis, i_dense, k_axis])
    with builder.sp_iter(
        [h_axis, ib_axis, jb_axis, bi_axis, bj_axis, k_axis], "SSRSRS", "batched_spmm_bsr"
    ) as (h, ib, jb, bi, bj, k):
        builder.init(c_buf[h, ib * b + bi, k], 0.0)
        builder.compute(
            c_buf[h, ib * b + bi, k],
            c_buf[h, ib * b + bi, k] + a_buf[ib, jb, bi, bj] * b_buf[h, jb * b + bj, k],
        )
    return builder.finish()


def build_batched_sddmm_program(
    csr: CSRMatrix,
    num_heads: int,
    feat_size: int,
    q: Optional[np.ndarray] = None,
    k: Optional[np.ndarray] = None,
    fuse_ij: bool = True,
    scale: Optional[float] = None,
) -> PrimFunc:
    """The batched SDDMM program over the shared mask.

    The output buffer ``OUT[H, I, J]`` places a dense batch axis *before* a
    sparse axis — the batched flattening case of equation (8): one segment of
    ``nnz`` slots per head.  With ``scale`` a second, pointwise iteration
    rescales every stored score (the ``1/sqrt(d)`` step of attention), which
    the vectorized executor runs as an in-place ``multiply.at`` reduction.
    """
    builder = ProgramBuilder("batched_sddmm")
    h_axis = builder.dense_fixed("H", num_heads)
    i_axis = builder.dense_fixed("I", csr.rows)
    j_axis = builder.sparse_variable(
        "J", parent=i_axis, length=csr.cols, nnz=csr.nnz, indptr=csr.indptr, indices=csr.indices
    )
    i_dense = builder.dense_fixed("I_", csr.rows)
    j_dense = builder.dense_fixed("J_", csr.cols)
    k_axis = builder.dense_fixed("K", feat_size)
    a_buf = builder.match_sparse_buffer("A", [i_axis, j_axis], data=csr.data)
    out_buf = builder.match_sparse_buffer("OUT", [h_axis, i_axis, j_axis])
    q_buf = builder.match_sparse_buffer(
        "Q", [h_axis, i_dense, k_axis],
        data=None if q is None else np.asarray(q, dtype=np.float32).reshape(-1),
    )
    k_buf = builder.match_sparse_buffer(
        "Kv", [h_axis, k_axis, j_dense],
        data=None if k is None else np.asarray(k, dtype=np.float32).reshape(-1),
    )
    axes = (
        [h_axis, fuse(i_axis, j_axis), k_axis] if fuse_ij
        else [h_axis, i_axis, j_axis, k_axis]
    )
    with builder.sp_iter(axes, "SSSR", "batched_sddmm") as (h, i, j, kk):
        builder.init(out_buf[h, i, j], 0.0)
        builder.compute(
            out_buf[h, i, j],
            out_buf[h, i, j] + a_buf[i, j] * q_buf[h, i, kk] * k_buf[h, kk, j],
        )
    if scale is not None:
        scale_axes = [h_axis, fuse(i_axis, j_axis)] if fuse_ij else [h_axis, i_axis, j_axis]
        with builder.sp_iter(scale_axes, "SSS", "scale_scores") as (h, i, j):
            builder.compute(out_buf[h, i, j], out_buf[h, i, j] * float(scale))
    return builder.finish()


def build_batched_sddmm_bsr_program(
    bsr: BSRMatrix,
    num_heads: int,
    feat_size: int,
    q: Optional[np.ndarray] = None,
    k: Optional[np.ndarray] = None,
    scale: Optional[float] = None,
) -> PrimFunc:
    """The BSR batched SDDMM: every stored block is a small Q x K^T matmul.

    The output buffer ``OUT[H, IB, JB, BI, BJ]`` stores per-head block values
    in block order; :func:`bsr_element_permutation` maps them back to the CSR
    element order of the mask.
    """
    b = bsr.block_size
    builder = ProgramBuilder("batched_sddmm_bsr")
    h_axis = builder.dense_fixed("H", num_heads)
    ib_axis = builder.dense_fixed("IB", bsr.block_rows)
    jb_axis = builder.sparse_variable(
        "JB", parent=ib_axis, length=bsr.block_cols, nnz=bsr.num_blocks,
        indptr=bsr.indptr, indices=bsr.indices,
    )
    bi_axis = builder.dense_fixed("BI", b)
    bj_axis = builder.dense_fixed("BJ", b)
    k_axis = builder.dense_fixed("K", feat_size)
    i_dense = builder.dense_fixed("I_", bsr.shape[0])
    j_dense = builder.dense_fixed("J_", bsr.shape[1])
    a_buf = builder.match_sparse_buffer(
        "A", [ib_axis, jb_axis, bi_axis, bj_axis], data=bsr.data.reshape(-1)
    )
    out_buf = builder.match_sparse_buffer("OUT", [h_axis, ib_axis, jb_axis, bi_axis, bj_axis])
    q_buf = builder.match_sparse_buffer(
        "Q", [h_axis, i_dense, k_axis],
        data=None if q is None else np.asarray(q, dtype=np.float32).reshape(-1),
    )
    k_buf = builder.match_sparse_buffer(
        "Kv", [h_axis, k_axis, j_dense],
        data=None if k is None else np.asarray(k, dtype=np.float32).reshape(-1),
    )
    with builder.sp_iter(
        [h_axis, ib_axis, jb_axis, bi_axis, bj_axis, k_axis], "SSSSSR", "batched_sddmm_bsr"
    ) as (h, ib, jb, bi, bj, kk):
        builder.init(out_buf[h, ib, jb, bi, bj], 0.0)
        builder.compute(
            out_buf[h, ib, jb, bi, bj],
            out_buf[h, ib, jb, bi, bj]
            + a_buf[ib, jb, bi, bj] * q_buf[h, ib * b + bi, kk] * k_buf[h, kk, jb * b + bj],
        )
    if scale is not None:
        with builder.sp_iter(
            [h_axis, ib_axis, jb_axis, bi_axis, bj_axis], "SSSSS", "scale_scores"
        ) as (h, ib, jb, bi, bj):
            builder.compute(
                out_buf[h, ib, jb, bi, bj], out_buf[h, ib, jb, bi, bj] * float(scale)
            )
    return builder.finish()


def bsr_element_permutation(csr: CSRMatrix, bsr: BSRMatrix) -> np.ndarray:
    """Map CSR element order to flat BSR value order for a block-aligned mask.

    ``perm[e]`` is the index into the flat ``(num_blocks * b * b)`` BSR value
    array holding the ``e``-th CSR non-zero.  Requires the mask to be exactly
    block-aligned (every stored block fully dense), which holds for the
    paper's band/butterfly attention masks.
    """
    import scipy.sparse as sp

    b = bsr.block_size
    if bsr.nnz_stored != csr.nnz:
        raise ValueError(
            f"mask is not block-aligned: {csr.nnz} non-zeros vs "
            f"{bsr.nnz_stored} stored block elements"
        )
    tagged = sp.bsr_matrix(
        (
            np.arange(bsr.nnz_stored, dtype=np.int64).reshape(-1, b, b),
            bsr.indices,
            bsr.indptr,
        ),
        shape=bsr.shape,
        blocksize=(b, b),
    ).tocsr()
    tagged.sort_indices()
    perm = tagged.data.astype(np.int64)
    if perm.size != csr.nnz:
        raise ValueError("mask is not block-aligned: stored patterns differ")
    return perm


# ---------------------------------------------------------------------------
# Workload models
# ---------------------------------------------------------------------------

def batched_spmm_bsr_workload(
    bsr: BSRMatrix,
    feat_size: int,
    num_heads: int,
    device: DeviceSpec,
    intrin: str = "mma_m16n16k16",
    name: str = "sparsetir_bsr_spmm",
    mma_efficiency: float = 0.70,
) -> KernelWorkload:
    """Multi-head SpMM on BSR using tensorized (MMA) blocks.

    One thread block handles one block-row of one head; the block's tiles are
    multiplied on Tensor Cores with the corresponding feature tiles staged
    through shared memory.
    """
    vbytes = value_bytes("float16")
    b = bsr.block_size
    lengths = bsr.block_row_lengths.astype(np.float64)
    flops = 2.0 * lengths * b * b * feat_size
    reads = (
        lengths * b * b * vbytes                      # block values
        + lengths * INDEX_BYTES                       # block column indices
        + lengths * b * feat_size * vbytes            # gathered feature tiles
    )
    writes = np.full(len(lengths), b * feat_size * vbytes, dtype=np.float64)

    workload = KernelWorkload(name=name, num_launches=1)
    workload.memory_footprint_bytes = num_heads * (
        bsr.nbytes(value_bytes=vbytes) + 2 * bsr.shape[1] * feat_size * vbytes
    )
    workload.add(
        BlockGroup(
            name="bsr_block_rows",
            num_blocks=int(len(lengths)) * num_heads,
            threads_per_block=4 * device.warp_size,
            flops_per_block=np.tile(flops, num_heads),
            dram_read_bytes_per_block=np.tile(reads, num_heads),
            dram_write_bytes_per_block=np.tile(writes, num_heads),
            shared_mem_bytes=2 * b * feat_size * vbytes,
            uses_tensor_core=True,
            dtype="float16",
            vector_width=8,
            compute_efficiency=mma_efficiency,
            metadata={"intrin": intrin, "mma_shape": MMA_SHAPES[intrin]},
        )
    )
    return workload


def batched_spmm_csr_workload(
    csr: CSRMatrix,
    feat_size: int,
    num_heads: int,
    device: DeviceSpec,
    name: str = "sparsetir_csr_spmm",
) -> KernelWorkload:
    """Multi-head SpMM in scalar CSR form: no tensor cores, element-wise loads.

    The block-sparse structure degenerates to per-element indices, which both
    inflates index traffic and prevents MMA use — the reason the CSR variant
    is ~20x slower than the BSR variant in Figure 16.
    """
    vbytes = value_bytes("float16")
    lengths = csr.row_lengths().astype(np.float64)
    flops = 2.0 * lengths * feat_size
    reads = lengths * (INDEX_BYTES + vbytes) + lengths * feat_size * vbytes
    writes = np.full(len(lengths), feat_size * vbytes, dtype=np.float64)

    workload = KernelWorkload(name=name, num_launches=1)
    workload.memory_footprint_bytes = num_heads * (
        csr.nbytes(value_bytes=vbytes) + 2 * csr.cols * feat_size * vbytes
    )
    workload.add(
        BlockGroup(
            name="csr_rows",
            num_blocks=int(len(lengths)) * num_heads,
            threads_per_block=device.warp_size,
            flops_per_block=np.tile(flops, num_heads),
            dram_read_bytes_per_block=np.tile(reads, num_heads),
            dram_write_bytes_per_block=np.tile(writes, num_heads),
            uses_tensor_core=False,
            dtype="float16",
            vector_width=1,
            compute_efficiency=0.5,
        )
    )
    return workload


def batched_sddmm_bsr_workload(
    bsr: BSRMatrix,
    feat_size: int,
    num_heads: int,
    device: DeviceSpec,
    intrin: str = "mma_m16n16k16",
    name: str = "sparsetir_bsr_sddmm",
    mma_efficiency: float = 0.70,
) -> KernelWorkload:
    """Multi-head SDDMM on BSR: each stored block is a small Q x K^T matmul."""
    vbytes = value_bytes("float16")
    b = bsr.block_size
    blocks_per_tb = max(1, 64 // b)
    num_tb = ceil_div(bsr.num_blocks, blocks_per_tb)
    flops = 2.0 * blocks_per_tb * b * b * feat_size
    reads = blocks_per_tb * (2 * b * feat_size * vbytes + INDEX_BYTES * 2)
    writes = blocks_per_tb * b * b * vbytes

    workload = KernelWorkload(name=name, num_launches=1)
    workload.memory_footprint_bytes = num_heads * (
        bsr.nbytes(value_bytes=vbytes) + 2 * bsr.shape[0] * feat_size * vbytes
    )
    workload.add(
        BlockGroup(
            name="bsr_blocks",
            num_blocks=num_tb * num_heads,
            threads_per_block=4 * device.warp_size,
            flops_per_block=flops,
            dram_read_bytes_per_block=reads,
            dram_write_bytes_per_block=writes,
            shared_mem_bytes=2 * b * feat_size * vbytes,
            uses_tensor_core=True,
            dtype="float16",
            vector_width=8,
            compute_efficiency=mma_efficiency,
            metadata={"intrin": intrin},
        )
    )
    return workload


def batched_sddmm_csr_workload(
    csr: CSRMatrix,
    feat_size: int,
    num_heads: int,
    device: DeviceSpec,
    name: str = "sparsetir_csr_sddmm",
) -> KernelWorkload:
    """Scalar multi-head SDDMM over the element-wise mask (no tensor cores)."""
    vbytes = value_bytes("float16")
    nnz_per_block = 16
    num_tb = ceil_div(csr.nnz, nnz_per_block)
    flops = 2.0 * nnz_per_block * feat_size
    reads = nnz_per_block * (2 * feat_size * vbytes + 2 * INDEX_BYTES)
    writes = nnz_per_block * vbytes
    workload = KernelWorkload(name=name, num_launches=1)
    workload.memory_footprint_bytes = num_heads * (
        csr.nbytes(value_bytes=vbytes) + 2 * csr.rows * feat_size * vbytes
    )
    workload.add(
        BlockGroup(
            name="csr_edges",
            num_blocks=num_tb * num_heads,
            threads_per_block=device.warp_size,
            flops_per_block=flops,
            dram_read_bytes_per_block=reads,
            dram_write_bytes_per_block=writes,
            uses_tensor_core=False,
            dtype="float16",
            vector_width=1,
            compute_efficiency=0.5,
        )
    )
    return workload
