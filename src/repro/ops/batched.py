"""Batched (multi-head) SpMM and SDDMM for sparse attention (Section 4.3.1).

Sparse transformers share one manually designed sparse structure (band /
butterfly) across all attention heads; the heavy operators are a batched
SpMM (``O[h] = S[h] @ V[h]``) and a batched SDDMM (``S[h] = Q[h] K[h]^T``
sampled at the mask).  The block-sparse structure lets the BSR variants run
on Tensor Cores with half-precision inputs, which is where the speedups of
Figure 16 come from; the CSR variants fall back to scalar CUDA cores and lose
badly (0.04-0.08x in the paper), which the model reproduces.
"""

from __future__ import annotations


import numpy as np

from ..formats.bsr import BSRMatrix
from ..formats.csr import CSRMatrix
from ..perf.device import DeviceSpec
from ..perf.tensor_core import MMA_SHAPES
from ..perf.workload import BlockGroup, KernelWorkload
from .common import INDEX_BYTES, ceil_div, value_bytes
from .sddmm import sddmm_reference
from .spmm import spmm_reference


# ---------------------------------------------------------------------------
# Reference implementations
# ---------------------------------------------------------------------------

def batched_spmm_reference(csr: CSRMatrix, features: np.ndarray) -> np.ndarray:
    """``out[h] = A @ X[h]`` for every head; ``features`` is (heads, n, d)."""
    features = np.asarray(features, dtype=np.float32)
    if features.ndim != 3:
        raise ValueError("features must be (heads, cols, feat)")
    return np.stack([spmm_reference(csr, features[h]) for h in range(features.shape[0])])


def batched_sddmm_reference(csr: CSRMatrix, q: np.ndarray, k: np.ndarray) -> np.ndarray:
    """Per-head SDDMM; ``q`` is (heads, rows, d) and ``k`` is (heads, d, cols)."""
    q = np.asarray(q, dtype=np.float32)
    k = np.asarray(k, dtype=np.float32)
    if q.ndim != 3 or k.ndim != 3:
        raise ValueError("q and k must be 3-D (heads, ., .)")
    return np.stack([sddmm_reference(csr, q[h], k[h]) for h in range(q.shape[0])])


# ---------------------------------------------------------------------------
# Workload models
# ---------------------------------------------------------------------------

def batched_spmm_bsr_workload(
    bsr: BSRMatrix,
    feat_size: int,
    num_heads: int,
    device: DeviceSpec,
    intrin: str = "mma_m16n16k16",
    name: str = "sparsetir_bsr_spmm",
    mma_efficiency: float = 0.70,
) -> KernelWorkload:
    """Multi-head SpMM on BSR using tensorized (MMA) blocks.

    One thread block handles one block-row of one head; the block's tiles are
    multiplied on Tensor Cores with the corresponding feature tiles staged
    through shared memory.
    """
    vbytes = value_bytes("float16")
    b = bsr.block_size
    lengths = bsr.block_row_lengths.astype(np.float64)
    flops = 2.0 * lengths * b * b * feat_size
    reads = (
        lengths * b * b * vbytes                      # block values
        + lengths * INDEX_BYTES                       # block column indices
        + lengths * b * feat_size * vbytes            # gathered feature tiles
    )
    writes = np.full(len(lengths), b * feat_size * vbytes, dtype=np.float64)

    workload = KernelWorkload(name=name, num_launches=1)
    workload.memory_footprint_bytes = num_heads * (
        bsr.nbytes(value_bytes=vbytes) + 2 * bsr.shape[1] * feat_size * vbytes
    )
    workload.add(
        BlockGroup(
            name="bsr_block_rows",
            num_blocks=int(len(lengths)) * num_heads,
            threads_per_block=4 * device.warp_size,
            flops_per_block=np.tile(flops, num_heads),
            dram_read_bytes_per_block=np.tile(reads, num_heads),
            dram_write_bytes_per_block=np.tile(writes, num_heads),
            shared_mem_bytes=2 * b * feat_size * vbytes,
            uses_tensor_core=True,
            dtype="float16",
            vector_width=8,
            compute_efficiency=mma_efficiency,
            metadata={"intrin": intrin, "mma_shape": MMA_SHAPES[intrin]},
        )
    )
    return workload


def batched_spmm_csr_workload(
    csr: CSRMatrix,
    feat_size: int,
    num_heads: int,
    device: DeviceSpec,
    name: str = "sparsetir_csr_spmm",
) -> KernelWorkload:
    """Multi-head SpMM in scalar CSR form: no tensor cores, element-wise loads.

    The block-sparse structure degenerates to per-element indices, which both
    inflates index traffic and prevents MMA use — the reason the CSR variant
    is ~20x slower than the BSR variant in Figure 16.
    """
    vbytes = value_bytes("float16")
    lengths = csr.row_lengths().astype(np.float64)
    flops = 2.0 * lengths * feat_size
    reads = lengths * (INDEX_BYTES + vbytes) + lengths * feat_size * vbytes
    writes = np.full(len(lengths), feat_size * vbytes, dtype=np.float64)

    workload = KernelWorkload(name=name, num_launches=1)
    workload.memory_footprint_bytes = num_heads * (
        csr.nbytes(value_bytes=vbytes) + 2 * csr.cols * feat_size * vbytes
    )
    workload.add(
        BlockGroup(
            name="csr_rows",
            num_blocks=int(len(lengths)) * num_heads,
            threads_per_block=device.warp_size,
            flops_per_block=np.tile(flops, num_heads),
            dram_read_bytes_per_block=np.tile(reads, num_heads),
            dram_write_bytes_per_block=np.tile(writes, num_heads),
            uses_tensor_core=False,
            dtype="float16",
            vector_width=1,
            compute_efficiency=0.5,
        )
    )
    return workload


def batched_sddmm_bsr_workload(
    bsr: BSRMatrix,
    feat_size: int,
    num_heads: int,
    device: DeviceSpec,
    intrin: str = "mma_m16n16k16",
    name: str = "sparsetir_bsr_sddmm",
    mma_efficiency: float = 0.70,
) -> KernelWorkload:
    """Multi-head SDDMM on BSR: each stored block is a small Q x K^T matmul."""
    vbytes = value_bytes("float16")
    b = bsr.block_size
    blocks_per_tb = max(1, 64 // b)
    num_tb = ceil_div(bsr.num_blocks, blocks_per_tb)
    flops = 2.0 * blocks_per_tb * b * b * feat_size
    reads = blocks_per_tb * (2 * b * feat_size * vbytes + INDEX_BYTES * 2)
    writes = blocks_per_tb * b * b * vbytes

    workload = KernelWorkload(name=name, num_launches=1)
    workload.memory_footprint_bytes = num_heads * (
        bsr.nbytes(value_bytes=vbytes) + 2 * bsr.shape[0] * feat_size * vbytes
    )
    workload.add(
        BlockGroup(
            name="bsr_blocks",
            num_blocks=num_tb * num_heads,
            threads_per_block=4 * device.warp_size,
            flops_per_block=flops,
            dram_read_bytes_per_block=reads,
            dram_write_bytes_per_block=writes,
            shared_mem_bytes=2 * b * feat_size * vbytes,
            uses_tensor_core=True,
            dtype="float16",
            vector_width=8,
            compute_efficiency=mma_efficiency,
            metadata={"intrin": intrin},
        )
    )
    return workload


def batched_sddmm_csr_workload(
    csr: CSRMatrix,
    feat_size: int,
    num_heads: int,
    device: DeviceSpec,
    name: str = "sparsetir_csr_sddmm",
) -> KernelWorkload:
    """Scalar multi-head SDDMM over the element-wise mask (no tensor cores)."""
    vbytes = value_bytes("float16")
    nnz_per_block = 16
    num_tb = ceil_div(csr.nnz, nnz_per_block)
    flops = 2.0 * nnz_per_block * feat_size
    reads = nnz_per_block * (2 * feat_size * vbytes + 2 * INDEX_BYTES)
    writes = nnz_per_block * vbytes
    workload = KernelWorkload(name=name, num_launches=1)
    workload.memory_footprint_bytes = num_heads * (
        csr.nbytes(value_bytes=vbytes) + 2 * csr.rows * feat_size * vbytes
    )
    workload.add(
        BlockGroup(
            name="csr_edges",
            num_blocks=num_tb * num_heads,
            threads_per_block=device.warp_size,
            flops_per_block=flops,
            dram_read_bytes_per_block=reads,
            dram_write_bytes_per_block=writes,
            uses_tensor_core=False,
            dtype="float16",
            vector_width=1,
            compute_efficiency=0.5,
        )
    )
    return workload
