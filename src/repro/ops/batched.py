"""Batched (multi-head) SpMM and SDDMM for sparse attention (Section 4.3.1).

Sparse transformers share one manually designed sparse structure (band /
butterfly) across all attention heads; the heavy operators are a batched
SpMM (``O[h] = S[h] @ V[h]``) and a batched SDDMM (``S[h] = Q[h] K[h]^T``
sampled at the mask).  The block-sparse structure lets the BSR variants run
on Tensor Cores with half-precision inputs, which is where the speedups of
Figure 16 come from; the CSR variants fall back to scalar CUDA cores and lose
badly (0.04-0.08x in the paper), which the model reproduces.

Both operators are executable end-to-end: ``build_batched_*_program`` emit
stage-I programs whose head axis is a plain dense batch loop (flattened into
lanes by the vectorized executor), and :func:`batched_spmm` /
:func:`batched_sddmm` run them through a compile-once/run-many
:class:`~repro.runtime.session.Session` in CSR or BSR form.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..core.buffers import SparseBuffer
from ..core.expr import Call
from ..core.program import PrimFunc
from ..core.script import EmitContext, ProgramBuilder
from ..core.sparse_iteration import fuse
from ..formats.bsr import BSRMatrix
from ..formats.csr import CSRMatrix
from ..perf.device import DeviceSpec
from ..perf.tensor_core import MMA_SHAPES
from ..perf.workload import BlockGroup, KernelWorkload
from .common import INDEX_BYTES, ceil_div, keyword_session, value_bytes
from .sddmm import sddmm_reference
from .spmm import spmm_reference


# ---------------------------------------------------------------------------
# Reference implementations
# ---------------------------------------------------------------------------

def batched_spmm_reference(csr: CSRMatrix, features: np.ndarray) -> np.ndarray:
    """``out[h] = A @ X[h]`` for every head; ``features`` is (heads, n, d)."""
    features = np.asarray(features, dtype=np.float32)
    if features.ndim != 3:
        raise ValueError("features must be (heads, cols, feat)")
    return np.stack([spmm_reference(csr, features[h]) for h in range(features.shape[0])])


def batched_sddmm_reference(csr: CSRMatrix, q: np.ndarray, k: np.ndarray) -> np.ndarray:
    """Per-head SDDMM; ``q`` is (heads, rows, d) and ``k`` is (heads, d, cols)."""
    q = np.asarray(q, dtype=np.float32)
    k = np.asarray(k, dtype=np.float32)
    if q.ndim != 3 or k.ndim != 3:
        raise ValueError("q and k must be 3-D (heads, ., .)")
    return np.stack([sddmm_reference(csr, q[h], k[h]) for h in range(q.shape[0])])


# ---------------------------------------------------------------------------
# Executable operators (compile-once/run-many Session path)
# ---------------------------------------------------------------------------

@keyword_session
def batched_spmm(
    csr: CSRMatrix,
    features: np.ndarray,
    format: str = "csr",
    block_size: int = 16,
    *,
    session=None,
    tuned: bool = False,
    dtype=None,
) -> np.ndarray:
    """Execute the multi-head SpMM through the pipeline and NumPy runtime.

    Args:
        csr: The shared attention mask (one sparsity structure for all heads).
        features: Per-head dense operands of shape ``(heads, cols, feat)``.
        format: ``"csr"`` (scalar program) or ``"bsr"`` (block program).
        block_size: BSR block size when ``format="bsr"``.
        dtype: Value dtype (``float32``/``float64``); ``None`` infers from
            the operands (CSR format only — BSR computes in float32).
        session: Optional explicit :class:`~repro.runtime.session.Session`.
        tuned: Apply the ``attention`` tuning record for this mask/shape.

    Returns:
        The per-head products, shape ``(heads, rows, feat)``.
    """
    from ..runtime.session import get_default_session

    session = session or get_default_session()
    return session.batched_spmm(
        csr, features, format=format, block_size=block_size, dtype=dtype, tuned=tuned
    )


@keyword_session
def batched_sddmm(
    csr: CSRMatrix,
    q: np.ndarray,
    k: np.ndarray,
    format: str = "csr",
    block_size: int = 16,
    scale: Optional[float] = None,
    *,
    session=None,
    tuned: bool = False,
    dtype=None,
) -> np.ndarray:
    """Execute the multi-head SDDMM through the pipeline and NumPy runtime.

    Args:
        csr: The shared attention mask.
        q: Per-head queries of shape ``(heads, rows, feat)``.
        k: Per-head keys of shape ``(heads, feat, cols)``.
        format: ``"csr"`` (fused edge loop) or ``"bsr"`` (block program).
        block_size: BSR block size when ``format="bsr"``.
        scale: Optional post-scaling factor (e.g. ``1/sqrt(d)``) applied by a
            separate pointwise iteration.
        dtype: Value dtype (``float32``/``float64``); ``None`` infers from
            the operands (CSR format only — BSR computes in float32).
        session: Optional explicit :class:`~repro.runtime.session.Session`.
        tuned: Apply the ``attention`` tuning record for this mask/shape.

    Returns:
        Per-head edge scores in CSR order, shape ``(heads, nnz)``.
    """
    from ..runtime.session import get_default_session

    session = session or get_default_session()
    return session.batched_sddmm(
        csr, q, k, format=format, block_size=block_size, scale=scale,
        dtype=dtype, tuned=tuned,
    )


# ---------------------------------------------------------------------------
# SparseTIR programs (compiled through the full pipeline)
# ---------------------------------------------------------------------------

def build_batched_spmm_program(
    csr: CSRMatrix,
    num_heads: int,
    feat_size: int,
    features: Optional[np.ndarray] = None,
    dtype: str = "float32",
) -> PrimFunc:
    """The CSR multi-head SpMM program: Figure 3 plus a leading batch axis.

    The head axis ``H`` is an ordinary dense-fixed loop, so the vectorized
    executor flattens it into lanes exactly like the row/feature axes; the
    sparsity structure (and the edge-value buffer ``A``) is shared by all
    heads, matching the attention masks of Section 4.3.1.
    """
    ctx = EmitContext(ProgramBuilder("batched_spmm"))
    emit_batched_spmm(ctx, csr, num_heads, feat_size, features, dtype=dtype)
    return ctx.builder.finish()


def emit_batched_spmm(
    ctx: EmitContext,
    csr: CSRMatrix,
    num_heads: int,
    feat_size: int,
    features: Optional[np.ndarray] = None,
    dtype: str = "float32",
    bind: Optional[Dict[str, SparseBuffer]] = None,
) -> Dict[str, SparseBuffer]:
    """Append the multi-head SpMM iteration; ``bind`` may supply ``features``."""
    bind = bind or {}
    h_axis = ctx.dense_fixed("H", num_heads)
    i_axis, j_axis = ctx.csr_axes(csr)
    b_buf = bind.get("features")
    if b_buf is None:
        j_dense = ctx.dense_fixed("J_", csr.cols)
    k_axis = ctx.dense_fixed("K", feat_size)
    a_buf = ctx.buffer("A", [i_axis, j_axis], dtype=dtype, data=csr.data)
    if b_buf is None:
        b_buf = ctx.buffer(
            "B", [h_axis, j_dense, k_axis], dtype=dtype,
            data=None if features is None else np.asarray(features, dtype=dtype).reshape(-1),
        )
    c_buf = ctx.buffer("C", [h_axis, i_axis, k_axis], dtype=dtype)
    with ctx.sp_iter([h_axis, i_axis, j_axis, k_axis], "SSRS", "batched_spmm") as (h, i, j, k):
        ctx.init(c_buf[h, i, k], 0.0)
        ctx.compute(c_buf[h, i, k], c_buf[h, i, k] + a_buf[i, j] * b_buf[h, j, k])
    return {"out": c_buf, "features": b_buf}


def build_batched_spmm_bsr_program(
    bsr: BSRMatrix,
    num_heads: int,
    feat_size: int,
    features: Optional[np.ndarray] = None,
) -> PrimFunc:
    """The BSR multi-head SpMM program (the Tensor-Core variant of Figure 16).

    ``(IB, JB)`` walk the block structure, ``(BI, BJ)`` the dense interior of
    each block, and the leading ``H`` axis batches the heads.
    """
    b = bsr.block_size
    builder = ProgramBuilder("batched_spmm_bsr")
    h_axis = builder.dense_fixed("H", num_heads)
    ib_axis = builder.dense_fixed("IB", bsr.block_rows)
    jb_axis = builder.sparse_variable(
        "JB", parent=ib_axis, length=bsr.block_cols, nnz=bsr.num_blocks,
        indptr=bsr.indptr, indices=bsr.indices,
    )
    bi_axis = builder.dense_fixed("BI", b)
    bj_axis = builder.dense_fixed("BJ", b)
    k_axis = builder.dense_fixed("K", feat_size)
    i_dense = builder.dense_fixed("I_", bsr.shape[0])
    j_dense = builder.dense_fixed("J_", bsr.shape[1])
    a_buf = builder.match_sparse_buffer(
        "A", [ib_axis, jb_axis, bi_axis, bj_axis], data=bsr.data.reshape(-1)
    )
    b_buf = builder.match_sparse_buffer(
        "B", [h_axis, j_dense, k_axis],
        data=None if features is None else np.asarray(features, dtype=np.float32).reshape(-1),
    )
    c_buf = builder.match_sparse_buffer("C", [h_axis, i_dense, k_axis])
    with builder.sp_iter(
        [h_axis, ib_axis, jb_axis, bi_axis, bj_axis, k_axis], "SSRSRS", "batched_spmm_bsr"
    ) as (h, ib, jb, bi, bj, k):
        builder.init(c_buf[h, ib * b + bi, k], 0.0)
        builder.compute(
            c_buf[h, ib * b + bi, k],
            c_buf[h, ib * b + bi, k] + a_buf[ib, jb, bi, bj] * b_buf[h, jb * b + bj, k],
        )
    return builder.finish()


def build_batched_sddmm_program(
    csr: CSRMatrix,
    num_heads: int,
    feat_size: int,
    q: Optional[np.ndarray] = None,
    k: Optional[np.ndarray] = None,
    fuse_ij: bool = True,
    scale: Optional[float] = None,
    dtype: str = "float32",
) -> PrimFunc:
    """The batched SDDMM program over the shared mask.

    The output buffer ``OUT[H, I, J]`` places a dense batch axis *before* a
    sparse axis — the batched flattening case of equation (8): one segment of
    ``nnz`` slots per head.  With ``scale`` a second, pointwise iteration
    rescales every stored score (the ``1/sqrt(d)`` step of attention), which
    the vectorized executor runs as an in-place ``multiply.at`` reduction.
    """
    ctx = EmitContext(ProgramBuilder("batched_sddmm"))
    emit_batched_sddmm(
        ctx, csr, num_heads, feat_size, q, k, fuse_ij=fuse_ij, scale=scale, dtype=dtype
    )
    return ctx.builder.finish()


def emit_batched_sddmm(
    ctx: EmitContext,
    csr: CSRMatrix,
    num_heads: int,
    feat_size: int,
    q: Optional[np.ndarray] = None,
    k: Optional[np.ndarray] = None,
    fuse_ij: bool = True,
    scale: Optional[float] = None,
    dtype: str = "float32",
    bind: Optional[Dict[str, SparseBuffer]] = None,
) -> Dict[str, SparseBuffer]:
    """Append the batched SDDMM iterations; ``bind`` may supply ``q``/``k``."""
    bind = bind or {}
    h_axis = ctx.dense_fixed("H", num_heads)
    i_axis, j_axis = ctx.csr_axes(csr)
    q_buf = bind.get("q")
    k_buf = bind.get("k")
    if q_buf is None:
        i_dense = ctx.dense_fixed("I_", csr.rows)
    if k_buf is None:
        j_dense = ctx.dense_fixed("J_", csr.cols)
    k_axis = ctx.dense_fixed("K", feat_size)
    a_buf = ctx.buffer("A", [i_axis, j_axis], dtype=dtype, data=csr.data)
    out_buf = ctx.buffer("OUT", [h_axis, i_axis, j_axis], dtype=dtype)
    if q_buf is None:
        q_buf = ctx.buffer(
            "Q", [h_axis, i_dense, k_axis], dtype=dtype,
            data=None if q is None else np.asarray(q, dtype=dtype).reshape(-1),
        )
    if k_buf is None:
        k_buf = ctx.buffer(
            "Kv", [h_axis, k_axis, j_dense], dtype=dtype,
            data=None if k is None else np.asarray(k, dtype=dtype).reshape(-1),
        )
    axes = (
        [h_axis, fuse(i_axis, j_axis), k_axis] if fuse_ij
        else [h_axis, i_axis, j_axis, k_axis]
    )
    with ctx.sp_iter(axes, "SSSR", "batched_sddmm") as (h, i, j, kk):
        ctx.init(out_buf[h, i, j], 0.0)
        ctx.compute(
            out_buf[h, i, j],
            out_buf[h, i, j] + a_buf[i, j] * q_buf[h, i, kk] * k_buf[h, kk, j],
        )
    if scale is not None:
        scale_axes = [h_axis, fuse(i_axis, j_axis)] if fuse_ij else [h_axis, i_axis, j_axis]
        with ctx.sp_iter(scale_axes, "SSS", "scale_scores") as (h, i, j):
            ctx.compute(out_buf[h, i, j], out_buf[h, i, j] * float(scale))
    return {"out": out_buf, "q": q_buf, "k": k_buf}


def build_batched_sddmm_bsr_program(
    bsr: BSRMatrix,
    num_heads: int,
    feat_size: int,
    q: Optional[np.ndarray] = None,
    k: Optional[np.ndarray] = None,
    scale: Optional[float] = None,
) -> PrimFunc:
    """The BSR batched SDDMM: every stored block is a small Q x K^T matmul.

    The output buffer ``OUT[H, IB, JB, BI, BJ]`` stores per-head block values
    in block order; :func:`bsr_element_permutation` maps them back to the CSR
    element order of the mask.
    """
    b = bsr.block_size
    builder = ProgramBuilder("batched_sddmm_bsr")
    h_axis = builder.dense_fixed("H", num_heads)
    ib_axis = builder.dense_fixed("IB", bsr.block_rows)
    jb_axis = builder.sparse_variable(
        "JB", parent=ib_axis, length=bsr.block_cols, nnz=bsr.num_blocks,
        indptr=bsr.indptr, indices=bsr.indices,
    )
    bi_axis = builder.dense_fixed("BI", b)
    bj_axis = builder.dense_fixed("BJ", b)
    k_axis = builder.dense_fixed("K", feat_size)
    i_dense = builder.dense_fixed("I_", bsr.shape[0])
    j_dense = builder.dense_fixed("J_", bsr.shape[1])
    a_buf = builder.match_sparse_buffer(
        "A", [ib_axis, jb_axis, bi_axis, bj_axis], data=bsr.data.reshape(-1)
    )
    out_buf = builder.match_sparse_buffer("OUT", [h_axis, ib_axis, jb_axis, bi_axis, bj_axis])
    q_buf = builder.match_sparse_buffer(
        "Q", [h_axis, i_dense, k_axis],
        data=None if q is None else np.asarray(q, dtype=np.float32).reshape(-1),
    )
    k_buf = builder.match_sparse_buffer(
        "Kv", [h_axis, k_axis, j_dense],
        data=None if k is None else np.asarray(k, dtype=np.float32).reshape(-1),
    )
    with builder.sp_iter(
        [h_axis, ib_axis, jb_axis, bi_axis, bj_axis, k_axis], "SSSSSR", "batched_sddmm_bsr"
    ) as (h, ib, jb, bi, bj, kk):
        builder.init(out_buf[h, ib, jb, bi, bj], 0.0)
        builder.compute(
            out_buf[h, ib, jb, bi, bj],
            out_buf[h, ib, jb, bi, bj]
            + a_buf[ib, jb, bi, bj] * q_buf[h, ib * b + bi, kk] * k_buf[h, kk, jb * b + bj],
        )
    if scale is not None:
        with builder.sp_iter(
            [h_axis, ib_axis, jb_axis, bi_axis, bj_axis], "SSSSS", "scale_scores"
        ) as (h, ib, jb, bi, bj):
            builder.compute(
                out_buf[h, ib, jb, bi, bj], out_buf[h, ib, jb, bi, bj] * float(scale)
            )
    return builder.finish()


def bsr_element_permutation(csr: CSRMatrix, bsr: BSRMatrix) -> np.ndarray:
    """Map CSR element order to flat BSR value order for a block-aligned mask.

    ``perm[e]`` is the index into the flat ``(num_blocks * b * b)`` BSR value
    array holding the ``e``-th CSR non-zero.  Requires the mask to be exactly
    block-aligned (every stored block fully dense), which holds for the
    paper's band/butterfly attention masks.
    """
    import scipy.sparse as sp

    b = bsr.block_size
    if bsr.nnz_stored != csr.nnz:
        raise ValueError(
            f"mask is not block-aligned: {csr.nnz} non-zeros vs "
            f"{bsr.nnz_stored} stored block elements"
        )
    tagged = sp.bsr_matrix(
        (
            np.arange(bsr.nnz_stored, dtype=np.int64).reshape(-1, b, b),
            bsr.indices,
            bsr.indptr,
        ),
        shape=bsr.shape,
        blocksize=(b, b),
    ).tocsr()
    tagged.sort_indices()
    perm = tagged.data.astype(np.int64)
    if perm.size != csr.nnz:
        raise ValueError("mask is not block-aligned: stored patterns differ")
    return perm


# ---------------------------------------------------------------------------
# Attention-chain operators (edge softmax, SpMM with per-head edge values)
# ---------------------------------------------------------------------------

def edge_softmax_reference(csr: CSRMatrix, scores: np.ndarray) -> np.ndarray:
    """Row-wise softmax over the stored edges, per head.

    ``scores`` is ``(heads, nnz)`` in CSR element order; no max-subtraction,
    mirroring the generated program (the attention scores of the paper's
    masks are O(1), so the plain ``exp`` is well-conditioned).
    """
    scores = np.asarray(scores, dtype=np.float32)
    if scores.ndim != 2 or scores.shape[1] != csr.nnz:
        raise ValueError("scores must be (heads, nnz)")
    ex = np.exp(scores)
    out = np.empty_like(ex)
    for row in range(csr.rows):
        lo, hi = csr.indptr[row], csr.indptr[row + 1]
        if hi > lo:
            seg = ex[:, lo:hi]
            out[:, lo:hi] = seg / seg.sum(axis=1, keepdims=True)
    return out


def batched_spmm_edges_reference(
    csr: CSRMatrix, edge_values: np.ndarray, features: np.ndarray
) -> np.ndarray:
    """``out[h] = A_h @ X[h]`` where ``A_h`` carries per-head edge values."""
    edge_values = np.asarray(edge_values, dtype=np.float32)
    features = np.asarray(features, dtype=np.float32)
    if edge_values.ndim != 2 or edge_values.shape[1] != csr.nnz:
        raise ValueError("edge_values must be (heads, nnz)")
    out = np.zeros((edge_values.shape[0], csr.rows, features.shape[-1]), dtype=np.float32)
    for h in range(edge_values.shape[0]):
        headed = CSRMatrix(csr.shape, csr.indptr, csr.indices, data=edge_values[h])
        out[h] = spmm_reference(headed, features[h])
    return out


def emit_edge_softmax(
    ctx: EmitContext,
    csr: CSRMatrix,
    num_heads: int,
    scores: Optional[np.ndarray] = None,
    dtype: str = "float32",
    bind: Optional[Dict[str, SparseBuffer]] = None,
) -> Dict[str, SparseBuffer]:
    """Append a row-wise edge softmax: exp, per-row sum, normalise.

    Three iterations over the shared ``(H, I, J)`` space — a pointwise
    ``exp``, a row-sum reduction into ``Z[H, I]`` and the division.  All
    three stay on the fast tiers (no max-subtraction), and fusing them with
    the producing SDDMM / consuming SpMM shares the sparse axes so the
    intermediate scores never leave the merged kernel.
    """
    bind = bind or {}
    h_axis = ctx.dense_fixed("H", num_heads)
    i_axis, j_axis = ctx.csr_axes(csr)
    e_buf = bind.get("scores")
    if e_buf is None:
        e_buf = ctx.buffer(
            "E", [h_axis, i_axis, j_axis], dtype=dtype,
            data=None if scores is None else np.asarray(scores).reshape(-1),
        )
    ex_buf = ctx.buffer("EX", [h_axis, i_axis, j_axis], dtype=dtype)
    z_buf = ctx.buffer("Z", [h_axis, i_axis], dtype=dtype)
    p_buf = ctx.buffer("P", [h_axis, i_axis, j_axis], dtype=dtype)
    with ctx.sp_iter([h_axis, i_axis, j_axis], "SSS", "exp_scores") as (h, i, j):
        ctx.compute(ex_buf[h, i, j], Call("exp", [e_buf[h, i, j]], dtype=dtype))
    with ctx.sp_iter([h_axis, i_axis, j_axis], "SSR", "row_sums") as (h, i, j):
        ctx.init(z_buf[h, i], 0.0)
        ctx.compute(z_buf[h, i], z_buf[h, i] + ex_buf[h, i, j])
    with ctx.sp_iter([h_axis, i_axis, j_axis], "SSS", "normalise") as (h, i, j):
        ctx.compute(p_buf[h, i, j], ex_buf[h, i, j] / z_buf[h, i])
    return {"out": p_buf, "scores": e_buf}


def build_edge_softmax_program(
    csr: CSRMatrix,
    num_heads: int,
    scores: Optional[np.ndarray] = None,
    dtype: str = "float32",
) -> PrimFunc:
    """Standalone row-wise edge-softmax program."""
    ctx = EmitContext(ProgramBuilder("edge_softmax"))
    emit_edge_softmax(ctx, csr, num_heads, scores, dtype=dtype)
    return ctx.builder.finish()


def emit_batched_spmm_edges(
    ctx: EmitContext,
    csr: CSRMatrix,
    num_heads: int,
    feat_size: int,
    edge_values: Optional[np.ndarray] = None,
    features: Optional[np.ndarray] = None,
    dtype: str = "float32",
    bind: Optional[Dict[str, SparseBuffer]] = None,
) -> Dict[str, SparseBuffer]:
    """Append a multi-head SpMM whose edge values are per-head (``S[H, I, J]``).

    The attention-probability consumer: unlike :func:`emit_batched_spmm`,
    the sparse value buffer carries one value per (head, edge), so the
    softmax output feeds it directly.
    """
    bind = bind or {}
    h_axis = ctx.dense_fixed("H", num_heads)
    i_axis, j_axis = ctx.csr_axes(csr)
    s_buf = bind.get("edge_values")
    b_buf = bind.get("features")
    if b_buf is None:
        j_dense = ctx.dense_fixed("J_", csr.cols)
    k_axis = ctx.dense_fixed("K", feat_size)
    if s_buf is None:
        s_buf = ctx.buffer(
            "S", [h_axis, i_axis, j_axis], dtype=dtype,
            data=None if edge_values is None else np.asarray(edge_values).reshape(-1),
        )
    if b_buf is None:
        b_buf = ctx.buffer(
            "B", [h_axis, j_dense, k_axis], dtype=dtype,
            data=None if features is None else np.asarray(features).reshape(-1),
        )
    c_buf = ctx.buffer("C", [h_axis, i_axis, k_axis], dtype=dtype)
    with ctx.sp_iter(
        [h_axis, i_axis, j_axis, k_axis], "SSRS", "batched_spmm_edges"
    ) as (h, i, j, k):
        ctx.init(c_buf[h, i, k], 0.0)
        ctx.compute(c_buf[h, i, k], c_buf[h, i, k] + s_buf[h, i, j] * b_buf[h, j, k])
    return {"out": c_buf, "edge_values": s_buf, "features": b_buf}


def build_batched_spmm_edges_program(
    csr: CSRMatrix,
    num_heads: int,
    feat_size: int,
    edge_values: Optional[np.ndarray] = None,
    features: Optional[np.ndarray] = None,
    dtype: str = "float32",
) -> PrimFunc:
    """Standalone per-head-edge-value SpMM program."""
    ctx = EmitContext(ProgramBuilder("batched_spmm_edges"))
    emit_batched_spmm_edges(ctx, csr, num_heads, feat_size, edge_values, features, dtype=dtype)
    return ctx.builder.finish()


# ---------------------------------------------------------------------------
# Workload models
# ---------------------------------------------------------------------------

def batched_spmm_bsr_workload(
    bsr: BSRMatrix,
    feat_size: int,
    num_heads: int,
    device: DeviceSpec,
    intrin: str = "mma_m16n16k16",
    name: str = "sparsetir_bsr_spmm",
    mma_efficiency: float = 0.70,
) -> KernelWorkload:
    """Multi-head SpMM on BSR using tensorized (MMA) blocks.

    One thread block handles one block-row of one head; the block's tiles are
    multiplied on Tensor Cores with the corresponding feature tiles staged
    through shared memory.
    """
    vbytes = value_bytes("float16")
    b = bsr.block_size
    lengths = bsr.block_row_lengths.astype(np.float64)
    flops = 2.0 * lengths * b * b * feat_size
    reads = (
        lengths * b * b * vbytes                      # block values
        + lengths * INDEX_BYTES                       # block column indices
        + lengths * b * feat_size * vbytes            # gathered feature tiles
    )
    writes = np.full(len(lengths), b * feat_size * vbytes, dtype=np.float64)

    workload = KernelWorkload(name=name, num_launches=1)
    workload.memory_footprint_bytes = num_heads * (
        bsr.nbytes(value_bytes=vbytes) + 2 * bsr.shape[1] * feat_size * vbytes
    )
    workload.add(
        BlockGroup(
            name="bsr_block_rows",
            num_blocks=int(len(lengths)) * num_heads,
            threads_per_block=4 * device.warp_size,
            flops_per_block=np.tile(flops, num_heads),
            dram_read_bytes_per_block=np.tile(reads, num_heads),
            dram_write_bytes_per_block=np.tile(writes, num_heads),
            shared_mem_bytes=2 * b * feat_size * vbytes,
            uses_tensor_core=True,
            dtype="float16",
            vector_width=8,
            compute_efficiency=mma_efficiency,
            metadata={"intrin": intrin, "mma_shape": MMA_SHAPES[intrin]},
        )
    )
    return workload


def batched_spmm_csr_workload(
    csr: CSRMatrix,
    feat_size: int,
    num_heads: int,
    device: DeviceSpec,
    name: str = "sparsetir_csr_spmm",
) -> KernelWorkload:
    """Multi-head SpMM in scalar CSR form: no tensor cores, element-wise loads.

    The block-sparse structure degenerates to per-element indices, which both
    inflates index traffic and prevents MMA use — the reason the CSR variant
    is ~20x slower than the BSR variant in Figure 16.
    """
    vbytes = value_bytes("float16")
    lengths = csr.row_lengths().astype(np.float64)
    flops = 2.0 * lengths * feat_size
    reads = lengths * (INDEX_BYTES + vbytes) + lengths * feat_size * vbytes
    writes = np.full(len(lengths), feat_size * vbytes, dtype=np.float64)

    workload = KernelWorkload(name=name, num_launches=1)
    workload.memory_footprint_bytes = num_heads * (
        csr.nbytes(value_bytes=vbytes) + 2 * csr.cols * feat_size * vbytes
    )
    workload.add(
        BlockGroup(
            name="csr_rows",
            num_blocks=int(len(lengths)) * num_heads,
            threads_per_block=device.warp_size,
            flops_per_block=np.tile(flops, num_heads),
            dram_read_bytes_per_block=np.tile(reads, num_heads),
            dram_write_bytes_per_block=np.tile(writes, num_heads),
            uses_tensor_core=False,
            dtype="float16",
            vector_width=1,
            compute_efficiency=0.5,
        )
    )
    return workload


def batched_sddmm_bsr_workload(
    bsr: BSRMatrix,
    feat_size: int,
    num_heads: int,
    device: DeviceSpec,
    intrin: str = "mma_m16n16k16",
    name: str = "sparsetir_bsr_sddmm",
    mma_efficiency: float = 0.70,
) -> KernelWorkload:
    """Multi-head SDDMM on BSR: each stored block is a small Q x K^T matmul."""
    vbytes = value_bytes("float16")
    b = bsr.block_size
    blocks_per_tb = max(1, 64 // b)
    num_tb = ceil_div(bsr.num_blocks, blocks_per_tb)
    flops = 2.0 * blocks_per_tb * b * b * feat_size
    reads = blocks_per_tb * (2 * b * feat_size * vbytes + INDEX_BYTES * 2)
    writes = blocks_per_tb * b * b * vbytes

    workload = KernelWorkload(name=name, num_launches=1)
    workload.memory_footprint_bytes = num_heads * (
        bsr.nbytes(value_bytes=vbytes) + 2 * bsr.shape[0] * feat_size * vbytes
    )
    workload.add(
        BlockGroup(
            name="bsr_blocks",
            num_blocks=num_tb * num_heads,
            threads_per_block=4 * device.warp_size,
            flops_per_block=flops,
            dram_read_bytes_per_block=reads,
            dram_write_bytes_per_block=writes,
            shared_mem_bytes=2 * b * feat_size * vbytes,
            uses_tensor_core=True,
            dtype="float16",
            vector_width=8,
            compute_efficiency=mma_efficiency,
            metadata={"intrin": intrin},
        )
    )
    return workload


def batched_sddmm_csr_workload(
    csr: CSRMatrix,
    feat_size: int,
    num_heads: int,
    device: DeviceSpec,
    name: str = "sparsetir_csr_sddmm",
) -> KernelWorkload:
    """Scalar multi-head SDDMM over the element-wise mask (no tensor cores)."""
    vbytes = value_bytes("float16")
    nnz_per_block = 16
    num_tb = ceil_div(csr.nnz, nnz_per_block)
    flops = 2.0 * nnz_per_block * feat_size
    reads = nnz_per_block * (2 * feat_size * vbytes + 2 * INDEX_BYTES)
    writes = nnz_per_block * vbytes
    workload = KernelWorkload(name=name, num_launches=1)
    workload.memory_footprint_bytes = num_heads * (
        csr.nbytes(value_bytes=vbytes) + 2 * csr.rows * feat_size * vbytes
    )
    workload.add(
        BlockGroup(
            name="csr_edges",
            num_blocks=num_tb * num_heads,
            threads_per_block=device.warp_size,
            flops_per_block=flops,
            dram_read_bytes_per_block=reads,
            dram_write_bytes_per_block=writes,
            uses_tensor_core=False,
            dtype="float16",
            vector_width=1,
            compute_efficiency=0.5,
        )
    )
    return workload
