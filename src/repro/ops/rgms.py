"""RGMS: Relational Gather-Matmul-Scatter (Section 4.4).

``Y[i, l] = sum_r sum_j sum_k A[r, i, j] * X[j, k] * W[r, k, l]``

where ``A`` is a 3-D sparse tensor (one adjacency matrix per relation), ``X``
is the node feature matrix and ``W`` holds one dense weight matrix per
relation.  RGCN layers and sparse convolutions are both instances of RGMS.

Two execution strategies are modelled:

* the two-stage gather-matmul / scatter of existing GNN frameworks, which
  materialises the intermediate ``T[r] = X @ W[r]`` in HBM (large memory
  footprint, extra traffic);
* the fused SparseTIR schedule of Figure 21: per (relation, bucket) thread
  blocks pin ``W[r]`` in shared memory, gather the needed rows of ``X``,
  multiply on Tensor Cores and scatter directly to ``Y`` — no intermediate
  ever reaches HBM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..core.buffers import SparseBuffer
from ..core.program import PrimFunc
from ..core.script import EmitContext, ProgramBuilder
from ..formats.csf import CSFTensor
from ..formats.hyb import HybFormat
from ..perf.device import DeviceSpec
from ..perf.workload import BlockGroup, KernelWorkload
from .common import INDEX_BYTES, ceil_div, dense_reuse_miss_rate, keyword_session, value_bytes


# ---------------------------------------------------------------------------
# Reference implementation
# ---------------------------------------------------------------------------

def rgms_reference(adjacency: CSFTensor, x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Dense ground truth of the RGMS operator.

    ``adjacency`` has shape (R, n, n), ``x`` is (n, d_in), ``w`` is
    (R, d_in, d_out); the result is (n, d_out).
    """
    x = np.asarray(x, dtype=np.float32)
    w = np.asarray(w, dtype=np.float32)
    num_relations, rows, _ = adjacency.shape
    if w.shape[0] != num_relations:
        raise ValueError("weight tensor must have one matrix per relation")
    out = np.zeros((rows, w.shape[2]), dtype=np.float32)
    for r in range(num_relations):
        matrix = adjacency.slices[r]
        if matrix is None or matrix.nnz == 0:
            continue
        out += matrix.to_scipy() @ (x @ w[r])
    return out


def rgms_two_stage_reference(adjacency: CSFTensor, x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """The frameworks' two-stage formulation (equations 9-10); same result."""
    x = np.asarray(x, dtype=np.float32)
    w = np.asarray(w, dtype=np.float32)
    num_relations = adjacency.shape[0]
    t = np.stack([x @ w[r] for r in range(num_relations)])
    out = np.zeros((adjacency.shape[1], w.shape[2]), dtype=np.float32)
    for r in range(num_relations):
        matrix = adjacency.slices[r]
        if matrix is None or matrix.nnz == 0:
            continue
        out += matrix.to_scipy() @ t[r]
    return out


# ---------------------------------------------------------------------------
# Executable operator (compile-once/run-many Session path)
# ---------------------------------------------------------------------------

@keyword_session
def rgms(
    adjacency: CSFTensor,
    x: np.ndarray,
    w: np.ndarray,
    *,
    session=None,
    tuned: bool = False,
) -> np.ndarray:
    """Execute the RGMS operator through the pipeline and NumPy runtime.

    Args:
        adjacency: The relational adjacency tensor, shape ``(R, n, n)``.
        x: Node features of shape ``(n, d_in)``.
        w: Per-relation weights of shape ``(R, d_in, d_out)``.
        session: Optional explicit :class:`~repro.runtime.session.Session`.
        tuned: Accepted for API uniformity across the tunable workloads.

    Returns:
        The aggregated node features, shape ``(n, d_out)``.
    """
    from ..runtime.session import get_default_session

    session = session or get_default_session()
    return session.rgms(adjacency, x, w, tuned=tuned)


def build_rgms_program(
    adjacency: CSFTensor,
    in_feats: int,
    out_feats: int,
    x: Optional[np.ndarray] = None,
    w: Optional[np.ndarray] = None,
) -> PrimFunc:
    """The fused RGMS program over the CSF (per-relation) decomposition.

    Following the decomposition of Section 4.4, the dense relation dimension
    of the CSF tensor unrolls into one sparse iteration per non-empty
    relation; every iteration gathers the relation's neighbour rows of ``X``,
    contracts them with the relation's weight matrix and accumulates into the
    shared output ``Y`` (initialised by a separate spatial iteration, the
    idiom of the composable ``hyb`` SpMM).  One build covers the whole
    operator, so the per-relation lowering work is amortised by the
    structural kernel cache across layers and forward passes.
    """
    ctx = EmitContext(ProgramBuilder("rgms"))
    emit_rgms(ctx, adjacency, in_feats, out_feats, x, w)
    return ctx.builder.finish()


def emit_rgms(
    ctx: EmitContext,
    adjacency: CSFTensor,
    in_feats: int,
    out_feats: int,
    x: Optional[np.ndarray] = None,
    w: Optional[np.ndarray] = None,
    bind: Optional[Dict[str, SparseBuffer]] = None,
) -> Dict[str, SparseBuffer]:
    """Append the per-relation RGMS iterations; ``bind`` may supply ``x``."""
    bind = bind or {}
    num_relations, rows, cols = adjacency.shape
    if w is not None and np.asarray(w).shape[0] != num_relations:
        raise ValueError("weight tensor must have one matrix per relation")
    i_axis = ctx.dense_fixed("I", rows)
    x_buf = bind.get("x")
    if x_buf is None:
        j_dense = ctx.dense_fixed("J_", cols)
        k_axis = ctx.dense_fixed("K", in_feats)
    l_axis = ctx.dense_fixed("L", out_feats)
    if x_buf is None:
        x_buf = ctx.buffer(
            "X", [j_dense, k_axis],
            data=None if x is None else np.asarray(x, dtype=np.float32).reshape(-1),
        )
    y_buf = ctx.buffer("Y", [i_axis, l_axis])

    with ctx.sp_iter([i_axis, l_axis], "SS", "init_output") as (i, l):
        ctx.compute(y_buf[i, l], 0.0)

    w_arr = None if w is None else np.asarray(w, dtype=np.float32)
    for relation, matrix in enumerate(adjacency.slices):
        if matrix is None or matrix.nnz == 0:
            continue
        j_axis = ctx.builder.sparse_variable(
            ctx.name(f"J{relation}"), parent=i_axis, length=cols, nnz=matrix.nnz,
            indptr=matrix.indptr, indices=matrix.indices,
        )
        k_local = ctx.dense_fixed(f"K{relation}", in_feats)
        l_local = ctx.dense_fixed(f"L{relation}", out_feats)
        a_buf = ctx.buffer(f"A{relation}", [i_axis, j_axis], data=matrix.data)
        w_buf = ctx.buffer(
            f"W{relation}", [k_local, l_local],
            data=None if w_arr is None else w_arr[relation].reshape(-1),
        )
        with ctx.sp_iter(
            [i_axis, j_axis, k_local, l_local], "SRRS", f"rgms_r{relation}"
        ) as (i, j, k, l):
            ctx.compute(
                y_buf[i, l], y_buf[i, l] + a_buf[i, j] * x_buf[j, k] * w_buf[k, l]
            )
    return {"out": y_buf, "x": x_buf}


# ---------------------------------------------------------------------------
# Workload models
# ---------------------------------------------------------------------------

@dataclass
class RGMSProblem:
    """Shapes and structure of one RGMS instance."""

    adjacency: CSFTensor
    in_feats: int
    out_feats: int

    @property
    def num_relations(self) -> int:
        return self.adjacency.shape[0]

    @property
    def num_nodes(self) -> int:
        return self.adjacency.shape[1]

    @property
    def nnz(self) -> int:
        return self.adjacency.nnz


def rgms_fused_hyb_workload(
    problem: RGMSProblem,
    device: DeviceSpec,
    bucket_widths: Sequence[int] = (1, 2, 4, 8, 16),
    use_tensor_cores: bool = True,
    rows_per_block: int = 16,
    name: str = "sparsetir_rgms_hyb_tc",
) -> KernelWorkload:
    """The fused RGMS kernel of Figure 21 on a 3-D hyb decomposition.

    Per-relation adjacency matrices are bucketed with ``hyb(1, k)``; each
    thread block owns a group of rows of one bucket, keeps the relation's
    weight matrix in shared memory, gathers the corresponding rows of ``X``
    to SRAM, multiplies on Tensor Cores (or CUDA cores when
    ``use_tensor_cores`` is off) and scatters to the output.
    """
    dtype = "float16" if use_tensor_cores else "float32"
    vbytes = value_bytes(dtype)
    d_in, d_out = problem.in_feats, problem.out_feats
    weight_tile = d_in * d_out * vbytes

    workload = KernelWorkload(name=name, num_launches=1)
    padded_total = 0
    nnz_total = 0
    for relation, matrix in enumerate(problem.adjacency.slices):
        if matrix is None or matrix.nnz == 0:
            continue
        hyb = HybFormat.from_csr(matrix, num_col_parts=1,
                                 num_buckets=len(bucket_widths))
        padded_total += hyb.stored
        nnz_total += hyb.nnz
        x_miss = dense_reuse_miss_rate(
            problem.num_nodes * d_in * vbytes, hyb.stored * d_in * vbytes, device
        )
        for bucket in hyb.buckets:
            ell = bucket.ell
            blocks = ceil_div(ell.num_rows, rows_per_block)
            stored = rows_per_block * bucket.width
            # Each gathered neighbour row of X feeds a (1 x d_in) x (d_in x d_out)
            # product, so a block performs `stored * d_in * d_out` multiply-adds.
            flops = 2.0 * stored * d_in * d_out
            reads = (
                stored * (INDEX_BYTES + vbytes)            # ELL indices + edge values
                + stored * d_in * vbytes * x_miss           # gathered X rows (L2 reuse)
                + weight_tile                               # W[r] staged once per block
                + rows_per_block * INDEX_BYTES              # row map
            )
            writes = rows_per_block * d_out * vbytes
            workload.add(
                BlockGroup(
                    name=f"r{relation}_w{bucket.width}",
                    num_blocks=blocks,
                    threads_per_block=4 * device.warp_size,
                    flops_per_block=flops,
                    dram_read_bytes_per_block=reads,
                    dram_write_bytes_per_block=writes,
                    shared_mem_bytes=weight_tile + rows_per_block * d_in * vbytes,
                    uses_tensor_core=use_tensor_cores,
                    dtype=dtype,
                    vector_width=8 if use_tensor_cores else 4,
                    compute_efficiency=0.6 if use_tensor_cores else 0.85,
                )
            )
    # Footprint: inputs + outputs + weights; no materialised intermediate.
    workload.memory_footprint_bytes = (
        problem.num_nodes * (d_in + d_out) * 4
        + problem.num_relations * d_in * d_out * 4
        + problem.adjacency.nbytes()
        + (padded_total - nnz_total) * vbytes
    )
    workload.metadata["padding_ratio"] = (
        1.0 - nnz_total / padded_total if padded_total else 0.0
    )
    return workload


def rgms_naive_workload(
    problem: RGMSProblem,
    device: DeviceSpec,
    name: str = "sparsetir_rgms_naive",
) -> KernelWorkload:
    """Fused RGMS without composable formats or tensor cores.

    One thread block per adjacency row per relation; per-block work follows
    the raw row lengths, so relation and degree imbalance hits the makespan.
    """
    vbytes = value_bytes("float32")
    d_in, d_out = problem.in_feats, problem.out_feats
    weight_tile = d_in * d_out * vbytes
    workload = KernelWorkload(name=name, num_launches=1)
    for relation, matrix in enumerate(problem.adjacency.slices):
        if matrix is None or matrix.nnz == 0:
            continue
        lengths = matrix.row_lengths().astype(np.float64)
        active = lengths[lengths > 0]
        if active.size == 0:
            continue
        x_miss = dense_reuse_miss_rate(
            problem.num_nodes * d_in * vbytes, matrix.nnz * d_in * vbytes, device
        )
        flops = 2.0 * active * d_in * d_out
        reads = (
            active * (INDEX_BYTES + vbytes)
            + active * d_in * vbytes * x_miss
            + weight_tile
        )
        writes = np.full(active.size, d_out * vbytes)
        workload.add(
            BlockGroup(
                name=f"r{relation}_rows",
                num_blocks=int(active.size),
                threads_per_block=2 * device.warp_size,
                flops_per_block=flops,
                dram_read_bytes_per_block=reads,
                dram_write_bytes_per_block=writes,
                uses_tensor_core=False,
                dtype="float32",
                vector_width=1,
                compute_efficiency=0.6,
            )
        )
    workload.memory_footprint_bytes = (
        problem.num_nodes * (d_in + d_out) * 4
        + problem.num_relations * d_in * d_out * 4
        + problem.adjacency.nbytes()
    )
    return workload


def rgms_two_stage_workload(
    problem: RGMSProblem,
    device: DeviceSpec,
    gemm_efficiency: float = 0.85,
    scatter_efficiency: float = 0.8,
    framework_overhead_us: float = 0.0,
    name: str = "two_stage_rgms",
) -> KernelWorkload:
    """The gather-matmul + scatter strategy of existing GNN frameworks.

    Stage 1 computes ``T[r] = X @ W[r]`` for every relation with dense GEMMs
    (cuBLAS-like efficiency) and materialises ``T`` in HBM; stage 2 runs one
    SpMM per relation over ``T``.  The materialised intermediate dominates the
    GPU memory footprint (Figure 20, right).
    """
    vbytes = 4
    d_in, d_out = problem.in_feats, problem.out_feats
    n = problem.num_nodes
    workload = KernelWorkload(name=name)
    # Stage 1: R dense GEMMs (n x d_in) @ (d_in x d_out).
    gemm_flops = 2.0 * n * d_in * d_out
    gemm_bytes = (n * d_in + d_in * d_out + n * d_out) * vbytes
    tiles = ceil_div(n, 128) * ceil_div(d_out, 64)
    active_relations = [m for m in problem.adjacency.slices if m is not None and m.nnz > 0]
    workload.add(
        BlockGroup(
            name="stage1_gemm",
            num_blocks=tiles * max(len(active_relations), 1),
            threads_per_block=256,
            flops_per_block=gemm_flops / max(tiles, 1),
            dram_read_bytes_per_block=(gemm_bytes - n * d_out * vbytes) / max(tiles, 1),
            dram_write_bytes_per_block=n * d_out * vbytes / max(tiles, 1),
            uses_tensor_core=False,
            dtype="float32",
            vector_width=4,
            compute_efficiency=gemm_efficiency,
        )
    )
    # Stage 2: one SpMM per relation gathering from the materialised T.
    for relation, matrix in enumerate(problem.adjacency.slices):
        if matrix is None or matrix.nnz == 0:
            continue
        lengths = matrix.row_lengths().astype(np.float64)
        active = lengths[lengths > 0]
        if active.size == 0:
            continue
        t_miss = dense_reuse_miss_rate(
            n * d_out * vbytes, matrix.nnz * d_out * vbytes, device
        )
        flops = 2.0 * active * d_out
        reads = active * (INDEX_BYTES + vbytes) + active * d_out * vbytes * t_miss
        writes = np.full(active.size, d_out * vbytes)
        workload.add(
            BlockGroup(
                name=f"stage2_scatter_r{relation}",
                num_blocks=int(active.size),
                threads_per_block=device.warp_size,
                flops_per_block=flops,
                dram_read_bytes_per_block=reads,
                dram_write_bytes_per_block=writes,
                uses_tensor_core=False,
                dtype="float32",
                vector_width=2,
                compute_efficiency=scatter_efficiency,
            )
        )
    workload.num_launches = 1 + len(active_relations)
    intermediate = len(active_relations) * n * d_out * vbytes
    workload.memory_footprint_bytes = (
        intermediate
        + n * (d_in + d_out) * vbytes
        + problem.num_relations * d_in * d_out * vbytes
        + problem.adjacency.nbytes()
    )
    workload.metadata["intermediate_bytes"] = intermediate
    workload.metadata["framework_overhead_us"] = framework_overhead_us
    return workload
