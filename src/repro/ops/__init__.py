"""Sparse operators evaluated in the paper.

Each operator module provides three layers:

* ``*_reference`` — NumPy ground-truth implementations used for correctness;
* ``build_*_program`` — SparseTIR stage-I programs compiled through the full
  pipeline (used by tests and examples);
* ``*_workload`` — analytic :class:`~repro.perf.workload.KernelWorkload`
  descriptions of the scheduled GPU kernels, evaluated by the performance
  model to regenerate the paper's figures.
"""

from . import batched, pruned_spmm, rgms, sddmm, sparse_conv, spmm

__all__ = ["spmm", "sddmm", "batched", "rgms", "sparse_conv", "pruned_spmm"]
