"""Sparse operators evaluated in the paper.

Each operator module provides up to four layers:

* ``*_reference`` — NumPy ground-truth implementations used for correctness;
* executable entry points (``spmm``, ``sddmm``, ``pruned_spmm``,
  ``batched_spmm``, ``batched_sddmm``, ``rgms``, ``sparse_conv``) — compile
  the stage-I program and run it through a compile-once/run-many
  :class:`~repro.runtime.session.Session` (vectorized executor, structural
  kernel cache) returning plain arrays;
* ``build_*_program`` — SparseTIR stage-I programs compiled through the full
  pipeline (used by tests and examples);
* ``*_workload`` — analytic :class:`~repro.perf.workload.KernelWorkload`
  descriptions of the scheduled GPU kernels, evaluated by the performance
  model to regenerate the paper's figures.
"""

from . import batched, pruned_spmm, rgms, sddmm, sparse_conv, spmm

__all__ = ["spmm", "sddmm", "batched", "rgms", "sparse_conv", "pruned_spmm"]
