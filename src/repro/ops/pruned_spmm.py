"""SpMM over pruned transformer weights (Section 4.3.2, Figures 17 and 19).

The operator is ``Y = W X`` where ``W`` is a pruned (sparse) weight matrix
and ``X`` a dense activation of shape (in_features, sequence_length).  Three
SparseTIR kernel strategies are modelled:

* **BSR + Tensor Cores** — one thread block per weight block row; empty block
  rows still cost a (small) tile visit because plain BSR cannot skip them.
* **DBSR + Tensor Cores** — the doubly-compressed format enumerates only the
  non-empty block rows, so the kernel launches proportionally fewer blocks.
* **SR-BCRS + Tensor Cores** — groups of ``t x 1`` tiles feed ``m8n32k16``
  MMA instructions; fragmentation is bounded by ``1/t`` instead of ``1/b^2``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.program import PrimFunc
from ..core.script import ProgramBuilder
from ..formats.bsr import BSRMatrix
from ..formats.dbsr import DBSRMatrix
from ..formats.srbcrs import SRBCRSMatrix
from ..perf.device import DeviceSpec
from ..perf.workload import BlockGroup, KernelWorkload
from .common import INDEX_BYTES, dense_reuse_miss_rate, keyword_session, value_bytes

#: Bytes of fixed work a thread block performs even when its block row is
#: empty (reading the row extent, exiting).
_EMPTY_ROW_VISIT_BYTES = 64.0


# ---------------------------------------------------------------------------
# Reference implementation and executable operator
# ---------------------------------------------------------------------------

def pruned_spmm_reference(bsr: BSRMatrix, x: np.ndarray) -> np.ndarray:
    """Dense ground truth ``W @ X`` for a block-pruned weight matrix."""
    x = np.asarray(x, dtype=np.float32)
    if x.shape[0] != bsr.shape[1]:
        raise ValueError(f"activation has {x.shape[0]} rows, expected {bsr.shape[1]}")
    return (bsr.to_scipy() @ x).astype(np.float32)


@keyword_session
def pruned_spmm(bsr: BSRMatrix, x: np.ndarray, *, session=None) -> np.ndarray:
    """Execute the BSR pruned SpMM through the pipeline and NumPy runtime."""
    from ..runtime.session import get_default_session

    session = session or get_default_session()
    return session.pruned_spmm(bsr, x)


# ---------------------------------------------------------------------------
# SparseTIR program (compiled through the full pipeline)
# ---------------------------------------------------------------------------

def build_pruned_spmm_bsr_program(
    bsr: BSRMatrix, seq_len: int, x: Optional[np.ndarray] = None
) -> PrimFunc:
    """The BSR pruned-SpMM program of Section 4.3.2.

    ``Y[ib*b + bi, k] = sum_{jb, bj} W[ib, jb, bi, bj] * X[jb*b + bj, k]``
    where ``(ib, jb)`` walk the block sparsity structure and ``(bi, bj)``
    the dense interior of each ``b x b`` block.
    """
    b = bsr.block_size
    builder = ProgramBuilder("pruned_spmm_bsr")
    ib_axis = builder.dense_fixed("IB", bsr.block_rows)
    jb_axis = builder.sparse_variable(
        "JB",
        parent=ib_axis,
        length=bsr.block_cols,
        nnz=bsr.num_blocks,
        indptr=bsr.indptr,
        indices=bsr.indices,
    )
    bi_axis = builder.dense_fixed("BI", b)
    bj_axis = builder.dense_fixed("BJ", b)
    k_axis = builder.dense_fixed("K", seq_len)
    i_dense = builder.dense_fixed("I_", bsr.shape[0])
    j_dense = builder.dense_fixed("J_", bsr.shape[1])
    w_buf = builder.match_sparse_buffer(
        "W", [ib_axis, jb_axis, bi_axis, bj_axis], data=bsr.data.reshape(-1)
    )
    x_buf = builder.match_sparse_buffer("X", [j_dense, k_axis], data=x)
    y_buf = builder.match_sparse_buffer("Y", [i_dense, k_axis])
    with builder.sp_iter([ib_axis, jb_axis, bi_axis, bj_axis, k_axis], "SRSRS", "pruned_spmm") as (
        ib,
        jb,
        bi,
        bj,
        k,
    ):
        builder.init(y_buf[ib * b + bi, k], 0.0)
        builder.compute(
            y_buf[ib * b + bi, k],
            y_buf[ib * b + bi, k] + w_buf[ib, jb, bi, bj] * x_buf[jb * b + bj, k],
        )
    return builder.finish()


def pruned_spmm_bsr_workload(
    bsr: BSRMatrix,
    seq_len: int,
    device: DeviceSpec,
    mma_efficiency: float = 0.70,
    name: str = "sparsetir_pruned_bsr",
) -> KernelWorkload:
    """BSR SpMM with tensorized blocks; empty block rows are still visited."""
    vbytes = value_bytes("float16")
    b = bsr.block_size
    lengths = bsr.block_row_lengths.astype(np.float64)
    flops = 2.0 * lengths * b * b * seq_len
    x_miss = dense_reuse_miss_rate(
        bsr.shape[1] * seq_len * vbytes, bsr.nnz_stored / b * seq_len * vbytes, device
    )
    reads = (
        lengths * (b * b * vbytes + INDEX_BYTES)
        + lengths * b * seq_len * vbytes * x_miss
        + _EMPTY_ROW_VISIT_BYTES
    )
    writes = np.where(lengths > 0, b * seq_len * vbytes, 0.0)
    workload = KernelWorkload(name=name, num_launches=1)
    workload.memory_footprint_bytes = bsr.nbytes(value_bytes=vbytes) + (
        bsr.shape[1] + bsr.shape[0]
    ) * seq_len * vbytes
    workload.add(
        BlockGroup(
            name="bsr_block_rows",
            num_blocks=bsr.block_rows,
            threads_per_block=4 * device.warp_size,
            flops_per_block=flops,
            dram_read_bytes_per_block=reads,
            dram_write_bytes_per_block=writes,
            shared_mem_bytes=2 * b * min(seq_len, 128) * vbytes,
            uses_tensor_core=True,
            dtype="float16",
            vector_width=8,
            compute_efficiency=mma_efficiency,
        )
    )
    return workload


def pruned_spmm_dbsr_workload(
    dbsr: DBSRMatrix,
    seq_len: int,
    device: DeviceSpec,
    mma_efficiency: float = 0.70,
    name: str = "sparsetir_pruned_dbsr",
) -> KernelWorkload:
    """DBSR SpMM: only the non-empty block rows launch work."""
    vbytes = value_bytes("float16")
    b = dbsr.block_size
    lengths = np.diff(dbsr.indptr).astype(np.float64)
    flops = 2.0 * lengths * b * b * seq_len
    x_miss = dense_reuse_miss_rate(
        dbsr.shape[1] * seq_len * vbytes, dbsr.nnz_stored / b * seq_len * vbytes, device
    )
    reads = (
        lengths * (b * b * vbytes + INDEX_BYTES)
        + lengths * b * seq_len * vbytes * x_miss
        + INDEX_BYTES  # row_indices entry
    )
    writes = np.full(len(lengths), b * seq_len * vbytes)
    workload = KernelWorkload(name=name, num_launches=1)
    workload.memory_footprint_bytes = dbsr.nbytes(value_bytes=vbytes) + (
        dbsr.shape[1] + dbsr.shape[0]
    ) * seq_len * vbytes
    workload.add(
        BlockGroup(
            name="dbsr_block_rows",
            num_blocks=dbsr.num_stored_block_rows,
            threads_per_block=4 * device.warp_size,
            flops_per_block=flops,
            dram_read_bytes_per_block=reads,
            dram_write_bytes_per_block=writes,
            shared_mem_bytes=2 * b * min(seq_len, 128) * vbytes,
            uses_tensor_core=True,
            dtype="float16",
            vector_width=8,
            compute_efficiency=mma_efficiency,
        )
    )
    return workload


def pruned_spmm_srbcrs_workload(
    sr: SRBCRSMatrix,
    seq_len: int,
    device: DeviceSpec,
    mma_efficiency: float = 0.65,
    name: str = "sparsetir_pruned_srbcrs",
) -> KernelWorkload:
    """SR-BCRS SpMM: each tile group feeds one m8n32k16 MMA pipeline."""
    vbytes = value_bytes("float16")
    t, g = sr.tile_rows, sr.group_size
    groups_per_row = np.diff(sr.group_indptr).astype(np.float64)
    active = groups_per_row[groups_per_row > 0]
    if active.size == 0:
        active = np.zeros(1)
    flops = 2.0 * active * g * t * seq_len
    x_miss = dense_reuse_miss_rate(
        sr.source.cols * seq_len * vbytes, sr.num_stored_tiles * seq_len * vbytes, device
    )
    reads = (
        active * g * (t * vbytes + INDEX_BYTES)       # tile values + tile column ids
        + active * g * seq_len * vbytes * x_miss      # gathered dense rows (L2 reuse)
    )
    writes = np.full(active.size, t * seq_len * vbytes)
    workload = KernelWorkload(name=name, num_launches=1)
    workload.memory_footprint_bytes = sr.nbytes() + (
        sr.source.cols + sr.source.rows
    ) * seq_len * vbytes
    workload.add(
        BlockGroup(
            name="srbcrs_tile_rows",
            num_blocks=int(active.size),
            threads_per_block=4 * device.warp_size,
            flops_per_block=flops,
            dram_read_bytes_per_block=reads,
            dram_write_bytes_per_block=writes,
            shared_mem_bytes=g * t * vbytes + g * min(seq_len, 128) * vbytes,
            uses_tensor_core=True,
            dtype="float16",
            vector_width=8,
            compute_efficiency=mma_efficiency,
            metadata={"intrin": "mma_m8n32k16"},
        )
    )
    return workload
