"""Shared helpers for operator workload models and entry points."""

from __future__ import annotations

import functools
import inspect
import warnings
from typing import Optional

import numpy as np

from ..perf.cache import reuse_distance_hit_rate
from ..perf.device import DeviceSpec

INDEX_BYTES = 4


def keyword_session(func):
    """Back-compat shim for operator entry points with keyword-only ``session``.

    The operator free functions historically accepted the session (and the
    options after it) positionally; the redesigned signatures make everything
    from ``session`` on keyword-only.  This wrapper keeps the old positional
    call pattern working — extra positional arguments map onto the
    keyword-only parameters in declaration order — but emits a
    ``DeprecationWarning`` steering callers to ``session=...``.
    """
    parameters = list(inspect.signature(func).parameters.values())
    max_positional = sum(
        1 for p in parameters if p.kind is not inspect.Parameter.KEYWORD_ONLY
    )
    keyword_names = [
        p.name for p in parameters if p.kind is inspect.Parameter.KEYWORD_ONLY
    ]

    @functools.wraps(func)
    def wrapper(*args, **kwargs):
        if len(args) > max_positional:
            extra, args = args[max_positional:], args[:max_positional]
            if len(extra) > len(keyword_names):
                raise TypeError(f"{func.__name__}() got too many positional arguments")
            warnings.warn(
                f"passing session positionally to {func.__name__}() is "
                f"deprecated; use {func.__name__}(..., session=session)",
                DeprecationWarning,
                stacklevel=2,
            )
            for name, value in zip(keyword_names, extra):
                if name in kwargs:
                    raise TypeError(
                        f"{func.__name__}() got multiple values for argument {name!r}"
                    )
                kwargs[name] = value
        return func(*args, **kwargs)

    return wrapper


def value_bytes(dtype: str) -> int:
    """Bytes per value for the dtypes used by the operators."""
    return 2 if dtype in ("float16", "bfloat16") else 4


def dense_reuse_miss_rate(
    unique_bytes: float, touched_bytes: float, device: DeviceSpec
) -> float:
    """DRAM miss rate of a dense operand streamed with reuse through L2.

    The first touch of every unique byte always misses; re-accesses hit with
    a probability that depends on whether the working set fits in L2.
    """
    if touched_bytes <= 0:
        return 1.0
    hit_rate = reuse_distance_hit_rate(unique_bytes, touched_bytes, device.l2_bytes)
    return max(0.0, 1.0 - hit_rate)


def ceil_div(a: int, b: int) -> int:
    if b <= 0:
        raise ValueError("divisor must be positive")
    return -(-a // b)


def split_row_blocks(
    row_lengths: np.ndarray,
    rows_per_block: int,
    max_nnz_per_block: Optional[int] = None,
) -> np.ndarray:
    """Per-thread-block work (in non-zeros) for a row-split schedule.

    Rows are grouped ``rows_per_block`` at a time.  When ``max_nnz_per_block``
    is given, rows longer than the cap are split across several blocks first
    (the long-row splitting cuSPARSE-style kernels perform); without a cap
    the schedule is a pure row split and inherits the full row-length skew.
    """
    rows_per_block = max(1, int(rows_per_block))
    lengths = np.asarray(row_lengths, dtype=np.float64)
    if lengths.size == 0:
        return np.zeros(0, dtype=np.float64)
    if max_nnz_per_block is not None and max_nnz_per_block > 0:
        pieces: list = []
        cap = float(max_nnz_per_block)
        for length in lengths:
            if length <= cap:
                pieces.append(length)
            else:
                full, rest = divmod(length, cap)
                pieces.extend([cap] * int(full))
                if rest > 0:
                    pieces.append(rest)
        lengths = np.asarray(pieces, dtype=np.float64)
    pad = (-lengths.size) % rows_per_block
    padded = np.concatenate([lengths, np.zeros(pad)])
    return padded.reshape(-1, rows_per_block).sum(axis=1)
