"""Sparse (submanifold) convolution as an RGMS instance (Section 4.4.2).

Figure 22 of the paper shows the equivalence: every relative offset of the
convolution kernel (27 offsets for a 3x3x3 kernel) forms a relation whose
adjacency is a bipartite mapping from input voxels to output voxels with at
most one non-zero per row — an ``ELL(1)`` matrix, so no composable-format
decomposition is needed.

The evaluated comparison is against TorchSparse, which performs explicit
gather -> (grouped cuBLAS) GEMM -> scatter with materialised intermediates,
versus SparseTIR's fused Tensor-Core RGMS kernel.  The crossover at large
channel counts (cuBLAS wins once the GEMM dominates) emerges from the model
because the fused kernel's MMA efficiency is below cuBLAS's GEMM efficiency
while its gather/scatter traffic advantage is only linear in the channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.buffers import SparseBuffer
from ..core.program import PrimFunc
from ..core.script import EmitContext, ProgramBuilder
from ..perf.device import DeviceSpec
from ..perf.workload import BlockGroup, KernelWorkload
from .common import INDEX_BYTES, ceil_div, keyword_session, value_bytes


@dataclass
class SparseConvProblem:
    """One sparse convolution layer extracted from a point-cloud network.

    ``kernel_maps[r]`` holds, for kernel offset ``r``, the (input_index,
    output_index) pairs that offset connects — the bipartite ELL(1) relation.
    """

    num_in_points: int
    num_out_points: int
    in_channels: int
    out_channels: int
    kernel_maps: List[np.ndarray]

    @property
    def kernel_volume(self) -> int:
        return len(self.kernel_maps)

    @property
    def total_pairs(self) -> int:
        return int(sum(len(pairs) for pairs in self.kernel_maps))

    def pairs_per_offset(self) -> np.ndarray:
        return np.array([len(pairs) for pairs in self.kernel_maps], dtype=np.int64)


# ---------------------------------------------------------------------------
# Reference implementation
# ---------------------------------------------------------------------------

def sparse_conv_reference(problem: SparseConvProblem, features: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Ground truth: scatter-accumulate ``X[in] @ W[r]`` into each output voxel.

    ``features`` is (num_in_points, in_channels); ``weights`` is
    (kernel_volume, in_channels, out_channels).
    """
    features = np.asarray(features, dtype=np.float32)
    weights = np.asarray(weights, dtype=np.float32)
    if features.shape != (problem.num_in_points, problem.in_channels):
        raise ValueError("features shape does not match the problem")
    if weights.shape != (problem.kernel_volume, problem.in_channels, problem.out_channels):
        raise ValueError("weights shape does not match the problem")
    out = np.zeros((problem.num_out_points, problem.out_channels), dtype=np.float32)
    for r, pairs in enumerate(problem.kernel_maps):
        if len(pairs) == 0:
            continue
        in_idx = pairs[:, 0]
        out_idx = pairs[:, 1]
        contribution = features[in_idx] @ weights[r]
        np.add.at(out, out_idx, contribution)
    return out


# ---------------------------------------------------------------------------
# Executable operator (compile-once/run-many Session path)
# ---------------------------------------------------------------------------

@keyword_session
def sparse_conv(
    problem: SparseConvProblem,
    features: np.ndarray,
    weights: np.ndarray,
    *,
    session=None,
    tuned: bool = False,
) -> np.ndarray:
    """Execute the sparse convolution through the pipeline and NumPy runtime.

    Args:
        problem: The layer structure (kernel maps, point/channel counts).
        features: Input voxel features of shape ``(num_in_points, in_channels)``.
        weights: Kernel weights of shape ``(kernel_volume, in_channels, out_channels)``.
        session: Optional explicit :class:`~repro.runtime.session.Session`.
        tuned: Accepted for API uniformity across the tunable workloads.

    Returns:
        Output voxel features, shape ``(num_out_points, out_channels)``.
    """
    from ..runtime.session import get_default_session

    session = session or get_default_session()
    return session.sparse_conv(problem, features, weights, tuned=tuned)


def build_sparse_conv_program(
    problem: SparseConvProblem,
    features: Optional[np.ndarray] = None,
    weights: Optional[np.ndarray] = None,
) -> PrimFunc:
    """The fused gather-GEMM-scatter sparse-convolution program (Figure 22).

    Every kernel offset is an ``ELL(1)`` relation: its (input, output) pair
    list becomes a pair of int32 gather/scatter map buffers, and one sparse
    iteration per non-empty offset gathers the input rows, multiplies them
    with the offset's weight matrix and scatter-accumulates into the output
    voxels — no intermediate is ever materialised, matching the fused RGMS
    schedule the paper evaluates against TorchSparse.
    """
    ctx = EmitContext(ProgramBuilder("sparse_conv"))
    emit_sparse_conv(ctx, problem, features, weights)
    return ctx.builder.finish()


def emit_sparse_conv(
    ctx: EmitContext,
    problem: SparseConvProblem,
    features: Optional[np.ndarray] = None,
    weights: Optional[np.ndarray] = None,
    bind: Optional[Dict[str, SparseBuffer]] = None,
) -> Dict[str, SparseBuffer]:
    """Append the per-offset conv iterations; ``bind`` may supply ``features``."""
    bind = bind or {}
    cin, cout = problem.in_channels, problem.out_channels
    if features is not None:
        features = np.asarray(features, dtype=np.float32)
        if features.shape != (problem.num_in_points, cin):
            raise ValueError("features shape does not match the problem")
    w_arr = None
    if weights is not None:
        w_arr = np.asarray(weights, dtype=np.float32)
        if w_arr.shape != (problem.kernel_volume, cin, cout):
            raise ValueError("weights shape does not match the problem")

    x_buf = bind.get("features")
    if x_buf is None:
        in_axis = ctx.dense_fixed("NIN", problem.num_in_points)
    out_axis = ctx.dense_fixed("NOUT", problem.num_out_points)
    if x_buf is None:
        ci_axis = ctx.dense_fixed("CI", cin)
    co_axis = ctx.dense_fixed("CO", cout)
    if x_buf is None:
        x_buf = ctx.buffer(
            "X", [in_axis, ci_axis],
            data=None if features is None else features.reshape(-1),
        )
    y_buf = ctx.buffer("Y", [out_axis, co_axis])

    with ctx.sp_iter([out_axis, co_axis], "SS", "init_output") as (o, co):
        ctx.compute(y_buf[o, co], 0.0)

    for offset, pairs in enumerate(problem.kernel_maps):
        if len(pairs) == 0:
            continue
        p_axis = ctx.dense_fixed(f"P{offset}", len(pairs))
        ci_local = ctx.dense_fixed(f"CI{offset}", cin)
        co_local = ctx.dense_fixed(f"CO{offset}", cout)
        in_map = ctx.buffer(f"inmap{offset}", [p_axis], dtype="int32", data=pairs[:, 0])
        out_map = ctx.buffer(f"outmap{offset}", [p_axis], dtype="int32", data=pairs[:, 1])
        w_buf = ctx.buffer(
            f"W{offset}", [ci_local, co_local],
            data=None if w_arr is None else w_arr[offset].reshape(-1),
        )
        with ctx.sp_iter(
            [p_axis, ci_local, co_local], "SRS", f"conv_offset{offset}"
        ) as (p, ci, co):
            ctx.compute(
                y_buf[out_map[p], co],
                y_buf[out_map[p], co] + x_buf[in_map[p], ci] * w_buf[ci, co],
            )
    return {"out": y_buf, "features": x_buf}


# ---------------------------------------------------------------------------
# Workload models
# ---------------------------------------------------------------------------

def sparse_conv_fused_tc_workload(
    problem: SparseConvProblem,
    device: DeviceSpec,
    pairs_per_block: int = 64,
    mma_efficiency: float = 0.60,
    name: str = "sparsetir_sparse_conv_tc",
) -> KernelWorkload:
    """SparseTIR's fused gather-matmul-scatter sparse convolution.

    Thread blocks own a slice of one offset's (input, output) pairs, keep the
    offset's weight matrix in shared memory, and never materialise the
    gathered/matmul intermediate in HBM.
    """
    dtype = "float16"
    vbytes = value_bytes(dtype)
    cin, cout = problem.in_channels, problem.out_channels
    weight_tile = cin * cout * vbytes
    workload = KernelWorkload(name=name, num_launches=1)
    for r, pairs in enumerate(problem.kernel_maps):
        count = len(pairs)
        if count == 0:
            continue
        blocks = ceil_div(count, pairs_per_block)
        flops = 2.0 * pairs_per_block * cin * cout
        reads = (
            pairs_per_block * 2 * INDEX_BYTES          # in/out indices
            + pairs_per_block * cin * vbytes           # gathered input features
            + weight_tile                              # W[r] staged per block
        )
        writes = pairs_per_block * cout * vbytes
        workload.add(
            BlockGroup(
                name=f"offset{r}",
                num_blocks=blocks,
                threads_per_block=4 * device.warp_size,
                flops_per_block=flops,
                dram_read_bytes_per_block=reads,
                dram_write_bytes_per_block=writes,
                shared_mem_bytes=weight_tile + pairs_per_block * cin * vbytes,
                uses_tensor_core=True,
                dtype=dtype,
                vector_width=8,
                compute_efficiency=mma_efficiency,
            )
        )
    workload.memory_footprint_bytes = (
        problem.num_in_points * cin * vbytes
        + problem.num_out_points * cout * vbytes
        + problem.kernel_volume * cin * cout * vbytes
        + problem.total_pairs * 2 * INDEX_BYTES
    )
    return workload


def sparse_conv_gather_gemm_scatter_workload(
    problem: SparseConvProblem,
    device: DeviceSpec,
    gemm_efficiency: float = 0.90,
    name: str = "gather_gemm_scatter",
) -> KernelWorkload:
    """TorchSparse-style execution: gather, grouped cuBLAS GEMM, scatter.

    Both the gathered input copies and the per-offset GEMM outputs are
    materialised in HBM, so the operator pays their write+read traffic; the
    GEMM itself runs at high (cuBLAS) efficiency.
    """
    vbytes = value_bytes("float16")
    cin, cout = problem.in_channels, problem.out_channels
    workload = KernelWorkload(name=name)
    pairs = problem.pairs_per_offset()
    total = int(pairs.sum())
    if total == 0:
        workload.num_launches = 0
        return workload

    # Gather kernel: copy input rows for every pair into a contiguous buffer.
    gather_blocks = ceil_div(total, 128)
    workload.add(
        BlockGroup(
            name="gather",
            num_blocks=gather_blocks,
            threads_per_block=128,
            flops_per_block=0.0,
            dram_read_bytes_per_block=128 * (cin * vbytes + INDEX_BYTES),
            dram_write_bytes_per_block=128 * cin * vbytes,
            dtype="float16",
            vector_width=4,
        )
    )
    # Grouped GEMM over the gathered rows (one GEMM per kernel offset).
    gemm_flops_total = 2.0 * total * cin * cout
    gemm_tiles = max(1, ceil_div(total, 128) * ceil_div(cout, 64))
    workload.add(
        BlockGroup(
            name="grouped_gemm",
            num_blocks=gemm_tiles,
            threads_per_block=256,
            flops_per_block=gemm_flops_total / gemm_tiles,
            dram_read_bytes_per_block=(total * cin * vbytes + problem.kernel_volume * cin * cout * vbytes)
            / gemm_tiles,
            dram_write_bytes_per_block=total * cout * vbytes / gemm_tiles,
            uses_tensor_core=True,
            dtype="float16",
            vector_width=8,
            compute_efficiency=gemm_efficiency,
        )
    )
    # Scatter kernel: accumulate the GEMM outputs into the output voxels.
    scatter_blocks = ceil_div(total, 128)
    workload.add(
        BlockGroup(
            name="scatter",
            num_blocks=scatter_blocks,
            threads_per_block=128,
            flops_per_block=128 * cout,
            dram_read_bytes_per_block=128 * (cout * vbytes + INDEX_BYTES) + 128 * cout * vbytes,
            dram_write_bytes_per_block=128 * cout * vbytes,
            dtype="float16",
            vector_width=4,
        )
    )
    workload.num_launches = 2 + problem.kernel_volume  # gather + per-offset GEMMs + scatter
    gathered_bytes = total * (cin + cout) * vbytes
    workload.memory_footprint_bytes = (
        problem.num_in_points * cin * vbytes
        + problem.num_out_points * cout * vbytes
        + problem.kernel_volume * cin * cout * vbytes
        + problem.total_pairs * 2 * INDEX_BYTES
        + gathered_bytes
    )
    workload.metadata["materialized_bytes"] = gathered_bytes
    return workload
