"""SDDMM: sampled dense-dense matrix multiplication (Section 4.2.2).

``B[i, j] = sum_k A[i, j] * X[i, k] * Y[k, j]`` evaluated only at the
non-zero positions of ``A``.  In GNNs this computes per-edge scores from node
embeddings.

The SparseTIR schedule fuses the ``(i, j)`` iteration into a single loop over
non-zeros (``sparse_fuse``), vectorises the feature loads and performs a
two-stage (``rfactor``) reduction — the PRedS optimisations expressed as
composable transformations.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..core.buffers import SparseBuffer
from ..core.program import PrimFunc
from ..core.script import EmitContext, ProgramBuilder
from ..core.sparse_iteration import fuse
from ..formats.csr import CSRMatrix
from ..perf.device import DeviceSpec
from ..perf.workload import BlockGroup, KernelWorkload
from .common import INDEX_BYTES, ceil_div, dense_reuse_miss_rate, keyword_session, value_bytes


# ---------------------------------------------------------------------------
# Reference implementation
# ---------------------------------------------------------------------------

def sddmm_reference(csr: CSRMatrix, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Per-edge dot products scaled by the sparse values.

    Returns the new edge values in CSR order: ``out[e] = A[e] * <X[i], Y[:, j]>``.
    """
    x = np.asarray(x, dtype=np.float32)
    y = np.asarray(y, dtype=np.float32)
    if x.shape[0] != csr.rows:
        raise ValueError(f"X has {x.shape[0]} rows, expected {csr.rows}")
    if y.shape[1] != csr.cols:
        raise ValueError(f"Y has {y.shape[1]} columns, expected {csr.cols}")
    if x.shape[1] != y.shape[0]:
        raise ValueError("inner dimensions of X and Y do not match")
    out = np.zeros(csr.nnz, dtype=np.float32)
    for row in range(csr.rows):
        for pos in range(csr.indptr[row], csr.indptr[row + 1]):
            col = csr.indices[pos]
            out[pos] = csr.data[pos] * float(x[row] @ y[:, col])
    return out


# ---------------------------------------------------------------------------
# Executable operator (compile-once/run-many Session path)
# ---------------------------------------------------------------------------

@keyword_session
def sddmm(
    csr: CSRMatrix,
    x: np.ndarray,
    y: np.ndarray,
    fuse_ij: bool = True,
    *,
    session=None,
    tuned: bool = False,
) -> np.ndarray:
    """Execute the SDDMM through the compiler pipeline and NumPy runtime.

    Returns the new edge values in CSR order.  Repeated calls with the same
    sparsity structure hit the session's structural kernel cache.
    ``tuned=True`` applies the autotuned loop structure recorded for this
    structure.
    """
    from ..runtime.session import get_default_session

    session = session or get_default_session()
    return session.sddmm(csr, x, y, fuse_ij=fuse_ij, tuned=tuned)


# ---------------------------------------------------------------------------
# SparseTIR program
# ---------------------------------------------------------------------------

def build_sddmm_program(
    csr: CSRMatrix,
    feat_size: int,
    x: Optional[np.ndarray] = None,
    y: Optional[np.ndarray] = None,
    fuse_ij: bool = True,
    dtype: str = "float32",
) -> PrimFunc:
    """The SDDMM program; with ``fuse_ij`` the (i, j) axes iterate as one loop."""
    ctx = EmitContext(ProgramBuilder("sddmm"))
    emit_sddmm(ctx, csr, feat_size, x, y, fuse_ij=fuse_ij, dtype=dtype)
    return ctx.builder.finish()


def emit_sddmm(
    ctx: EmitContext,
    csr: CSRMatrix,
    feat_size: int,
    x: Optional[np.ndarray] = None,
    y: Optional[np.ndarray] = None,
    fuse_ij: bool = True,
    dtype: str = "float32",
    bind: Optional[Dict[str, SparseBuffer]] = None,
) -> Dict[str, SparseBuffer]:
    """Append the SDDMM iteration; ``bind`` may supply the ``x``/``y`` buffers."""
    bind = bind or {}
    i_axis, j_axis = ctx.csr_axes(csr)
    x_buf = bind.get("x")
    y_buf = bind.get("y")
    if x_buf is None:
        i_dense = ctx.dense_fixed("I_", csr.rows)
    if y_buf is None:
        j_dense = ctx.dense_fixed("J_", csr.cols)
    k_axis = ctx.dense_fixed("K", feat_size)
    a_buf = ctx.buffer("A", [i_axis, j_axis], dtype=dtype, data=csr.data)
    out_buf = ctx.buffer("OUT", [i_axis, j_axis], dtype=dtype)
    if x_buf is None:
        x_buf = ctx.buffer("X", [i_dense, k_axis], dtype=dtype, data=x)
    if y_buf is None:
        y_buf = ctx.buffer("Y", [k_axis, j_dense], dtype=dtype, data=y)
    axes = [fuse(i_axis, j_axis), k_axis] if fuse_ij else [i_axis, j_axis, k_axis]
    with ctx.sp_iter(axes, "SSR", "sddmm") as (i, j, k):
        ctx.init(out_buf[i, j], 0.0)
        ctx.compute(out_buf[i, j], out_buf[i, j] + a_buf[i, j] * x_buf[i, k] * y_buf[k, j])
    return {"out": out_buf, "x": x_buf, "y": y_buf}


# ---------------------------------------------------------------------------
# Workload models
# ---------------------------------------------------------------------------

def sddmm_workload(
    csr: CSRMatrix,
    feat_size: int,
    device: DeviceSpec,
    nnz_per_block: int = 32,
    threads_per_block: int = 256,
    vector_width: int = 4,
    two_stage_reduction: bool = True,
    name: str = "sparsetir_sddmm",
    dtype: str = "float32",
    compute_efficiency: float = 0.9,
    memory_efficiency: float = 1.0,
) -> KernelWorkload:
    """The fused SparseTIR SDDMM: blocks own fixed-size slices of the edge list.

    Work per non-zero is identical, so there is no load-balancing concern; the
    schedule quality comes from vectorised loads of the feature rows and the
    two-stage (rfactor) reduction that keeps all lanes busy for large feature
    sizes.
    """
    vbytes = value_bytes(dtype)
    num_blocks = max(1, ceil_div(csr.nnz, nnz_per_block))
    flops = 2.0 * nnz_per_block * feat_size

    # X rows are reused by all edges of the same row; Y columns are gathered.
    touched = 2.0 * csr.nnz * feat_size * vbytes
    unique = (csr.rows + csr.cols) * feat_size * vbytes
    miss = dense_reuse_miss_rate(unique, touched, device)
    reads = (
        nnz_per_block * (2 * INDEX_BYTES + vbytes)          # coo-style edge list + values
        + nnz_per_block * 2 * feat_size * vbytes * miss     # X row + Y column per edge
    )
    writes = nnz_per_block * vbytes

    reduction_efficiency = compute_efficiency if two_stage_reduction else compute_efficiency * 0.55

    workload = KernelWorkload(name=name, num_launches=1)
    workload.memory_footprint_bytes = csr.nbytes() + unique + csr.nnz * vbytes
    workload.metadata["feature_miss_rate"] = miss
    workload.add(
        BlockGroup(
            name="edge_slices",
            num_blocks=num_blocks,
            threads_per_block=threads_per_block,
            flops_per_block=flops,
            dram_read_bytes_per_block=reads,
            dram_write_bytes_per_block=writes,
            vector_width=vector_width,
            register_caching=True,
            unrolled=True,
            dtype=dtype,
            compute_efficiency=reduction_efficiency,
            memory_efficiency=memory_efficiency,
        )
    )
    return workload


def sddmm_flops(csr: CSRMatrix, feat_size: int) -> float:
    """Useful floating point operations of the SDDMM."""
    return 2.0 * csr.nnz * feat_size
