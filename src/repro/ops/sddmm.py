"""SDDMM: sampled dense-dense matrix multiplication (Section 4.2.2).

``B[i, j] = sum_k A[i, j] * X[i, k] * Y[k, j]`` evaluated only at the
non-zero positions of ``A``.  In GNNs this computes per-edge scores from node
embeddings.

The SparseTIR schedule fuses the ``(i, j)`` iteration into a single loop over
non-zeros (``sparse_fuse``), vectorises the feature loads and performs a
two-stage (``rfactor``) reduction — the PRedS optimisations expressed as
composable transformations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.program import PrimFunc
from ..core.script import ProgramBuilder
from ..core.sparse_iteration import fuse
from ..formats.csr import CSRMatrix
from ..perf.device import DeviceSpec
from ..perf.workload import BlockGroup, KernelWorkload
from .common import INDEX_BYTES, ceil_div, dense_reuse_miss_rate, value_bytes


# ---------------------------------------------------------------------------
# Reference implementation
# ---------------------------------------------------------------------------

def sddmm_reference(csr: CSRMatrix, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Per-edge dot products scaled by the sparse values.

    Returns the new edge values in CSR order: ``out[e] = A[e] * <X[i], Y[:, j]>``.
    """
    x = np.asarray(x, dtype=np.float32)
    y = np.asarray(y, dtype=np.float32)
    if x.shape[0] != csr.rows:
        raise ValueError(f"X has {x.shape[0]} rows, expected {csr.rows}")
    if y.shape[1] != csr.cols:
        raise ValueError(f"Y has {y.shape[1]} columns, expected {csr.cols}")
    if x.shape[1] != y.shape[0]:
        raise ValueError("inner dimensions of X and Y do not match")
    out = np.zeros(csr.nnz, dtype=np.float32)
    for row in range(csr.rows):
        for pos in range(csr.indptr[row], csr.indptr[row + 1]):
            col = csr.indices[pos]
            out[pos] = csr.data[pos] * float(x[row] @ y[:, col])
    return out


# ---------------------------------------------------------------------------
# Executable operator (compile-once/run-many Session path)
# ---------------------------------------------------------------------------

def sddmm(
    csr: CSRMatrix,
    x: np.ndarray,
    y: np.ndarray,
    fuse_ij: bool = True,
    session=None,
    tuned: bool = False,
) -> np.ndarray:
    """Execute the SDDMM through the compiler pipeline and NumPy runtime.

    Returns the new edge values in CSR order.  Repeated calls with the same
    sparsity structure hit the session's structural kernel cache.
    ``tuned=True`` applies the autotuned loop structure recorded for this
    structure.
    """
    from ..runtime.session import get_default_session

    session = session or get_default_session()
    return session.sddmm(csr, x, y, fuse_ij=fuse_ij, tuned=tuned)


# ---------------------------------------------------------------------------
# SparseTIR program
# ---------------------------------------------------------------------------

def build_sddmm_program(
    csr: CSRMatrix,
    feat_size: int,
    x: Optional[np.ndarray] = None,
    y: Optional[np.ndarray] = None,
    fuse_ij: bool = True,
    dtype: str = "float32",
) -> PrimFunc:
    """The SDDMM program; with ``fuse_ij`` the (i, j) axes iterate as one loop."""
    builder = ProgramBuilder("sddmm")
    i_axis = builder.dense_fixed("I", csr.rows)
    j_axis = builder.sparse_variable(
        "J", parent=i_axis, length=csr.cols, nnz=csr.nnz, indptr=csr.indptr, indices=csr.indices
    )
    i_dense = builder.dense_fixed("I_", csr.rows)
    j_dense = builder.dense_fixed("J_", csr.cols)
    k_axis = builder.dense_fixed("K", feat_size)
    a_buf = builder.match_sparse_buffer("A", [i_axis, j_axis], dtype=dtype, data=csr.data)
    out_buf = builder.match_sparse_buffer("OUT", [i_axis, j_axis], dtype=dtype)
    x_buf = builder.match_sparse_buffer("X", [i_dense, k_axis], dtype=dtype, data=x)
    y_buf = builder.match_sparse_buffer("Y", [k_axis, j_dense], dtype=dtype, data=y)
    axes = [fuse(i_axis, j_axis), k_axis] if fuse_ij else [i_axis, j_axis, k_axis]
    with builder.sp_iter(axes, "SSR", "sddmm") as (i, j, k):
        builder.init(out_buf[i, j], 0.0)
        builder.compute(out_buf[i, j], out_buf[i, j] + a_buf[i, j] * x_buf[i, k] * y_buf[k, j])
    return builder.finish()


# ---------------------------------------------------------------------------
# Workload models
# ---------------------------------------------------------------------------

def sddmm_workload(
    csr: CSRMatrix,
    feat_size: int,
    device: DeviceSpec,
    nnz_per_block: int = 32,
    threads_per_block: int = 256,
    vector_width: int = 4,
    two_stage_reduction: bool = True,
    name: str = "sparsetir_sddmm",
    dtype: str = "float32",
    compute_efficiency: float = 0.9,
    memory_efficiency: float = 1.0,
) -> KernelWorkload:
    """The fused SparseTIR SDDMM: blocks own fixed-size slices of the edge list.

    Work per non-zero is identical, so there is no load-balancing concern; the
    schedule quality comes from vectorised loads of the feature rows and the
    two-stage (rfactor) reduction that keeps all lanes busy for large feature
    sizes.
    """
    vbytes = value_bytes(dtype)
    num_blocks = max(1, ceil_div(csr.nnz, nnz_per_block))
    flops = 2.0 * nnz_per_block * feat_size

    # X rows are reused by all edges of the same row; Y columns are gathered.
    touched = 2.0 * csr.nnz * feat_size * vbytes
    unique = (csr.rows + csr.cols) * feat_size * vbytes
    miss = dense_reuse_miss_rate(unique, touched, device)
    reads = (
        nnz_per_block * (2 * INDEX_BYTES + vbytes)          # coo-style edge list + values
        + nnz_per_block * 2 * feat_size * vbytes * miss     # X row + Y column per edge
    )
    writes = nnz_per_block * vbytes

    reduction_efficiency = compute_efficiency if two_stage_reduction else compute_efficiency * 0.55

    workload = KernelWorkload(name=name, num_launches=1)
    workload.memory_footprint_bytes = csr.nbytes() + unique + csr.nnz * vbytes
    workload.metadata["feature_miss_rate"] = miss
    workload.add(
        BlockGroup(
            name="edge_slices",
            num_blocks=num_blocks,
            threads_per_block=threads_per_block,
            flops_per_block=flops,
            dram_read_bytes_per_block=reads,
            dram_write_bytes_per_block=writes,
            vector_width=vector_width,
            register_caching=True,
            unrolled=True,
            dtype=dtype,
            compute_efficiency=reduction_efficiency,
            memory_efficiency=memory_efficiency,
        )
    )
    return workload


def sddmm_flops(csr: CSRMatrix, feat_size: int) -> float:
    """Useful floating point operations of the SDDMM."""
    return 2.0 * csr.nnz * feat_size
