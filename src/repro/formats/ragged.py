"""Ragged tensors: dense-variable rows (CoRA-style), one of the formats the
paper's axis composition can express."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..core.axes import DenseFixedAxis, DenseVariableAxis


class RaggedTensor:
    """A 2-D ragged tensor: every row has its own length."""

    def __init__(self, row_lengths: Sequence[int], values: np.ndarray):
        self.row_lengths = np.asarray(row_lengths, dtype=np.int64)
        if np.any(self.row_lengths < 0):
            raise ValueError("row lengths must be non-negative")
        self.indptr = np.concatenate([[0], np.cumsum(self.row_lengths)])
        self.values = np.asarray(values, dtype=np.float32).reshape(-1)
        if self.values.size != int(self.indptr[-1]):
            raise ValueError(
                f"values has {self.values.size} entries, row lengths sum to {int(self.indptr[-1])}"
            )

    @classmethod
    def from_rows(cls, rows: Sequence[Sequence[float]]) -> "RaggedTensor":
        lengths = [len(row) for row in rows]
        flat = np.concatenate([np.asarray(row, dtype=np.float32) for row in rows]) if rows else np.zeros(0)
        return cls(lengths, flat)

    @property
    def num_rows(self) -> int:
        return int(len(self.row_lengths))

    @property
    def nnz(self) -> int:
        return int(self.indptr[-1])

    def row(self, index: int) -> np.ndarray:
        return self.values[self.indptr[index] : self.indptr[index + 1]]

    def to_padded(self, pad_value: float = 0.0) -> np.ndarray:
        width = int(self.row_lengths.max()) if self.num_rows else 0
        out = np.full((self.num_rows, width), pad_value, dtype=np.float32)
        for i in range(self.num_rows):
            out[i, : self.row_lengths[i]] = self.row(i)
        return out

    def padding_ratio(self) -> float:
        width = int(self.row_lengths.max()) if self.num_rows else 0
        padded = self.num_rows * width
        return 0.0 if padded == 0 else 1.0 - self.nnz / padded

    def to_axes(self, prefix: str = "") -> Tuple[DenseFixedAxis, DenseVariableAxis]:
        i_axis = DenseFixedAxis(f"{prefix}I_rag", self.num_rows)
        j_axis = DenseVariableAxis(
            f"{prefix}J_rag", i_axis, int(self.row_lengths.max()) if self.num_rows else 0,
            self.nnz, indptr=self.indptr,
        )
        return i_axis, j_axis

    def __repr__(self) -> str:
        return f"RaggedTensor(rows={self.num_rows}, nnz={self.nnz})"
