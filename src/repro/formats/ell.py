"""ELLPACK (ELL) matrices: a fixed number of non-zero columns per row.

Padded slots use column index ``-1``; the SparseTIR runtime treats loads of
structural zeros as 0, so padded slots contribute nothing to computations.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.axes import DenseFixedAxis, SparseFixedAxis
from .csr import CSRMatrix

PAD = -1


class ELLMatrix:
    """An ELL matrix with ``nnz_cols`` stored entries per row."""

    def __init__(
        self,
        shape: Tuple[int, int],
        indices: np.ndarray,
        data: Optional[np.ndarray] = None,
        row_map: Optional[np.ndarray] = None,
    ):
        self.shape = (int(shape[0]), int(shape[1]))
        self.indices = np.asarray(indices, dtype=np.int64)
        if self.indices.ndim != 2:
            raise ValueError("ELL indices must be a 2-D (rows x nnz_cols) array")
        if data is None:
            data = np.zeros_like(self.indices, dtype=np.float32)
        # Preserve the caller's value dtype (float64 hyb buckets must not be
        # silently truncated); only the no-data default is float32.
        self.data = np.asarray(data)
        if self.data.shape != self.indices.shape:
            raise ValueError("ELL data must have the same shape as indices")
        # Optional mapping from local rows to rows of an enclosing matrix
        # (used by the hyb format whose buckets hold a subset of the rows).
        self.row_map = None if row_map is None else np.asarray(row_map, dtype=np.int64)
        if self.row_map is not None and len(self.row_map) != self.num_rows:
            raise ValueError("row_map must have one entry per stored row")

    # -- constructors -----------------------------------------------------------------
    @classmethod
    def from_csr(cls, csr: CSRMatrix, nnz_cols: Optional[int] = None) -> "ELLMatrix":
        width = csr.max_row_length() if nnz_cols is None else int(nnz_cols)
        if csr.max_row_length() > width:
            raise ValueError(
                f"rows have up to {csr.max_row_length()} non-zeros, ELL width {width} too small"
            )
        indices = np.full((csr.rows, width), PAD, dtype=np.int64)
        data = np.zeros((csr.rows, width), dtype=csr.data.dtype)
        for row in range(csr.rows):
            start, end = csr.indptr[row], csr.indptr[row + 1]
            count = end - start
            indices[row, :count] = csr.indices[start:end]
            data[row, :count] = csr.data[start:end]
        return cls(csr.shape, indices, data)

    # -- properties -----------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return int(self.indices.shape[0])

    @property
    def nnz_cols(self) -> int:
        return int(self.indices.shape[1])

    @property
    def stored(self) -> int:
        """Number of stored slots, including padding."""
        return self.num_rows * self.nnz_cols

    @property
    def nnz(self) -> int:
        """Number of real (non-padded) entries."""
        return int((self.indices != PAD).sum())

    @property
    def padding_ratio(self) -> float:
        if self.stored == 0:
            return 0.0
        return 1.0 - self.nnz / self.stored

    def nbytes(self, index_bytes: int = 4, value_bytes: int = 4) -> int:
        return self.stored * (index_bytes + value_bytes)

    # -- conversions -----------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=self.data.dtype)
        for local_row in range(self.num_rows):
            target = local_row if self.row_map is None else int(self.row_map[local_row])
            for slot in range(self.nnz_cols):
                col = self.indices[local_row, slot]
                if col != PAD:
                    dense[target, col] += self.data[local_row, slot]
        return dense

    def to_axes(self, prefix: str = "") -> Tuple[DenseFixedAxis, SparseFixedAxis]:
        i_axis = DenseFixedAxis(f"{prefix}I_ell", self.num_rows)
        j_axis = SparseFixedAxis(
            f"{prefix}J_ell", i_axis, self.shape[1], self.nnz_cols, indices=self.indices.reshape(-1)
        )
        return i_axis, j_axis

    def __repr__(self) -> str:
        return (
            f"ELLMatrix(rows={self.num_rows}, nnz_cols={self.nnz_cols}, "
            f"padding={self.padding_ratio:.2%})"
        )
