"""Edge-level delta logs: incremental structure updates for sparse matrices.

Real traffic mutates sparsity patterns — edges arrive and expire in a
streaming graph, pruning masks change between fine-tuning steps — but a
canonical CSR buffer cannot absorb a single insertion without rewriting
``O(nnz)`` memory.  This module provides the classic LSM-style answer: a
small *delta log* riding on top of a frozen base snapshot.

* **Inserts** are upserts recorded in an insertion dictionary keyed by
  ``(row, col)`` — ``O(1)`` per edit.
* **Deletes** tombstone base positions in a boolean mask (or simply drop a
  not-yet-merged insert) — ``O(1)`` per edit after an ``O(log nnz)``
  position lookup.
* **Merging** (:func:`merge_delta`) produces the *effective* canonical
  arrays — base minus tombstones plus inserts, globally sorted — in
  ``O(nnz + d log d)`` for ``d`` pending edits.  The owner
  (:class:`~repro.formats.csr.CSRMatrix`) re-compacts once the delta
  exceeds a fixed fraction of the base, so a compaction's ``O(nnz)`` cost
  amortises to ``O(1/threshold)`` per edit.

The log never mutates the base arrays: every kernel compiled against the
base snapshot stays valid, which is what lets the runtime execute a
mutated matrix as *base plan + delta overlay*
(:mod:`repro.runtime.dynamic`) instead of re-lowering per edit.

Example:

    >>> log = DeltaLog(base_nnz=3)
    >>> log.record_insert(0, 2, 1.5)
    >>> log.kill(1)          # tombstone the base entry at position 1
    >>> log.pending
    2
    >>> log.empty
    False
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np


class DeltaLog:
    """Pending edge edits against one frozen CSR snapshot.

    Attributes
    ----------
    inserts:
        ``(row, col) -> value`` upserts not yet merged into the base.
    tombstones:
        Boolean mask over the base's nnz positions; ``True`` marks a base
        entry as deleted (or superseded by an upsert of the same edge).
    dead:
        Number of ``True`` entries in ``tombstones`` (kept incrementally so
        :attr:`pending` is O(1)).
    """

    def __init__(self, base_nnz: int):
        self.inserts: Dict[Tuple[int, int], float] = {}
        self.tombstones = np.zeros(int(base_nnz), dtype=bool)
        self.dead = 0

    @property
    def pending(self) -> int:
        """Total pending edits (inserted edges + tombstoned base entries)."""
        return len(self.inserts) + self.dead

    @property
    def empty(self) -> bool:
        return not self.inserts and self.dead == 0

    def record_insert(self, row: int, col: int, value) -> None:
        """Upsert one edge value into the log."""
        self.inserts[(int(row), int(col))] = value

    def discard_insert(self, row: int, col: int) -> None:
        """Drop a not-yet-merged insert (deleting an edge the log added)."""
        del self.inserts[(int(row), int(col))]

    def kill(self, position: int) -> None:
        """Tombstone one base position (idempotent)."""
        if not self.tombstones[position]:
            self.tombstones[position] = True
            self.dead += 1


@dataclass
class MergedView:
    """The effective (canonical) arrays of a base snapshot plus its delta.

    Besides the merged CSR triplet, the view keeps the provenance maps the
    overlay executor needs: where each surviving base entry landed in the
    merged order, where each inserted entry landed, and which rows changed
    at all.

    Attributes
    ----------
    indptr, indices, data:
        Canonical CSR arrays of the merged matrix (globally sorted, no
        duplicates, no tombstones).
    kept_mask:
        Boolean mask over base nnz: ``True`` where the base entry survived.
    base_positions:
        Merged position of each surviving base entry
        (``len == kept_mask.sum()``).
    delta_positions:
        Merged position of each inserted entry, in sorted ``(row, col)``
        order.
    delta_rows:
        Row of each inserted entry, aligned with ``delta_positions``.
    affected_rows:
        Sorted unique rows touched by any insert or tombstone.
    """

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    kept_mask: np.ndarray
    base_positions: np.ndarray
    delta_positions: np.ndarray
    delta_rows: np.ndarray
    affected_rows: np.ndarray


def base_edge_keys(shape: Tuple[int, int], indptr: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Flattened ``row * cols + col`` key per stored entry, in storage order.

    For a canonically sorted CSR (rows ascending, columns strictly ascending
    within each row) the keys are strictly increasing, which is what makes
    ``searchsorted`` membership lookups and sorted merges valid.

    Raises:
        ValueError: If the storage order is not canonical (unsorted or
            duplicate column indices within a row) — the delta path requires
            a canonical base.
    """
    rows = np.repeat(
        np.arange(shape[0], dtype=np.int64), np.diff(np.asarray(indptr, dtype=np.int64))
    )
    keys = rows * np.int64(shape[1]) + np.asarray(indices, dtype=np.int64)
    if keys.size > 1 and not np.all(np.diff(keys) > 0):
        raise ValueError(
            "incremental updates require a canonically sorted CSR base "
            "(ascending, duplicate-free column indices per row)"
        )
    return keys


def merge_delta(
    shape: Tuple[int, int],
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    base_keys: np.ndarray,
    log: DeltaLog,
) -> MergedView:
    """Merge one delta log into its base snapshot (``O(nnz + d log d)``).

    The log's invariant — an upserted base edge is always tombstoned before
    its new value is recorded — guarantees the kept base keys and the insert
    keys are disjoint, so a stable two-way sorted merge (positions from one
    ``searchsorted``) reproduces the canonical order a cold rebuild from the
    final edge set would produce.
    """
    num_rows, num_cols = int(shape[0]), int(shape[1])
    keep = ~log.tombstones
    kept_indices = indices[keep]
    kept_data = data[keep]
    kept_keys = base_keys[keep]
    base_rows = np.repeat(np.arange(num_rows, dtype=np.int64), np.diff(indptr))

    items = sorted(log.inserts.items())
    count = len(items)
    delta_rows = np.fromiter((key[0] for key, _ in items), np.int64, count)
    delta_cols = np.fromiter((key[1] for key, _ in items), np.int64, count)
    delta_vals = np.array([value for _, value in items], dtype=data.dtype)
    delta_keys = delta_rows * np.int64(num_cols) + delta_cols

    # Each sorted insert lands after the kept entries below it plus the
    # inserts already placed before it.
    delta_positions = np.searchsorted(kept_keys, delta_keys) + np.arange(count, dtype=np.int64)
    total = int(kept_keys.size) + count
    is_base = np.ones(total, dtype=bool)
    is_base[delta_positions] = False

    merged_indices = np.empty(total, dtype=np.int64)
    merged_data = np.empty(total, dtype=data.dtype)
    merged_rows = np.empty(total, dtype=np.int64)
    merged_indices[is_base] = kept_indices
    merged_indices[delta_positions] = delta_cols
    merged_data[is_base] = kept_data
    merged_data[delta_positions] = delta_vals
    merged_rows[is_base] = base_rows[keep]
    merged_rows[delta_positions] = delta_rows

    merged_indptr = np.zeros(num_rows + 1, dtype=np.int64)
    np.cumsum(np.bincount(merged_rows, minlength=num_rows), out=merged_indptr[1:])

    affected = np.unique(np.concatenate([delta_rows, base_rows[log.tombstones]]))
    return MergedView(
        indptr=merged_indptr,
        indices=merged_indices,
        data=merged_data,
        kept_mask=keep,
        base_positions=np.flatnonzero(is_base),
        delta_positions=delta_positions,
        delta_rows=delta_rows,
        affected_rows=affected,
    )
