"""Compressed Sparse Column (CSC) matrices."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..core.axes import DenseFixedAxis, SparseVariableAxis
from .csr import CSRMatrix


class CSCMatrix:
    """A CSC matrix: CSR of the transpose, kept explicitly for clarity."""

    def __init__(
        self,
        shape: Tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: Optional[np.ndarray] = None,
    ):
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        if len(self.indptr) != self.shape[1] + 1:
            raise ValueError("indptr length must be cols + 1")
        if data is None:
            data = np.ones(len(self.indices), dtype=np.float32)
        self.data = np.asarray(data, dtype=np.float32)

    @classmethod
    def from_scipy(cls, matrix: sp.spmatrix) -> "CSCMatrix":
        csc = sp.csc_matrix(matrix)
        csc.sort_indices()
        return cls(csc.shape, csc.indptr, csc.indices, csc.data)

    @classmethod
    def from_csr(cls, csr: CSRMatrix) -> "CSCMatrix":
        return cls.from_scipy(csr.to_scipy())

    @property
    def nnz(self) -> int:
        return int(len(self.indices))

    def col_lengths(self) -> np.ndarray:
        return np.diff(self.indptr)

    def to_scipy(self) -> sp.csc_matrix:
        return sp.csc_matrix((self.data, self.indices, self.indptr), shape=self.shape)

    def to_dense(self) -> np.ndarray:
        return np.asarray(self.to_scipy().todense(), dtype=np.float32)

    def to_csr(self) -> CSRMatrix:
        return CSRMatrix.from_scipy(self.to_scipy())

    def to_axes(self, prefix: str = "") -> Tuple[DenseFixedAxis, SparseVariableAxis]:
        """Axes (J, I): the column axis is dense-fixed, the row axis sparse."""
        j_axis = DenseFixedAxis(f"{prefix}Jc", self.shape[1])
        i_axis = SparseVariableAxis(
            f"{prefix}Ic", j_axis, self.shape[0], self.nnz, indptr=self.indptr, indices=self.indices
        )
        return j_axis, i_axis

    def __repr__(self) -> str:
        return f"CSCMatrix(shape={self.shape}, nnz={self.nnz})"
