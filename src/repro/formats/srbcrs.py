"""SR-BCRS(t, g): the tile-and-group format of Section 4.3.2 / Figure 18.

The matrix is divided into ``t x 1`` column tiles; all-zero tiles are
skipped.  The surviving tiles of each tile-row are grouped by a factor ``g``
and the trailing group is padded with zero tiles.  Compared with BSR the
format greatly reduces intra-block fragmentation (worst-case occupancy
``1/t`` instead of ``1/b^2``), which is why it suits unstructured-pruned
weights while still feeding Tensor Core MMA instructions.
"""

from __future__ import annotations

import math

import numpy as np

from .csr import CSRMatrix


class SRBCRSMatrix:
    """An SR-BCRS(t, g) matrix built from a CSR source."""

    def __init__(self, source: CSRMatrix, tile_rows: int, group_size: int):
        if tile_rows <= 0 or group_size <= 0:
            raise ValueError("tile_rows and group_size must be positive")
        self.source = source
        self.tile_rows = int(tile_rows)
        self.group_size = int(group_size)
        self._build()

    def _build(self) -> None:
        csr = self.source
        t, g = self.tile_rows, self.group_size
        num_tile_rows = math.ceil(csr.rows / t)
        dense = csr.to_dense()
        rows_padded = num_tile_rows * t
        if rows_padded != csr.rows:
            dense = np.vstack([dense, np.zeros((rows_padded - csr.rows, csr.cols), dtype=np.float32)])

        tile_cols_per_row = []   # list of arrays: non-empty tile column ids per tile row
        for tile_row in range(num_tile_rows):
            block = dense[tile_row * t : (tile_row + 1) * t, :]
            nonzero_cols = np.nonzero(np.any(block != 0, axis=0))[0]
            tile_cols_per_row.append(nonzero_cols)

        # Group the surviving tiles by g and pad the trailing group.
        self.group_indptr = np.zeros(num_tile_rows + 1, dtype=np.int64)
        indices_list = []
        data_list = []
        for tile_row, cols in enumerate(tile_cols_per_row):
            num_groups = math.ceil(len(cols) / g) if len(cols) else 0
            self.group_indptr[tile_row + 1] = self.group_indptr[tile_row] + num_groups
            padded = np.full(num_groups * g, -1, dtype=np.int64)
            padded[: len(cols)] = cols
            indices_list.append(padded)
            block = dense[tile_row * t : (tile_row + 1) * t, :]
            values = np.zeros((num_groups * g, t), dtype=np.float32)
            values[: len(cols)] = block[:, cols].T
            data_list.append(values)

        self.num_tile_rows = num_tile_rows
        self.indices = (
            np.concatenate(indices_list) if indices_list else np.zeros(0, dtype=np.int64)
        )
        self.data = (
            np.concatenate(data_list, axis=0) if data_list else np.zeros((0, t), dtype=np.float32)
        )

    # -- properties -----------------------------------------------------------------
    @property
    def num_groups(self) -> int:
        return int(self.group_indptr[-1])

    @property
    def num_stored_tiles(self) -> int:
        return int(len(self.indices))

    @property
    def nnz_stored(self) -> int:
        """Stored elements including padding inside tiles and trailing groups."""
        return self.num_stored_tiles * self.tile_rows

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.data))

    @property
    def new_format_density(self) -> float:
        """Density of the matrix once re-expressed in SR-BCRS (Figure 19, right)."""
        total = self.source.rows * self.source.cols
        if total == 0:
            return 0.0
        return self.nnz_stored / total

    @property
    def occupancy(self) -> float:
        """Fraction of stored slots that hold real non-zeros."""
        if self.nnz_stored == 0:
            return 0.0
        return self.nnz / self.nnz_stored

    def nbytes(self, index_bytes: int = 4, value_bytes: int = 2) -> int:
        return (
            len(self.group_indptr) * index_bytes
            + self.num_stored_tiles * index_bytes
            + self.nnz_stored * value_bytes
        )

    def to_dense(self) -> np.ndarray:
        dense = np.zeros((self.num_tile_rows * self.tile_rows, self.source.cols), dtype=np.float32)
        t, g = self.tile_rows, self.group_size
        cursor = 0
        for tile_row in range(self.num_tile_rows):
            groups = int(self.group_indptr[tile_row + 1] - self.group_indptr[tile_row])
            for slot in range(groups * g):
                col = self.indices[cursor]
                if col >= 0:
                    dense[tile_row * t : (tile_row + 1) * t, col] = self.data[cursor]
                cursor += 1
        return dense[: self.source.rows]

    def __repr__(self) -> str:
        return (
            f"SRBCRSMatrix(t={self.tile_rows}, g={self.group_size}, tiles={self.num_stored_tiles}, "
            f"occupancy={self.occupancy:.2f})"
        )
