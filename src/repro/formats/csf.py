"""Compressed Sparse Fiber (CSF) tensors for 3-D sparse data.

Used for the relational adjacency tensor ``A[r, i, j]`` of the RGMS operator
(Section 4.4): the leading relation dimension is dense, and each relation's
2-D slice is stored CSR-style.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .csr import CSRMatrix


class CSFTensor:
    """A 3-D tensor stored as one CSR matrix per slice of the leading mode."""

    def __init__(self, shape: Tuple[int, int, int], slices: Sequence[Optional[CSRMatrix]]):
        self.shape = (int(shape[0]), int(shape[1]), int(shape[2]))
        if len(slices) != self.shape[0]:
            raise ValueError(f"expected {self.shape[0]} slices, got {len(slices)}")
        self.slices: List[Optional[CSRMatrix]] = list(slices)
        for matrix in self.slices:
            if matrix is not None and matrix.shape != (self.shape[1], self.shape[2]):
                raise ValueError("all slices must share the trailing 2-D shape")

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSFTensor":
        """Compress a dense 3-D array, one CSR slice per leading index.

        Args:
            dense: A 3-D array ``(R, rows, cols)``.

        Returns:
            The :class:`CSFTensor` storing each slice in CSR form.
        """
        dense = np.asarray(dense)
        if dense.ndim != 3:
            raise ValueError("CSFTensor.from_dense expects a 3-D array")
        slices = [CSRMatrix.from_dense(dense[r]) for r in range(dense.shape[0])]
        return cls(dense.shape, slices)

    @property
    def num_slices(self) -> int:
        return self.shape[0]

    @property
    def nnz(self) -> int:
        return sum(matrix.nnz for matrix in self.slices if matrix is not None)

    def slice_nnz(self) -> np.ndarray:
        return np.array(
            [0 if matrix is None else matrix.nnz for matrix in self.slices], dtype=np.int64
        )

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=np.float32)
        for r, matrix in enumerate(self.slices):
            if matrix is not None:
                dense[r] = matrix.to_dense()
        return dense

    def nbytes(self, index_bytes: int = 4, value_bytes: int = 4) -> int:
        return sum(
            matrix.nbytes(index_bytes, value_bytes) for matrix in self.slices if matrix is not None
        )

    def __repr__(self) -> str:
        return f"CSFTensor(shape={self.shape}, nnz={self.nnz})"
