"""Sparse matrix formats and conversions used by the SparseTIR reproduction.

Every format class stores its compressed arrays explicitly (NumPy), can
convert to/from SciPy CSR, exposes padding/occupancy statistics, and can
produce the SparseTIR axes that describe it so that programs over the format
can be built and lowered through the compilation pipeline.
"""

from .csr import CSRMatrix
from .csc import CSCMatrix
from .coo import COOMatrix
from .bsr import BSRMatrix
from .ell import ELLMatrix
from .dia import DIAMatrix
from .ragged import RaggedTensor
from .csf import CSFTensor
from .hyb import HybFormat, HybBucket
from .dbsr import DBSRMatrix
from .srbcrs import SRBCRSMatrix
from .padding import padding_ratio_hyb, padding_ratio_percent
from .conversion import CONVERSIONS, conversion_targets, convert, roundtrip_dense

__all__ = [
    "CONVERSIONS",
    "conversion_targets",
    "convert",
    "roundtrip_dense",
    "CSRMatrix",
    "CSCMatrix",
    "COOMatrix",
    "BSRMatrix",
    "ELLMatrix",
    "DIAMatrix",
    "RaggedTensor",
    "CSFTensor",
    "HybFormat",
    "HybBucket",
    "DBSRMatrix",
    "SRBCRSMatrix",
    "padding_ratio_hyb",
    "padding_ratio_percent",
]
