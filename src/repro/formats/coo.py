"""Coordinate (COO) matrices."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from .csr import CSRMatrix


class COOMatrix:
    """A COO matrix: parallel row/column/value arrays sorted by (row, col)."""

    def __init__(
        self,
        shape: Tuple[int, int],
        row: np.ndarray,
        col: np.ndarray,
        data: Optional[np.ndarray] = None,
    ):
        self.shape = (int(shape[0]), int(shape[1]))
        self.row = np.asarray(row, dtype=np.int64)
        self.col = np.asarray(col, dtype=np.int64)
        if self.row.shape != self.col.shape:
            raise ValueError("row and col arrays must have the same length")
        if data is None:
            data = np.ones(len(self.row), dtype=np.float32)
        self.data = np.asarray(data, dtype=np.float32)
        order = np.lexsort((self.col, self.row))
        self.row, self.col, self.data = self.row[order], self.col[order], self.data[order]

    @classmethod
    def from_scipy(cls, matrix: sp.spmatrix) -> "COOMatrix":
        coo = sp.coo_matrix(matrix)
        return cls(coo.shape, coo.row, coo.col, coo.data)

    @classmethod
    def from_csr(cls, csr: CSRMatrix) -> "COOMatrix":
        return cls.from_scipy(csr.to_scipy())

    @property
    def nnz(self) -> int:
        return int(len(self.row))

    def to_scipy(self) -> sp.coo_matrix:
        return sp.coo_matrix((self.data, (self.row, self.col)), shape=self.shape)

    def to_dense(self) -> np.ndarray:
        return np.asarray(self.to_scipy().todense(), dtype=np.float32)

    def to_csr(self) -> CSRMatrix:
        return CSRMatrix.from_scipy(self.to_scipy().tocsr())

    def nbytes(self, index_bytes: int = 4, value_bytes: int = 4) -> int:
        return self.nnz * (2 * index_bytes + value_bytes)

    def __repr__(self) -> str:
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz})"
