"""Format rewrite rules and conversion helpers (Appendix A of the paper).

The two classic rewrite rules of the paper — BSR(block_size) and
ELL(nnz_cols) — are provided as factories that produce concrete
:class:`~repro.core.stage1.format_rewrite.FormatRewriteRule` objects bound to
actual matrices, so that decomposed programs can be lowered *and executed*.
The index-inference step the paper delegates to SciPy happens inside the
format classes (``BSRMatrix.from_csr`` / ``ELLMatrix.from_csr``).

The module also hosts the **conversion registry**: one named conversion path
from CSR into every format of the zoo (coo/csc/ell/dia/bsr/csf/hyb/dbsr/
srbcrs), plus :func:`roundtrip_dense`, which normalises each format's
``to_dense`` back to the source shape.  Every registered path must be a
semantic no-op — ``roundtrip_dense(csr, target) == csr.to_dense()`` — which
is exactly what makes decomposed computations equal the original; the
property-based conformance suite (``tests/test_format_conformance.py``)
enforces it across random, empty and duplicate-coordinate inputs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from ..core.stage1.format_rewrite import FormatRewriteRule
from .bsr import BSRMatrix
from .coo import COOMatrix
from .csc import CSCMatrix
from .csf import CSFTensor
from .csr import CSRMatrix
from .dbsr import DBSRMatrix
from .dia import DIAMatrix
from .ell import ELLMatrix
from .hyb import HybFormat
from .srbcrs import SRBCRSMatrix


# ---------------------------------------------------------------------------
# The conversion registry
# ---------------------------------------------------------------------------

def _to_csf(csr: CSRMatrix) -> CSFTensor:
    """Lift a matrix into a single-slice 3-D CSF tensor."""
    return CSFTensor((1, csr.rows, csr.cols), [csr])


#: Named conversion paths from CSR into every format of the zoo.  Each entry
#: maps ``(csr, **params)`` to a format object exposing ``to_dense()``.
CONVERSIONS: Dict[str, Callable[..., Any]] = {
    "csr": lambda csr: csr,
    "coo": COOMatrix.from_csr,
    "csc": CSCMatrix.from_csr,
    "ell": lambda csr, nnz_cols=None: ELLMatrix.from_csr(csr, nnz_cols),
    "dia": DIAMatrix.from_csr,
    "bsr": lambda csr, block_size=2: BSRMatrix.from_csr(csr, block_size),
    "csf": _to_csf,
    "hyb": lambda csr, num_col_parts=1, num_buckets=None: HybFormat.from_csr(
        csr, num_col_parts=num_col_parts, num_buckets=num_buckets
    ),
    "dbsr": lambda csr, block_size=2: DBSRMatrix.from_csr(csr, block_size),
    "srbcrs": lambda csr, tile_rows=2, group_size=2: SRBCRSMatrix(
        csr, tile_rows, group_size
    ),
}


def conversion_targets() -> Tuple[str, ...]:
    """Every registered conversion target, sorted."""
    return tuple(sorted(CONVERSIONS))


def convert(csr: CSRMatrix, target: str, **params: Any) -> Any:
    """Convert *csr* into *target* format through the registered path.

    Args:
        csr: The source matrix.
        target: A key of :data:`CONVERSIONS` (see :func:`conversion_targets`).
        **params: Format parameters (e.g. ``block_size`` for bsr/dbsr,
            ``num_col_parts``/``num_buckets`` for hyb, ``tile_rows``/
            ``group_size`` for srbcrs).

    Returns:
        The format object; every registered format exposes ``to_dense()``.
    """
    try:
        builder = CONVERSIONS[target]
    except KeyError:
        raise ValueError(
            f"unknown conversion target {target!r}; known: {conversion_targets()}"
        ) from None
    return builder(csr, **params)


def roundtrip_dense(csr: CSRMatrix, target: str, **params: Any) -> np.ndarray:
    """``convert(csr, target).to_dense()`` normalised to the source shape.

    Block formats pad the shape up to a block multiple and CSF lifts the
    matrix to 3-D; this helper crops/squeezes so the result is directly
    comparable with ``csr.to_dense()`` — the conformance property every
    conversion path must satisfy.
    """
    dense = np.asarray(convert(csr, target, **params).to_dense())
    if dense.ndim == 3:  # csf: single leading slice
        dense = dense[0]
    return dense[: csr.rows, : csr.cols]


def bsr_rewrite_rule(
    bsr: BSRMatrix,
    buffer_name: str = "A",
    original_axes: Tuple[str, str] = ("I", "J"),
    name: Optional[str] = None,
) -> FormatRewriteRule:
    """The ``BSR(block_size)`` rewrite rule of Appendix A, bound to *bsr*.

    The affine maps are exactly the appendix's lambdas:
    ``f(i, j) = (i // b, j // b, i % b, j % b)`` and
    ``f^-1(io, jo, ii, ji) = (io * b + ii, jo * b + ji)``.
    """
    block = bsr.block_size
    rule_name = name or f"bsr_{block}"
    io_axis, jo_axis, ii_axis, ji_axis = bsr.to_axes(prefix=f"{rule_name}_")
    return FormatRewriteRule(
        rule_name,
        [io_axis, jo_axis, ii_axis, ji_axis],
        buffer_name,
        list(original_axes),
        {
            original_axes[0]: [io_axis.name, ii_axis.name],
            original_axes[1]: [jo_axis.name, ji_axis.name],
        },
        idx_map=lambda i, j: (i // block, j // block, i % block, j % block),
        inv_idx_map=lambda io, jo, ii, ji: (io * block + ii, jo * block + ji),
    )


def ell_rewrite_rule(
    ell: ELLMatrix,
    buffer_name: str = "A",
    original_axes: Tuple[str, str] = ("I", "J"),
    name: Optional[str] = None,
) -> FormatRewriteRule:
    """The ``ELL(nnz_cols)`` rewrite rule of Appendix A, bound to *ell*."""
    rule_name = name or f"ell_{ell.nnz_cols}"
    i_axis, j_axis = ell.to_axes(prefix=f"{rule_name}_")
    return FormatRewriteRule(
        rule_name,
        [i_axis, j_axis],
        buffer_name,
        list(original_axes),
        {original_axes[0]: [i_axis.name], original_axes[1]: [j_axis.name]},
        idx_map=lambda i, j: (i, j),
        inv_idx_map=lambda i2, j2: (i2, j2),
    )


def split_csr_for_composition(
    csr: CSRMatrix, block_size: int, ell_width: int
) -> Tuple[BSRMatrix, ELLMatrix, CSRMatrix, CSRMatrix]:
    """Split a CSR matrix into a block-friendly part and a remainder.

    Rows whose length exceeds ``ell_width`` go to the BSR part; the split is
    made at block-row granularity (a block row containing any heavy row is
    assigned entirely to the BSR part) so that the two parts never overlap —
    every non-zero lives in exactly one of the composed formats, which is
    what makes the decomposed computation of Figure 5 equal to the original.
    Returns ``(bsr, ell, bsr_part_csr, ell_part_csr)``.
    """
    lengths = csr.row_lengths()
    dense = csr.to_dense()
    heavy_rows = lengths > ell_width
    heavy_block_rows = heavy_rows.reshape(-1, block_size).any(axis=1) if csr.rows % block_size == 0 else None
    if heavy_block_rows is None:
        raise ValueError("split_csr_for_composition requires rows divisible by block_size")
    heavy_mask = np.repeat(heavy_block_rows, block_size)
    heavy = np.zeros_like(dense)
    light = np.zeros_like(dense)
    heavy[heavy_mask] = dense[heavy_mask]
    light[~heavy_mask] = dense[~heavy_mask]
    heavy_csr = CSRMatrix.from_dense(heavy)
    light_csr = CSRMatrix.from_dense(light)
    bsr = BSRMatrix.from_csr(heavy_csr, block_size)
    ell = ELLMatrix.from_csr(light_csr, max(ell_width, int(light_csr.max_row_length()))) if light_csr.nnz else ELLMatrix.from_csr(light_csr, ell_width)
    return bsr, ell, heavy_csr, light_csr
