"""Format rewrite rules and conversion helpers (Appendix A of the paper).

The two classic rewrite rules of the paper — BSR(block_size) and
ELL(nnz_cols) — are provided as factories that produce concrete
:class:`~repro.core.stage1.format_rewrite.FormatRewriteRule` objects bound to
actual matrices, so that decomposed programs can be lowered *and executed*.
The index-inference step the paper delegates to SciPy happens inside the
format classes (``BSRMatrix.from_csr`` / ``ELLMatrix.from_csr``).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.stage1.format_rewrite import FormatRewriteRule
from .bsr import BSRMatrix
from .csr import CSRMatrix
from .ell import ELLMatrix


def bsr_rewrite_rule(
    bsr: BSRMatrix,
    buffer_name: str = "A",
    original_axes: Tuple[str, str] = ("I", "J"),
    name: Optional[str] = None,
) -> FormatRewriteRule:
    """The ``BSR(block_size)`` rewrite rule of Appendix A, bound to *bsr*.

    The affine maps are exactly the appendix's lambdas:
    ``f(i, j) = (i // b, j // b, i % b, j % b)`` and
    ``f^-1(io, jo, ii, ji) = (io * b + ii, jo * b + ji)``.
    """
    block = bsr.block_size
    rule_name = name or f"bsr_{block}"
    io_axis, jo_axis, ii_axis, ji_axis = bsr.to_axes(prefix=f"{rule_name}_")
    return FormatRewriteRule(
        rule_name,
        [io_axis, jo_axis, ii_axis, ji_axis],
        buffer_name,
        list(original_axes),
        {
            original_axes[0]: [io_axis.name, ii_axis.name],
            original_axes[1]: [jo_axis.name, ji_axis.name],
        },
        idx_map=lambda i, j: (i // block, j // block, i % block, j % block),
        inv_idx_map=lambda io, jo, ii, ji: (io * block + ii, jo * block + ji),
    )


def ell_rewrite_rule(
    ell: ELLMatrix,
    buffer_name: str = "A",
    original_axes: Tuple[str, str] = ("I", "J"),
    name: Optional[str] = None,
) -> FormatRewriteRule:
    """The ``ELL(nnz_cols)`` rewrite rule of Appendix A, bound to *ell*."""
    rule_name = name or f"ell_{ell.nnz_cols}"
    i_axis, j_axis = ell.to_axes(prefix=f"{rule_name}_")
    return FormatRewriteRule(
        rule_name,
        [i_axis, j_axis],
        buffer_name,
        list(original_axes),
        {original_axes[0]: [i_axis.name], original_axes[1]: [j_axis.name]},
        idx_map=lambda i, j: (i, j),
        inv_idx_map=lambda i2, j2: (i2, j2),
    )


def split_csr_for_composition(
    csr: CSRMatrix, block_size: int, ell_width: int
) -> Tuple[BSRMatrix, ELLMatrix, CSRMatrix, CSRMatrix]:
    """Split a CSR matrix into a block-friendly part and a remainder.

    Rows whose length exceeds ``ell_width`` go to the BSR part; the split is
    made at block-row granularity (a block row containing any heavy row is
    assigned entirely to the BSR part) so that the two parts never overlap —
    every non-zero lives in exactly one of the composed formats, which is
    what makes the decomposed computation of Figure 5 equal to the original.
    Returns ``(bsr, ell, bsr_part_csr, ell_part_csr)``.
    """
    lengths = csr.row_lengths()
    dense = csr.to_dense()
    heavy_rows = lengths > ell_width
    heavy_block_rows = heavy_rows.reshape(-1, block_size).any(axis=1) if csr.rows % block_size == 0 else None
    if heavy_block_rows is None:
        raise ValueError("split_csr_for_composition requires rows divisible by block_size")
    heavy_mask = np.repeat(heavy_block_rows, block_size)
    heavy = np.zeros_like(dense)
    light = np.zeros_like(dense)
    heavy[heavy_mask] = dense[heavy_mask]
    light[~heavy_mask] = dense[~heavy_mask]
    heavy_csr = CSRMatrix.from_dense(heavy)
    light_csr = CSRMatrix.from_dense(light)
    bsr = BSRMatrix.from_csr(heavy_csr, block_size)
    ell = ELLMatrix.from_csr(light_csr, max(ell_width, int(light_csr.max_row_length()))) if light_csr.nnz else ELLMatrix.from_csr(light_csr, ell_width)
    return bsr, ell, heavy_csr, light_csr
