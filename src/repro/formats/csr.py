"""Compressed Sparse Row (CSR) matrices."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..core.axes import DenseFixedAxis, SparseVariableAxis


class CSRMatrix:
    """A CSR matrix with explicit ``indptr``/``indices``/``data`` arrays."""

    def __init__(
        self,
        shape: Tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: Optional[np.ndarray] = None,
        dtype: str = "float32",
    ):
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        if len(self.indptr) != self.shape[0] + 1:
            raise ValueError(
                f"indptr length {len(self.indptr)} does not match {self.shape[0]} rows"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size and (self.indices.min() < 0 or self.indices.max() >= self.shape[1]):
            raise ValueError("column indices out of range")
        self.dtype = dtype
        if data is None:
            data = np.ones(len(self.indices), dtype=np.float32)
        self.data = np.asarray(data).astype(np.float32, copy=False)
        if self.data.shape[0] != len(self.indices):
            raise ValueError("data length must equal number of non-zeros")

    # -- constructors ---------------------------------------------------------------
    @classmethod
    def from_scipy(cls, matrix: sp.spmatrix, dtype: str = "float32") -> "CSRMatrix":
        """Convert any SciPy sparse matrix (indices are sorted canonically).

        Args:
            matrix: Any ``scipy.sparse`` matrix.
            dtype: Value dtype string of the result.

        Returns:
            An equivalent :class:`CSRMatrix`.
        """
        csr = sp.csr_matrix(matrix)
        csr.sort_indices()
        return cls(csr.shape, csr.indptr, csr.indices, csr.data, dtype=dtype)

    @classmethod
    def from_dense(cls, dense: np.ndarray, dtype: str = "float32") -> "CSRMatrix":
        """Compress a dense array, dropping zero entries.

        Args:
            dense: A 2-D array.
            dtype: Value dtype string of the result.

        Returns:
            The :class:`CSRMatrix` holding the non-zero entries.

        Example:
            >>> import numpy as np
            >>> CSRMatrix.from_dense(np.eye(3)).nnz
            3
        """
        return cls.from_scipy(sp.csr_matrix(np.asarray(dense)), dtype=dtype)

    @classmethod
    def random(
        cls,
        rows: int,
        cols: int,
        density: float,
        seed: int = 0,
        dtype: str = "float32",
    ) -> "CSRMatrix":
        """A uniformly random sparse matrix with the given density.

        Args:
            rows: Number of rows.
            cols: Number of columns.
            density: Expected fraction of stored entries.
            seed: RNG seed (deterministic for equal arguments).
            dtype: Value dtype string.

        Returns:
            A random :class:`CSRMatrix` with standard-normal values.
        """
        rng = np.random.default_rng(seed)
        matrix = sp.random(rows, cols, density=density, random_state=rng, format="csr",
                           data_rvs=lambda size: rng.standard_normal(size).astype(np.float32))
        return cls.from_scipy(matrix, dtype=dtype)

    # -- basic properties -----------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(len(self.indices))

    @property
    def rows(self) -> int:
        return self.shape[0]

    @property
    def cols(self) -> int:
        return self.shape[1]

    @property
    def density(self) -> float:
        total = self.rows * self.cols
        return self.nnz / total if total else 0.0

    def row_lengths(self) -> np.ndarray:
        return np.diff(self.indptr)

    def max_row_length(self) -> int:
        lengths = self.row_lengths()
        return int(lengths.max()) if lengths.size else 0

    def mean_row_length(self) -> float:
        lengths = self.row_lengths()
        return float(lengths.mean()) if lengths.size else 0.0

    def nbytes(self, index_bytes: int = 4, value_bytes: int = 4) -> int:
        return (len(self.indptr) + len(self.indices)) * index_bytes + self.nnz * value_bytes

    # -- conversions -----------------------------------------------------------------
    def to_scipy(self) -> sp.csr_matrix:
        return sp.csr_matrix((self.data, self.indices, self.indptr), shape=self.shape)

    def to_dense(self) -> np.ndarray:
        return np.asarray(self.to_scipy().todense(), dtype=np.float32)

    def transpose(self) -> "CSRMatrix":
        return CSRMatrix.from_scipy(self.to_scipy().T.tocsr(), dtype=self.dtype)

    def column_partition(self, num_parts: int) -> list:
        """Split columns into ``num_parts`` contiguous partitions (for hyb)."""
        if num_parts <= 0:
            raise ValueError("num_parts must be positive")
        width = (self.cols + num_parts - 1) // num_parts
        parts = []
        scipy_matrix = self.to_scipy()
        for part in range(num_parts):
            lo = part * width
            hi = min((part + 1) * width, self.cols)
            if lo >= hi:
                sub = sp.csr_matrix((self.rows, 0), dtype=np.float32)
            else:
                sub = scipy_matrix[:, lo:hi].tocsr()
            parts.append(CSRMatrix.from_scipy(sub, dtype=self.dtype) if sub.shape[1] else None)
        return parts

    # -- SparseTIR axes -----------------------------------------------------------------
    def to_axes(self, prefix: str = "") -> Tuple[DenseFixedAxis, SparseVariableAxis]:
        """Create the (I, J) SparseTIR axes describing this matrix."""
        i_axis = DenseFixedAxis(f"{prefix}I", self.rows)
        j_axis = SparseVariableAxis(
            f"{prefix}J", i_axis, self.cols, self.nnz, indptr=self.indptr, indices=self.indices
        )
        return i_axis, j_axis

    def __repr__(self) -> str:
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
