"""Compressed Sparse Row (CSR) matrices, with incremental structure updates.

A :class:`CSRMatrix` is canonically frozen — kernels, caches and
fingerprints all hash its ``indptr``/``indices`` content — but it is not
*immutable*: :meth:`CSRMatrix.insert_edges` and
:meth:`CSRMatrix.delete_edges` apply O(delta) edits through a
:class:`~repro.formats.delta.DeltaLog` riding on the frozen base arrays,
and every mutation bumps a monotonic :attr:`CSRMatrix.structure_epoch`.
The public ``indptr``/``indices``/``data`` views always expose the
*effective* (base + delta) arrays, so all consumers see the updated
matrix; re-compaction into a fresh base happens automatically once the
delta exceeds :attr:`CSRMatrix.compact_threshold` of the base nnz (see
``docs/dynamic.md`` for the amortised bounds).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..core.axes import DenseFixedAxis, SparseVariableAxis
from .delta import DeltaLog, MergedView, base_edge_keys, merge_delta

#: Pending-delta fraction of the base nnz beyond which a mutation
#: automatically re-compacts (keeps per-edit cost O(1/threshold) amortised).
DEFAULT_COMPACT_THRESHOLD = 0.25


class CSRMatrix:
    """A CSR matrix with explicit ``indptr``/``indices``/``data`` arrays.

    Example:
        >>> import numpy as np
        >>> m = CSRMatrix.from_dense(np.eye(3))
        >>> m.structure_epoch, m.nnz
        (0, 3)
        >>> m.insert_edges([0], [1], [2.0])
        >>> m.structure_epoch, m.nnz
        (1, 4)
        >>> m.to_dense()[0].tolist()
        [1.0, 2.0, 0.0]
    """

    def __init__(
        self,
        shape: Tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: Optional[np.ndarray] = None,
        dtype: str = "float32",
        compact_threshold: float = DEFAULT_COMPACT_THRESHOLD,
    ):
        self.shape = (int(shape[0]), int(shape[1]))
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if len(indptr) != self.shape[0] + 1:
            raise ValueError(
                f"indptr length {len(indptr)} does not match {self.shape[0]} rows"
            )
        if indptr[0] != 0 or indptr[-1] != len(indices):
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if indices.size and (indices.min() < 0 or indices.max() >= self.shape[1]):
            raise ValueError("column indices out of range")
        self.dtype = np.dtype(dtype).name
        value_dtype = np.dtype(self.dtype)
        if data is None:
            data = np.ones(len(indices), dtype=value_dtype)
        data = np.asarray(data).astype(value_dtype, copy=False)
        if data.shape[0] != len(indices):
            raise ValueError("data length must equal number of non-zeros")
        self.compact_threshold = float(compact_threshold)
        self._indptr = indptr
        self._indices = indices
        self._data = data
        self._init_dynamic_state()

    def _init_dynamic_state(self) -> None:
        self._delta: Optional[DeltaLog] = None
        self._epoch = 0
        self._mutations = 0
        self._merged: Optional[MergedView] = None
        self._base_keys: Optional[np.ndarray] = None
        self._base_view: Optional["CSRMatrix"] = None
        self._signature: Optional[Tuple[int, str]] = None

    # -- constructors ---------------------------------------------------------------
    @classmethod
    def from_scipy(cls, matrix: sp.spmatrix, dtype: str = "float32") -> "CSRMatrix":
        """Convert any SciPy sparse matrix (indices are sorted canonically).

        Args:
            matrix: Any ``scipy.sparse`` matrix.
            dtype: Value dtype string of the result.

        Returns:
            An equivalent :class:`CSRMatrix`.
        """
        csr = sp.csr_matrix(matrix)
        csr.sort_indices()
        return cls(csr.shape, csr.indptr, csr.indices, csr.data, dtype=dtype)

    @classmethod
    def from_dense(cls, dense: np.ndarray, dtype: str = "float32") -> "CSRMatrix":
        """Compress a dense array, dropping zero entries.

        Args:
            dense: A 2-D array.
            dtype: Value dtype string of the result.

        Returns:
            The :class:`CSRMatrix` holding the non-zero entries.

        Example:
            >>> import numpy as np
            >>> CSRMatrix.from_dense(np.eye(3)).nnz
            3
        """
        return cls.from_scipy(sp.csr_matrix(np.asarray(dense)), dtype=dtype)

    @classmethod
    def random(
        cls,
        rows: int,
        cols: int,
        density: float,
        seed: int = 0,
        dtype: str = "float32",
    ) -> "CSRMatrix":
        """A uniformly random sparse matrix with the given density.

        Args:
            rows: Number of rows.
            cols: Number of columns.
            density: Expected fraction of stored entries.
            seed: RNG seed (deterministic for equal arguments).
            dtype: Value dtype string.

        Returns:
            A random :class:`CSRMatrix` with standard-normal values.
        """
        rng = np.random.default_rng(seed)
        value_dtype = np.dtype(dtype)
        matrix = sp.random(rows, cols, density=density, random_state=rng, format="csr",
                           data_rvs=lambda size: rng.standard_normal(size).astype(value_dtype))
        return cls.from_scipy(matrix, dtype=dtype)

    # -- storage views --------------------------------------------------------------
    # The public triplet always reflects the *effective* matrix: the frozen
    # base arrays when no delta is pending, else the (cached) merged arrays.

    @property
    def indptr(self) -> np.ndarray:
        return self._indptr if self._delta is None else self._merged_view().indptr

    @property
    def indices(self) -> np.ndarray:
        return self._indices if self._delta is None else self._merged_view().indices

    @property
    def data(self) -> np.ndarray:
        return self._data if self._delta is None else self._merged_view().data

    def _merged_view(self) -> MergedView:
        if self._merged is None:
            self._merged = merge_delta(
                self.shape, self._indptr, self._indices, self._data,
                self._ensure_base_keys(), self._delta,
            )
        return self._merged

    def _ensure_base_keys(self) -> np.ndarray:
        if self._base_keys is None:
            self._base_keys = base_edge_keys(self.shape, self._indptr, self._indices)
        return self._base_keys

    # -- incremental updates --------------------------------------------------------
    @property
    def structure_epoch(self) -> int:
        """Monotonic counter bumped by every mutating call.

        Caches that memoise by object identity must key by
        ``(id(matrix), matrix.structure_epoch)`` — an unchanged epoch
        guarantees unchanged structure *and* values.  Re-compaction does not
        bump the epoch: it rewrites the storage, not the content.
        """
        return self._epoch

    @property
    def mutation_count(self) -> int:
        """Cumulative number of edge edits ever applied (never resets)."""
        return self._mutations

    @property
    def has_pending_delta(self) -> bool:
        """Whether edits are pending against the frozen base snapshot."""
        return self._delta is not None

    @property
    def pending_delta(self) -> int:
        """Number of pending edits (inserts + tombstones)."""
        return self._delta.pending if self._delta is not None else 0

    @property
    def drift_ratio(self) -> float:
        """Pending edits as a fraction of the base nnz."""
        return self.pending_delta / max(len(self._indices), 1)

    def _edit_batch(self, rows, cols, values=None):
        rows = np.atleast_1d(np.asarray(rows, dtype=np.int64))
        cols = np.atleast_1d(np.asarray(cols, dtype=np.int64))
        if rows.ndim != 1 or rows.shape != cols.shape:
            raise ValueError("rows and cols must be 1-D of equal length")
        if rows.size and (rows.min() < 0 or rows.max() >= self.rows):
            raise ValueError("row indices out of range")
        if cols.size and (cols.min() < 0 or cols.max() >= self.cols):
            raise ValueError("column indices out of range")
        if values is None:
            values = np.ones(rows.size, dtype=np.dtype(self.dtype))
        else:
            values = np.asarray(values, dtype=np.dtype(self.dtype))
            if values.ndim == 0:
                values = np.full(rows.size, values, dtype=np.dtype(self.dtype))
            if values.shape != rows.shape:
                raise ValueError("values must match the number of edited edges")
        return rows, cols, values

    def _base_positions(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Base storage position per ``(row, col)``, ``-1`` where absent."""
        keys = self._ensure_base_keys()
        if keys.size == 0:
            return np.full(rows.size, -1, dtype=np.int64)
        probe = rows * np.int64(self.cols) + cols
        pos = np.minimum(np.searchsorted(keys, probe), keys.size - 1)
        return np.where(keys[pos] == probe, pos, -1)

    def _ensure_delta(self) -> DeltaLog:
        if self._delta is None:
            self._delta = DeltaLog(len(self._indices))
        return self._delta

    def _bump(self, edits: int) -> None:
        self._epoch += 1
        self._mutations += edits
        self._merged = None
        self._signature = None
        if self._delta is not None and self._delta.empty:
            # Edits cancelled out (insert then delete): back to the base.
            self._delta = None
            self._base_view = None
        elif self._delta is not None and self.drift_ratio >= self.compact_threshold:
            self.compact()

    def insert_edges(self, rows, cols, values=None) -> None:
        """Insert (or upsert) edges through the delta log — O(1) each, amortised.

        Inserting an edge that already exists replaces its value (the old
        base entry is tombstoned, never rewritten in place).  The batch is
        validated before any state changes, bumps
        :attr:`structure_epoch` once, and may trigger automatic
        re-compaction.

        Args:
            rows: Row index (scalar or 1-D array) per inserted edge.
            cols: Column index per inserted edge.
            values: Edge value per edge (scalar broadcasts; default 1).
        """
        rows, cols, values = self._edit_batch(rows, cols, values)
        if rows.size == 0:
            return
        delta = self._ensure_delta()
        positions = self._base_positions(rows, cols)
        for row, col, value, pos in zip(rows, cols, values, positions):
            if pos >= 0:
                delta.kill(int(pos))
            delta.record_insert(int(row), int(col), value)
        self._bump(int(rows.size))

    def delete_edges(self, rows, cols) -> None:
        """Delete existing edges through the delta log — O(1) each, amortised.

        Raises:
            KeyError: If any addressed edge is not present in the effective
                matrix (the batch is checked up front and applied atomically).
        """
        rows, cols, _ = self._edit_batch(rows, cols)
        if rows.size == 0:
            return
        # Plan against the current delta (if any) without creating one: a
        # rejected batch must leave the matrix exactly as it found it.
        inserts = self._delta.inserts if self._delta is not None else {}
        tombstones = self._delta.tombstones if self._delta is not None else None
        positions = self._base_positions(rows, cols)
        plan = []
        staged = set()
        for row, col, pos in zip(rows, cols, positions):
            key = (int(row), int(col))
            if key in staged:
                raise KeyError(f"edge {key} deleted twice in one batch")
            if key in inserts:
                plan.append((key, -1))
            elif pos >= 0 and (tombstones is None or not tombstones[pos]):
                plan.append((key, int(pos)))
            else:
                raise KeyError(f"edge {key} is not present")
            staged.add(key)
        delta = self._ensure_delta()
        for key, pos in plan:
            if pos < 0:
                delta.discard_insert(*key)
            else:
                delta.kill(pos)
        self._bump(int(rows.size))

    def compact(self) -> "CSRMatrix":
        """Fold the pending delta into a fresh canonical base (O(nnz)).

        The effective content is unchanged, so :attr:`structure_epoch` is
        *not* bumped — content-keyed memos stay valid across compaction.
        Returns ``self`` for chaining.
        """
        if self._delta is not None:
            merged = self._merged_view()
            self._indptr = merged.indptr
            self._indices = merged.indices
            self._data = merged.data
            self._delta = None
            self._merged = None
            self._base_keys = None
            self._base_view = None
        return self

    def base_view(self) -> "CSRMatrix":
        """A frozen :class:`CSRMatrix` sharing this matrix's base arrays.

        The runtime executes a mutated matrix as *base plan + overlay*: the
        base view keeps its object identity (and arrays) across an update
        window, so kernels and fingerprints computed against it stay warm
        until :meth:`compact` replaces the base.  With no pending delta the
        matrix is its own base.
        """
        if self._delta is None:
            return self
        view = self._base_view
        if view is None:
            view = CSRMatrix.__new__(CSRMatrix)
            view.shape = self.shape
            view.dtype = self.dtype
            view.compact_threshold = self.compact_threshold
            view._indptr = self._indptr
            view._indices = self._indices
            view._data = self._data
            view._init_dynamic_state()
            view._base_keys = self._base_keys
            self._base_view = view
        return view

    def content_signature(self) -> str:
        """Content hash of the effective arrays, memoised per epoch.

        Stale-proof replacement for caching a content hash on the object:
        the memo is keyed by :attr:`structure_epoch`, so a mutated matrix
        can never serve the pre-mutation hash, while unchanged-epoch calls
        stay O(1).
        """
        cached = self._signature
        if cached is not None and cached[0] == self._epoch:
            return cached[1]
        from ..runtime.keys import content_key

        digest = content_key(self.shape, self.indptr, self.indices, self.data)
        self._signature = (self._epoch, digest)
        return digest

    # -- basic properties -----------------------------------------------------------
    @property
    def nnz(self) -> int:
        if self._delta is None:
            return int(len(self._indices))
        return int(len(self._indices)) - self._delta.dead + len(self._delta.inserts)

    @property
    def rows(self) -> int:
        return self.shape[0]

    @property
    def cols(self) -> int:
        return self.shape[1]

    @property
    def density(self) -> float:
        total = self.rows * self.cols
        return self.nnz / total if total else 0.0

    def row_lengths(self) -> np.ndarray:
        return np.diff(self.indptr)

    def max_row_length(self) -> int:
        lengths = self.row_lengths()
        return int(lengths.max()) if lengths.size else 0

    def mean_row_length(self) -> float:
        lengths = self.row_lengths()
        return float(lengths.mean()) if lengths.size else 0.0

    def nbytes(self, index_bytes: int = 4, value_bytes: int = 4) -> int:
        return (len(self.indptr) + len(self.indices)) * index_bytes + self.nnz * value_bytes

    # -- conversions -----------------------------------------------------------------
    def to_scipy(self) -> sp.csr_matrix:
        return sp.csr_matrix((self.data, self.indices, self.indptr), shape=self.shape)

    def to_dense(self) -> np.ndarray:
        return np.asarray(self.to_scipy().todense(), dtype=np.dtype(self.dtype))

    def transpose(self) -> "CSRMatrix":
        return CSRMatrix.from_scipy(self.to_scipy().T.tocsr(), dtype=self.dtype)

    def column_partition(self, num_parts: int) -> list:
        """Split columns into ``num_parts`` contiguous partitions (for hyb)."""
        if num_parts <= 0:
            raise ValueError("num_parts must be positive")
        width = (self.cols + num_parts - 1) // num_parts
        parts = []
        scipy_matrix = self.to_scipy()
        for part in range(num_parts):
            lo = part * width
            hi = min((part + 1) * width, self.cols)
            if lo >= hi:
                sub = sp.csr_matrix((self.rows, 0), dtype=np.dtype(self.dtype))
            else:
                sub = scipy_matrix[:, lo:hi].tocsr()
            parts.append(CSRMatrix.from_scipy(sub, dtype=self.dtype) if sub.shape[1] else None)
        return parts

    # -- SparseTIR axes -----------------------------------------------------------------
    def to_axes(self, prefix: str = "") -> Tuple[DenseFixedAxis, SparseVariableAxis]:
        """Create the (I, J) SparseTIR axes describing this matrix."""
        i_axis = DenseFixedAxis(f"{prefix}I", self.rows)
        j_axis = SparseVariableAxis(
            f"{prefix}J", i_axis, self.cols, self.nnz, indptr=self.indptr, indices=self.indices
        )
        return i_axis, j_axis

    def __repr__(self) -> str:
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
