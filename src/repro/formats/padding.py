"""Padding statistics for composable formats (Tables 1 and 2 of the paper)."""

from __future__ import annotations

from typing import Optional

from .csr import CSRMatrix
from .hyb import HybFormat


def padding_ratio_hyb(
    csr: CSRMatrix, num_col_parts: int = 1, num_buckets: Optional[int] = None
) -> float:
    """Fraction of padded zero elements after transforming ``csr`` to hyb."""
    hyb = HybFormat.from_csr(csr, num_col_parts=num_col_parts, num_buckets=num_buckets)
    return hyb.padding_ratio


def padding_ratio_percent(
    csr: CSRMatrix, num_col_parts: int = 1, num_buckets: Optional[int] = None
) -> float:
    """The %padding column of Tables 1 and 2 (in percent)."""
    return 100.0 * padding_ratio_hyb(csr, num_col_parts, num_buckets)


def padded_flops_inflation(padding_ratio: float) -> float:
    """Multiplicative FLOP inflation caused by a given padding ratio.

    With padding ratio ``p`` the padded format stores ``nnz / (1 - p)`` slots,
    so the kernel performs ``1 / (1 - p)`` times the useful multiply-adds.
    """
    if not 0.0 <= padding_ratio < 1.0:
        raise ValueError("padding ratio must be in [0, 1)")
    return 1.0 / (1.0 - padding_ratio)
