"""Doubly-compressed BSR (DBSR), Section 4.3.2 (structured pruning).

Block-pruned transformer weights contain many all-zero block rows; DBSR
(inspired by DCSR) stores only the non-empty block rows, with an explicit
``row_indices`` array mapping stored block rows back to their original block
row, so kernels skip empty rows entirely.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .bsr import BSRMatrix
from .csr import CSRMatrix


class DBSRMatrix:
    """A BSR matrix that additionally compresses away empty block rows."""

    def __init__(
        self,
        shape: Tuple[int, int],
        block_size: int,
        row_indices: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
    ):
        self.shape = (int(shape[0]), int(shape[1]))
        self.block_size = int(block_size)
        self.row_indices = np.asarray(row_indices, dtype=np.int64)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float32)
        if len(self.indptr) != len(self.row_indices) + 1:
            raise ValueError("indptr must have one entry per stored block row plus one")
        if self.data.shape != (len(self.indices), self.block_size, self.block_size):
            raise ValueError("DBSR data must have shape (nblocks, block_size, block_size)")

    @classmethod
    def from_bsr(cls, bsr: BSRMatrix) -> "DBSRMatrix":
        lengths = bsr.block_row_lengths
        nonempty = np.nonzero(lengths > 0)[0]
        new_indptr = np.concatenate([[0], np.cumsum(lengths[nonempty])])
        return cls(
            bsr.shape,
            bsr.block_size,
            nonempty,
            new_indptr,
            bsr.indices,
            bsr.data,
        )

    @classmethod
    def from_csr(cls, csr: CSRMatrix, block_size: int) -> "DBSRMatrix":
        return cls.from_bsr(BSRMatrix.from_csr(csr, block_size))

    # -- properties -----------------------------------------------------------------
    @property
    def num_stored_block_rows(self) -> int:
        return int(len(self.row_indices))

    @property
    def num_block_rows(self) -> int:
        return self.shape[0] // self.block_size

    @property
    def num_blocks(self) -> int:
        return int(len(self.indices))

    @property
    def nnz_stored(self) -> int:
        return self.num_blocks * self.block_size * self.block_size

    @property
    def empty_block_row_fraction(self) -> float:
        if self.num_block_rows == 0:
            return 0.0
        return 1.0 - self.num_stored_block_rows / self.num_block_rows

    def nbytes(self, index_bytes: int = 4, value_bytes: int = 4) -> int:
        return (
            (len(self.row_indices) + len(self.indptr) + len(self.indices)) * index_bytes
            + self.nnz_stored * value_bytes
        )

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=np.float32)
        b = self.block_size
        for stored_row, block_row in enumerate(self.row_indices):
            start, end = self.indptr[stored_row], self.indptr[stored_row + 1]
            for pos in range(start, end):
                block_col = self.indices[pos]
                dense[block_row * b : (block_row + 1) * b, block_col * b : (block_col + 1) * b] = (
                    self.data[pos]
                )
        return dense

    def __repr__(self) -> str:
        return (
            f"DBSRMatrix(shape={self.shape}, block_size={self.block_size}, "
            f"stored_rows={self.num_stored_block_rows}/{self.num_block_rows})"
        )
