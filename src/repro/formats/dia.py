"""Diagonal (DIA) matrices, used for band/Longformer attention masks."""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from .csr import CSRMatrix


class DIAMatrix:
    """A DIA matrix: a dense array of diagonals identified by their offsets."""

    def __init__(self, shape: Tuple[int, int], offsets: np.ndarray, data: np.ndarray):
        self.shape = (int(shape[0]), int(shape[1]))
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float32)
        if self.data.shape != (len(self.offsets), self.shape[1]):
            raise ValueError("DIA data must have shape (num_diagonals, cols)")

    @classmethod
    def from_scipy(cls, matrix: sp.spmatrix) -> "DIAMatrix":
        dia = sp.dia_matrix(matrix)
        # SciPy stores diagonals only up to the last used column (and an
        # all-zero matrix as a (0, 0) data array); normalise to the
        # documented (num_diagonals, cols) layout, zero-padding on the right.
        data = np.zeros((len(dia.offsets), dia.shape[1]), dtype=np.float32)
        if dia.data.size:
            width = min(dia.data.shape[1], dia.shape[1])
            data[:, :width] = dia.data[:, :width]
        return cls(dia.shape, dia.offsets, data)

    @classmethod
    def from_csr(cls, csr: CSRMatrix) -> "DIAMatrix":
        return cls.from_scipy(csr.to_scipy())

    @classmethod
    def band(cls, size: int, bandwidth: int, value: float = 1.0) -> "DIAMatrix":
        """A band matrix with ``2 * bandwidth + 1`` diagonals (Longformer mask)."""
        offsets = np.arange(-bandwidth, bandwidth + 1)
        data = np.full((len(offsets), size), value, dtype=np.float32)
        return cls((size, size), offsets, data)

    @property
    def num_diagonals(self) -> int:
        return int(len(self.offsets))

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.to_dense()))

    def to_scipy(self) -> sp.dia_matrix:
        return sp.dia_matrix((self.data, self.offsets), shape=self.shape)

    def to_dense(self) -> np.ndarray:
        return np.asarray(self.to_scipy().todense(), dtype=np.float32)

    def to_csr(self) -> CSRMatrix:
        return CSRMatrix.from_scipy(self.to_scipy().tocsr())

    def nbytes(self, value_bytes: int = 4, index_bytes: int = 4) -> int:
        return self.data.size * value_bytes + len(self.offsets) * index_bytes

    def __repr__(self) -> str:
        return f"DIAMatrix(shape={self.shape}, diagonals={self.num_diagonals})"
