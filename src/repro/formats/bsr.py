"""Block Compressed Sparse Row (BSR) matrices."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..core.axes import DenseFixedAxis, SparseVariableAxis
from .csr import CSRMatrix


class BSRMatrix:
    """A BSR matrix with square ``block_size`` x ``block_size`` blocks."""

    def __init__(
        self,
        shape: Tuple[int, int],
        block_size: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: Optional[np.ndarray] = None,
    ):
        self.shape = (int(shape[0]), int(shape[1]))
        self.block_size = int(block_size)
        if self.shape[0] % self.block_size or self.shape[1] % self.block_size:
            raise ValueError("matrix shape must be divisible by the block size")
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        if data is None:
            data = np.zeros((len(self.indices), self.block_size, self.block_size), dtype=np.float32)
        self.data = np.asarray(data, dtype=np.float32)
        if self.data.shape != (len(self.indices), self.block_size, self.block_size):
            raise ValueError("BSR data must have shape (nblocks, block_size, block_size)")

    # -- constructors -----------------------------------------------------------------
    @classmethod
    def from_csr(cls, csr: CSRMatrix, block_size: int) -> "BSRMatrix":
        """View a CSR matrix at block granularity.

        The shape is padded up to the next multiple of ``block_size``; every
        block containing at least one non-zero is stored densely.

        Args:
            csr: The source :class:`~repro.formats.csr.CSRMatrix`.
            block_size: Square block edge length.

        Returns:
            The equivalent :class:`BSRMatrix`.
        """
        rows = -(-csr.rows // block_size) * block_size
        cols = -(-csr.cols // block_size) * block_size
        matrix = csr.to_scipy()
        if (rows, cols) != csr.shape:
            matrix = sp.csr_matrix((matrix.data, matrix.indices, matrix.indptr), shape=csr.shape)
            matrix.resize((rows, cols))
        bsr = sp.bsr_matrix(matrix, blocksize=(block_size, block_size))
        bsr.sort_indices()
        return cls((rows, cols), block_size, bsr.indptr, bsr.indices, bsr.data)

    @classmethod
    def from_dense(cls, dense: np.ndarray, block_size: int) -> "BSRMatrix":
        return cls.from_csr(CSRMatrix.from_dense(dense), block_size)

    # -- properties -----------------------------------------------------------------
    @property
    def block_rows(self) -> int:
        return self.shape[0] // self.block_size

    @property
    def block_cols(self) -> int:
        return self.shape[1] // self.block_size

    @property
    def num_blocks(self) -> int:
        return int(len(self.indices))

    @property
    def nnz_stored(self) -> int:
        """Stored elements (block granularity, including intra-block zeros)."""
        return self.num_blocks * self.block_size * self.block_size

    @property
    def nnz(self) -> int:
        """Real non-zero elements inside the stored blocks."""
        return int(np.count_nonzero(self.data))

    @property
    def block_density(self) -> float:
        """Fraction of stored block area occupied by real non-zeros."""
        if self.nnz_stored == 0:
            return 0.0
        return self.nnz / self.nnz_stored

    @property
    def block_row_lengths(self) -> np.ndarray:
        return np.diff(self.indptr)

    def nbytes(self, index_bytes: int = 4, value_bytes: int = 4) -> int:
        return (
            len(self.indptr) * index_bytes
            + self.num_blocks * index_bytes
            + self.nnz_stored * value_bytes
        )

    # -- conversions -----------------------------------------------------------------
    def to_scipy(self) -> sp.bsr_matrix:
        return sp.bsr_matrix(
            (self.data, self.indices, self.indptr),
            shape=self.shape,
            blocksize=(self.block_size, self.block_size),
        )

    def to_dense(self) -> np.ndarray:
        return np.asarray(self.to_scipy().todense(), dtype=np.float32)

    def to_csr(self) -> CSRMatrix:
        return CSRMatrix.from_scipy(self.to_scipy().tocsr())

    def to_axes(self, prefix: str = "") -> Tuple[DenseFixedAxis, SparseVariableAxis, DenseFixedAxis, DenseFixedAxis]:
        """The (IO, JO, II, JI) axes of the paper's BSR example."""
        io_axis = DenseFixedAxis(f"{prefix}IO", self.block_rows)
        jo_axis = SparseVariableAxis(
            f"{prefix}JO", io_axis, self.block_cols, self.num_blocks,
            indptr=self.indptr, indices=self.indices,
        )
        ii_axis = DenseFixedAxis(f"{prefix}II", self.block_size)
        ji_axis = DenseFixedAxis(f"{prefix}JI", self.block_size)
        return io_axis, jo_axis, ii_axis, ji_axis

    def __repr__(self) -> str:
        return (
            f"BSRMatrix(shape={self.shape}, block_size={self.block_size}, "
            f"blocks={self.num_blocks}, block_density={self.block_density:.2f})"
        )
