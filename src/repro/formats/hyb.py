"""The composable ``hyb(c, k)`` format of Section 4.2.1.

The sparse matrix's columns are split into ``c`` contiguous partitions.
Within each partition, rows are grouped into buckets by their (partition
local) length: bucket ``i`` collects rows whose length ``l`` satisfies
``2^(i-1) < l <= 2^i`` and pads them to width ``2^i``.  Each bucket is an ELL
sub-matrix with an explicit ``row_map`` from bucket-local rows back to the
original rows.  Rows longer than the largest bucket width are split into
multiple bucket rows ("row splitting"), which is what bounds the work per
thread block and delivers compile-time load balancing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .csr import CSRMatrix
from .ell import ELLMatrix, PAD


@dataclass
class HybBucket:
    """One ELL bucket of one column partition."""

    partition: int
    width: int
    ell: ELLMatrix
    col_offset: int = 0

    @property
    def num_rows(self) -> int:
        return self.ell.num_rows

    @property
    def nnz(self) -> int:
        return self.ell.nnz

    @property
    def stored(self) -> int:
        return self.ell.stored


class HybFormat:
    """A ``hyb(num_col_parts, num_buckets)`` decomposition of a CSR matrix."""

    def __init__(self, source: CSRMatrix, num_col_parts: int, bucket_widths: Sequence[int]):
        if num_col_parts <= 0:
            raise ValueError("num_col_parts must be positive")
        if not bucket_widths or any(w <= 0 for w in bucket_widths):
            raise ValueError("bucket widths must be positive")
        self.source = source
        self.num_col_parts = int(num_col_parts)
        self.bucket_widths = sorted(int(w) for w in bucket_widths)
        self.buckets: List[HybBucket] = []
        self._build()

    # -- constructors -----------------------------------------------------------------
    @classmethod
    def from_csr(
        cls,
        csr: CSRMatrix,
        num_col_parts: int = 1,
        num_buckets: Optional[int] = None,
    ) -> "HybFormat":
        """Build ``hyb(c, k)`` with power-of-two bucket widths ``1..2^(k-1)``.

        When ``num_buckets`` is omitted the paper's heuristic
        ``k = ceil(log2(nnz / n))`` (average degree) is used.
        """
        if num_buckets is None:
            average = max(csr.nnz / max(csr.rows, 1), 1.0)
            num_buckets = max(1, int(math.ceil(math.log2(average))) + 1)
        widths = [2 ** i for i in range(num_buckets)]
        return cls(csr, num_col_parts, widths)

    # -- construction -----------------------------------------------------------------
    def _build(self) -> None:
        partition_width = (self.source.cols + self.num_col_parts - 1) // self.num_col_parts
        source = self.source.to_scipy()
        max_width = self.bucket_widths[-1]
        for part in range(self.num_col_parts):
            lo = part * partition_width
            hi = min((part + 1) * partition_width, self.source.cols)
            if lo >= hi:
                continue
            sub = source[:, lo:hi].tocsr()
            sub.sort_indices()
            lengths = np.diff(sub.indptr)
            # Rows per bucket: bucket b holds rows with width[b-1] < len <= width[b];
            # rows longer than the largest bucket are split into ceil(len / max) rows.
            rows_per_bucket: Dict[int, List[Tuple[int, np.ndarray, np.ndarray]]] = {
                w: [] for w in self.bucket_widths
            }
            for row in range(sub.shape[0]):
                length = int(lengths[row])
                if length == 0:
                    continue
                cols = sub.indices[sub.indptr[row] : sub.indptr[row + 1]]
                vals = sub.data[sub.indptr[row] : sub.indptr[row + 1]]
                if length <= max_width:
                    width = self._bucket_for(length)
                    rows_per_bucket[width].append((row, cols, vals))
                else:
                    for start in range(0, length, max_width):
                        piece_cols = cols[start : start + max_width]
                        piece_vals = vals[start : start + max_width]
                        rows_per_bucket[max_width].append((row, piece_cols, piece_vals))
            for width in self.bucket_widths:
                entries = rows_per_bucket[width]
                if not entries:
                    continue
                indices = np.full((len(entries), width), PAD, dtype=np.int64)
                data = np.zeros((len(entries), width), dtype=np.float32)
                row_map = np.zeros(len(entries), dtype=np.int64)
                for slot, (row, cols, vals) in enumerate(entries):
                    indices[slot, : len(cols)] = cols
                    data[slot, : len(cols)] = vals
                    row_map[slot] = row
                ell = ELLMatrix((len(entries), hi - lo), indices, data, row_map=row_map)
                self.buckets.append(HybBucket(part, width, ell, col_offset=lo))

    def _bucket_for(self, length: int) -> int:
        for width in self.bucket_widths:
            if length <= width:
                return width
        return self.bucket_widths[-1]

    # -- statistics -----------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return sum(bucket.nnz for bucket in self.buckets)

    @property
    def stored(self) -> int:
        return sum(bucket.stored for bucket in self.buckets)

    @property
    def padding_ratio(self) -> float:
        """Fraction of stored slots that are padding (the paper's %padding)."""
        if self.stored == 0:
            return 0.0
        return 1.0 - self.nnz / self.stored

    def num_buckets(self) -> int:
        return len(self.buckets)

    def bucket_summary(self) -> List[Dict[str, int]]:
        return [
            {
                "partition": bucket.partition,
                "width": bucket.width,
                "rows": bucket.num_rows,
                "nnz": bucket.nnz,
                "stored": bucket.stored,
            }
            for bucket in self.buckets
        ]

    def nbytes(self, index_bytes: int = 4, value_bytes: int = 4) -> int:
        total = 0
        for bucket in self.buckets:
            total += bucket.ell.nbytes(index_bytes, value_bytes)
            total += bucket.num_rows * index_bytes  # row_map
        return total

    # -- correctness -----------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.source.shape, dtype=np.float32)
        for bucket in self.buckets:
            ell = bucket.ell
            for local_row in range(ell.num_rows):
                target = int(ell.row_map[local_row])
                for slot in range(ell.nnz_cols):
                    col = ell.indices[local_row, slot]
                    if col != PAD:
                        dense[target, bucket.col_offset + col] += ell.data[local_row, slot]
        return dense

    def __repr__(self) -> str:
        return (
            f"HybFormat(parts={self.num_col_parts}, widths={self.bucket_widths}, "
            f"buckets={len(self.buckets)}, padding={self.padding_ratio:.2%})"
        )
