"""The composable ``hyb(c, k)`` format of Section 4.2.1.

The sparse matrix's columns are split into ``c`` contiguous partitions.
Within each partition, rows are grouped into buckets by their (partition
local) length: bucket ``i`` collects rows whose length ``l`` satisfies
``2^(i-1) < l <= 2^i`` and pads them to width ``2^i``.  Each bucket is an ELL
sub-matrix with an explicit ``row_map`` from bucket-local rows back to the
original rows.  Rows longer than the largest bucket width are split into
multiple bucket rows ("row splitting"), which is what bounds the work per
thread block and delivers compile-time load balancing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.nputils import ragged_arange
from .csr import CSRMatrix
from .ell import ELLMatrix, PAD



@dataclass
class HybBucket:
    """One ELL bucket of one column partition."""

    partition: int
    width: int
    ell: ELLMatrix
    col_offset: int = 0

    @property
    def num_rows(self) -> int:
        return self.ell.num_rows

    @property
    def nnz(self) -> int:
        return self.ell.nnz

    @property
    def stored(self) -> int:
        return self.ell.stored


class HybFormat:
    """A ``hyb(num_col_parts, num_buckets)`` decomposition of a CSR matrix."""

    def __init__(self, source: CSRMatrix, num_col_parts: int, bucket_widths: Sequence[int]):
        if num_col_parts <= 0:
            raise ValueError("num_col_parts must be positive")
        if not bucket_widths or any(w <= 0 for w in bucket_widths):
            raise ValueError("bucket widths must be positive")
        self.source = source
        self.num_col_parts = int(num_col_parts)
        self.bucket_widths = sorted(int(w) for w in bucket_widths)
        self.buckets: List[HybBucket] = []
        self._build()

    # -- constructors -----------------------------------------------------------------
    @classmethod
    def from_csr(
        cls,
        csr: CSRMatrix,
        num_col_parts: int = 1,
        num_buckets: Optional[int] = None,
    ) -> "HybFormat":
        """Build ``hyb(c, k)`` with power-of-two bucket widths ``1..2^(k-1)``.

        When ``num_buckets`` is omitted,
        ``k = ceil(log2(max(nnz / n, 1))) + 1`` — one bucket *more* than the
        paper's stated ``ceil(log2(avg_degree))``, so the widest width
        ``2^(k-1)`` is at least the average degree and typical rows fit
        without row splitting (pinned per fig-13 graph in
        ``tests/test_dynamic.py``).
        """
        if num_buckets is None:
            average = max(csr.nnz / max(csr.rows, 1), 1.0)
            num_buckets = max(1, int(math.ceil(math.log2(average))) + 1)
        widths = [2 ** i for i in range(num_buckets)]
        return cls(csr, num_col_parts, widths)

    # -- construction -----------------------------------------------------------------
    def _build(self) -> None:
        """Bucket every column partition with whole-array NumPy operations.

        Equivalent to the obvious per-row loop (bucket ``b`` holds rows with
        ``width[b-1] < len <= width[b]``; longer rows are split into
        ``ceil(len / max_width)`` pieces that all land in the widest bucket)
        but built from ragged-range index arithmetic, which is what keeps
        repeated decomposition — the inner loop of the format tuner — cheap.
        """
        partition_width = (self.source.cols + self.num_col_parts - 1) // self.num_col_parts
        source = self.source.to_scipy()
        widths = np.asarray(self.bucket_widths, dtype=np.int64)
        max_width = int(widths[-1])
        for part in range(self.num_col_parts):
            lo = part * partition_width
            hi = min((part + 1) * partition_width, self.source.cols)
            if lo >= hi:
                continue
            sub = source[:, lo:hi].tocsr()
            sub.sort_indices()
            lengths = np.diff(sub.indptr).astype(np.int64)

            # One entry per ELL row: split long rows into max_width pieces.
            piece_counts = np.where(lengths <= max_width, (lengths > 0).astype(np.int64),
                                    -(-lengths // max_width))
            entry_row = np.repeat(np.arange(sub.shape[0], dtype=np.int64), piece_counts)
            entry_piece = ragged_arange(piece_counts)
            entry_start = entry_piece * max_width
            entry_len = np.minimum(lengths[entry_row] - entry_start, max_width)
            slot_of_len = np.minimum(
                np.searchsorted(widths, lengths[entry_row]), len(widths) - 1
            )
            entry_width = np.where(
                lengths[entry_row] <= max_width, widths[slot_of_len], max_width
            )

            indptr = sub.indptr.astype(np.int64)
            for width in self.bucket_widths:
                sel = entry_width == width
                num_rows = int(sel.sum())
                if num_rows == 0:
                    continue
                row_map = entry_row[sel]
                sel_len = entry_len[sel]
                indices = np.full((num_rows, width), PAD, dtype=np.int64)
                data = np.zeros((num_rows, width), dtype=sub.data.dtype)
                slot = np.repeat(np.arange(num_rows, dtype=np.int64), sel_len)
                col = ragged_arange(sel_len)
                src = np.repeat(indptr[row_map] + entry_start[sel], sel_len) + col
                indices[slot, col] = sub.indices[src]
                data[slot, col] = sub.data[src]
                ell = ELLMatrix((num_rows, hi - lo), indices, data, row_map=row_map)
                self.buckets.append(HybBucket(part, width, ell, col_offset=lo))

    # -- statistics -----------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return sum(bucket.nnz for bucket in self.buckets)

    @property
    def stored(self) -> int:
        return sum(bucket.stored for bucket in self.buckets)

    @property
    def padding_ratio(self) -> float:
        """Fraction of stored slots that are padding (the paper's %padding)."""
        if self.stored == 0:
            return 0.0
        return 1.0 - self.nnz / self.stored

    def num_buckets(self) -> int:
        return len(self.buckets)

    def bucket_summary(self) -> List[Dict[str, int]]:
        return [
            {
                "partition": bucket.partition,
                "width": bucket.width,
                "rows": bucket.num_rows,
                "nnz": bucket.nnz,
                "stored": bucket.stored,
            }
            for bucket in self.buckets
        ]

    def nbytes(self, index_bytes: int = 4, value_bytes: int = 4) -> int:
        total = 0
        for bucket in self.buckets:
            total += bucket.ell.nbytes(index_bytes, value_bytes)
            total += bucket.num_rows * index_bytes  # row_map
        return total

    # -- correctness -----------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.source.shape, dtype=self.source.data.dtype)
        for bucket in self.buckets:
            ell = bucket.ell
            for local_row in range(ell.num_rows):
                target = int(ell.row_map[local_row])
                for slot in range(ell.nnz_cols):
                    col = ell.indices[local_row, slot]
                    if col != PAD:
                        dense[target, bucket.col_offset + col] += ell.data[local_row, slot]
        return dense

    def __repr__(self) -> str:
        return (
            f"HybFormat(parts={self.num_col_parts}, widths={self.bucket_widths}, "
            f"buckets={len(self.buckets)}, padding={self.padding_ratio:.2%})"
        )
