"""Base-plan + delta-overlay execution for mutated sparse structures.

When a :class:`~repro.formats.csr.CSRMatrix` carries a pending delta
(:attr:`~repro.formats.csr.CSRMatrix.has_pending_delta`), re-lowering a
kernel for the mutated structure per edit would erase the point of O(delta)
updates.  Instead the session executes the *frozen base snapshot* through
its warm cached kernel and patches the delta's effect on top:

* **SpMM** output rows are row-local (``out[i, k]`` only sums row ``i``'s
  edges in ascending-column order), so the overlay recomputes just the
  *affected rows* from the effective arrays with ``np.add.at`` — the same
  unbuffered, serial, ascending-``j`` accumulation the generated kernels
  use — and overwrites them in the base result.
* **SDDMM** edge scores are edge-local, so surviving base scores scatter
  into their merged positions and only inserted edges are computed fresh
  (serial ascending-``k`` accumulation, matching the kernel's
  ``(a * x) * y`` association).

Both overlays are **bit-exact** with a cold rebuild from the final edge set
(asserted by the edit-script conformance suite in
``tests/test_dynamic.py``): same value dtype, same products, same
floating-point accumulation order.  Once the matrix re-compacts, the next
execution re-fingerprints the new base and the overlay disappears until the
next mutation.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from .keys import resolve_dtype


def _affected_row_update(merged, features: np.ndarray, value_dtype: str) -> np.ndarray:
    """Recompute ``A @ X`` for the merged view's affected rows only.

    Replicates the kernel's accumulation exactly: per output element the
    edge products arrive in ascending-column order through one unbuffered
    ``np.add.at``.
    """
    from ..core.nputils import ragged_arange

    rows = merged.affected_rows
    starts = merged.indptr[rows]
    counts = merged.indptr[rows + 1] - starts
    edge_positions = np.repeat(starts, counts) + ragged_arange(counts)
    local_rows = np.repeat(np.arange(rows.size, dtype=np.int64), counts)
    cols = merged.indices[edge_positions]
    vals = merged.data[edge_positions].astype(value_dtype, copy=False)
    acc = np.zeros((rows.size, features.shape[1]), dtype=value_dtype)
    np.add.at(acc, local_rows, vals[:, None] * features[cols])
    return acc


def overlay_spmm(
    session: Any,
    csr: Any,
    features: np.ndarray,
    format: str = "csr",
    num_col_parts: int = 1,
    num_buckets: Optional[int] = None,
    dtype: Any = None,
    tuned: bool = False,
) -> np.ndarray:
    """``A @ X`` for a matrix with a pending delta: base plan + row patch.

    Tuned overrides are resolved against the *mutated* matrix (this is
    where the session's drift threshold decides between reusing the
    stale-but-close plan and triggering a re-tune); the base snapshot then
    executes with ``tuned=False`` so its warm kernel and decomposition are
    reused unconditionally.
    """
    features = np.asarray(features)
    value_dtype = resolve_dtype((features, csr.data), dtype)
    if tuned:
        from ..tune.spaces import SpMMProblem

        overrides = session._tuned_overrides("spmm", SpMMProblem(csr, int(features.shape[1])))
        format = overrides.get("format", format)
        num_col_parts = overrides.get("num_col_parts", num_col_parts)
        num_buckets = overrides.get("num_buckets", num_buckets)
    out = session.spmm(
        csr.base_view(), features, format=format, num_col_parts=num_col_parts,
        num_buckets=num_buckets, dtype=value_dtype, tuned=False,
    )
    session.stats.overlay_runs += 1
    merged = csr._merged_view()
    if merged.affected_rows.size:
        feats = features.astype(value_dtype, copy=False)
        out[merged.affected_rows] = _affected_row_update(merged, feats, value_dtype)
    return out


def overlay_sddmm(
    session: Any,
    csr: Any,
    x: np.ndarray,
    y: np.ndarray,
    fuse_ij: bool = True,
    dtype: Any = None,
    tuned: bool = False,
) -> np.ndarray:
    """SDDMM for a matrix with a pending delta: base plan + edge patch.

    Surviving base edges keep their base-plan scores (edge scores are
    independent, so they are bitwise identical); inserted edges are scored
    with the kernel's exact per-edge recurrence
    ``out[e] += (a[e] * x[i, k]) * y[k, j]`` over ascending ``k``.
    """
    x = np.asarray(x)
    y = np.asarray(y)
    value_dtype = resolve_dtype((x, y, csr.data), dtype)
    if tuned:
        from ..tune.spaces import SDDMMProblem

        overrides = session._tuned_overrides("sddmm", SDDMMProblem(csr, int(x.shape[1])))
        fuse_ij = overrides.get("fuse_ij", fuse_ij)
    base_scores = session.sddmm(
        csr.base_view(), x, y, fuse_ij=fuse_ij, dtype=value_dtype, tuned=False
    )
    session.stats.overlay_runs += 1
    merged = csr._merged_view()
    out = np.zeros(len(merged.indices), dtype=value_dtype)
    out[merged.base_positions] = base_scores[merged.kept_mask]
    inserted = merged.delta_positions
    if inserted.size:
        rows = merged.delta_rows
        cols = merged.indices[inserted]
        vals = merged.data[inserted].astype(value_dtype, copy=False)
        xq = x.astype(value_dtype, copy=False)
        yk = y.astype(value_dtype, copy=False)
        products = (vals[:, None] * xq[rows]) * yk[:, cols].T
        scores = np.zeros(inserted.size, dtype=value_dtype)
        np.add.at(
            scores,
            np.repeat(np.arange(inserted.size, dtype=np.int64), products.shape[1]),
            products.ravel(),
        )
        out[inserted] = scores
    return out
