"""Runtime: NumPy-backed execution of lowered SparseTIR programs.

Three execution tiers share identical semantics: the element-by-element
:class:`Executor` (the numerical ground truth), the batched
:class:`VectorizedExecutor` fast path, and the emitted stage-IV kernels
(:mod:`repro.core.codegen.emit_numpy`) whose lane plan is fixed into
generated source.  :class:`Session` is the compile-once/run-many entry point
bundling format decomposition, kernel building (with structural and
persistent caching) and engine selection.
"""

from .executor import Executor, prepare_arrays, run_primfunc
from .session import Session, SessionStats, get_default_session
from .vectorized import UnsupportedProgram, VectorizedExecutor

__all__ = [
    "Executor",
    "VectorizedExecutor",
    "UnsupportedProgram",
    "prepare_arrays",
    "run_primfunc",
    "Session",
    "SessionStats",
    "get_default_session",
]
