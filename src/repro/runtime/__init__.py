"""Runtime: NumPy-backed execution of lowered SparseTIR programs."""

from .executor import Executor, run_primfunc

__all__ = ["Executor", "run_primfunc"]
